//! The strict privacy budget (paper §2: "techniques that work under a strict
//! privacy budget").
//!
//! [`PrivacyAccountant`] is a ledger: analyses *must* ask it for budget
//! before releasing anything, and once the ε (or δ) budget is exhausted,
//! further queries fail with [`fact_data::FactError::BudgetExhausted`]. Basic
//! (sequential) composition is enforced; [`advanced_composition_epsilon`]
//! computes the tighter bound of Dwork–Rothblum–Vadhan for k-fold
//! composition, which experiment E5 compares against the basic bound.

use fact_data::{FactError, Result};

/// One ledger entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Expenditure {
    /// Human-readable purpose of the query.
    pub label: String,
    /// Epsilon spent.
    pub epsilon: f64,
    /// Delta spent.
    pub delta: f64,
}

/// A sequential-composition ε/δ budget ledger.
///
/// ```
/// use fact_confidentiality::PrivacyAccountant;
/// let mut acc = PrivacyAccountant::pure(1.0).unwrap();
/// acc.spend(0.6, 0.0, "mean salary").unwrap();
/// assert_eq!(acc.queries_remaining(0.2), 2);
/// assert!(acc.spend(0.6, 0.0, "one too many").is_err());
/// ```
#[derive(Debug, Clone)]
pub struct PrivacyAccountant {
    budget_epsilon: f64,
    budget_delta: f64,
    ledger: Vec<Expenditure>,
}

impl PrivacyAccountant {
    /// A fresh accountant with total budget `(epsilon, delta)`.
    pub fn new(budget_epsilon: f64, budget_delta: f64) -> Result<Self> {
        if budget_epsilon <= 0.0 || !budget_epsilon.is_finite() {
            return Err(FactError::InvalidArgument(format!(
                "epsilon budget must be positive and finite, got {budget_epsilon}"
            )));
        }
        if !(0.0..1.0).contains(&budget_delta) {
            return Err(FactError::InvalidArgument(format!(
                "delta budget must be in [0, 1), got {budget_delta}"
            )));
        }
        Ok(PrivacyAccountant {
            budget_epsilon,
            budget_delta,
            ledger: Vec::new(),
        })
    }

    /// Pure-ε accountant (δ budget 0: Gaussian-mechanism spends will fail).
    pub fn pure(budget_epsilon: f64) -> Result<Self> {
        Self::new(budget_epsilon, 0.0)
    }

    /// Attempt to spend `(epsilon, delta)`; errors without recording if the
    /// remaining budget is insufficient.
    pub fn spend(&mut self, epsilon: f64, delta: f64, label: impl Into<String>) -> Result<()> {
        if epsilon <= 0.0 || !epsilon.is_finite() {
            return Err(FactError::InvalidArgument(format!(
                "query epsilon must be positive and finite, got {epsilon}"
            )));
        }
        if !(0.0..1.0).contains(&delta) {
            return Err(FactError::InvalidArgument(format!(
                "query delta must be in [0, 1), got {delta}"
            )));
        }
        let eps_left = self.remaining_epsilon();
        if epsilon > eps_left + 1e-12 {
            return Err(FactError::BudgetExhausted {
                requested: epsilon,
                remaining: eps_left,
            });
        }
        if delta > self.remaining_delta() + 1e-18 {
            return Err(FactError::PolicyViolation(format!(
                "delta budget exhausted: requested {delta}, remaining {}",
                self.remaining_delta()
            )));
        }
        self.ledger.push(Expenditure {
            label: label.into(),
            epsilon,
            delta,
        });
        Ok(())
    }

    /// Total ε spent so far (basic composition: simple sum).
    pub fn spent_epsilon(&self) -> f64 {
        self.ledger.iter().map(|e| e.epsilon).sum()
    }

    /// Total δ spent so far.
    pub fn spent_delta(&self) -> f64 {
        self.ledger.iter().map(|e| e.delta).sum()
    }

    /// Remaining ε.
    pub fn remaining_epsilon(&self) -> f64 {
        (self.budget_epsilon - self.spent_epsilon()).max(0.0)
    }

    /// Remaining δ.
    pub fn remaining_delta(&self) -> f64 {
        (self.budget_delta - self.spent_delta()).max(0.0)
    }

    /// The total ε budget.
    pub fn budget_epsilon(&self) -> f64 {
        self.budget_epsilon
    }

    /// The total δ budget.
    pub fn budget_delta(&self) -> f64 {
        self.budget_delta
    }

    /// The ledger of every recorded expenditure, in order — the audit trail
    /// the transparency pillar expects confidentiality decisions to leave.
    pub fn ledger(&self) -> &[Expenditure] {
        &self.ledger
    }

    /// How many more queries of `epsilon_each` the remaining budget allows
    /// under basic composition.
    pub fn queries_remaining(&self, epsilon_each: f64) -> usize {
        if epsilon_each <= 0.0 {
            return 0;
        }
        ((self.remaining_epsilon() + 1e-12) / epsilon_each).floor() as usize
    }
}

/// Total ε consumed by `k` queries of `eps_step` each under **advanced
/// composition** (Dwork–Rothblum–Vadhan), at slack `delta_prime`:
/// `ε_total = ε√(2k ln(1/δ′)) + k·ε·(e^ε − 1)`.
pub fn advanced_composition_epsilon(k: usize, eps_step: f64, delta_prime: f64) -> Result<f64> {
    if eps_step <= 0.0 || !eps_step.is_finite() {
        return Err(FactError::InvalidArgument(format!(
            "step epsilon must be positive, got {eps_step}"
        )));
    }
    if !(0.0 < delta_prime && delta_prime < 1.0) {
        return Err(FactError::InvalidArgument(format!(
            "delta' must be in (0, 1), got {delta_prime}"
        )));
    }
    let kf = k as f64;
    Ok(eps_step * (2.0 * kf * (1.0 / delta_prime).ln()).sqrt()
        + kf * eps_step * (eps_step.exp() - 1.0))
}

/// Maximum number of `eps_step` queries affordable within `eps_total` under
/// advanced composition at slack `delta_prime` (found by search).
pub fn queries_affordable_advanced(
    eps_total: f64,
    eps_step: f64,
    delta_prime: f64,
) -> Result<usize> {
    if eps_total <= 0.0 {
        return Err(FactError::InvalidArgument(
            "total epsilon must be positive".into(),
        ));
    }
    let mut k = 0usize;
    loop {
        let next = advanced_composition_epsilon(k + 1, eps_step, delta_prime)?;
        if next > eps_total {
            return Ok(k);
        }
        k += 1;
        if k > 100_000_000 {
            return Ok(k); // defensive cap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spend_until_exhausted() {
        let mut acc = PrivacyAccountant::pure(1.0).unwrap();
        for i in 0..4 {
            acc.spend(0.25, 0.0, format!("q{i}")).unwrap();
        }
        assert!(acc.remaining_epsilon() < 1e-9);
        let err = acc.spend(0.25, 0.0, "q4").unwrap_err();
        assert!(matches!(err, FactError::BudgetExhausted { .. }));
        assert_eq!(acc.ledger().len(), 4, "failed spend not recorded");
    }

    #[test]
    fn delta_budget_enforced() {
        let mut acc = PrivacyAccountant::new(10.0, 1e-6).unwrap();
        acc.spend(1.0, 1e-6, "gaussian").unwrap();
        assert!(acc.spend(1.0, 1e-6, "gaussian2").is_err());
        // pure-epsilon queries still fine
        acc.spend(1.0, 0.0, "laplace").unwrap();
    }

    #[test]
    fn pure_accountant_rejects_any_delta() {
        let mut acc = PrivacyAccountant::pure(5.0).unwrap();
        assert!(acc.spend(1.0, 1e-9, "needs delta").is_err());
    }

    #[test]
    fn queries_remaining_counts() {
        let acc = PrivacyAccountant::pure(1.0).unwrap();
        assert_eq!(acc.queries_remaining(0.1), 10);
        assert_eq!(acc.queries_remaining(0.3), 3);
        assert_eq!(acc.queries_remaining(0.0), 0);
    }

    #[test]
    fn ledger_is_an_audit_trail() {
        let mut acc = PrivacyAccountant::pure(2.0).unwrap();
        acc.spend(0.5, 0.0, "mean salary").unwrap();
        acc.spend(0.5, 0.0, "count by dept").unwrap();
        let labels: Vec<&str> = acc.ledger().iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, vec!["mean salary", "count by dept"]);
        assert_eq!(acc.spent_epsilon(), 1.0);
    }

    #[test]
    fn validation() {
        assert!(PrivacyAccountant::new(0.0, 0.0).is_err());
        assert!(PrivacyAccountant::new(1.0, 1.0).is_err());
        let mut acc = PrivacyAccountant::pure(1.0).unwrap();
        assert!(acc.spend(0.0, 0.0, "zero").is_err());
        assert!(acc.spend(-1.0, 0.0, "neg").is_err());
    }

    #[test]
    fn advanced_composition_beats_basic_for_many_small_queries() {
        // 100 queries at ε=0.01: basic total = 1.0
        let adv = advanced_composition_epsilon(100, 0.01, 1e-5).unwrap();
        assert!(adv < 1.0, "advanced bound {adv} < basic 1.0");
        // and therefore more queries fit in the same budget
        let k_adv = queries_affordable_advanced(1.0, 0.01, 1e-5).unwrap();
        assert!(k_adv > 100, "advanced affords {k_adv} > 100 queries");
    }

    #[test]
    fn advanced_composition_worse_for_few_large_queries() {
        // 2 queries at ε=0.5: basic = 1.0; advanced has the sqrt overhead
        let adv = advanced_composition_epsilon(2, 0.5, 1e-5).unwrap();
        assert!(adv > 1.0);
    }

    #[test]
    fn advanced_validation() {
        assert!(advanced_composition_epsilon(10, 0.0, 1e-5).is_err());
        assert!(advanced_composition_epsilon(10, 0.1, 1.0).is_err());
        assert!(queries_affordable_advanced(0.0, 0.1, 1e-5).is_err());
    }
}
