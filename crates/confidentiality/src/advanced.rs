//! Advanced DP primitives: the generic exponential mechanism and the Sparse
//! Vector Technique (AboveThreshold).
//!
//! Both stretch a "strict privacy budget" (§2) further than independent
//! noisy releases:
//!
//! * the **exponential mechanism** selects the (approximately) best item
//!   from a candidate set at a fixed ε regardless of how many candidates
//!   there are;
//! * **AboveThreshold / SVT** answers a *stream* of threshold queries while
//!   paying ε only for the (few) queries that cross the threshold — the
//!   canonical trick for monitoring without budget hemorrhage.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fact_data::{FactError, Result};

use crate::mechanisms::laplace_noise;

/// Select one index from `utilities` with probability
/// ∝ exp(ε·u / (2·sensitivity)) — the exponential mechanism (McSherry &
/// Talwar 2007). Returns the chosen index.
pub fn exponential_mechanism(
    utilities: &[f64],
    sensitivity: f64,
    epsilon: f64,
    seed: u64,
) -> Result<usize> {
    if utilities.is_empty() {
        return Err(FactError::EmptyData("no candidates to select from".into()));
    }
    if epsilon <= 0.0 || sensitivity <= 0.0 {
        return Err(FactError::InvalidArgument(
            "epsilon and sensitivity must be positive".into(),
        ));
    }
    if utilities.iter().any(|u| !u.is_finite()) {
        return Err(FactError::InvalidArgument(
            "utilities must be finite".into(),
        ));
    }
    // Gumbel-max trick on the log-weights (numerically stable)
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = f64::NEG_INFINITY;
    let mut pick = 0usize;
    for (i, &u) in utilities.iter().enumerate() {
        let lw = epsilon * u / (2.0 * sensitivity);
        let g: f64 = {
            let v: f64 = rng.gen_range(f64::EPSILON..1.0);
            -(-v.ln()).ln()
        };
        if lw + g > best {
            best = lw + g;
            pick = i;
        }
    }
    Ok(pick)
}

/// The AboveThreshold (Sparse Vector) mechanism.
///
/// Initialized with a threshold and a total ε; each call to
/// [`SparseVector::query`] tests one query value (sensitivity 1) against the
/// noisy threshold. The mechanism answers up to `max_positives` `true`
/// results and then refuses further queries; `false` answers are free
/// (that's the point of SVT).
#[derive(Debug)]
pub struct SparseVector {
    noisy_threshold: f64,
    eps_query: f64,
    positives_left: usize,
    rng: StdRng,
    exhausted: bool,
}

impl SparseVector {
    /// Create with `threshold`, total budget `epsilon`, and a cap on the
    /// number of above-threshold answers.
    pub fn new(threshold: f64, epsilon: f64, max_positives: usize, seed: u64) -> Result<Self> {
        if epsilon <= 0.0 || !epsilon.is_finite() {
            return Err(FactError::InvalidArgument(
                "epsilon must be positive and finite".into(),
            ));
        }
        if max_positives == 0 {
            return Err(FactError::InvalidArgument(
                "max_positives must be at least 1".into(),
            ));
        }
        let eps_threshold = epsilon / 2.0;
        let eps_queries = epsilon / 2.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let noisy_threshold = threshold + laplace_noise(1.0 / eps_threshold, &mut rng);
        Ok(SparseVector {
            noisy_threshold,
            eps_query: eps_queries / max_positives as f64,
            positives_left: max_positives,
            rng,
            exhausted: false,
        })
    }

    /// Test one query value (sensitivity 1). Errors once the positive budget
    /// is exhausted.
    pub fn query(&mut self, value: f64) -> Result<bool> {
        if self.exhausted {
            return Err(FactError::BudgetExhausted {
                requested: self.eps_query,
                remaining: 0.0,
            });
        }
        let noisy = value + laplace_noise(2.0 / self.eps_query, &mut self.rng);
        if noisy >= self.noisy_threshold {
            self.positives_left -= 1;
            if self.positives_left == 0 {
                self.exhausted = true;
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Above-threshold answers still available.
    pub fn positives_left(&self) -> usize {
        self.positives_left
    }
}

/// DP variance of values clamped to `[lo, hi]`: composes a DP mean and a DP
/// mean-of-squares, each at `epsilon / 2`.
pub fn dp_variance(values: &[f64], lo: f64, hi: f64, epsilon: f64, seed: u64) -> Result<f64> {
    if values.len() < 2 {
        return Err(FactError::EmptyData(
            "DP variance needs at least 2 values".into(),
        ));
    }
    let mean = crate::mechanisms::dp_mean(values, lo, hi, epsilon / 2.0, seed)?;
    let squares: Vec<f64> = values
        .iter()
        .map(|v| {
            let c = v.clamp(lo, hi);
            c * c
        })
        .collect();
    let bound = lo.abs().max(hi.abs()).powi(2);
    let mean_sq =
        crate::mechanisms::dp_mean(&squares, 0.0, bound, epsilon / 2.0, seed.wrapping_add(1))?;
    Ok((mean_sq - mean * mean).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mechanism_prefers_high_utility() {
        let utilities = [1.0, 5.0, 30.0, 2.0];
        let mut wins = [0usize; 4];
        for seed in 0..500 {
            wins[exponential_mechanism(&utilities, 1.0, 2.0, seed).unwrap()] += 1;
        }
        assert!(wins[2] > 450, "utility 30 should dominate at ε=2: {wins:?}");
    }

    #[test]
    fn exponential_mechanism_randomizes_at_low_epsilon() {
        let utilities = [1.0, 5.0, 30.0, 2.0];
        let mut wins = [0usize; 4];
        for seed in 0..2000 {
            wins[exponential_mechanism(&utilities, 1.0, 0.01, seed).unwrap()] += 1;
        }
        // near-uniform at ε→0
        for w in wins {
            assert!((300..700).contains(&w), "low ε ⇒ near uniform: {wins:?}");
        }
    }

    #[test]
    fn exponential_mechanism_validation() {
        assert!(exponential_mechanism(&[], 1.0, 1.0, 0).is_err());
        assert!(exponential_mechanism(&[1.0], 0.0, 1.0, 0).is_err());
        assert!(exponential_mechanism(&[f64::NAN], 1.0, 1.0, 0).is_err());
    }

    #[test]
    fn svt_answers_negatives_freely_and_caps_positives() {
        let mut svt = SparseVector::new(100.0, 2.0, 2, 7).unwrap();
        let mut negatives = 0;
        // many clearly-below queries: all false, budget untouched
        for _ in 0..500 {
            if !svt.query(0.0).unwrap() {
                negatives += 1;
            }
        }
        assert!(
            negatives >= 498,
            "far-below queries answer false: {negatives}"
        );
        assert_eq!(svt.positives_left(), 2);
        // clearly-above queries consume the positive budget
        assert!(svt.query(10_000.0).unwrap());
        assert!(svt.query(10_000.0).unwrap());
        assert!(matches!(
            svt.query(10_000.0),
            Err(FactError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn svt_threshold_discriminates() {
        // values far above vs far below the threshold answer correctly
        let mut above = 0;
        let mut below = 0;
        for seed in 0..200 {
            let mut svt = SparseVector::new(50.0, 4.0, 1, seed).unwrap();
            if svt.query(500.0).unwrap() {
                above += 1;
            }
            let mut svt = SparseVector::new(50.0, 4.0, 1, seed + 1000).unwrap();
            if svt.query(-400.0).unwrap() {
                below += 1;
            }
        }
        assert!(above > 190, "far-above detected: {above}/200");
        assert!(below < 10, "far-below rejected: {below}/200");
    }

    #[test]
    fn svt_validation() {
        assert!(SparseVector::new(1.0, 0.0, 1, 0).is_err());
        assert!(SparseVector::new(1.0, 1.0, 0, 0).is_err());
    }

    #[test]
    fn dp_variance_approximates_truth() {
        let vals: Vec<f64> = (0..10_000).map(|i| (i % 100) as f64).collect();
        let true_var = {
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - m).powi(2)).sum::<f64>() / vals.len() as f64
        };
        let noisy = dp_variance(&vals, 0.0, 100.0, 2.0, 3).unwrap();
        assert!(
            (noisy - true_var).abs() / true_var < 0.1,
            "DP var {noisy:.1} ≈ true {true_var:.1}"
        );
        assert!(dp_variance(&[1.0], 0.0, 1.0, 1.0, 0).is_err());
    }
}
