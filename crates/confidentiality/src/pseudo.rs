//! Keyed pseudonymization.
//!
//! The paper names "polymorphic encryption and pseudonymization" as the
//! security half of the confidentiality answer (§2). This module provides a
//! keyed pseudonymizer: identifiers are mapped through a keyed hash
//! (SipHash-flavoured mixing of an FNV stream) to stable tokens. The same
//! key maps an identifier to the same pseudonym (joins still work); without
//! the key, pseudonyms are not linkable back. Different keys produce
//! *unlinkable* pseudonym domains — the essence of "polymorphic"
//! pseudonymization: each data consumer gets its own domain.

use fact_data::{Column, Dataset, Result};

/// A keyed pseudonymizer.
#[derive(Debug, Clone)]
pub struct Pseudonymizer {
    key: u64,
}

impl Pseudonymizer {
    /// Create with a secret key.
    pub fn new(key: u64) -> Self {
        Pseudonymizer { key }
    }

    /// Pseudonymize one identifier to a 16-hex-digit token.
    pub fn token(&self, id: &str) -> String {
        format!("{:016x}", self.hash(id))
    }

    fn hash(&self, id: &str) -> u64 {
        // keyed FNV-1a stream followed by two rounds of splitmix64 finalizing
        let mut h = 0xcbf29ce484222325u64 ^ self.key;
        for b in id.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= self.key.rotate_left(32);
        // splitmix64 finalizer
        for _ in 0..2 {
            h = h.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            h = z ^ (z >> 31);
        }
        h
    }

    /// Replace a categorical identifier column with pseudonym tokens.
    pub fn pseudonymize_column(&self, ds: &Dataset, column: &str) -> Result<Dataset> {
        let labels = ds.labels(column)?;
        let tokens: Vec<String> = labels.iter().map(|l| self.token(l)).collect();
        let mut out = ds.clone();
        out.replace_column(column, Column::from_labels(&tokens))?;
        Ok(out)
    }
}

/// Check that two pseudonym domains (same data, different keys) are
/// unlinkable at the token level: no token should appear in both.
pub fn domains_unlinkable(a: &[String], b: &[String]) -> bool {
    use std::collections::HashSet;
    let set: HashSet<&String> = a.iter().collect();
    !b.iter().any(|t| set.contains(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_data::FactError;

    #[test]
    fn stable_within_a_key() {
        let p = Pseudonymizer::new(42);
        assert_eq!(p.token("alice"), p.token("alice"));
        assert_ne!(p.token("alice"), p.token("bob"));
        assert_eq!(p.token("alice").len(), 16);
    }

    #[test]
    fn different_keys_give_different_domains() {
        let p1 = Pseudonymizer::new(1);
        let p2 = Pseudonymizer::new(2);
        let ids = ["alice", "bob", "carol", "dave"];
        let d1: Vec<String> = ids.iter().map(|i| p1.token(i)).collect();
        let d2: Vec<String> = ids.iter().map(|i| p2.token(i)).collect();
        assert!(domains_unlinkable(&d1, &d2));
    }

    #[test]
    fn no_collisions_over_many_ids() {
        use std::collections::HashSet;
        let p = Pseudonymizer::new(7);
        let tokens: HashSet<String> = (0..50_000).map(|i| p.token(&format!("user{i}"))).collect();
        assert_eq!(tokens.len(), 50_000);
    }

    #[test]
    fn column_pseudonymization_preserves_joins() {
        let ds = Dataset::builder()
            .cat("user", &["u1", "u2", "u1", "u3"])
            .f64("v", vec![1.0, 2.0, 3.0, 4.0])
            .build()
            .unwrap();
        let p = Pseudonymizer::new(99);
        let out = p.pseudonymize_column(&ds, "user").unwrap();
        let toks = out.labels("user").unwrap();
        assert_eq!(toks[0], toks[2], "same user, same token");
        assert_ne!(toks[0], toks[1]);
        // raw ids gone
        assert!(!toks.contains(&"u1".to_string()));
        assert!(matches!(
            p.pseudonymize_column(&ds, "v"),
            Err(FactError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn avalanche_on_similar_ids() {
        let p = Pseudonymizer::new(5);
        let a = p.token("user1");
        let b = p.token("user2");
        // tokens should differ in many hex positions, not just the tail
        let diff = a.chars().zip(b.chars()).filter(|(x, y)| x != y).count();
        assert!(diff >= 8, "weak diffusion: {a} vs {b}");
    }
}
