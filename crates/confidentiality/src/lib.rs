//! # fact-confidentiality — the Confidentiality pillar (Q3)
//!
//! "Data science that ensures confidentiality — how to answer questions
//! without revealing secrets?" (van der Aalst et al. 2017, §2). The paper is
//! explicit that the goal is *not* to stop sharing data but to "exploit data
//! in a safe and controlled manner", naming pseudonymization and
//! "confidentiality-preserving analysis techniques (e.g., techniques that
//! work under a strict privacy budget)" — i.e., differential privacy (it
//! cites Dwork 2011).
//!
//! * [`mechanisms`] — Laplace, Gaussian, exponential, and randomized-response
//!   mechanisms, plus DP count/sum/mean/histogram/quantile queries;
//! * [`accountant`] — the strict privacy **budget**: ε/δ ledger with basic
//!   and advanced composition (experiment E5);
//! * [`advanced`] — the exponential mechanism, the Sparse Vector Technique
//!   (AboveThreshold), and DP variance;
//! * [`kanon`] — Mondrian k-anonymity, l-diversity, and t-closeness checks
//!   (experiment E6);
//! * [`risk`] — quasi-identifier re-identification risk estimation;
//! * [`pseudo`] — keyed pseudonymization of identifiers.

#![warn(missing_docs)]

pub mod accountant;
pub mod advanced;
pub mod kanon;
pub mod mechanisms;
pub mod pseudo;
pub mod risk;

pub use accountant::PrivacyAccountant;
