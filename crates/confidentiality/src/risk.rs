//! Re-identification risk estimation.
//!
//! Quantifies how exposed a dataset is to linkage attacks through its
//! quasi-identifiers: the fraction of records that are *unique* on the QI
//! combination (a unique record is re-identified by anyone who knows those
//! attributes), plus prosecutor-model risk (expected success probability of
//! an attacker targeting a random record: `mean(1/class size)`).

use std::collections::HashMap;

use fact_data::{Dataset, FactError, Result};

/// Risk summary for a dataset under a set of quasi-identifiers.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskReport {
    /// Fraction of records unique on the QI combination.
    pub unique_fraction: f64,
    /// Expected attacker success against a random record (`mean 1/|class|`).
    pub prosecutor_risk: f64,
    /// Size of the smallest QI equivalence class.
    pub min_class_size: usize,
    /// Number of distinct QI combinations.
    pub n_classes: usize,
}

/// Estimate re-identification risk over the given quasi-identifier columns.
pub fn reidentification_risk(ds: &Dataset, qis: &[&str]) -> Result<RiskReport> {
    if qis.is_empty() {
        return Err(FactError::InvalidArgument(
            "at least one quasi-identifier required".into(),
        ));
    }
    if ds.n_rows() == 0 {
        return Err(FactError::EmptyData("risk of empty dataset".into()));
    }
    let mut cols = Vec::with_capacity(qis.len());
    for &q in qis {
        cols.push(ds.column(q)?);
    }
    let mut counts: HashMap<Vec<String>, usize> = HashMap::new();
    let mut keys = Vec::with_capacity(ds.n_rows());
    for i in 0..ds.n_rows() {
        let key: Vec<String> = cols.iter().map(|c| c.get(i).to_string()).collect();
        *counts.entry(key.clone()).or_insert(0) += 1;
        keys.push(key);
    }
    let n = ds.n_rows() as f64;
    let unique = counts.values().filter(|&&c| c == 1).count() as f64;
    let prosecutor: f64 = keys.iter().map(|k| 1.0 / counts[k] as f64).sum::<f64>() / n;
    Ok(RiskReport {
        unique_fraction: unique / n,
        prosecutor_risk: prosecutor,
        min_class_size: counts.values().copied().min().unwrap_or(0),
        n_classes: counts.len(),
    })
}

/// Risk using the dataset's schema-declared quasi-identifiers.
pub fn schema_risk(ds: &Dataset) -> Result<RiskReport> {
    let qis: Vec<&str> = ds.schema().quasi_identifiers();
    reidentification_risk(ds, &qis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kanon::mondrian_k_anonymize;
    use fact_data::synth::census::{generate_census, CensusConfig};

    #[test]
    fn raw_census_is_risky() {
        let ds = generate_census(&CensusConfig {
            n: 2000,
            seed: 1,
            ..CensusConfig::default()
        });
        let r = schema_risk(&ds).unwrap();
        assert!(
            r.unique_fraction > 0.3,
            "many unique (age,sex,zip) combos: {}",
            r.unique_fraction
        );
        assert!(r.prosecutor_risk > 0.3);
        assert!(r.min_class_size >= 1);
    }

    #[test]
    fn anonymization_reduces_risk() {
        let ds = generate_census(&CensusConfig {
            n: 2000,
            seed: 2,
            ..CensusConfig::default()
        });
        let before = schema_risk(&ds).unwrap();
        let anon = mondrian_k_anonymize(&ds, &["age", "sex", "zipcode"], 10).unwrap();
        let after = reidentification_risk(&anon.data, &["age", "sex", "zipcode"]).unwrap();
        assert_eq!(after.unique_fraction, 0.0);
        assert!(
            after.prosecutor_risk <= 0.1 + 1e-9,
            "≤ 1/k: {}",
            after.prosecutor_risk
        );
        assert!(after.prosecutor_risk < before.prosecutor_risk);
        assert!(after.min_class_size >= 10);
    }

    #[test]
    fn fully_identifying_key_is_maximal_risk() {
        let ds = Dataset::builder()
            .cat("id", &["a", "b", "c"])
            .build()
            .unwrap();
        let r = reidentification_risk(&ds, &["id"]).unwrap();
        assert_eq!(r.unique_fraction, 1.0);
        assert_eq!(r.prosecutor_risk, 1.0);
        assert_eq!(r.n_classes, 3);
    }

    #[test]
    fn constant_column_is_minimal_risk() {
        let ds = Dataset::builder()
            .cat("c", &["x", "x", "x", "x"])
            .build()
            .unwrap();
        let r = reidentification_risk(&ds, &["c"]).unwrap();
        assert_eq!(r.unique_fraction, 0.0);
        assert_eq!(r.prosecutor_risk, 0.25);
        assert_eq!(r.min_class_size, 4);
    }

    #[test]
    fn validation() {
        let ds = Dataset::builder().cat("c", &["x"]).build().unwrap();
        assert!(reidentification_risk(&ds, &[]).is_err());
        assert!(reidentification_risk(&ds, &["ghost"]).is_err());
    }
}
