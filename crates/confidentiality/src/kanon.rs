//! k-anonymity by Mondrian multidimensional partitioning (LeFevre et al.
//! 2006), plus l-diversity and t-closeness checks on the result.
//!
//! Quasi-identifier columns are generalized per equivalence class: numeric
//! QIs become range labels (`"[18-33]"`), categorical QIs become the single
//! shared label or a `|`-joined set. The released dataset is safe to join
//! against external data only up to class resolution — which is the point.

use fact_data::{Column, Dataset, FactError, Result};

/// Result of anonymization: the generalized dataset plus class bookkeeping.
#[derive(Debug, Clone)]
pub struct Anonymized {
    /// Generalized dataset (QI columns replaced by categorical range labels).
    pub data: Dataset,
    /// Equivalence-class index of each row.
    pub class_of: Vec<usize>,
    /// Number of equivalence classes.
    pub n_classes: usize,
    /// The k that was enforced.
    pub k: usize,
    /// Average normalized certainty penalty in `[0, 1]` (0 = no
    /// generalization, 1 = fully suppressed).
    pub information_loss: f64,
}

impl Anonymized {
    /// Average equivalence-class size.
    pub fn mean_class_size(&self) -> f64 {
        self.class_of.len() as f64 / self.n_classes as f64
    }

    /// Size of the smallest equivalence class.
    pub fn min_class_size(&self) -> usize {
        let mut sizes = vec![0usize; self.n_classes];
        for &c in &self.class_of {
            sizes[c] += 1;
        }
        sizes.into_iter().min().unwrap_or(0)
    }
}

/// Mondrian k-anonymization of `ds` over the quasi-identifiers `qis`.
///
/// Numeric and categorical QI columns are both supported (categoricals are
/// partitioned by dictionary code). Errors when `k` is 0 or exceeds the row
/// count, or when any QI column is missing.
///
/// ```
/// use fact_confidentiality::kanon::{is_k_anonymous, mondrian_k_anonymize};
/// use fact_data::synth::census::{generate_census, CensusConfig};
/// let ds = generate_census(&CensusConfig { n: 500, seed: 1, ..CensusConfig::default() });
/// let anon = mondrian_k_anonymize(&ds, &["age", "sex", "zipcode"], 5).unwrap();
/// assert!(anon.min_class_size() >= 5);
/// assert!(is_k_anonymous(&anon.data, &["age", "sex", "zipcode"], 5).unwrap());
/// ```
pub fn mondrian_k_anonymize(ds: &Dataset, qis: &[&str], k: usize) -> Result<Anonymized> {
    if k == 0 {
        return Err(FactError::InvalidArgument("k must be at least 1".into()));
    }
    if ds.n_rows() == 0 {
        return Err(FactError::EmptyData("anonymizing empty dataset".into()));
    }
    if k > ds.n_rows() {
        return Err(FactError::InvalidArgument(format!(
            "k={k} exceeds the number of rows ({})",
            ds.n_rows()
        )));
    }
    if qis.is_empty() {
        return Err(FactError::InvalidArgument(
            "at least one quasi-identifier is required".into(),
        ));
    }

    // numeric view of each QI (cat → code), plus metadata for rendering
    struct Qi {
        name: String,
        numeric: Vec<f64>,
        is_cat: bool,
        dict: Vec<String>,
        global_range: f64,
        global_card: usize,
    }
    let mut qi_cols = Vec::with_capacity(qis.len());
    for &name in qis {
        let col = ds.column(name)?;
        let (numeric, is_cat, dict) = match col.as_cat() {
            Ok(cat) => (
                cat.codes.iter().map(|&c| c as f64).collect::<Vec<f64>>(),
                true,
                cat.dict.clone(),
            ),
            Err(_) => (ds.f64_column(name)?, false, Vec::new()),
        };
        let lo = numeric.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = numeric.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let distinct = {
            let mut v = numeric.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            v.dedup();
            v.len()
        };
        qi_cols.push(Qi {
            name: name.to_string(),
            numeric,
            is_cat,
            dict,
            global_range: (hi - lo).max(1e-300),
            global_card: distinct,
        });
    }

    // Median partitioning, level-synchronous: every partition on the
    // current frontier is split (or finalized) independently, so each
    // level fans out on the fact-par pool. `par_map` returns results in
    // submission order no matter how they were scheduled, and the split
    // decision for a partition depends only on that partition's rows —
    // so class numbering and membership are bit-identical at any worker
    // count (the property `partitioning_is_deterministic_across_worker_counts`
    // pins down).
    enum Node {
        Leaf(Vec<usize>),
        Split(Vec<usize>, Vec<usize>),
    }
    let split_partition = |part: &[usize]| -> Node {
        if part.len() < 2 * k {
            return Node::Leaf(part.to_vec());
        }
        // order dims by normalized range within the partition, widest first
        let mut dims: Vec<(f64, usize)> = qi_cols
            .iter()
            .enumerate()
            .map(|(d, q)| {
                let lo = part
                    .iter()
                    .map(|&i| q.numeric[i])
                    .fold(f64::INFINITY, f64::min);
                let hi = part
                    .iter()
                    .map(|&i| q.numeric[i])
                    .fold(f64::NEG_INFINITY, f64::max);
                ((hi - lo) / q.global_range, d)
            })
            .collect();
        dims.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        for &(range, d) in &dims {
            if range <= 0.0 {
                break; // all dims constant in this partition
            }
            let q = &qi_cols[d];
            let mut vals: Vec<f64> = part.iter().map(|&i| q.numeric[i]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let median = vals[vals.len() / 2];
            // strict split: ≤ median-but-not-max goes left. Use the largest
            // value strictly below the max as fallback pivot when the median
            // equals the max (to guarantee a non-trivial split).
            let pivot = if median >= vals[vals.len() - 1] {
                // find largest value < max
                match vals.iter().rev().find(|&&v| v < vals[vals.len() - 1]) {
                    Some(&p) => p,
                    None => continue,
                }
            } else {
                median
            };
            let (left, right): (Vec<usize>, Vec<usize>) =
                part.iter().partition(|&&i| q.numeric[i] <= pivot);
            if left.len() >= k && right.len() >= k {
                return Node::Split(left, right);
            }
        }
        Node::Leaf(part.to_vec())
    };

    let mut classes: Vec<Vec<usize>> = Vec::new();
    let mut frontier: Vec<Vec<usize>> = vec![(0..ds.n_rows()).collect()];
    while !frontier.is_empty() {
        let level: Vec<Node> =
            fact_par::par_map(frontier.len(), 1, |pi| split_partition(&frontier[pi]));
        frontier.clear();
        for node in level {
            match node {
                Node::Leaf(class) => classes.push(class),
                Node::Split(left, right) => {
                    frontier.push(left);
                    frontier.push(right);
                }
            }
        }
    }

    // build generalized columns + bookkeeping
    let n = ds.n_rows();
    let mut class_of = vec![0usize; n];
    for (ci, class) in classes.iter().enumerate() {
        for &i in class {
            class_of[i] = ci;
        }
    }
    let mut total_ncp = 0.0;
    let mut out = ds.clone();
    for q in &qi_cols {
        // Per-class generalization is independent work: compute each class's
        // label and NCP contribution in parallel, then fold the NCP sum and
        // write the labels sequentially in class order (bit-identical to the
        // sequential class loop at any worker count).
        let per_class: Vec<(String, f64)> = fact_par::par_map(classes.len(), 8, |ci| {
            let class = &classes[ci];
            let lo = class
                .iter()
                .map(|&i| q.numeric[i])
                .fold(f64::INFINITY, f64::min);
            let hi = class
                .iter()
                .map(|&i| q.numeric[i])
                .fold(f64::NEG_INFINITY, f64::max);
            let label = if q.is_cat {
                let mut codes: Vec<usize> = class.iter().map(|&i| q.numeric[i] as usize).collect();
                codes.sort_unstable();
                codes.dedup();
                if codes.len() == 1 {
                    q.dict[codes[0]].clone()
                } else if codes.len() == q.dict.len() {
                    "*".to_string()
                } else {
                    codes
                        .iter()
                        .map(|&c| q.dict[c].as_str())
                        .collect::<Vec<_>>()
                        .join("|")
                }
            } else if (hi - lo).abs() < 1e-12 {
                format_number(lo)
            } else {
                format!("[{}-{}]", format_number(lo), format_number(hi))
            };
            // NCP contribution
            let ncp = if q.is_cat {
                let mut codes: Vec<usize> = class.iter().map(|&i| q.numeric[i] as usize).collect();
                codes.sort_unstable();
                codes.dedup();
                if q.global_card > 1 {
                    (codes.len() - 1) as f64 / (q.global_card - 1) as f64
                } else {
                    0.0
                }
            } else {
                (hi - lo) / q.global_range
            };
            (label, ncp)
        });
        let mut labels = vec![String::new(); n];
        for (class, (label, ncp)) in classes.iter().zip(&per_class) {
            total_ncp += ncp * class.len() as f64;
            for &i in class {
                labels[i] = label.clone();
            }
        }
        out.replace_column(&q.name, Column::from_labels(&labels))?;
        // preserve the quasi-identifier annotation
        if let Some(f) = out.schema_mut().field_mut(&q.name) {
            f.quasi_identifier = true;
        }
    }
    let information_loss = total_ncp / (n as f64 * qi_cols.len() as f64);

    Ok(Anonymized {
        data: out,
        class_of,
        n_classes: classes.len(),
        k,
        information_loss,
    })
}

fn format_number(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Rows per parallel chunk when counting QI combinations.
const KANON_ROW_GRAIN: usize = 512;

/// Verify k-anonymity directly on a released dataset: every combination of
/// the given QI columns must occur at least `k` times.
///
/// Row chunks count combinations in parallel; the per-chunk maps are merged
/// by addition, which is order-independent, so the verdict never depends on
/// the worker count.
pub fn is_k_anonymous(ds: &Dataset, qis: &[&str], k: usize) -> Result<bool> {
    use std::collections::HashMap;
    let mut cols = Vec::with_capacity(qis.len());
    for &q in qis {
        cols.push(ds.column(q)?);
    }
    let counts = fact_par::par_reduce(
        ds.n_rows(),
        KANON_ROW_GRAIN,
        |range| {
            let mut local: HashMap<Vec<String>, usize> = HashMap::new();
            for i in range {
                let key: Vec<String> = cols.iter().map(|c| c.get(i).to_string()).collect();
                *local.entry(key).or_insert(0) += 1;
            }
            local
        },
        |mut a, b| {
            for (key, c) in b {
                *a.entry(key).or_insert(0) += c;
            }
            a
        },
    )
    .unwrap_or_default();
    Ok(counts.values().all(|&c| c >= k))
}

/// Distinct l-diversity: every equivalence class must contain at least `l`
/// distinct values of the sensitive column. Returns the minimum diversity
/// observed (compare with your target `l`).
pub fn min_l_diversity(anon: &Anonymized, sensitive: &str) -> Result<usize> {
    use std::collections::HashSet;
    let labels = anon.data.labels(sensitive)?;
    let mut per_class: Vec<HashSet<&str>> = vec![HashSet::new(); anon.n_classes];
    for (i, &c) in anon.class_of.iter().enumerate() {
        per_class[c].insert(labels[i].as_str());
    }
    per_class
        .iter()
        .map(|s| s.len())
        .min()
        .ok_or_else(|| FactError::EmptyData("no equivalence classes".into()))
}

/// t-closeness via total variation distance: the maximum, over equivalence
/// classes, of the TV distance between the class's sensitive-value
/// distribution and the global one. Small values mean classes reveal little
/// beyond the global distribution.
pub fn max_t_distance(anon: &Anonymized, sensitive: &str) -> Result<f64> {
    use std::collections::HashMap;
    let labels = anon.data.labels(sensitive)?;
    let n = labels.len() as f64;
    let mut global: HashMap<&str, f64> = HashMap::new();
    for l in &labels {
        *global.entry(l.as_str()).or_insert(0.0) += 1.0 / n;
    }
    let mut class_counts: Vec<HashMap<&str, f64>> = vec![HashMap::new(); anon.n_classes];
    let mut class_sizes = vec![0usize; anon.n_classes];
    for (i, &c) in anon.class_of.iter().enumerate() {
        *class_counts[c].entry(labels[i].as_str()).or_insert(0.0) += 1.0;
        class_sizes[c] += 1;
    }
    let mut worst: f64 = 0.0;
    for (c, counts) in class_counts.iter().enumerate() {
        let size = class_sizes[c] as f64;
        let mut tv = 0.0;
        for (value, &gp) in &global {
            let cp = counts.get(value).copied().unwrap_or(0.0) / size;
            tv += (cp - gp).abs();
        }
        worst = worst.max(tv / 2.0);
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_data::synth::census::{generate_census, CensusConfig};

    fn census(n: usize) -> Dataset {
        generate_census(&CensusConfig {
            n,
            seed: 1,
            ..CensusConfig::default()
        })
    }

    const QIS: [&str; 3] = ["age", "sex", "zipcode"];

    #[test]
    fn output_is_k_anonymous() {
        let ds = census(2000);
        for k in [2, 5, 25] {
            let anon = mondrian_k_anonymize(&ds, &QIS, k).unwrap();
            assert!(anon.min_class_size() >= k, "k={k}");
            assert!(is_k_anonymous(&anon.data, &QIS, k).unwrap());
        }
    }

    #[test]
    fn higher_k_means_more_information_loss() {
        let ds = census(3000);
        let loss = |k| mondrian_k_anonymize(&ds, &QIS, k).unwrap().information_loss;
        let l2 = loss(2);
        let l20 = loss(20);
        let l200 = loss(200);
        assert!(l2 < l20 && l20 < l200, "{l2:.3} < {l20:.3} < {l200:.3}");
        assert!((0.0..=1.0).contains(&l2));
        assert!((0.0..=1.0).contains(&l200));
    }

    #[test]
    fn k_equals_one_changes_nothing_much() {
        let ds = census(500);
        let anon = mondrian_k_anonymize(&ds, &QIS, 1).unwrap();
        // k=1 permits singleton classes: loss is near zero
        assert!(
            anon.information_loss < 0.05,
            "loss {}",
            anon.information_loss
        );
    }

    #[test]
    fn class_bookkeeping_consistent() {
        let ds = census(1000);
        let anon = mondrian_k_anonymize(&ds, &QIS, 10).unwrap();
        assert_eq!(anon.class_of.len(), 1000);
        assert!(anon.class_of.iter().all(|&c| c < anon.n_classes));
        assert!((anon.mean_class_size() - 1000.0 / anon.n_classes as f64).abs() < 1e-9);
        assert_eq!(anon.k, 10);
    }

    #[test]
    fn non_qi_columns_untouched() {
        let ds = census(800);
        let anon = mondrian_k_anonymize(&ds, &QIS, 5).unwrap();
        assert_eq!(
            anon.data.f64_column("salary").unwrap(),
            ds.f64_column("salary").unwrap()
        );
        assert_eq!(
            anon.data.labels("diagnosis").unwrap(),
            ds.labels("diagnosis").unwrap()
        );
    }

    #[test]
    fn generalized_labels_look_like_ranges() {
        let ds = census(400);
        let anon = mondrian_k_anonymize(&ds, &QIS, 20).unwrap();
        let ages = anon.data.labels("age").unwrap();
        assert!(
            ages.iter().any(|a| a.starts_with('[') && a.contains('-')),
            "expected range labels, got e.g. {:?}",
            &ages[..3]
        );
    }

    #[test]
    fn l_diversity_and_t_closeness_improve_with_k() {
        let ds = census(3000);
        let small = mondrian_k_anonymize(&ds, &QIS, 2).unwrap();
        let large = mondrian_k_anonymize(&ds, &QIS, 100).unwrap();
        let ld_small = min_l_diversity(&small, "diagnosis").unwrap();
        let ld_large = min_l_diversity(&large, "diagnosis").unwrap();
        assert!(ld_large >= ld_small);
        assert!(ld_large >= 3, "big classes carry diverse diagnoses");
        let t_small = max_t_distance(&small, "diagnosis").unwrap();
        let t_large = max_t_distance(&large, "diagnosis").unwrap();
        assert!(t_large <= t_small);
        assert!((0.0..=1.0).contains(&t_small));
    }

    #[test]
    fn validation() {
        let ds = census(100);
        assert!(mondrian_k_anonymize(&ds, &QIS, 0).is_err());
        assert!(mondrian_k_anonymize(&ds, &QIS, 101).is_err());
        assert!(mondrian_k_anonymize(&ds, &[], 5).is_err());
        assert!(mondrian_k_anonymize(&ds, &["ghost"], 5).is_err());
    }

    #[test]
    fn partitioning_is_deterministic_across_worker_counts() {
        let ds = census(2500);
        let reference = mondrian_k_anonymize(&ds, &QIS, 7).unwrap();
        for w in [1, 2, 4] {
            fact_par::set_workers(w);
            let anon = mondrian_k_anonymize(&ds, &QIS, 7).unwrap();
            fact_par::set_workers(0);
            assert_eq!(anon.n_classes, reference.n_classes, "workers={w}");
            assert_eq!(anon.class_of, reference.class_of, "workers={w}");
            assert_eq!(
                anon.information_loss.to_bits(),
                reference.information_loss.to_bits(),
                "workers={w}: information loss must be bit-identical"
            );
            for q in QIS {
                assert_eq!(
                    anon.data.labels(q).unwrap(),
                    reference.data.labels(q).unwrap(),
                    "workers={w} column={q}"
                );
            }
        }
    }

    #[test]
    fn raw_data_is_not_k_anonymous() {
        let ds = census(2000);
        assert!(!is_k_anonymous(&ds, &QIS, 5).unwrap());
    }
}
