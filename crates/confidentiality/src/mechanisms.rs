//! Differential-privacy mechanisms and query primitives.
//!
//! Every releasing function takes an explicit `epsilon` (and `delta` where
//! applicable) plus a seed, and returns the noised value. Budget enforcement
//! lives in [`crate::accountant`]; composing the two is the job of
//! `fact-core`'s confidentiality guard. Numeric queries require explicit
//! value bounds `(lo, hi)` — sensitivity is derived from them, never from
//! the data (deriving it from data would itself leak).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fact_data::{FactError, Result};

fn check_eps(epsilon: f64) -> Result<()> {
    if epsilon <= 0.0 || !epsilon.is_finite() {
        return Err(FactError::InvalidArgument(format!(
            "epsilon must be positive and finite, got {epsilon}"
        )));
    }
    Ok(())
}

fn check_bounds(lo: f64, hi: f64) -> Result<()> {
    if lo >= hi || !lo.is_finite() || !hi.is_finite() {
        return Err(FactError::InvalidArgument(format!(
            "bounds must satisfy lo < hi and be finite, got [{lo}, {hi}]"
        )));
    }
    Ok(())
}

/// A sample from Laplace(0, scale) via inverse-CDF.
pub fn laplace_noise(scale: f64, rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(-0.5..0.5);
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// A sample from N(0, sigma²) via Box–Muller.
pub fn gaussian_noise(sigma: f64, rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The Laplace mechanism: release `value + Lap(sensitivity/ε)`.
/// Pure ε-DP.
pub fn laplace_mechanism(value: f64, sensitivity: f64, epsilon: f64, seed: u64) -> Result<f64> {
    check_eps(epsilon)?;
    if sensitivity <= 0.0 || !sensitivity.is_finite() {
        return Err(FactError::InvalidArgument(format!(
            "sensitivity must be positive and finite, got {sensitivity}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    Ok(value + laplace_noise(sensitivity / epsilon, &mut rng))
}

/// The (classic) Gaussian mechanism for (ε, δ)-DP with ε < 1:
/// `σ = sensitivity · sqrt(2 ln(1.25/δ)) / ε`.
pub fn gaussian_mechanism(
    value: f64,
    sensitivity: f64,
    epsilon: f64,
    delta: f64,
    seed: u64,
) -> Result<f64> {
    check_eps(epsilon)?;
    if !(0.0 < delta && delta < 1.0) {
        return Err(FactError::InvalidArgument(format!(
            "delta must be in (0, 1), got {delta}"
        )));
    }
    if sensitivity <= 0.0 || !sensitivity.is_finite() {
        return Err(FactError::InvalidArgument(format!(
            "sensitivity must be positive and finite, got {sensitivity}"
        )));
    }
    let sigma = sensitivity * (2.0 * (1.25 / delta).ln()).sqrt() / epsilon;
    let mut rng = StdRng::seed_from_u64(seed);
    Ok(value + gaussian_noise(sigma, &mut rng))
}

/// DP count of `n` records (sensitivity 1, Laplace).
pub fn dp_count(n: usize, epsilon: f64, seed: u64) -> Result<f64> {
    laplace_mechanism(n as f64, 1.0, epsilon, seed)
}

/// DP sum of values clamped to `[lo, hi]` (sensitivity `max(|lo|, |hi|)`).
pub fn dp_sum(values: &[f64], lo: f64, hi: f64, epsilon: f64, seed: u64) -> Result<f64> {
    check_bounds(lo, hi)?;
    let clamped: f64 = values.iter().map(|v| v.clamp(lo, hi)).sum();
    laplace_mechanism(clamped, lo.abs().max(hi.abs()), epsilon, seed)
}

/// DP mean of values clamped to `[lo, hi]` (sensitivity `(hi−lo)/n`).
pub fn dp_mean(values: &[f64], lo: f64, hi: f64, epsilon: f64, seed: u64) -> Result<f64> {
    check_bounds(lo, hi)?;
    if values.is_empty() {
        return Err(FactError::EmptyData("DP mean of empty data".into()));
    }
    let mean = values.iter().map(|v| v.clamp(lo, hi)).sum::<f64>() / values.len() as f64;
    laplace_mechanism(mean, (hi - lo) / values.len() as f64, epsilon, seed)
}

/// DP histogram over pre-defined labels: adds Lap(2/ε) to each bucket count
/// (a single record changes at most two buckets when swapped). Negative
/// counts are clipped to zero after noising.
pub fn dp_histogram(counts: &[u64], epsilon: f64, seed: u64) -> Result<Vec<f64>> {
    check_eps(epsilon)?;
    if counts.is_empty() {
        return Err(FactError::EmptyData("DP histogram with no buckets".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    Ok(counts
        .iter()
        .map(|&c| (c as f64 + laplace_noise(2.0 / epsilon, &mut rng)).max(0.0))
        .collect())
}

/// DP quantile by the exponential mechanism over value gaps (Smith 2011):
/// selects an output interval with probability ∝ exp(−ε·|rank error|/2) and
/// returns a uniform draw within it.
pub fn dp_quantile(
    values: &[f64],
    q: f64,
    lo: f64,
    hi: f64,
    epsilon: f64,
    seed: u64,
) -> Result<f64> {
    check_eps(epsilon)?;
    check_bounds(lo, hi)?;
    if values.is_empty() {
        return Err(FactError::EmptyData("DP quantile of empty data".into()));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(FactError::InvalidArgument(format!(
            "quantile must be in [0, 1], got {q}"
        )));
    }
    let mut sorted: Vec<f64> = values.iter().map(|v| v.clamp(lo, hi)).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    let target = q * n as f64;
    // intervals: [lo, s0], [s0, s1], …, [s_{n-1}, hi]; interval i holds ranks i
    let mut log_weights = Vec::with_capacity(n + 1);
    let mut edges = Vec::with_capacity(n + 2);
    edges.push(lo);
    edges.extend(sorted.iter().copied());
    edges.push(hi);
    for i in 0..=n {
        let width = (edges[i + 1] - edges[i]).max(0.0);
        let rank_err = (i as f64 - target).abs();
        let lw = if width > 0.0 {
            width.ln() - epsilon * rank_err / 2.0
        } else {
            f64::NEG_INFINITY
        };
        log_weights.push(lw);
    }
    // Gumbel-max sampling of the interval
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = f64::NEG_INFINITY;
    let mut pick = 0usize;
    for (i, &lw) in log_weights.iter().enumerate() {
        if lw == f64::NEG_INFINITY {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let g = lw - (-u.ln()).ln();
        if g > best {
            best = g;
            pick = i;
        }
    }
    Ok(rng.gen_range(edges[pick]..=edges[pick + 1]))
}

/// Randomized response for a sensitive yes/no question: tell the truth with
/// probability `e^ε/(e^ε+1)`, lie otherwise. Returns the randomized answers;
/// use [`randomized_response_estimate`] to de-bias the aggregate.
pub fn randomized_response(answers: &[bool], epsilon: f64, seed: u64) -> Result<Vec<bool>> {
    check_eps(epsilon)?;
    let p_truth = epsilon.exp() / (epsilon.exp() + 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    Ok(answers
        .iter()
        .map(|&a| if rng.gen::<f64>() < p_truth { a } else { !a })
        .collect())
}

/// Unbiased estimate of the true "yes" proportion from randomized responses.
pub fn randomized_response_estimate(responses: &[bool], epsilon: f64) -> Result<f64> {
    check_eps(epsilon)?;
    if responses.is_empty() {
        return Err(FactError::EmptyData("no randomized responses".into()));
    }
    let p_truth = epsilon.exp() / (epsilon.exp() + 1.0);
    let observed = responses.iter().filter(|&&r| r).count() as f64 / responses.len() as f64;
    // observed = p·true + (1−p)·(1−true) ⇒ true = (observed + p − 1)/(2p − 1)
    Ok((observed + p_truth - 1.0) / (2.0 * p_truth - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplace_noise_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let scale = 2.0;
        let xs: Vec<f64> = (0..100_000)
            .map(|_| laplace_noise(scale, &mut rng))
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        // Var(Laplace) = 2·scale²
        assert!((var - 8.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn laplace_mechanism_error_scales_inversely_with_epsilon() {
        let err_at = |eps: f64| {
            let mut total = 0.0;
            for seed in 0..200 {
                total += (laplace_mechanism(100.0, 1.0, eps, seed).unwrap() - 100.0).abs();
            }
            total / 200.0
        };
        let e_tight = err_at(10.0);
        let e_loose = err_at(0.1);
        assert!(
            e_loose > 20.0 * e_tight,
            "ε=0.1 error {e_loose} should dwarf ε=10 error {e_tight}"
        );
    }

    #[test]
    fn gaussian_mechanism_uses_delta() {
        // smaller delta → more noise on average
        let spread = |delta: f64| {
            let mut total = 0.0;
            for seed in 0..300 {
                total += (gaussian_mechanism(0.0, 1.0, 0.5, delta, seed).unwrap()).abs();
            }
            total / 300.0
        };
        assert!(spread(1e-8) > spread(1e-2));
    }

    #[test]
    fn dp_count_approximates_truth() {
        let noisy = dp_count(1000, 1.0, 7).unwrap();
        assert!((noisy - 1000.0).abs() < 20.0);
    }

    #[test]
    fn dp_mean_respects_bounds_clamping() {
        // an outlier cannot drag the DP mean beyond the clamp
        let mut vals = vec![50.0; 999];
        vals.push(1e9);
        let m = dp_mean(&vals, 0.0, 100.0, 5.0, 3).unwrap();
        assert!(m < 60.0, "clamped mean stays near 50, got {m}");
    }

    #[test]
    fn dp_histogram_shape() {
        let noisy = dp_histogram(&[100, 200, 0], 2.0, 5).unwrap();
        assert_eq!(noisy.len(), 3);
        assert!(noisy.iter().all(|&v| v >= 0.0));
        assert!((noisy[1] - 200.0).abs() < 15.0);
    }

    #[test]
    fn dp_quantile_close_to_true_median_at_high_epsilon() {
        let vals: Vec<f64> = (0..1001).map(|i| i as f64).collect();
        let med = dp_quantile(&vals, 0.5, 0.0, 1000.0, 5.0, 11).unwrap();
        assert!((med - 500.0).abs() < 50.0, "DP median ≈ 500, got {med}");
    }

    #[test]
    fn dp_quantile_within_bounds() {
        let vals = vec![5.0, 6.0, 7.0];
        for seed in 0..50 {
            let v = dp_quantile(&vals, 0.9, 0.0, 10.0, 0.5, seed).unwrap();
            assert!((0.0..=10.0).contains(&v));
        }
    }

    #[test]
    fn randomized_response_debiases() {
        let truth: Vec<bool> = (0..20_000).map(|i| i % 4 == 0).collect(); // 25% yes
        let eps = 1.0;
        let responses = randomized_response(&truth, eps, 9).unwrap();
        // raw responses are biased toward 50%
        let raw = responses.iter().filter(|&&r| r).count() as f64 / responses.len() as f64;
        assert!(raw > 0.30, "raw proportion pulled toward 1/2: {raw}");
        let est = randomized_response_estimate(&responses, eps).unwrap();
        assert!((est - 0.25).abs() < 0.02, "de-biased estimate {est}");
    }

    #[test]
    fn validation() {
        assert!(laplace_mechanism(0.0, 1.0, 0.0, 0).is_err());
        assert!(laplace_mechanism(0.0, 0.0, 1.0, 0).is_err());
        assert!(gaussian_mechanism(0.0, 1.0, 0.5, 0.0, 0).is_err());
        assert!(gaussian_mechanism(0.0, 1.0, 0.5, 1.0, 0).is_err());
        assert!(dp_sum(&[1.0], 5.0, 5.0, 1.0, 0).is_err());
        assert!(dp_mean(&[], 0.0, 1.0, 1.0, 0).is_err());
        assert!(dp_histogram(&[], 1.0, 0).is_err());
        assert!(dp_quantile(&[1.0], 1.5, 0.0, 1.0, 1.0, 0).is_err());
        assert!(randomized_response(&[true], -1.0, 0).is_err());
    }

    #[test]
    fn determinism_per_seed() {
        let a = laplace_mechanism(10.0, 1.0, 1.0, 42).unwrap();
        let b = laplace_mechanism(10.0, 1.0, 1.0, 42).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, laplace_mechanism(10.0, 1.0, 1.0, 43).unwrap());
    }
}
