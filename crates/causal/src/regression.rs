//! Outcome-regression adjustment and doubly-robust AIPW.
//!
//! *Regression adjustment* fits an outcome model `P(y | x, t)` (logistic on
//! covariates + treatment indicator) and averages the model's predicted
//! treated-vs-control contrast over the sample — the "regression adjustment"
//! the paper pairs with inverse probability weighting (§2).
//!
//! *AIPW* (augmented IPW) combines the outcome model with propensity
//! weights; it is consistent when **either** model is right ("doubly
//! robust"), which experiment E8 demonstrates.

use fact_data::{FactError, Matrix, Result};
use fact_ml::logistic::{LogisticConfig, LogisticRegression};
use fact_ml::Classifier;

use crate::propensity::estimate_propensity;
use crate::{check_inputs, outcome_f64};

#[allow(clippy::needless_range_loop)]
fn with_treatment(x: &Matrix, value: f64) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), x.cols() + 1);
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            out.set(i, j, x.get(i, j));
        }
        out.set(i, x.cols(), value);
    }
    out
}

#[allow(clippy::needless_range_loop)]
fn fit_outcome_model(
    x: &Matrix,
    treated: &[bool],
    outcome: &[bool],
    seed: u64,
) -> Result<(Vec<f64>, Vec<f64>)> {
    // design matrix [x | t]
    let mut design = Matrix::zeros(x.rows(), x.cols() + 1);
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            design.set(i, j, x.get(i, j));
        }
        design.set(i, x.cols(), if treated[i] { 1.0 } else { 0.0 });
    }
    let cfg = LogisticConfig {
        seed,
        ..LogisticConfig::default()
    };
    let model = LogisticRegression::fit(&design, outcome, None, &cfg)?;
    let mu1 = model.predict_proba(&with_treatment(x, 1.0))?;
    let mu0 = model.predict_proba(&with_treatment(x, 0.0))?;
    Ok((mu0, mu1))
}

/// ATE by outcome-regression adjustment (g-computation with a logistic
/// outcome model).
pub fn regression_ate(x: &Matrix, treated: &[bool], outcome: &[bool], seed: u64) -> Result<f64> {
    check_inputs(x.rows(), treated, outcome)?;
    let (mu0, mu1) = fit_outcome_model(x, treated, outcome, seed)?;
    let n = x.rows() as f64;
    Ok(mu1.iter().zip(&mu0).map(|(a, b)| a - b).sum::<f64>() / n)
}

/// Doubly-robust AIPW estimate of the ATE. Propensities clamped to
/// `[trim, 1 − trim]`.
pub fn aipw_ate(
    x: &Matrix,
    treated: &[bool],
    outcome: &[bool],
    trim: f64,
    seed: u64,
) -> Result<f64> {
    check_inputs(x.rows(), treated, outcome)?;
    if !(0.0..0.5).contains(&trim) {
        return Err(FactError::InvalidArgument(format!(
            "trim must be in [0, 0.5), got {trim}"
        )));
    }
    let (mu0, mu1) = fit_outcome_model(x, treated, outcome, seed)?;
    let ps = estimate_propensity(x, treated, seed.wrapping_add(1))?;
    let y = outcome_f64(outcome);
    let n = x.rows() as f64;
    let mut total = 0.0;
    for i in 0..x.rows() {
        let e = ps[i].clamp(trim.max(1e-6), 1.0 - trim.max(1e-6));
        let t = if treated[i] { 1.0 } else { 0.0 };
        let part1 = mu1[i] + t * (y[i] - mu1[i]) / e;
        let part0 = mu0[i] + (1.0 - t) * (y[i] - mu0[i]) / (1.0 - e);
        total += part1 - part0;
    }
    Ok(total / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_data::synth::clinical::{generate_clinical, ClinicalConfig, CLINICAL_COVARIATES};

    fn world(confounding: f64, unobserved: f64, seed: u64) -> (Matrix, Vec<bool>, Vec<bool>, f64) {
        let w = generate_clinical(&ClinicalConfig {
            n: 20_000,
            seed,
            confounding,
            unobserved_confounding: unobserved,
            ..ClinicalConfig::default()
        });
        (
            w.data.to_matrix(&CLINICAL_COVARIATES).unwrap(),
            w.data.bool_column("treated").unwrap().to_vec(),
            w.data.bool_column("recovered").unwrap().to_vec(),
            w.true_ate,
        )
    }

    #[test]
    fn regression_adjustment_corrects_confounding() {
        let (x, t, y, true_ate) = world(1.5, 0.0, 1);
        let naive = crate::naive::naive_difference(&t, &y).unwrap();
        let reg = regression_ate(&x, &t, &y, 0).unwrap();
        assert!((reg - true_ate).abs() < (naive - true_ate).abs());
        assert!(
            (reg - true_ate).abs() < 0.05,
            "reg {reg:.3} vs {true_ate:.3}"
        );
    }

    #[test]
    fn aipw_corrects_confounding() {
        let (x, t, y, true_ate) = world(1.5, 0.0, 2);
        let aipw = aipw_ate(&x, &t, &y, 0.01, 0).unwrap();
        assert!(
            (aipw - true_ate).abs() < 0.05,
            "AIPW {aipw:.3} vs {true_ate:.3}"
        );
    }

    #[test]
    fn all_observational_estimators_fail_with_hidden_confounder() {
        let (x, t, y, true_ate) = world(0.6, 1.5, 3);
        for est in [
            regression_ate(&x, &t, &y, 0).unwrap(),
            aipw_ate(&x, &t, &y, 0.01, 0).unwrap(),
        ] {
            assert!(
                (est - true_ate).abs() > 0.04,
                "hidden confounder: {est:.3} vs {true_ate:.3}"
            );
        }
    }

    #[test]
    fn estimators_agree_in_an_rct() {
        let (x, t, y, true_ate) = world(0.0, 0.0, 4);
        let reg = regression_ate(&x, &t, &y, 0).unwrap();
        let aipw = aipw_ate(&x, &t, &y, 0.01, 0).unwrap();
        assert!((reg - true_ate).abs() < 0.03);
        assert!((aipw - true_ate).abs() < 0.03);
    }

    #[test]
    fn validation() {
        let (x, t, y, _) = world(1.0, 0.0, 5);
        assert!(aipw_ate(&x, &t, &y, 0.6, 0).is_err());
        assert!(regression_ate(&x, &t[..5], &y, 0).is_err());
    }
}
