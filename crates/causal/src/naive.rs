//! The naive estimator: difference in observed means.
//!
//! This is "correlation confused with causality" (§2) made explicit: it is
//! the gold standard *only* when treatment was randomized, and arbitrarily
//! biased otherwise. Experiment E8 uses it both ways — as the RCT reference
//! and as the cautionary baseline.

use fact_data::Result;

use crate::check_inputs;

/// `mean(outcome | treated) − mean(outcome | control)`.
pub fn naive_difference(treated: &[bool], outcome: &[bool]) -> Result<f64> {
    check_inputs(treated.len(), treated, outcome)?;
    let mut sum = [0.0f64; 2];
    let mut n = [0usize; 2];
    for (&t, &y) in treated.iter().zip(outcome) {
        let g = usize::from(t);
        n[g] += 1;
        if y {
            sum[g] += 1.0;
        }
    }
    Ok(sum[1] / n[1] as f64 - sum[0] / n[0] as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_data::synth::clinical::{generate_clinical, ClinicalConfig};

    #[test]
    fn exact_on_a_toy_table() {
        let treated = [true, true, false, false];
        let outcome = [true, false, false, false];
        assert!((naive_difference(&treated, &outcome).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unbiased_under_randomization() {
        let w = generate_clinical(&ClinicalConfig {
            n: 60_000,
            seed: 1,
            confounding: 0.0,
            ..ClinicalConfig::default()
        });
        let est = naive_difference(
            w.data.bool_column("treated").unwrap(),
            w.data.bool_column("recovered").unwrap(),
        )
        .unwrap();
        assert!(
            (est - w.true_ate).abs() < 0.02,
            "RCT: {est} vs {}",
            w.true_ate
        );
    }

    #[test]
    fn biased_under_confounding() {
        let w = generate_clinical(&ClinicalConfig {
            n: 60_000,
            seed: 2,
            confounding: 1.5,
            ..ClinicalConfig::default()
        });
        let est = naive_difference(
            w.data.bool_column("treated").unwrap(),
            w.data.bool_column("recovered").unwrap(),
        )
        .unwrap();
        assert!(
            (est - w.true_ate).abs() > 0.08,
            "confounded naive must be far off: {est} vs {}",
            w.true_ate
        );
    }

    #[test]
    fn validation() {
        assert!(naive_difference(&[true, true], &[true, false]).is_err());
        assert!(naive_difference(&[], &[]).is_err());
        assert!(naive_difference(&[true], &[true, false]).is_err());
    }
}
