//! # fact-causal — causal-inference substrate
//!
//! The paper (§2): "In most situations, causal inference is the goal of data
//! analysis in business, but often enough correlation is confused with
//! causality. … Propensity score matching or inverse probability-weighted
//! regression adjustment are just two approaches developed to combat the
//! selection bias in observational data. While these techniques address the
//! selection bias, their outcomes might still be far away from the results
//! one would obtain with a randomized controlled trial, as was recently
//! illustrated by Gordon et al. (2016)."
//!
//! This crate implements the estimators that sentence names, so experiment
//! E8 can reproduce the phenomenon quantitatively against the
//! known-ground-truth world of `fact_data::synth::clinical`:
//!
//! * [`naive`] — raw difference in means (the "correlation" answer; unbiased
//!   only in an RCT);
//! * [`propensity`] — propensity-score estimation, nearest-neighbour
//!   matching, and stratification;
//! * [`ipw`] — inverse-probability weighting (Hájek-normalized, trimmed);
//! * [`regression`] — outcome-regression adjustment and the doubly-robust
//!   AIPW combination;
//! * [`sensitivity`] — bootstrap ATE intervals and E-value sensitivity to
//!   unmeasured confounding.
//!
//! All estimators return an ATE estimate on the recovery-probability scale.

#![warn(missing_docs)]

pub mod ipw;
pub mod naive;
pub mod propensity;
pub mod regression;
pub mod sensitivity;

use fact_data::{FactError, Result};

pub(crate) fn check_inputs(n: usize, treated: &[bool], outcome: &[bool]) -> Result<()> {
    if treated.len() != n {
        return Err(FactError::LengthMismatch {
            expected: n,
            actual: treated.len(),
        });
    }
    if outcome.len() != n {
        return Err(FactError::LengthMismatch {
            expected: n,
            actual: outcome.len(),
        });
    }
    if n == 0 {
        return Err(FactError::EmptyData("causal estimate on empty data".into()));
    }
    let n_t = treated.iter().filter(|&&t| t).count();
    if n_t == 0 || n_t == n {
        return Err(FactError::InvalidArgument(
            "both treated and control units are required".into(),
        ));
    }
    Ok(())
}

pub(crate) fn outcome_f64(outcome: &[bool]) -> Vec<f64> {
    outcome.iter().map(|&o| if o { 1.0 } else { 0.0 }).collect()
}
