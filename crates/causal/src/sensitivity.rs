//! Uncertainty and sensitivity for causal estimates.
//!
//! The paper's accuracy pillar applies to causal numbers too: an ATE without
//! an interval is guesswork, and (per E8) an observational ATE without a
//! *sensitivity* statement is worse — it may be an artifact of an unobserved
//! confounder. This module provides:
//!
//! * [`bootstrap_ate_ci`] — a percentile bootstrap CI around any ATE
//!   estimator;
//! * [`e_value`] — VanderWeele & Ding's E-value: the minimum strength of
//!   unmeasured confounding (on the risk-ratio scale) that could fully
//!   explain away an observed risk ratio.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fact_data::{FactError, Matrix, Result};
use fact_stats::descriptive::quantile;

/// Percentile bootstrap confidence interval for an ATE estimator.
///
/// `estimator` receives resampled `(x, treated, outcome)` and returns an ATE
/// estimate; resamples where the estimator fails (e.g. a degenerate arm) are
/// skipped, and an error is returned if fewer than half succeed.
pub fn bootstrap_ate_ci<F>(
    x: &Matrix,
    treated: &[bool],
    outcome: &[bool],
    n_boot: usize,
    level: f64,
    seed: u64,
    estimator: F,
) -> Result<(f64, f64, f64)>
where
    F: Fn(&Matrix, &[bool], &[bool]) -> Result<f64>,
{
    if !(0.0 < level && level < 1.0) {
        return Err(FactError::InvalidArgument(format!(
            "level must be in (0, 1), got {level}"
        )));
    }
    if n_boot < 20 {
        return Err(FactError::InvalidArgument(
            "bootstrap needs at least 20 replicates".into(),
        ));
    }
    let point = estimator(x, treated, outcome)?;
    let n = x.rows();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reps = Vec::with_capacity(n_boot);
    for _ in 0..n_boot {
        let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
        let mut xb = Matrix::zeros(n, x.cols());
        let mut tb = Vec::with_capacity(n);
        let mut yb = Vec::with_capacity(n);
        for (r, &i) in idx.iter().enumerate() {
            for j in 0..x.cols() {
                xb.set(r, j, x.get(i, j));
            }
            tb.push(treated[i]);
            yb.push(outcome[i]);
        }
        if let Ok(est) = estimator(&xb, &tb, &yb) {
            reps.push(est);
        }
    }
    if reps.len() < n_boot / 2 {
        return Err(FactError::Numeric(format!(
            "estimator failed on {} of {n_boot} bootstrap resamples",
            n_boot - reps.len()
        )));
    }
    let alpha = (1.0 - level) / 2.0;
    Ok((
        point,
        quantile(&reps, alpha)?,
        quantile(&reps, 1.0 - alpha)?,
    ))
}

/// The E-value for an observed risk ratio (VanderWeele & Ding 2017):
/// `RR + sqrt(RR · (RR − 1))` for `RR ≥ 1` (the reciprocal is used for
/// protective ratios). An unmeasured confounder would need association at
/// least this strong with *both* treatment and outcome to nullify the
/// estimate.
pub fn e_value(risk_ratio: f64) -> Result<f64> {
    if risk_ratio <= 0.0 || !risk_ratio.is_finite() {
        return Err(FactError::InvalidArgument(format!(
            "risk ratio must be positive and finite, got {risk_ratio}"
        )));
    }
    let rr = if risk_ratio >= 1.0 {
        risk_ratio
    } else {
        1.0 / risk_ratio
    };
    Ok(rr + (rr * (rr - 1.0)).sqrt())
}

/// Risk ratio of outcome between treated and control arms (for feeding
/// [`e_value`]).
pub fn observed_risk_ratio(treated: &[bool], outcome: &[bool]) -> Result<f64> {
    crate::check_inputs(treated.len(), treated, outcome)?;
    let mut pos = [0usize; 2];
    let mut n = [0usize; 2];
    for (&t, &y) in treated.iter().zip(outcome) {
        let g = usize::from(t);
        n[g] += 1;
        if y {
            pos[g] += 1;
        }
    }
    let r0 = pos[0] as f64 / n[0] as f64;
    let r1 = pos[1] as f64 / n[1] as f64;
    if r0 == 0.0 {
        return Err(FactError::Numeric(
            "control risk is zero; risk ratio undefined".into(),
        ));
    }
    Ok(r1 / r0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipw::ipw_ate;
    use crate::naive::naive_difference;
    use fact_data::synth::clinical::{generate_clinical, ClinicalConfig, CLINICAL_COVARIATES};

    fn world(n: usize, confounding: f64) -> (Matrix, Vec<bool>, Vec<bool>, f64) {
        let w = generate_clinical(&ClinicalConfig {
            n,
            seed: 5,
            confounding,
            ..ClinicalConfig::default()
        });
        (
            w.data.to_matrix(&CLINICAL_COVARIATES).unwrap(),
            w.data.bool_column("treated").unwrap().to_vec(),
            w.data.bool_column("recovered").unwrap().to_vec(),
            w.true_ate,
        )
    }

    #[test]
    fn bootstrap_ci_covers_truth_in_rct() {
        let (x, t, y, true_ate) = world(6_000, 0.0);
        let (point, lo, hi) = bootstrap_ate_ci(&x, &t, &y, 60, 0.95, 1, |_, tb, yb| {
            naive_difference(tb, yb)
        })
        .unwrap();
        assert!(lo <= point && point <= hi);
        assert!(
            lo <= true_ate && true_ate <= hi,
            "CI [{lo:.3}, {hi:.3}] should cover {true_ate:.3}"
        );
        assert!(hi - lo < 0.1, "width {:.3}", hi - lo);
    }

    #[test]
    fn bootstrap_works_for_ipw() {
        let (x, t, y, true_ate) = world(4_000, 1.2);
        let (point, lo, hi) = bootstrap_ate_ci(&x, &t, &y, 40, 0.9, 2, |xb, tb, yb| {
            ipw_ate(xb, tb, yb, 0.01, 0)
        })
        .unwrap();
        assert!((point - true_ate).abs() < 0.08);
        assert!(lo < hi);
    }

    #[test]
    fn bootstrap_validation() {
        let (x, t, y, _) = world(500, 0.0);
        assert!(
            bootstrap_ate_ci(&x, &t, &y, 10, 0.9, 0, |_, tb, yb| naive_difference(tb, yb)).is_err()
        );
        assert!(
            bootstrap_ate_ci(&x, &t, &y, 50, 1.5, 0, |_, tb, yb| naive_difference(tb, yb)).is_err()
        );
    }

    #[test]
    fn e_value_known_points() {
        // RR = 1 needs no confounding
        assert!((e_value(1.0).unwrap() - 1.0).abs() < 1e-12);
        // RR = 2 → E = 2 + sqrt(2) ≈ 3.414
        assert!((e_value(2.0).unwrap() - (2.0 + 2.0f64.sqrt())).abs() < 1e-12);
        // protective RR = 0.5 is symmetric with 2.0
        assert!((e_value(0.5).unwrap() - e_value(2.0).unwrap()).abs() < 1e-12);
        assert!(e_value(0.0).is_err());
        assert!(e_value(-1.0).is_err());
    }

    #[test]
    fn e_value_monotone_in_effect_size() {
        assert!(e_value(3.0).unwrap() > e_value(1.5).unwrap());
    }

    #[test]
    fn observed_rr_pipeline() {
        let (_, t, y, _) = world(10_000, 0.0);
        let rr = observed_risk_ratio(&t, &y).unwrap();
        assert!(rr > 1.1, "treatment helps: RR = {rr:.2}");
        let e = e_value(rr).unwrap();
        assert!(e > rr, "E-value exceeds the RR itself");
    }
}
