//! Inverse-probability weighting (Horvitz–Thompson / Hájek).
//!
//! Reweights each unit by the inverse of its probability of receiving the
//! arm it actually received, creating a pseudo-population in which treatment
//! is independent of the measured covariates. Propensities are trimmed away
//! from 0 and 1 to control variance (standard practice; the trim level is a
//! parameter so experiment E8 can show its effect).

use fact_data::{FactError, Matrix, Result};

use crate::propensity::estimate_propensity;
use crate::{check_inputs, outcome_f64};

/// Hájek (self-normalized) IPW estimate of the ATE. Propensities are clamped
/// to `[trim, 1 − trim]`.
pub fn ipw_ate(
    x: &Matrix,
    treated: &[bool],
    outcome: &[bool],
    trim: f64,
    seed: u64,
) -> Result<f64> {
    check_inputs(x.rows(), treated, outcome)?;
    if !(0.0..0.5).contains(&trim) {
        return Err(FactError::InvalidArgument(format!(
            "trim must be in [0, 0.5), got {trim}"
        )));
    }
    let ps = estimate_propensity(x, treated, seed)?;
    let y = outcome_f64(outcome);
    let mut num = [0.0f64; 2];
    let mut den = [0.0f64; 2];
    for ((&t, &e), &yy) in treated.iter().zip(&ps).zip(&y) {
        let e = e.clamp(trim.max(1e-6), 1.0 - trim.max(1e-6));
        let g = usize::from(t);
        let w = if t { 1.0 / e } else { 1.0 / (1.0 - e) };
        num[g] += w * yy;
        den[g] += w;
    }
    if den[0] <= 0.0 || den[1] <= 0.0 {
        return Err(FactError::Numeric("degenerate IPW weights".into()));
    }
    Ok(num[1] / den[1] - num[0] / den[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_data::synth::clinical::{generate_clinical, ClinicalConfig, CLINICAL_COVARIATES};

    fn world(confounding: f64, unobserved: f64, seed: u64) -> (Matrix, Vec<bool>, Vec<bool>, f64) {
        let w = generate_clinical(&ClinicalConfig {
            n: 20_000,
            seed,
            confounding,
            unobserved_confounding: unobserved,
            ..ClinicalConfig::default()
        });
        (
            w.data.to_matrix(&CLINICAL_COVARIATES).unwrap(),
            w.data.bool_column("treated").unwrap().to_vec(),
            w.data.bool_column("recovered").unwrap().to_vec(),
            w.true_ate,
        )
    }

    #[test]
    fn ipw_corrects_observed_confounding() {
        let (x, t, y, true_ate) = world(1.5, 0.0, 1);
        let naive = crate::naive::naive_difference(&t, &y).unwrap();
        let ipw = ipw_ate(&x, &t, &y, 0.01, 0).unwrap();
        assert!((ipw - true_ate).abs() < (naive - true_ate).abs());
        assert!(
            (ipw - true_ate).abs() < 0.06,
            "IPW {ipw:.3} vs {true_ate:.3}"
        );
    }

    #[test]
    fn ipw_matches_naive_in_an_rct() {
        let (x, t, y, _) = world(0.0, 0.0, 2);
        let naive = crate::naive::naive_difference(&t, &y).unwrap();
        let ipw = ipw_ate(&x, &t, &y, 0.01, 0).unwrap();
        assert!((ipw - naive).abs() < 0.02);
    }

    #[test]
    fn unobserved_confounding_defeats_ipw() {
        let (x, t, y, true_ate) = world(0.6, 1.5, 3);
        let ipw = ipw_ate(&x, &t, &y, 0.01, 0).unwrap();
        assert!(
            (ipw - true_ate).abs() > 0.05,
            "hidden confounder leaves IPW biased: {ipw:.3} vs {true_ate:.3}"
        );
    }

    #[test]
    fn heavy_trim_biases_toward_naive() {
        let (x, t, y, true_ate) = world(1.8, 0.0, 4);
        let light = ipw_ate(&x, &t, &y, 0.01, 0).unwrap();
        let heavy = ipw_ate(&x, &t, &y, 0.45, 0).unwrap();
        // trimming to nearly 0.5 wipes the weights back toward naive
        let naive = crate::naive::naive_difference(&t, &y).unwrap();
        assert!((heavy - naive).abs() < (light - naive).abs() + 0.02);
        assert!((light - true_ate).abs() <= (heavy - true_ate).abs() + 0.02);
    }

    #[test]
    fn validation() {
        let (x, t, y, _) = world(1.0, 0.0, 5);
        assert!(ipw_ate(&x, &t, &y, 0.5, 0).is_err());
        assert!(ipw_ate(&x, &t, &y, -0.1, 0).is_err());
        assert!(ipw_ate(&x, &vec![false; t.len()], &y, 0.01, 0).is_err());
    }
}
