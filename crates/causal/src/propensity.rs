//! Propensity scores: estimation, matching, and stratification.
//!
//! The propensity score `e(x) = P(treated | x)` is estimated with the
//! from-scratch logistic regression in `fact-ml`. Matching pairs each unit
//! with its nearest propensity neighbour in the opposite arm (within an
//! optional caliper); stratification averages arm differences within
//! propensity quantile bins.

use fact_data::{FactError, Matrix, Result};
use fact_ml::logistic::{LogisticConfig, LogisticRegression};
use fact_ml::Classifier;

use crate::{check_inputs, outcome_f64};

/// Estimate propensity scores by logistic regression of treatment on
/// covariates.
pub fn estimate_propensity(x: &Matrix, treated: &[bool], seed: u64) -> Result<Vec<f64>> {
    if x.rows() != treated.len() {
        return Err(FactError::LengthMismatch {
            expected: x.rows(),
            actual: treated.len(),
        });
    }
    let cfg = LogisticConfig {
        seed,
        ..LogisticConfig::default()
    };
    let model = LogisticRegression::fit(x, treated, None, &cfg)?;
    model.predict_proba(x)
}

/// ATE by bidirectional 1-nearest-neighbour propensity matching.
///
/// Every unit is matched to the nearest opposite-arm unit on the propensity
/// score; `caliper` (if finite) drops matches farther than that distance.
/// The estimate is the mean of `y(treated side) − y(control side)` over all
/// retained matches.
pub fn psm_ate(
    x: &Matrix,
    treated: &[bool],
    outcome: &[bool],
    caliper: f64,
    seed: u64,
) -> Result<f64> {
    check_inputs(x.rows(), treated, outcome)?;
    if caliper <= 0.0 {
        return Err(FactError::InvalidArgument(
            "caliper must be positive (use f64::INFINITY for none)".into(),
        ));
    }
    let ps = estimate_propensity(x, treated, seed)?;
    let y = outcome_f64(outcome);

    // index propensities per arm, sorted for binary-search matching
    let mut arm: [Vec<(f64, usize)>; 2] = [Vec::new(), Vec::new()];
    for (i, &t) in treated.iter().enumerate() {
        arm[usize::from(t)].push((ps[i], i));
    }
    for a in arm.iter_mut() {
        a.sort_by(|p, q| p.0.partial_cmp(&q.0).unwrap_or(std::cmp::Ordering::Equal));
    }

    let nearest = |pool: &[(f64, usize)], p: f64| -> (f64, usize) {
        let pos = pool.partition_point(|&(v, _)| v < p);
        let mut best = (f64::INFINITY, 0usize);
        for cand in [pos.wrapping_sub(1), pos] {
            if let Some(&(v, idx)) = pool.get(cand) {
                let d = (v - p).abs();
                if d < best.0 {
                    best = (d, idx);
                }
            }
        }
        best
    };

    let mut total = 0.0;
    let mut count = 0usize;
    for (i, &t) in treated.iter().enumerate() {
        let opposite = &arm[usize::from(!t)];
        let (dist, j) = nearest(opposite, ps[i]);
        if dist <= caliper {
            let diff = if t { y[i] - y[j] } else { y[j] - y[i] };
            total += diff;
            count += 1;
        }
    }
    if count == 0 {
        return Err(FactError::Numeric(
            "no matches within the caliper; widen it".into(),
        ));
    }
    Ok(total / count as f64)
}

/// ATE by propensity stratification into `n_strata` quantile bins: the
/// within-stratum arm differences are averaged with stratum-size weights.
/// Strata missing one arm are skipped (their weight is dropped).
pub fn stratified_ate(
    x: &Matrix,
    treated: &[bool],
    outcome: &[bool],
    n_strata: usize,
    seed: u64,
) -> Result<f64> {
    check_inputs(x.rows(), treated, outcome)?;
    if n_strata < 2 {
        return Err(FactError::InvalidArgument(
            "stratification needs at least 2 strata".into(),
        ));
    }
    let ps = estimate_propensity(x, treated, seed)?;
    let y = outcome_f64(outcome);
    // quantile edges
    let mut sorted = ps.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let stratum_of = |p: f64| -> usize {
        let rank = sorted.partition_point(|&v| v < p);
        (rank * n_strata / sorted.len().max(1)).min(n_strata - 1)
    };
    let mut sums = vec![[0.0f64; 2]; n_strata];
    let mut counts = vec![[0usize; 2]; n_strata];
    for (i, &t) in treated.iter().enumerate() {
        let s = stratum_of(ps[i]);
        let g = usize::from(t);
        sums[s][g] += y[i];
        counts[s][g] += 1;
    }
    let mut weighted = 0.0;
    let mut weight = 0.0;
    for s in 0..n_strata {
        if counts[s][0] > 0 && counts[s][1] > 0 {
            let diff = sums[s][1] / counts[s][1] as f64 - sums[s][0] / counts[s][0] as f64;
            let w = (counts[s][0] + counts[s][1]) as f64;
            weighted += diff * w;
            weight += w;
        }
    }
    if weight == 0.0 {
        return Err(FactError::Numeric(
            "no stratum contains both arms; reduce n_strata".into(),
        ));
    }
    Ok(weighted / weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_data::synth::clinical::{generate_clinical, ClinicalConfig, CLINICAL_COVARIATES};

    fn world(confounding: f64, unobserved: f64, seed: u64) -> (Matrix, Vec<bool>, Vec<bool>, f64) {
        let w = generate_clinical(&ClinicalConfig {
            n: 20_000,
            seed,
            confounding,
            unobserved_confounding: unobserved,
            ..ClinicalConfig::default()
        });
        let x = w.data.to_matrix(&CLINICAL_COVARIATES).unwrap();
        let t = w.data.bool_column("treated").unwrap().to_vec();
        let y = w.data.bool_column("recovered").unwrap().to_vec();
        (x, t, y, w.true_ate)
    }

    #[test]
    fn propensity_scores_track_assignment() {
        let (x, t, _, _) = world(1.5, 0.0, 1);
        let ps = estimate_propensity(&x, &t, 0).unwrap();
        assert!(ps.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let mean = |want: bool| {
            let v: Vec<f64> = ps
                .iter()
                .zip(&t)
                .filter(|(_, &tt)| tt == want)
                .map(|(&p, _)| p)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean(true) > mean(false) + 0.1, "treated have higher e(x)");
    }

    #[test]
    fn psm_corrects_observed_confounding() {
        let (x, t, y, true_ate) = world(1.5, 0.0, 2);
        let naive = crate::naive::naive_difference(&t, &y).unwrap();
        let psm = psm_ate(&x, &t, &y, f64::INFINITY, 0).unwrap();
        assert!(
            (psm - true_ate).abs() < (naive - true_ate).abs(),
            "PSM {psm:.3} closer to truth {true_ate:.3} than naive {naive:.3}"
        );
        assert!(
            (psm - true_ate).abs() < 0.06,
            "PSM {psm:.3} vs {true_ate:.3}"
        );
    }

    #[test]
    fn stratification_corrects_observed_confounding() {
        let (x, t, y, true_ate) = world(1.5, 0.0, 3);
        let strat = stratified_ate(&x, &t, &y, 5, 0).unwrap();
        assert!(
            (strat - true_ate).abs() < 0.06,
            "stratified {strat:.3} vs {true_ate:.3}"
        );
    }

    #[test]
    fn unobserved_confounding_defeats_psm() {
        // the Gordon et al. (2016) phenomenon the paper cites
        let (x, t, y, true_ate) = world(0.6, 1.5, 4);
        let psm = psm_ate(&x, &t, &y, f64::INFINITY, 0).unwrap();
        assert!(
            (psm - true_ate).abs() > 0.05,
            "hidden confounder leaves PSM biased: {psm:.3} vs {true_ate:.3}"
        );
    }

    #[test]
    fn tight_caliper_can_exclude_everything() {
        let (x, t, y, _) = world(1.0, 0.0, 5);
        assert!(matches!(
            psm_ate(&x, &t, &y, 1e-15, 0),
            Err(FactError::Numeric(_)) | Ok(_)
        ));
        assert!(psm_ate(&x, &t, &y, 0.0, 0).is_err());
    }

    #[test]
    fn validation() {
        let (x, t, y, _) = world(1.0, 0.0, 6);
        assert!(stratified_ate(&x, &t, &y, 1, 0).is_err());
        assert!(estimate_propensity(&x, &t[..10], 0).is_err());
        assert!(psm_ate(&x, &vec![true; t.len()], &y, 1.0, 0).is_err());
    }
}
