//! L2-regularized logistic regression trained by mini-batch SGD.
//!
//! Supports per-sample weights, which is the integration point for the
//! fairness *reweighing* mitigation (Kamiran & Calders 2012): `fact-fairness`
//! computes weights that equalize group×label mass and passes them here
//! unchanged.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use fact_data::{FactError, Matrix, Result};

use crate::{check_xy, sigmoid, Classifier};

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct LogisticConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Full passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 penalty strength.
    pub l2: f64,
    /// Shuffle/initialization seed.
    pub seed: u64,
    /// Standardize features internally (recommended).
    pub standardize: bool,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            learning_rate: 0.1,
            epochs: 60,
            batch_size: 64,
            l2: 1e-4,
            seed: 0,
            standardize: true,
        }
    }
}

/// A fitted logistic-regression model.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>, // [bias, w_1..w_d] in standardized space
    stats: Option<Vec<(f64, f64)>>,
}

impl LogisticRegression {
    /// Fit on features `x` and boolean labels `y`, optionally with
    /// per-sample weights (must be non-negative).
    pub fn fit(
        x: &Matrix,
        y: &[bool],
        sample_weights: Option<&[f64]>,
        cfg: &LogisticConfig,
    ) -> Result<Self> {
        check_xy(x, y.len())?;
        if cfg.learning_rate <= 0.0 || cfg.epochs == 0 || cfg.batch_size == 0 {
            return Err(FactError::InvalidArgument(
                "learning_rate, epochs, and batch_size must be positive".into(),
            ));
        }
        if let Some(w) = sample_weights {
            if w.len() != y.len() {
                return Err(FactError::LengthMismatch {
                    expected: y.len(),
                    actual: w.len(),
                });
            }
            if w.iter().any(|&v| v < 0.0 || !v.is_finite()) {
                return Err(FactError::InvalidArgument(
                    "sample weights must be finite and non-negative".into(),
                ));
            }
        }

        let mut xs = x.clone();
        let stats = if cfg.standardize {
            Some(xs.standardize())
        } else {
            None
        };

        let n = xs.rows();
        let d = xs.cols();
        let mut w = vec![0.0; d + 1]; // w[0] = bias
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..n).collect();
        // mean sample weight normalization keeps the effective lr stable
        let mean_sw = sample_weights
            .map(|sw| sw.iter().sum::<f64>() / n as f64)
            .unwrap_or(1.0);
        if mean_sw <= 0.0 {
            return Err(FactError::InvalidArgument(
                "sample weights must have a positive sum".into(),
            ));
        }

        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            // simple 1/sqrt decay
            let lr = cfg.learning_rate / (1.0 + 0.1 * epoch as f64);
            for chunk in order.chunks(cfg.batch_size) {
                let mut grad = vec![0.0; d + 1];
                for &i in chunk {
                    let row = xs.row(i);
                    let mut z = w[0];
                    for (j, &v) in row.iter().enumerate() {
                        z += w[j + 1] * v;
                    }
                    let p = sigmoid(z);
                    let target = if y[i] { 1.0 } else { 0.0 };
                    let sw = sample_weights.map(|sw| sw[i]).unwrap_or(1.0) / mean_sw;
                    let err = (p - target) * sw;
                    grad[0] += err;
                    for (j, &v) in row.iter().enumerate() {
                        grad[j + 1] += err * v;
                    }
                }
                let scale = lr / chunk.len() as f64;
                w[0] -= scale * grad[0];
                for j in 1..=d {
                    w[j] -= scale * (grad[j] + cfg.l2 * w[j]);
                }
            }
        }
        Ok(LogisticRegression { weights: w, stats })
    }

    /// Coefficients in the (possibly standardized) training space:
    /// `[bias, w_1, …, w_d]`.
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }

    /// Decision scores (log-odds) for each row.
    pub fn decision_function(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.cols() + 1 != self.weights.len() {
            return Err(FactError::LengthMismatch {
                expected: self.weights.len() - 1,
                actual: x.cols(),
            });
        }
        let mut xs = x.clone();
        if let Some(stats) = &self.stats {
            xs.apply_standardization(stats)?;
        }
        let mut out = Vec::with_capacity(xs.rows());
        for i in 0..xs.rows() {
            let row = xs.row(i);
            let mut z = self.weights[0];
            for (j, &v) in row.iter().enumerate() {
                z += self.weights[j + 1] * v;
            }
            out.push(z);
        }
        Ok(out)
    }
}

impl Classifier for LogisticRegression {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        Ok(self
            .decision_function(x)?
            .into_iter()
            .map(sigmoid)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::testutil::{linear_world, xor_world};

    #[test]
    fn learns_linearly_separable_data() {
        let (x, y) = linear_world(2000, 1);
        let m = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
        let pred = m.predict(&x).unwrap();
        assert!(accuracy(&y, &pred).unwrap() > 0.95);
    }

    #[test]
    fn fails_on_xor_as_expected() {
        let (x, y) = xor_world(2000, 2);
        let m = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
        let pred = m.predict(&x).unwrap();
        let acc = accuracy(&y, &pred).unwrap();
        assert!(acc < 0.65, "linear model cannot fit XOR, got {acc}");
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, y) = linear_world(500, 3);
        let m = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
        for p in m.predict_proba(&x).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn sample_weights_shift_decisions() {
        // weight positive examples 10x: predicted base rate should rise
        let (x, y) = linear_world(1500, 4);
        let w: Vec<f64> = y.iter().map(|&b| if b { 10.0 } else { 1.0 }).collect();
        let plain = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
        let weighted =
            LogisticRegression::fit(&x, &y, Some(&w), &LogisticConfig::default()).unwrap();
        let rate = |m: &LogisticRegression| {
            m.predict(&x).unwrap().iter().filter(|&&p| p).count() as f64 / x.rows() as f64
        };
        assert!(rate(&weighted) >= rate(&plain));
    }

    #[test]
    fn weight_validation() {
        let (x, y) = linear_world(100, 5);
        assert!(
            LogisticRegression::fit(&x, &y, Some(&[1.0; 99]), &LogisticConfig::default()).is_err()
        );
        let neg = vec![-1.0; 100];
        assert!(LogisticRegression::fit(&x, &y, Some(&neg), &LogisticConfig::default()).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = linear_world(300, 6);
        let a = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
        let b = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
        assert_eq!(a.coefficients(), b.coefficients());
    }

    #[test]
    fn dimension_mismatch_on_predict() {
        let (x, y) = linear_world(100, 7);
        let m = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
        let bad = Matrix::zeros(3, 5);
        assert!(m.predict_proba(&bad).is_err());
    }

    #[test]
    fn config_validation() {
        let (x, y) = linear_world(50, 8);
        let bad = LogisticConfig {
            epochs: 0,
            ..LogisticConfig::default()
        };
        assert!(LogisticRegression::fit(&x, &y, None, &bad).is_err());
    }
}
