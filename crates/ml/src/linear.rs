//! Ordinary least squares and ridge regression via the normal equations.

use fact_data::{FactError, Matrix, Result};

use crate::{check_xy, Regressor};

/// A fitted linear regression model.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// `[intercept, w_1, …, w_d]`.
    coef: Vec<f64>,
}

impl LinearRegression {
    /// Fit by OLS (`ridge = 0`) or ridge regression (`ridge > 0`), optionally
    /// with per-sample weights (weighted least squares).
    pub fn fit(x: &Matrix, y: &[f64], ridge: f64, weights: Option<&[f64]>) -> Result<Self> {
        check_xy(x, y.len())?;
        if ridge < 0.0 {
            return Err(FactError::InvalidArgument(
                "ridge penalty must be non-negative".into(),
            ));
        }
        let xi = x.with_intercept();
        let mut gram = xi.xtx(weights)?;
        // do not penalize the intercept
        for j in 1..gram.cols() {
            let v = gram.get(j, j);
            gram.set(j, j, v + ridge);
        }
        let rhs = xi.xty(y, weights)?;
        let coef = gram.solve(&rhs)?;
        Ok(LinearRegression { coef })
    }

    /// `[intercept, w_1, …, w_d]`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// Coefficient of determination on `(x, y)`.
    pub fn r_squared(&self, x: &Matrix, y: &[f64]) -> Result<f64> {
        let pred = self.predict(x)?;
        if y.len() != pred.len() {
            return Err(FactError::LengthMismatch {
                expected: pred.len(),
                actual: y.len(),
            });
        }
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let ss_tot: f64 = y.iter().map(|v| (v - mean).powi(2)).sum();
        let ss_res: f64 = y.iter().zip(&pred).map(|(v, p)| (v - p).powi(2)).sum();
        if ss_tot < 1e-300 {
            return Err(FactError::Numeric("R² of constant target".into()));
        }
        Ok(1.0 - ss_res / ss_tot)
    }
}

impl Regressor for LinearRegression {
    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.cols() + 1 != self.coef.len() {
            return Err(FactError::LengthMismatch {
                expected: self.coef.len() - 1,
                actual: x.cols(),
            });
        }
        let mut out = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            let row = x.row(i);
            let mut v = self.coef[0];
            for (j, &f) in row.iter().enumerate() {
                v += self.coef[j + 1] * f;
            }
            out.push(v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 3 + 2a - b
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![3.0, 3.0],
            vec![0.0, 1.0],
            vec![4.0, 0.0],
        ])
        .unwrap();
        let y: Vec<f64> = (0..5)
            .map(|i| 3.0 + 2.0 * x.get(i, 0) - x.get(i, 1))
            .collect();
        let m = LinearRegression::fit(&x, &y, 0.0, None).unwrap();
        let c = m.coefficients();
        assert!((c[0] - 3.0).abs() < 1e-9);
        assert!((c[1] - 2.0).abs() < 1e-9);
        assert!((c[2] + 1.0).abs() < 1e-9);
        assert!((m.r_squared(&x, &y).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let ols = LinearRegression::fit(&x, &y, 0.0, None).unwrap();
        let ridge = LinearRegression::fit(&x, &y, 10.0, None).unwrap();
        assert!(ridge.coefficients()[1].abs() < ols.coefficients()[1].abs());
    }

    #[test]
    fn weighted_fit_prioritizes_heavy_rows() {
        // two inconsistent points; weight decides which the line goes through
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0]]).unwrap();
        let y = vec![0.0, 10.0];
        let m = LinearRegression::fit(&x, &y, 0.0, Some(&[1000.0, 1.0]));
        // singular in slope (both x=0) — expect failure OR near-zero intercept
        // use a well-posed version instead:
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![0.0], vec![1.0]]).unwrap();
        let y = vec![0.0, 1.0, 5.0, 6.0];
        let w_lo = LinearRegression::fit(&x, &y, 0.0, Some(&[100.0, 100.0, 1.0, 1.0])).unwrap();
        assert!(
            w_lo.coefficients()[0] < 1.0,
            "intercept pulled to first pair"
        );
        drop(m);
    }

    #[test]
    fn collinear_features_are_singular() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let y = vec![1.0, 2.0, 3.0];
        assert!(LinearRegression::fit(&x, &y, 0.0, None).is_err());
        // ridge regularization fixes it
        assert!(LinearRegression::fit(&x, &y, 1e-3, None).is_ok());
    }

    #[test]
    fn shape_validation() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(LinearRegression::fit(&x, &[1.0], 0.0, None).is_err());
        let m = LinearRegression::fit(&x, &[1.0, 2.0], 0.0, None).unwrap();
        assert!(m.predict(&Matrix::zeros(1, 3)).is_err());
    }
}
