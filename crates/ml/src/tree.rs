//! CART decision trees with a fully inspectable structure.
//!
//! The tree is the *interpretable* counterpart to the MLP black box: its
//! [`Node`] structure is public, every prediction can produce its decision
//! path ([`DecisionTree::decision_path`]), and the whole model can be dumped
//! as human-readable rules ([`DecisionTree::rules`]) — the properties the
//! paper's transparency pillar demands of models used for "life-changing
//! decisions" (§2–3).

use fact_data::{FactError, Matrix, Result};

use crate::{check_xy, Classifier};

/// Tree growth limits.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child for a split to be accepted.
    pub min_samples_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 10,
            min_samples_leaf: 3,
        }
    }
}

/// A node of the fitted tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Terminal node carrying the positive-class fraction of its training
    /// rows.
    Leaf {
        /// Positive-class probability.
        prob: f64,
        /// Training rows that reached this leaf.
        n: usize,
    },
    /// Internal split: rows with `feature <= threshold` go left.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Left (≤) child.
        left: Box<Node>,
        /// Right (>) child.
        right: Box<Node>,
        /// Training rows that reached this node.
        n: usize,
    },
}

/// One condition along a decision path.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Feature index.
    pub feature: usize,
    /// True for `<=`, false for `>`.
    pub is_le: bool,
    /// Threshold compared against.
    pub threshold: f64,
}

impl Condition {
    /// Render with feature names (falls back to `x{i}` when out of range).
    pub fn render(&self, names: &[String]) -> String {
        let name = names
            .get(self.feature)
            .cloned()
            .unwrap_or_else(|| format!("x{}", self.feature));
        format!(
            "{name} {} {:.4}",
            if self.is_le { "<=" } else { ">" },
            self.threshold
        )
    }
}

/// A fitted CART classifier.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    n_features: usize,
}

fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    impurity: f64,
}

/// Find the best (feature, threshold) over `feature_ids` for the given rows.
/// Shared with the random forest (which restricts `feature_ids` per split).
pub(crate) fn best_split(
    x: &Matrix,
    y: &[bool],
    rows: &[usize],
    feature_ids: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64, f64)> {
    let total = rows.len() as f64;
    let total_pos = rows.iter().filter(|&&i| y[i]).count() as f64;
    let parent = gini(total_pos, total);
    let mut best: Option<BestSplit> = None;

    let mut vals: Vec<(f64, bool)> = Vec::with_capacity(rows.len());
    for &f in feature_ids {
        vals.clear();
        for &i in rows {
            vals.push((x.get(i, f), y[i]));
        }
        vals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut left_n = 0.0;
        let mut left_pos = 0.0;
        for k in 0..vals.len() - 1 {
            left_n += 1.0;
            if vals[k].1 {
                left_pos += 1.0;
            }
            // candidate boundary between distinct values only
            if vals[k].0 == vals[k + 1].0 {
                continue;
            }
            let right_n = total - left_n;
            if (left_n as usize) < min_leaf || (right_n as usize) < min_leaf {
                continue;
            }
            let right_pos = total_pos - left_pos;
            let impurity = (left_n / total) * gini(left_pos, left_n)
                + (right_n / total) * gini(right_pos, right_n);
            if impurity + 1e-12 < best.as_ref().map(|b| b.impurity).unwrap_or(parent) {
                best = Some(BestSplit {
                    feature: f,
                    threshold: (vals[k].0 + vals[k + 1].0) / 2.0,
                    impurity,
                });
            }
        }
    }
    best.map(|b| (b.feature, b.threshold, b.impurity))
}

fn build(x: &Matrix, y: &[bool], rows: &[usize], depth: usize, cfg: &TreeConfig) -> Node {
    let n = rows.len();
    let pos = rows.iter().filter(|&&i| y[i]).count();
    let prob = pos as f64 / n as f64;
    if depth >= cfg.max_depth || n < cfg.min_samples_split || pos == 0 || pos == n {
        return Node::Leaf { prob, n };
    }
    let all_features: Vec<usize> = (0..x.cols()).collect();
    match best_split(x, y, rows, &all_features, cfg.min_samples_leaf) {
        None => Node::Leaf { prob, n },
        Some((feature, threshold, _)) => {
            let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
                rows.iter().partition(|&&i| x.get(i, feature) <= threshold);
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(x, y, &left_rows, depth + 1, cfg)),
                right: Box::new(build(x, y, &right_rows, depth + 1, cfg)),
                n,
            }
        }
    }
}

impl DecisionTree {
    /// Fit a tree on features `x` and labels `y`.
    pub fn fit(x: &Matrix, y: &[bool], cfg: &TreeConfig) -> Result<Self> {
        check_xy(x, y.len())?;
        if cfg.min_samples_leaf == 0 {
            return Err(FactError::InvalidArgument(
                "min_samples_leaf must be at least 1".into(),
            ));
        }
        let rows: Vec<usize> = (0..x.rows()).collect();
        Ok(DecisionTree {
            root: build(x, y, &rows, 0, cfg),
            n_features: x.cols(),
        })
    }

    /// Fit to match another model's *predictions* (used to build surrogate
    /// trees in `fact-transparency`).
    pub fn fit_to_predictions(x: &Matrix, predictions: &[bool], cfg: &TreeConfig) -> Result<Self> {
        Self::fit(x, predictions, cfg)
    }

    /// The root node (public for inspection/rendering).
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Maximum depth of the fitted tree.
    pub fn depth(&self) -> usize {
        fn d(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        fn c(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => c(left) + c(right),
            }
        }
        c(&self.root)
    }

    /// Probability for one feature row.
    pub fn predict_row(&self, row: &[f64]) -> Result<f64> {
        if row.len() != self.n_features {
            return Err(FactError::LengthMismatch {
                expected: self.n_features,
                actual: row.len(),
            });
        }
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { prob, .. } => return Ok(*prob),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// The sequence of conditions a row satisfies on its way to a leaf,
    /// plus the leaf probability. This is the per-decision explanation.
    pub fn decision_path(&self, row: &[f64]) -> Result<(Vec<Condition>, f64)> {
        if row.len() != self.n_features {
            return Err(FactError::LengthMismatch {
                expected: self.n_features,
                actual: row.len(),
            });
        }
        let mut node = &self.root;
        let mut path = Vec::new();
        loop {
            match node {
                Node::Leaf { prob, .. } => return Ok((path, *prob)),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    let goes_left = row[*feature] <= *threshold;
                    path.push(Condition {
                        feature: *feature,
                        is_le: goes_left,
                        threshold: *threshold,
                    });
                    node = if goes_left { left } else { right };
                }
            }
        }
    }

    /// Every root-to-leaf rule as `(conditions, leaf probability, support)`.
    pub fn rules(&self) -> Vec<(Vec<Condition>, f64, usize)> {
        let mut out = Vec::new();
        fn walk(
            node: &Node,
            prefix: &mut Vec<Condition>,
            out: &mut Vec<(Vec<Condition>, f64, usize)>,
        ) {
            match node {
                Node::Leaf { prob, n } => out.push((prefix.clone(), *prob, *n)),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    prefix.push(Condition {
                        feature: *feature,
                        is_le: true,
                        threshold: *threshold,
                    });
                    walk(left, prefix, out);
                    prefix.pop();
                    prefix.push(Condition {
                        feature: *feature,
                        is_le: false,
                        threshold: *threshold,
                    });
                    walk(right, prefix, out);
                    prefix.pop();
                }
            }
        }
        let mut prefix = Vec::new();
        walk(&self.root, &mut prefix, &mut out);
        out
    }
}

impl Classifier for DecisionTree {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            out.push(self.predict_row(x.row(i))?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::testutil::{linear_world, xor_world};

    #[test]
    fn fits_xor_unlike_linear_models() {
        let (x, y) = xor_world(2000, 1);
        let t = DecisionTree::fit(&x, &y, &TreeConfig::default()).unwrap();
        let acc = accuracy(&y, &t.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.93, "tree should carve XOR, got {acc}");
    }

    #[test]
    fn respects_max_depth() {
        let (x, y) = linear_world(1000, 2);
        for depth in [1, 2, 3] {
            let t = DecisionTree::fit(
                &x,
                &y,
                &TreeConfig {
                    max_depth: depth,
                    ..TreeConfig::default()
                },
            )
            .unwrap();
            assert!(t.depth() <= depth);
            assert!(t.n_leaves() <= 1 << depth);
        }
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = vec![true, true, true, true];
        let t = DecisionTree::fit(
            &x,
            &y,
            &TreeConfig {
                min_samples_split: 2,
                min_samples_leaf: 1,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.predict_row(&[5.0]).unwrap(), 1.0);
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let (x, y) = linear_world(200, 3);
        let t = DecisionTree::fit(
            &x,
            &y,
            &TreeConfig {
                min_samples_leaf: 30,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        fn check(node: &Node, min: usize) {
            match node {
                Node::Leaf { n, .. } => assert!(*n >= min),
                Node::Split { left, right, .. } => {
                    check(left, min);
                    check(right, min);
                }
            }
        }
        check(t.root(), 30);
    }

    #[test]
    fn decision_path_consistent_with_prediction() {
        let (x, y) = xor_world(800, 4);
        let t = DecisionTree::fit(&x, &y, &TreeConfig::default()).unwrap();
        let row = x.row(17);
        let (path, prob) = t.decision_path(row).unwrap();
        assert!(!path.is_empty());
        assert_eq!(prob, t.predict_row(row).unwrap());
        // each condition actually holds for the row
        for c in &path {
            if c.is_le {
                assert!(row[c.feature] <= c.threshold);
            } else {
                assert!(row[c.feature] > c.threshold);
            }
        }
    }

    #[test]
    fn rules_cover_all_training_rows() {
        let (x, y) = linear_world(500, 5);
        let t = DecisionTree::fit(&x, &y, &TreeConfig::default()).unwrap();
        let rules = t.rules();
        assert_eq!(rules.len(), t.n_leaves());
        let support: usize = rules.iter().map(|(_, _, n)| n).sum();
        assert_eq!(support, 500);
    }

    #[test]
    fn condition_rendering() {
        let c = Condition {
            feature: 1,
            is_le: false,
            threshold: 3.25,
        };
        assert_eq!(c.render(&["income".into(), "debt".into()]), "debt > 3.2500");
        assert_eq!(c.render(&[]), "x1 > 3.2500");
    }

    #[test]
    fn shape_validation() {
        let (x, y) = linear_world(100, 6);
        let t = DecisionTree::fit(&x, &y, &TreeConfig::default()).unwrap();
        assert!(t.predict_row(&[1.0]).is_err());
        assert!(DecisionTree::fit(&x, &y[..50], &TreeConfig::default()).is_err());
        let bad = TreeConfig {
            min_samples_leaf: 0,
            ..TreeConfig::default()
        };
        assert!(DecisionTree::fit(&x, &y, &bad).is_err());
    }
}
