//! # fact-ml — the machine-learning substrate
//!
//! The paper's "data science pipeline" turns raw data into automated
//! decisions; this crate supplies the learners those pipelines use, built
//! from scratch on [`fact_data::Matrix`]:
//!
//! * [`logistic`] — L2-regularized logistic regression (mini-batch SGD) with
//!   optional per-sample weights (the hook `fact-fairness` reweighing uses);
//! * [`linear`] — ordinary least squares / ridge regression;
//! * [`naive_bayes`] — Gaussian naive Bayes;
//! * [`boosting`] — gradient-boosted shallow trees (logistic loss);
//! * [`calibration`] — Platt scaling and expected calibration error;
//! * [`tree`] — CART decision trees with an inspectable structure (the
//!   *interpretable* model of the transparency pillar);
//! * [`forest`] — bagged random forests;
//! * [`knn`] — k-nearest-neighbour classification;
//! * [`mlp`] — a small multi-layer perceptron: the paper's "deep learning"
//!   **black box** that "apparently makes good decisions, but cannot
//!   rationalize them" (§2);
//! * [`metrics`] — accuracy, precision/recall/F1, ROC-AUC, log-loss, Brier,
//!   calibration;
//! * [`cv`] — k-fold cross-validation.
//!
//! All models implement [`Classifier`] (probability of the positive class
//! per row), which is what the fairness, accuracy, and transparency audits
//! consume — they never need to know which model they are auditing.

#![warn(missing_docs)]

pub mod boosting;
pub mod calibration;
pub mod cv;
pub mod forest;
pub mod knn;
pub mod linear;
pub mod logistic;
pub mod metrics;
pub mod mlp;
pub mod naive_bayes;
pub mod tree;

use fact_data::{Matrix, Result};

/// A fitted binary classifier.
pub trait Classifier {
    /// Probability of the positive class for each row of `x`.
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>>;

    /// Hard predictions at threshold 0.5.
    fn predict(&self, x: &Matrix) -> Result<Vec<bool>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| p >= 0.5)
            .collect())
    }

    /// Hard predictions at an arbitrary threshold.
    fn predict_with_threshold(&self, x: &Matrix, threshold: f64) -> Result<Vec<bool>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| p >= threshold)
            .collect())
    }
}

/// A fitted regressor.
pub trait Regressor {
    /// Predicted value for each row of `x`.
    fn predict(&self, x: &Matrix) -> Result<Vec<f64>>;
}

pub(crate) fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

pub(crate) fn check_xy(x: &Matrix, y_len: usize) -> Result<()> {
    if x.rows() == 0 {
        return Err(fact_data::FactError::EmptyData(
            "training data with no rows".into(),
        ));
    }
    if x.rows() != y_len {
        return Err(fact_data::FactError::LengthMismatch {
            expected: x.rows(),
            actual: y_len,
        });
    }
    Ok(())
}

/// Convert boolean labels to 0/1 floats.
pub fn labels_to_f64(y: &[bool]) -> Vec<f64> {
    y.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect()
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures: a linearly separable world and an XOR-ish world.
    use fact_data::Matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Linearly separable 2-D data: positive iff `x0 + x1 > 0` (with margin).
    pub fn linear_world(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.gen_range(-2.0..2.0);
            let b: f64 = rng.gen_range(-2.0..2.0);
            rows.push(vec![a, b]);
            y.push(a + b > 0.0);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    /// XOR world: positive iff exactly one coordinate is positive. Not
    /// linearly separable; trees/MLP should fit it, logistic should not.
    pub fn xor_world(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            rows.push(vec![a, b]);
            y.push((a > 0.0) ^ (b > 0.0));
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }
}
