//! A small multi-layer perceptron — the toolkit's stand-in for the paper's
//! "deep learning" black box (§2: networks that "cannot be understood by
//! humans … a black box that apparently makes good decisions, but cannot
//! rationalize them").
//!
//! Architecture: fully connected layers with tanh activations and a sigmoid
//! output, trained with mini-batch SGD + momentum on binary cross-entropy.
//! Deliberately *no* introspection API beyond weight counts: explanations
//! must come from `fact-transparency` surrogates, as they would for a real
//! opaque model.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use fact_data::{FactError, Matrix, Result};

use crate::{check_xy, sigmoid, Classifier};

/// MLP hyper-parameters.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Hidden layer widths, e.g. `vec![16, 8]`.
    pub hidden: Vec<usize>,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 penalty.
    pub l2: f64,
    /// Init/shuffle seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: vec![16, 8],
            learning_rate: 0.05,
            momentum: 0.9,
            epochs: 80,
            batch_size: 32,
            l2: 1e-5,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct Layer {
    // weights[out][in], biases[out]
    w: Vec<Vec<f64>>,
    b: Vec<f64>,
}

/// A fitted MLP classifier.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
    stats: Vec<(f64, f64)>,
    n_features: usize,
}

impl Mlp {
    /// Fit the network.
    pub fn fit(x: &Matrix, y: &[bool], cfg: &MlpConfig) -> Result<Self> {
        check_xy(x, y.len())?;
        if cfg.hidden.is_empty() || cfg.hidden.contains(&0) {
            return Err(FactError::InvalidArgument(
                "hidden layers must be non-empty and positive-width".into(),
            ));
        }
        if cfg.epochs == 0 || cfg.batch_size == 0 || cfg.learning_rate <= 0.0 {
            return Err(FactError::InvalidArgument(
                "epochs, batch_size, learning_rate must be positive".into(),
            ));
        }
        let mut xs = x.clone();
        let stats = xs.standardize();
        let d = xs.cols();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // layer sizes: d -> hidden... -> 1
        let mut sizes = vec![d];
        sizes.extend(&cfg.hidden);
        sizes.push(1);
        let mut layers: Vec<Layer> = Vec::with_capacity(sizes.len() - 1);
        for li in 0..sizes.len() - 1 {
            let fan_in = sizes[li];
            let fan_out = sizes[li + 1];
            let scale = (6.0 / (fan_in + fan_out) as f64).sqrt();
            let w = (0..fan_out)
                .map(|_| (0..fan_in).map(|_| rng.gen_range(-scale..scale)).collect())
                .collect();
            layers.push(Layer {
                w,
                b: vec![0.0; fan_out],
            });
        }
        let mut velocity: Vec<Layer> = layers
            .iter()
            .map(|l| Layer {
                w: l.w.iter().map(|r| vec![0.0; r.len()]).collect(),
                b: vec![0.0; l.b.len()],
            })
            .collect();

        let n = xs.rows();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                // accumulate gradients over the batch
                let mut grads: Vec<Layer> = layers
                    .iter()
                    .map(|l| Layer {
                        w: l.w.iter().map(|r| vec![0.0; r.len()]).collect(),
                        b: vec![0.0; l.b.len()],
                    })
                    .collect();
                for &i in chunk {
                    let row = xs.row(i);
                    // forward with stored activations
                    let mut acts: Vec<Vec<f64>> = vec![row.to_vec()];
                    for (li, layer) in layers.iter().enumerate() {
                        let input = &acts[li];
                        let mut out = Vec::with_capacity(layer.b.len());
                        for (wrow, &bias) in layer.w.iter().zip(&layer.b) {
                            let mut z = bias;
                            for (wv, iv) in wrow.iter().zip(input) {
                                z += wv * iv;
                            }
                            let is_output = li == layers.len() - 1;
                            out.push(if is_output { sigmoid(z) } else { z.tanh() });
                        }
                        acts.push(out);
                    }
                    // backward
                    let target = if y[i] { 1.0 } else { 0.0 };
                    // output delta for sigmoid+BCE: (p - t)
                    let mut delta: Vec<f64> = vec![acts.last().expect("nonempty")[0] - target];
                    for li in (0..layers.len()).rev() {
                        let input = &acts[li];
                        // grad for this layer
                        for (o, &dv) in delta.iter().enumerate() {
                            grads[li].b[o] += dv;
                            for (j, &iv) in input.iter().enumerate() {
                                grads[li].w[o][j] += dv * iv;
                            }
                        }
                        if li > 0 {
                            // propagate: delta_prev[j] = sum_o delta[o]*w[o][j] * tanh'(act)
                            let mut prev = vec![0.0; input.len()];
                            for (o, &dv) in delta.iter().enumerate() {
                                for (j, wv) in layers[li].w[o].iter().enumerate() {
                                    prev[j] += dv * wv;
                                }
                            }
                            for (j, p) in prev.iter_mut().enumerate() {
                                let a = acts[li][j]; // tanh output
                                *p *= 1.0 - a * a;
                            }
                            delta = prev;
                        }
                    }
                }
                // SGD + momentum update
                let scale = cfg.learning_rate / chunk.len() as f64;
                for (li, layer) in layers.iter_mut().enumerate() {
                    for (o, wrow) in layer.w.iter_mut().enumerate() {
                        for (j, wv) in wrow.iter_mut().enumerate() {
                            let g = grads[li].w[o][j] * scale + cfg.l2 * *wv;
                            velocity[li].w[o][j] = cfg.momentum * velocity[li].w[o][j] - g;
                            *wv += velocity[li].w[o][j];
                        }
                        let g = grads[li].b[o] * scale;
                        velocity[li].b[o] = cfg.momentum * velocity[li].b[o] - g;
                        layer.b[o] += velocity[li].b[o];
                    }
                }
            }
        }
        Ok(Mlp {
            layers,
            stats,
            n_features: d,
        })
    }

    /// Total number of trainable parameters (the only introspection a black
    /// box offers).
    pub fn n_parameters(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.b.len() + l.w.iter().map(|r| r.len()).sum::<usize>())
            .sum()
    }

    fn forward(&self, row: &[f64]) -> f64 {
        let mut act: Vec<f64> = row.to_vec();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut out = Vec::with_capacity(layer.b.len());
            let is_output = li == self.layers.len() - 1;
            for (wrow, &bias) in layer.w.iter().zip(&layer.b) {
                let mut z = bias;
                for (wv, iv) in wrow.iter().zip(&act) {
                    z += wv * iv;
                }
                out.push(if is_output { sigmoid(z) } else { z.tanh() });
            }
            act = out;
        }
        act[0]
    }
}

impl Classifier for Mlp {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.cols() != self.n_features {
            return Err(FactError::LengthMismatch {
                expected: self.n_features,
                actual: x.cols(),
            });
        }
        let mut xs = x.clone();
        xs.apply_standardization(&self.stats)?;
        Ok((0..xs.rows()).map(|i| self.forward(xs.row(i))).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::testutil::{linear_world, xor_world};

    #[test]
    fn learns_xor() {
        let (x, y) = xor_world(1200, 1);
        let m = Mlp::fit(
            &x,
            &y,
            &MlpConfig {
                epochs: 150,
                ..MlpConfig::default()
            },
        )
        .unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.9, "MLP must crack XOR, got {acc}");
    }

    #[test]
    fn learns_linear_too() {
        let (x, y) = linear_world(1000, 2);
        let m = Mlp::fit(&x, &y, &MlpConfig::default()).unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.93, "got {acc}");
    }

    #[test]
    fn probabilities_valid_and_deterministic() {
        let (x, y) = xor_world(300, 3);
        let cfg = MlpConfig {
            epochs: 20,
            ..MlpConfig::default()
        };
        let a = Mlp::fit(&x, &y, &cfg).unwrap();
        let b = Mlp::fit(&x, &y, &cfg).unwrap();
        let pa = a.predict_proba(&x).unwrap();
        assert_eq!(pa, b.predict_proba(&x).unwrap());
        assert!(pa.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn parameter_count() {
        let (x, y) = linear_world(100, 4);
        let m = Mlp::fit(
            &x,
            &y,
            &MlpConfig {
                hidden: vec![4],
                epochs: 1,
                ..MlpConfig::default()
            },
        )
        .unwrap();
        // 2→4: 8w+4b; 4→1: 4w+1b → 17
        assert_eq!(m.n_parameters(), 17);
    }

    #[test]
    fn validation() {
        let (x, y) = linear_world(50, 5);
        let bad = MlpConfig {
            hidden: vec![],
            ..MlpConfig::default()
        };
        assert!(Mlp::fit(&x, &y, &bad).is_err());
        let bad = MlpConfig {
            hidden: vec![0],
            ..MlpConfig::default()
        };
        assert!(Mlp::fit(&x, &y, &bad).is_err());
        let m = Mlp::fit(&x, &y, &MlpConfig::default()).unwrap();
        assert!(m.predict_proba(&Matrix::zeros(1, 9)).is_err());
    }
}
