//! Random forests: bagged CART trees with per-tree feature subsampling.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use fact_data::{FactError, Matrix, Result};

use crate::tree::{DecisionTree, TreeConfig};
use crate::{check_xy, Classifier};

/// Forest hyper-parameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth limits.
    pub tree: TreeConfig,
    /// Features sampled per tree (`None` = √d).
    pub max_features: Option<usize>,
    /// Seed for bootstrap/feature sampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 30,
            tree: TreeConfig::default(),
            max_features: None,
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<(DecisionTree, Vec<usize>)>, // tree + the feature subset it saw
    n_features: usize,
}

impl RandomForest {
    /// Fit `n_trees` trees, each on a bootstrap resample and a random feature
    /// subset.
    #[allow(clippy::needless_range_loop)]
    pub fn fit(x: &Matrix, y: &[bool], cfg: &ForestConfig) -> Result<Self> {
        check_xy(x, y.len())?;
        if cfg.n_trees == 0 {
            return Err(FactError::InvalidArgument(
                "forest needs at least one tree".into(),
            ));
        }
        let d = x.cols();
        let mtry = cfg
            .max_features
            .unwrap_or_else(|| ((d as f64).sqrt().ceil() as usize).max(1))
            .min(d)
            .max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = x.rows();
        let mut trees = Vec::with_capacity(cfg.n_trees);
        let mut all_features: Vec<usize> = (0..d).collect();
        for _ in 0..cfg.n_trees {
            // bootstrap rows
            let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            // feature subset
            all_features.shuffle(&mut rng);
            let mut feats = all_features[..mtry].to_vec();
            feats.sort_unstable();
            // project
            let mut sub = Matrix::zeros(n, feats.len());
            let mut suby = Vec::with_capacity(n);
            for (ri, &i) in rows.iter().enumerate() {
                for (cj, &f) in feats.iter().enumerate() {
                    sub.set(ri, cj, x.get(i, f));
                }
                suby.push(y[i]);
            }
            let tree = DecisionTree::fit(&sub, &suby, &cfg.tree)?;
            trees.push((tree, feats));
        }
        Ok(RandomForest {
            trees,
            n_features: d,
        })
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    #[allow(clippy::needless_range_loop)]
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.cols() != self.n_features {
            return Err(FactError::LengthMismatch {
                expected: self.n_features,
                actual: x.cols(),
            });
        }
        let mut acc = vec![0.0; x.rows()];
        let mut row_buf = Vec::new();
        for (tree, feats) in &self.trees {
            for i in 0..x.rows() {
                row_buf.clear();
                let row = x.row(i);
                for &f in feats {
                    row_buf.push(row[f]);
                }
                acc[i] += tree.predict_row(&row_buf)?;
            }
        }
        let k = self.trees.len() as f64;
        Ok(acc.into_iter().map(|v| v / k).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::testutil::xor_world;

    #[test]
    fn forest_fits_xor() {
        let (x, y) = xor_world(1500, 1);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 20,
                ..ForestConfig::default()
            },
        )
        .unwrap();
        let acc = accuracy(&y, &f.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.9, "got {acc}");
        assert_eq!(f.n_trees(), 20);
    }

    #[test]
    fn probabilities_are_tree_averages() {
        let (x, y) = xor_world(400, 2);
        let f = RandomForest::fit(&x, &y, &ForestConfig::default()).unwrap();
        for p in f.predict_proba(&x).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = xor_world(300, 3);
        let cfg = ForestConfig {
            n_trees: 5,
            seed: 9,
            ..ForestConfig::default()
        };
        let a = RandomForest::fit(&x, &y, &cfg).unwrap();
        let b = RandomForest::fit(&x, &y, &cfg).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn validation() {
        let (x, y) = xor_world(100, 4);
        let cfg = ForestConfig {
            n_trees: 0,
            ..ForestConfig::default()
        };
        assert!(RandomForest::fit(&x, &y, &cfg).is_err());
        let f = RandomForest::fit(&x, &y, &ForestConfig::default()).unwrap();
        assert!(f.predict_proba(&Matrix::zeros(2, 7)).is_err());
    }

    #[test]
    fn max_features_capped_at_dimension() {
        let (x, y) = xor_world(200, 5);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 3,
                max_features: Some(100),
                ..ForestConfig::default()
            },
        )
        .unwrap();
        assert!(f.predict_proba(&x).is_ok());
    }
}
