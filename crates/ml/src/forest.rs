//! Random forests: bagged CART trees with per-tree feature subsampling.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use fact_data::{FactError, Matrix, Result};

use crate::tree::{DecisionTree, TreeConfig};
use crate::{check_xy, Classifier};

/// Forest hyper-parameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth limits.
    pub tree: TreeConfig,
    /// Features sampled per tree (`None` = √d).
    pub max_features: Option<usize>,
    /// Seed for bootstrap/feature sampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 30,
            tree: TreeConfig::default(),
            max_features: None,
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<(DecisionTree, Vec<usize>)>, // tree + the feature subset it saw
    n_features: usize,
}

impl RandomForest {
    /// Fit `n_trees` trees, each on a bootstrap resample and a random feature
    /// subset.
    ///
    /// All randomness is drawn up front from the seeded master RNG in tree
    /// order (the exact stream the sequential implementation consumed), so
    /// the tree fits themselves — which are RNG-free — can run in parallel
    /// while the fitted forest stays bit-identical at any worker count.
    pub fn fit(x: &Matrix, y: &[bool], cfg: &ForestConfig) -> Result<Self> {
        check_xy(x, y.len())?;
        if cfg.n_trees == 0 {
            return Err(FactError::InvalidArgument(
                "forest needs at least one tree".into(),
            ));
        }
        let d = x.cols();
        let mtry = cfg
            .max_features
            .unwrap_or_else(|| ((d as f64).sqrt().ceil() as usize).max(1))
            .min(d)
            .max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = x.rows();
        let mut all_features: Vec<usize> = (0..d).collect();
        let samples: Vec<(Vec<usize>, Vec<usize>)> = (0..cfg.n_trees)
            .map(|_| {
                // bootstrap rows
                let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                // feature subset
                all_features.shuffle(&mut rng);
                let mut feats = all_features[..mtry].to_vec();
                feats.sort_unstable();
                (rows, feats)
            })
            .collect();
        let trees = fact_par::par_map(cfg.n_trees, 1, |t| {
            let (rows, feats) = &samples[t];
            // project the bootstrap sample onto the feature subset
            let mut sub = Matrix::zeros(n, feats.len());
            let mut suby = Vec::with_capacity(n);
            for (ri, &i) in rows.iter().enumerate() {
                for (cj, &f) in feats.iter().enumerate() {
                    sub.set(ri, cj, x.get(i, f));
                }
                suby.push(y[i]);
            }
            DecisionTree::fit(&sub, &suby, &cfg.tree).map(|tree| (tree, feats.clone()))
        });
        let trees: Vec<(DecisionTree, Vec<usize>)> =
            trees.into_iter().collect::<Result<Vec<_>>>()?;
        Ok(RandomForest {
            trees,
            n_features: d,
        })
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

/// Rows per parallel chunk when averaging tree votes.
const PREDICT_ROW_GRAIN: usize = 64;

impl Classifier for RandomForest {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.cols() != self.n_features {
            return Err(FactError::LengthMismatch {
                expected: self.n_features,
                actual: x.cols(),
            });
        }
        let k = self.trees.len() as f64;
        // Row-parallel; each row sums its tree votes in tree order, exactly
        // as the sequential tree-outer loop accumulated them.
        let probs = fact_par::par_map(x.rows(), PREDICT_ROW_GRAIN, |i| {
            let row = x.row(i);
            let mut row_buf = Vec::new();
            let mut acc = 0.0;
            for (tree, feats) in &self.trees {
                row_buf.clear();
                for &f in feats {
                    row_buf.push(row[f]);
                }
                acc += tree.predict_row(&row_buf)?;
            }
            Ok(acc / k)
        });
        probs.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::testutil::xor_world;

    #[test]
    fn forest_fits_xor() {
        let (x, y) = xor_world(1500, 1);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 20,
                ..ForestConfig::default()
            },
        )
        .unwrap();
        let acc = accuracy(&y, &f.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.9, "got {acc}");
        assert_eq!(f.n_trees(), 20);
    }

    #[test]
    fn probabilities_are_tree_averages() {
        let (x, y) = xor_world(400, 2);
        let f = RandomForest::fit(&x, &y, &ForestConfig::default()).unwrap();
        for p in f.predict_proba(&x).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = xor_world(300, 3);
        let cfg = ForestConfig {
            n_trees: 5,
            seed: 9,
            ..ForestConfig::default()
        };
        let a = RandomForest::fit(&x, &y, &cfg).unwrap();
        let b = RandomForest::fit(&x, &y, &cfg).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn fit_and_predict_are_worker_count_invariant() {
        let (x, y) = xor_world(300, 6);
        let cfg = ForestConfig {
            n_trees: 7,
            seed: 11,
            ..ForestConfig::default()
        };
        fact_par::set_workers(1);
        let p1 = RandomForest::fit(&x, &y, &cfg)
            .unwrap()
            .predict_proba(&x)
            .unwrap();
        fact_par::set_workers(5);
        let p5 = RandomForest::fit(&x, &y, &cfg)
            .unwrap()
            .predict_proba(&x)
            .unwrap();
        fact_par::set_workers(0);
        assert_eq!(p1, p5);
    }

    #[test]
    fn validation() {
        let (x, y) = xor_world(100, 4);
        let cfg = ForestConfig {
            n_trees: 0,
            ..ForestConfig::default()
        };
        assert!(RandomForest::fit(&x, &y, &cfg).is_err());
        let f = RandomForest::fit(&x, &y, &ForestConfig::default()).unwrap();
        assert!(f.predict_proba(&Matrix::zeros(2, 7)).is_err());
    }

    #[test]
    fn max_features_capped_at_dimension() {
        let (x, y) = xor_world(200, 5);
        let f = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 3,
                max_features: Some(100),
                ..ForestConfig::default()
            },
        )
        .unwrap();
        assert!(f.predict_proba(&x).is_ok());
    }
}
