//! K-fold cross-validation.
//!
//! Honest accuracy accounting is the operational core of the paper's Q2:
//! a score computed on the training data is "guesswork". This module owns
//! the split-fit-score loop so callers cannot accidentally leak.

use fact_data::split::kfold_indices;
use fact_data::{Matrix, Result};

/// Cross-validated scores for a fit-and-score procedure.
///
/// `fit_score` receives `(x_train, y_train, x_valid, y_valid)` and returns
/// the validation score for that fold.
pub fn cross_validate<F>(
    x: &Matrix,
    y: &[bool],
    k: usize,
    seed: u64,
    mut fit_score: F,
) -> Result<Vec<f64>>
where
    F: FnMut(&Matrix, &[bool], &Matrix, &[bool]) -> Result<f64>,
{
    if x.rows() != y.len() {
        return Err(fact_data::FactError::LengthMismatch {
            expected: x.rows(),
            actual: y.len(),
        });
    }
    let folds = kfold_indices(x.rows(), k, seed)?;
    let mut scores = Vec::with_capacity(k);
    for (train_idx, valid_idx) in folds {
        let (xt, yt) = gather(x, y, &train_idx);
        let (xv, yv) = gather(x, y, &valid_idx);
        scores.push(fit_score(&xt, &yt, &xv, &yv)?);
    }
    Ok(scores)
}

/// [`cross_validate`] with the folds fitted and scored in parallel.
///
/// Requires a re-entrant `fit_score` (`Fn + Sync` instead of `FnMut`); fold
/// splits come from the same seeded `kfold_indices` and scores are returned
/// in fold order, so the result is bit-identical to the sequential version
/// at any worker count.
pub fn cross_validate_par<F>(
    x: &Matrix,
    y: &[bool],
    k: usize,
    seed: u64,
    fit_score: F,
) -> Result<Vec<f64>>
where
    F: Fn(&Matrix, &[bool], &Matrix, &[bool]) -> Result<f64> + Sync,
{
    if x.rows() != y.len() {
        return Err(fact_data::FactError::LengthMismatch {
            expected: x.rows(),
            actual: y.len(),
        });
    }
    let folds = kfold_indices(x.rows(), k, seed)?;
    fact_par::par_map(folds.len(), 1, |f| {
        let (train_idx, valid_idx) = &folds[f];
        let (xt, yt) = gather(x, y, train_idx);
        let (xv, yv) = gather(x, y, valid_idx);
        fit_score(&xt, &yt, &xv, &yv)
    })
    .into_iter()
    .collect()
}

/// Mean and sample standard deviation of fold scores.
pub fn summarize(scores: &[f64]) -> (f64, f64) {
    let n = scores.len() as f64;
    let mean = scores.iter().sum::<f64>() / n;
    let std = if scores.len() > 1 {
        (scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
    } else {
        0.0
    };
    (mean, std)
}

fn gather(x: &Matrix, y: &[bool], idx: &[usize]) -> (Matrix, Vec<bool>) {
    let mut m = Matrix::zeros(idx.len(), x.cols());
    let mut labels = Vec::with_capacity(idx.len());
    for (r, &i) in idx.iter().enumerate() {
        for j in 0..x.cols() {
            m.set(r, j, x.get(i, j));
        }
        labels.push(y[i]);
    }
    (m, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::{LogisticConfig, LogisticRegression};
    use crate::metrics::accuracy;
    use crate::testutil::linear_world;
    use crate::Classifier;

    #[test]
    fn cv_scores_are_honest() {
        let (x, y) = linear_world(600, 1);
        let scores = cross_validate(&x, &y, 5, 42, |xt, yt, xv, yv| {
            let m = LogisticRegression::fit(xt, yt, None, &LogisticConfig::default())?;
            accuracy(yv, &m.predict(xv)?)
        })
        .unwrap();
        assert_eq!(scores.len(), 5);
        let (mean, std) = summarize(&scores);
        assert!(mean > 0.9, "mean {mean}");
        assert!(std < 0.1);
    }

    #[test]
    fn cv_validates_shapes() {
        let (x, y) = linear_world(100, 2);
        assert!(cross_validate(&x, &y[..50], 5, 0, |_, _, _, _| Ok(0.0)).is_err());
        assert!(cross_validate(&x, &y, 1, 0, |_, _, _, _| Ok(0.0)).is_err());
    }

    #[test]
    fn folds_see_disjoint_validation_data() {
        let (x, y) = linear_world(50, 3);
        let mut total_valid = 0usize;
        cross_validate(&x, &y, 5, 0, |_, _, xv, _| {
            total_valid += xv.rows();
            Ok(0.0)
        })
        .unwrap();
        assert_eq!(total_valid, 50);
    }

    #[test]
    fn parallel_cv_matches_sequential() {
        let (x, y) = linear_world(400, 4);
        let run = |xt: &Matrix, yt: &[bool], xv: &Matrix, yv: &[bool]| {
            let m = LogisticRegression::fit(xt, yt, None, &LogisticConfig::default())?;
            accuracy(yv, &m.predict(xv)?)
        };
        let seq = cross_validate(&x, &y, 5, 7, run).unwrap();
        fact_par::set_workers(4);
        let par = cross_validate_par(&x, &y, 5, 7, run).unwrap();
        fact_par::set_workers(0);
        assert_eq!(seq, par);
    }

    #[test]
    fn summarize_single_fold() {
        let (mean, std) = summarize(&[0.8]);
        assert_eq!(mean, 0.8);
        assert_eq!(std, 0.0);
    }
}
