//! Probability calibration.
//!
//! A model whose "0.8" means 60% is lying about its own uncertainty — an
//! accuracy-pillar failure (Q2 demands trustworthy meta-information). Platt
//! scaling refits scores through a 1-D logistic map `σ(a·s + b)` learned on
//! held-out data; [`expected_calibration_error`] quantifies the lie before
//! and after.

use fact_data::{FactError, Matrix, Result};

use crate::metrics::calibration_curve;
use crate::{sigmoid, Classifier};

/// A Platt-scaling recalibration layer over any classifier's probability
/// outputs. Inputs are logit-transformed internally, so the layer learns
/// `σ(a·logit(p) + b)` — the identity at `(a, b) = (1, 0)`, and an exact fix
/// for models that are systematically over- or under-confident in log-odds
/// space.
#[derive(Debug, Clone)]
pub struct PlattScaler {
    a: f64,
    b: f64,
}

fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-9, 1.0 - 1e-9);
    (p / (1.0 - p)).ln()
}

impl PlattScaler {
    /// Fit `σ(a·s + b)` on `(scores, labels)` from a *calibration split*
    /// (never the training data) via Newton-damped gradient descent.
    pub fn fit(scores: &[f64], labels: &[bool]) -> Result<Self> {
        if scores.len() != labels.len() {
            return Err(FactError::LengthMismatch {
                expected: scores.len(),
                actual: labels.len(),
            });
        }
        if scores.len() < 10 {
            return Err(FactError::EmptyData(
                "Platt scaling needs at least 10 calibration points".into(),
            ));
        }
        let pos = labels.iter().filter(|&&l| l).count();
        if pos == 0 || pos == labels.len() {
            return Err(FactError::InvalidArgument(
                "calibration data must contain both classes".into(),
            ));
        }
        // Platt's target smoothing avoids overconfident endpoints
        let n_pos = pos as f64;
        let n_neg = (labels.len() - pos) as f64;
        let t_pos = (n_pos + 1.0) / (n_pos + 2.0);
        let t_neg = 1.0 / (n_neg + 2.0);
        let targets: Vec<f64> = labels
            .iter()
            .map(|&l| if l { t_pos } else { t_neg })
            .collect();

        // 2-parameter Newton–Raphson on the cross-entropy
        let mut a = 1.0f64;
        let mut b = 0.0f64;
        for _ in 0..50 {
            let mut ga = 0.0;
            let mut gb = 0.0;
            let (mut h_aa, mut h_ab, mut h_bb) = (1e-9, 0.0, 1e-9);
            for (&raw, &t) in scores.iter().zip(&targets) {
                let s = logit(raw);
                let p = sigmoid(a * s + b);
                let err = p - t;
                ga += err * s;
                gb += err;
                let w = (p * (1.0 - p)).max(1e-12);
                h_aa += w * s * s;
                h_ab += w * s;
                h_bb += w;
            }
            // solve H · δ = g for the 2×2 Hessian
            let det = h_aa * h_bb - h_ab * h_ab;
            if det.abs() < 1e-300 {
                break;
            }
            let da = (h_bb * ga - h_ab * gb) / det;
            let db = (h_aa * gb - h_ab * ga) / det;
            a -= da;
            b -= db;
            if da.abs() < 1e-10 && db.abs() < 1e-10 {
                break;
            }
        }
        Ok(PlattScaler { a, b })
    }

    /// Recalibrate one probability.
    pub fn transform_one(&self, score: f64) -> f64 {
        sigmoid(self.a * logit(score) + self.b)
    }

    /// Recalibrate a batch of scores.
    pub fn transform(&self, scores: &[f64]) -> Vec<f64> {
        scores.iter().map(|&s| self.transform_one(s)).collect()
    }

    /// The fitted `(a, b)` coefficients.
    pub fn coefficients(&self) -> (f64, f64) {
        (self.a, self.b)
    }
}

/// A classifier wrapped with a calibration layer.
pub struct CalibratedClassifier<C: Classifier> {
    inner: C,
    scaler: PlattScaler,
}

impl<C: Classifier> CalibratedClassifier<C> {
    /// Wrap `inner`, fitting the scaler on `(x_calib, y_calib)`.
    pub fn fit(inner: C, x_calib: &Matrix, y_calib: &[bool]) -> Result<Self> {
        let scores = inner.predict_proba(x_calib)?;
        let scaler = PlattScaler::fit(&scores, y_calib)?;
        Ok(CalibratedClassifier { inner, scaler })
    }
}

impl<C: Classifier> Classifier for CalibratedClassifier<C> {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        Ok(self.scaler.transform(&self.inner.predict_proba(x)?))
    }
}

/// Expected calibration error: Σ (bin weight) · |mean predicted − observed|
/// over `n_bins` equal-width bins.
pub fn expected_calibration_error(truth: &[bool], probs: &[f64], n_bins: usize) -> Result<f64> {
    let curve = calibration_curve(truth, probs, n_bins)?;
    let n: usize = curve.iter().map(|&(_, _, c)| c).sum();
    Ok(curve
        .iter()
        .map(|&(mean_p, frac, c)| (c as f64 / n as f64) * (mean_p - frac).abs())
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A model that is overconfident by a factor of 2 in log-odds space:
    /// it reports σ(2z) when the true probability is σ(z).
    fn overconfident_world(n: usize, seed: u64) -> (Vec<f64>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let z: f64 = rng.gen_range(-2.5..2.5); // true log-odds
            labels.push(rng.gen::<f64>() < sigmoid(z));
            scores.push(sigmoid(2.0 * z)); // overconfident report
        }
        (scores, labels)
    }

    #[test]
    fn platt_reduces_calibration_error() {
        let (scores, labels) = overconfident_world(8_000, 1);
        let (s_fit, s_eval) = scores.split_at(4_000);
        let (l_fit, l_eval) = labels.split_at(4_000);
        let before = expected_calibration_error(l_eval, s_eval, 10).unwrap();
        let scaler = PlattScaler::fit(s_fit, l_fit).unwrap();
        let fixed = scaler.transform(s_eval);
        let after = expected_calibration_error(l_eval, &fixed, 10).unwrap();
        assert!(
            after < before * 0.5,
            "Platt should halve ECE: {before:.4} → {after:.4}"
        );
        // the fitted slope must compress: a ≈ 0.5 undoes the ×2 distortion
        let (a, _) = scaler.coefficients();
        assert!((a - 0.5).abs() < 0.1, "a = {a}");
    }

    #[test]
    fn transform_is_monotone_and_bounded() {
        let (scores, labels) = overconfident_world(2_000, 2);
        let scaler = PlattScaler::fit(&scores, &labels).unwrap();
        let a = scaler.transform_one(0.2);
        let b = scaler.transform_one(0.8);
        assert!(a < b, "order preserved");
        for s in [0.0, 0.3, 1.0] {
            let p = scaler.transform_one(s);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn calibrated_classifier_wraps_transparently() {
        use crate::logistic::{LogisticConfig, LogisticRegression};
        use crate::testutil::linear_world;
        let (x, y) = linear_world(2_000, 3);
        let (xc, yc) = linear_world(500, 4);
        let m = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
        let cal = CalibratedClassifier::fit(m, &xc, &yc).unwrap();
        let probs = cal.predict_proba(&x).unwrap();
        assert_eq!(probs.len(), 2_000);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn ece_zero_for_perfect_calibration() {
        // predictions equal to the empirical rate in every bin
        let truth = vec![true, false, true, false];
        let probs = vec![0.5; 4];
        assert!(expected_calibration_error(&truth, &probs, 5).unwrap() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(PlattScaler::fit(&[0.5; 5], &[true; 5]).is_err());
        assert!(PlattScaler::fit(&[0.5; 20], &[true; 20]).is_err());
        assert!(PlattScaler::fit(&[0.5; 20], &[true; 19]).is_err());
    }
}
