//! k-nearest-neighbour classification (brute force, standardized features).

use fact_data::{FactError, Matrix, Result};

use crate::{check_xy, Classifier};

/// A fitted (memorized) k-NN classifier.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    train: Matrix,
    labels: Vec<bool>,
    stats: Vec<(f64, f64)>,
    k: usize,
}

impl KnnClassifier {
    /// Store the training data; `k` must be in `1..=n`.
    pub fn fit(x: &Matrix, y: &[bool], k: usize) -> Result<Self> {
        check_xy(x, y.len())?;
        if k == 0 || k > x.rows() {
            return Err(FactError::InvalidArgument(format!(
                "k must be in 1..={}, got {k}",
                x.rows()
            )));
        }
        let mut train = x.clone();
        let stats = train.standardize();
        Ok(KnnClassifier {
            train,
            labels: y.to_vec(),
            stats,
            k,
        })
    }

    /// The configured k.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Classifier for KnnClassifier {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.cols() != self.train.cols() {
            return Err(FactError::LengthMismatch {
                expected: self.train.cols(),
                actual: x.cols(),
            });
        }
        let mut xs = x.clone();
        xs.apply_standardization(&self.stats)?;
        let n_train = self.train.rows();
        let mut out = Vec::with_capacity(xs.rows());
        let mut dists: Vec<(f64, usize)> = Vec::with_capacity(n_train);
        for i in 0..xs.rows() {
            let q = xs.row(i);
            dists.clear();
            for t in 0..n_train {
                let row = self.train.row(t);
                let mut d = 0.0;
                for (a, b) in q.iter().zip(row) {
                    let diff = a - b;
                    d += diff * diff;
                }
                dists.push((d, t));
            }
            dists.select_nth_unstable_by(self.k - 1, |a, b| {
                a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
            });
            let pos = dists[..self.k]
                .iter()
                .filter(|&&(_, t)| self.labels[t])
                .count();
            out.push(pos as f64 / self.k as f64);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::testutil::{linear_world, xor_world};

    #[test]
    fn knn_fits_xor() {
        let (x, y) = xor_world(1000, 1);
        let m = KnnClassifier::fit(&x, &y, 7).unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.9, "got {acc}");
    }

    #[test]
    fn k1_memorizes_training_data() {
        let (x, y) = linear_world(300, 2);
        let m = KnnClassifier::fit(&x, &y, 1).unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn probabilities_are_neighbour_fractions() {
        let (x, y) = linear_world(100, 3);
        let m = KnnClassifier::fit(&x, &y, 4).unwrap();
        for p in m.predict_proba(&x).unwrap() {
            let scaled = p * 4.0;
            assert!((scaled - scaled.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn validation() {
        let (x, y) = linear_world(50, 4);
        assert!(KnnClassifier::fit(&x, &y, 0).is_err());
        assert!(KnnClassifier::fit(&x, &y, 51).is_err());
        let m = KnnClassifier::fit(&x, &y, 3).unwrap();
        assert!(m.predict_proba(&Matrix::zeros(1, 9)).is_err());
        assert_eq!(m.k(), 3);
    }
}
