//! Classification and probability metrics.

use fact_data::{FactError, Result};

/// 2×2 confusion matrix for binary classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Tabulate from truths and predictions.
    pub fn from_predictions(truth: &[bool], pred: &[bool]) -> Result<Self> {
        check_pair(truth, pred)?;
        let mut cm = ConfusionMatrix {
            tp: 0,
            fp: 0,
            tn: 0,
            fn_: 0,
        };
        for (&t, &p) in truth.iter().zip(pred) {
            match (t, p) {
                (true, true) => cm.tp += 1,
                (false, true) => cm.fp += 1,
                (false, false) => cm.tn += 1,
                (true, false) => cm.fn_ += 1,
            }
        }
        Ok(cm)
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// True-positive rate (recall / sensitivity); `None` with no positives.
    pub fn tpr(&self) -> Option<f64> {
        let denom = self.tp + self.fn_;
        (denom > 0).then(|| self.tp as f64 / denom as f64)
    }

    /// False-positive rate; `None` with no negatives.
    pub fn fpr(&self) -> Option<f64> {
        let denom = self.fp + self.tn;
        (denom > 0).then(|| self.fp as f64 / denom as f64)
    }

    /// Precision (positive predictive value); `None` with no predicted
    /// positives.
    pub fn precision(&self) -> Option<f64> {
        let denom = self.tp + self.fp;
        (denom > 0).then(|| self.tp as f64 / denom as f64)
    }
}

fn check_pair<T, U>(a: &[T], b: &[U]) -> Result<()> {
    if a.len() != b.len() {
        return Err(FactError::LengthMismatch {
            expected: a.len(),
            actual: b.len(),
        });
    }
    if a.is_empty() {
        return Err(FactError::EmptyData("metric of empty predictions".into()));
    }
    Ok(())
}

/// Fraction of correct predictions.
pub fn accuracy(truth: &[bool], pred: &[bool]) -> Result<f64> {
    check_pair(truth, pred)?;
    Ok(truth.iter().zip(pred).filter(|(t, p)| t == p).count() as f64 / truth.len() as f64)
}

/// Precision; errors when nothing was predicted positive.
pub fn precision(truth: &[bool], pred: &[bool]) -> Result<f64> {
    ConfusionMatrix::from_predictions(truth, pred)?
        .precision()
        .ok_or_else(|| FactError::Numeric("precision undefined: no predicted positives".into()))
}

/// Recall; errors when there are no true positives in the data.
pub fn recall(truth: &[bool], pred: &[bool]) -> Result<f64> {
    ConfusionMatrix::from_predictions(truth, pred)?
        .tpr()
        .ok_or_else(|| FactError::Numeric("recall undefined: no positive truths".into()))
}

/// F1 score (harmonic mean of precision and recall).
pub fn f1_score(truth: &[bool], pred: &[bool]) -> Result<f64> {
    let p = precision(truth, pred)?;
    let r = recall(truth, pred)?;
    if p + r == 0.0 {
        return Ok(0.0);
    }
    Ok(2.0 * p * r / (p + r))
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney) formulation,
/// with tie handling. Errors unless both classes are present.
pub fn roc_auc(truth: &[bool], scores: &[f64]) -> Result<f64> {
    check_pair(truth, scores)?;
    let n_pos = truth.iter().filter(|&&t| t).count();
    let n_neg = truth.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Err(FactError::Numeric(
            "AUC undefined with a single class".into(),
        ));
    }
    // average ranks of scores
    let n = scores.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = avg;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = truth
        .iter()
        .zip(&ranks)
        .filter(|(&t, _)| t)
        .map(|(_, &r)| r)
        .sum();
    let auc =
        (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64);
    Ok(auc)
}

/// Binary cross-entropy of predicted probabilities (clipped at 1e-12).
pub fn log_loss(truth: &[bool], probs: &[f64]) -> Result<f64> {
    check_pair(truth, probs)?;
    let mut total = 0.0;
    for (&t, &p) in truth.iter().zip(probs) {
        let p = p.clamp(1e-12, 1.0 - 1e-12);
        total += if t { -p.ln() } else { -(1.0 - p).ln() };
    }
    Ok(total / truth.len() as f64)
}

/// Brier score (mean squared probability error).
pub fn brier_score(truth: &[bool], probs: &[f64]) -> Result<f64> {
    check_pair(truth, probs)?;
    Ok(truth
        .iter()
        .zip(probs)
        .map(|(&t, &p)| {
            let target = if t { 1.0 } else { 0.0 };
            (p - target) * (p - target)
        })
        .sum::<f64>()
        / truth.len() as f64)
}

/// Calibration curve over `n_bins` equal-width probability bins: returns
/// `(mean predicted, observed positive fraction, count)` for each non-empty
/// bin in order.
pub fn calibration_curve(
    truth: &[bool],
    probs: &[f64],
    n_bins: usize,
) -> Result<Vec<(f64, f64, usize)>> {
    check_pair(truth, probs)?;
    if n_bins == 0 {
        return Err(FactError::InvalidArgument("n_bins must be positive".into()));
    }
    let mut sums = vec![(0.0f64, 0usize, 0usize); n_bins]; // (p sum, pos, count)
    for (&t, &p) in truth.iter().zip(probs) {
        let b = ((p * n_bins as f64) as usize).min(n_bins - 1);
        sums[b].0 += p;
        if t {
            sums[b].1 += 1;
        }
        sums[b].2 += 1;
    }
    Ok(sums
        .into_iter()
        .filter(|&(_, _, c)| c > 0)
        .map(|(ps, pos, c)| (ps / c as f64, pos as f64 / c as f64, c))
        .collect())
}

/// Mean squared error for regression.
pub fn mse(truth: &[f64], pred: &[f64]) -> Result<f64> {
    check_pair(truth, pred)?;
    Ok(truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / truth.len() as f64)
}

/// Mean absolute error for regression.
pub fn mae(truth: &[f64], pred: &[f64]) -> Result<f64> {
    check_pair(truth, pred)?;
    Ok(truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / truth.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: [bool; 6] = [true, true, true, false, false, false];
    const P: [bool; 6] = [true, true, false, true, false, false];

    #[test]
    fn confusion_matrix_counts() {
        let cm = ConfusionMatrix::from_predictions(&T, &P).unwrap();
        assert_eq!(cm.tp, 2);
        assert_eq!(cm.fn_, 1);
        assert_eq!(cm.fp, 1);
        assert_eq!(cm.tn, 2);
        assert_eq!(cm.total(), 6);
        assert!((cm.tpr().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.fpr().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn basic_metrics() {
        assert!((accuracy(&T, &P).unwrap() - 4.0 / 6.0).abs() < 1e-12);
        assert!((precision(&T, &P).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((recall(&T, &P).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((f1_score(&T, &P).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn metric_edge_cases() {
        assert!(accuracy(&[], &[]).is_err());
        assert!(accuracy(&[true], &[true, false]).is_err());
        // no predicted positives
        assert!(precision(&[true, false], &[false, false]).is_err());
        // no true positives in data
        assert!(recall(&[false, false], &[true, false]).is_err());
    }

    #[test]
    fn auc_perfect_and_random() {
        let truth = [false, false, true, true];
        assert_eq!(roc_auc(&truth, &[0.1, 0.2, 0.8, 0.9]).unwrap(), 1.0);
        assert_eq!(roc_auc(&truth, &[0.9, 0.8, 0.2, 0.1]).unwrap(), 0.0);
        assert_eq!(roc_auc(&truth, &[0.5, 0.5, 0.5, 0.5]).unwrap(), 0.5);
        assert!(roc_auc(&[true, true], &[0.1, 0.2]).is_err());
    }

    #[test]
    fn auc_with_ties_known_value() {
        // scores: pos {0.8, 0.5}, neg {0.5, 0.2}:
        // pairs: (0.8>0.5)=1, (0.8>0.2)=1, (0.5=0.5)=0.5, (0.5>0.2)=1 → 3.5/4
        let auc = roc_auc(&[true, true, false, false], &[0.8, 0.5, 0.5, 0.2]).unwrap();
        assert!((auc - 0.875).abs() < 1e-12);
    }

    #[test]
    fn log_loss_and_brier() {
        let truth = [true, false];
        let good = [0.9, 0.1];
        let bad = [0.1, 0.9];
        assert!(log_loss(&truth, &good).unwrap() < log_loss(&truth, &bad).unwrap());
        assert!((brier_score(&truth, &good).unwrap() - 0.01).abs() < 1e-12);
        // clipping protects against p = 0/1
        assert!(log_loss(&[true], &[0.0]).unwrap().is_finite());
    }

    #[test]
    fn calibration_of_perfect_probs() {
        // predictions equal to empirical frequencies: curve on the diagonal
        let truth = [true, false, true, false, true, true, false, false];
        let probs = [0.9, 0.1, 0.9, 0.1, 0.9, 0.9, 0.1, 0.1];
        let curve = calibration_curve(&truth, &probs, 5).unwrap();
        assert_eq!(curve.len(), 2);
        for (mean_p, frac, _) in curve {
            assert!((mean_p - frac).abs() < 0.2);
        }
        assert!(calibration_curve(&truth, &probs, 0).is_err());
    }

    #[test]
    fn regression_metrics() {
        let t = [1.0, 2.0, 3.0];
        let p = [1.0, 2.5, 2.0];
        assert!((mse(&t, &p).unwrap() - (0.25 + 1.0) / 3.0).abs() < 1e-12);
        assert!((mae(&t, &p).unwrap() - 0.5).abs() < 1e-12);
    }
}
