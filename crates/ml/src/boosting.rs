//! Gradient-boosted trees for binary classification (logistic loss,
//! Newton leaf values — LogitBoost/XGBoost-style second-order updates).
//!
//! Each round fits a shallow regression tree to the loss gradient and steps
//! the score function by `learning_rate` times the tree's Newton leaf
//! estimates. Shallow trees keep individual rounds interpretable-ish, while
//! the ensemble reaches accuracy the single CART tree cannot.

use fact_data::{FactError, Matrix, Result};

use crate::{check_xy, sigmoid, Classifier};

/// Boosting hyper-parameters.
#[derive(Debug, Clone)]
pub struct BoostConfig {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage per round.
    pub learning_rate: f64,
    /// Depth of each regression tree (2 captures pairwise interactions).
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
}

impl Default for BoostConfig {
    fn default() -> Self {
        BoostConfig {
            n_rounds: 60,
            learning_rate: 0.2,
            max_depth: 2,
            min_samples_leaf: 5,
        }
    }
}

/// A node of the internal regression tree (Newton leaf values).
#[derive(Debug, Clone)]
enum RegNode {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<RegNode>,
        right: Box<RegNode>,
    },
}

impl RegNode {
    fn predict(&self, row: &[f64]) -> f64 {
        match self {
            RegNode::Leaf(v) => *v,
            RegNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] <= *threshold {
                    left.predict(row)
                } else {
                    right.predict(row)
                }
            }
        }
    }
}

/// Newton leaf value: Σ gradient / Σ hessian (clipped).
fn leaf_value(rows: &[usize], grad: &[f64], hess: &[f64]) -> f64 {
    let g: f64 = rows.iter().map(|&i| grad[i]).sum();
    let h: f64 = rows.iter().map(|&i| hess[i]).sum();
    (g / (h + 1e-9)).clamp(-4.0, 4.0)
}

fn build_reg_tree(
    x: &Matrix,
    grad: &[f64],
    hess: &[f64],
    rows: &[usize],
    depth: usize,
    cfg: &BoostConfig,
) -> RegNode {
    if depth >= cfg.max_depth || rows.len() < 2 * cfg.min_samples_leaf {
        return RegNode::Leaf(leaf_value(rows, grad, hess));
    }
    // best split by gain = G_L²/H_L + G_R²/H_R − G²/H
    let g_total: f64 = rows.iter().map(|&i| grad[i]).sum();
    let h_total: f64 = rows.iter().map(|&i| hess[i]).sum();
    let parent_score = g_total * g_total / (h_total + 1e-9);
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    let mut vals: Vec<(f64, usize)> = Vec::with_capacity(rows.len());
    for f in 0..x.cols() {
        vals.clear();
        for &i in rows {
            vals.push((x.get(i, f), i));
        }
        vals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut gl = 0.0;
        let mut hl = 0.0;
        for k in 0..vals.len() - 1 {
            let i = vals[k].1;
            gl += grad[i];
            hl += hess[i];
            if vals[k].0 == vals[k + 1].0 {
                continue;
            }
            let left_n = k + 1;
            let right_n = vals.len() - left_n;
            if left_n < cfg.min_samples_leaf || right_n < cfg.min_samples_leaf {
                continue;
            }
            let gr = g_total - gl;
            let hr = h_total - hl;
            let gain = gl * gl / (hl + 1e-9) + gr * gr / (hr + 1e-9) - parent_score;
            if gain > best.map(|b| b.0).unwrap_or(1e-9) {
                best = Some((gain, f, (vals[k].0 + vals[k + 1].0) / 2.0));
            }
        }
    }
    match best {
        None => RegNode::Leaf(leaf_value(rows, grad, hess)),
        Some((_, feature, threshold)) => {
            let (l, r): (Vec<usize>, Vec<usize>) =
                rows.iter().partition(|&&i| x.get(i, feature) <= threshold);
            RegNode::Split {
                feature,
                threshold,
                left: Box::new(build_reg_tree(x, grad, hess, &l, depth + 1, cfg)),
                right: Box::new(build_reg_tree(x, grad, hess, &r, depth + 1, cfg)),
            }
        }
    }
}

/// A fitted gradient-boosted classifier.
#[derive(Debug, Clone)]
pub struct GradientBoost {
    base_score: f64,
    trees: Vec<RegNode>,
    learning_rate: f64,
    n_features: usize,
}

impl GradientBoost {
    /// Fit with logistic loss.
    #[allow(clippy::needless_range_loop)] // gradient/hessian/scores update in lockstep
    pub fn fit(x: &Matrix, y: &[bool], cfg: &BoostConfig) -> Result<Self> {
        check_xy(x, y.len())?;
        if cfg.n_rounds == 0 || cfg.learning_rate <= 0.0 || cfg.max_depth == 0 {
            return Err(FactError::InvalidArgument(
                "n_rounds, learning_rate, max_depth must be positive".into(),
            ));
        }
        let n = x.rows();
        let pos = y.iter().filter(|&&b| b).count();
        if pos == 0 || pos == n {
            return Err(FactError::InvalidArgument(
                "boosting requires both classes".into(),
            ));
        }
        let p0 = pos as f64 / n as f64;
        let base_score = (p0 / (1.0 - p0)).ln();
        let mut scores = vec![base_score; n];
        let mut trees = Vec::with_capacity(cfg.n_rounds);
        let rows: Vec<usize> = (0..n).collect();
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];
        for _ in 0..cfg.n_rounds {
            for i in 0..n {
                let p = sigmoid(scores[i]);
                let target = if y[i] { 1.0 } else { 0.0 };
                grad[i] = target - p;
                hess[i] = (p * (1.0 - p)).max(1e-9);
            }
            let tree = build_reg_tree(x, &grad, &hess, &rows, 0, cfg);
            for i in 0..n {
                scores[i] += cfg.learning_rate * tree.predict(x.row(i));
            }
            trees.push(tree);
        }
        Ok(GradientBoost {
            base_score,
            trees,
            learning_rate: cfg.learning_rate,
            n_features: x.cols(),
        })
    }

    /// Number of fitted rounds.
    pub fn n_rounds(&self) -> usize {
        self.trees.len()
    }

    /// Raw score (log-odds) for one row.
    pub fn score_row(&self, row: &[f64]) -> Result<f64> {
        if row.len() != self.n_features {
            return Err(FactError::LengthMismatch {
                expected: self.n_features,
                actual: row.len(),
            });
        }
        let mut s = self.base_score;
        for t in &self.trees {
            s += self.learning_rate * t.predict(row);
        }
        Ok(s)
    }
}

impl Classifier for GradientBoost {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            out.push(sigmoid(self.score_row(x.row(i))?));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, roc_auc};
    use crate::testutil::{linear_world, xor_world};

    #[test]
    fn boosting_fits_xor_with_depth2() {
        let (x, y) = xor_world(1500, 1);
        let m = GradientBoost::fit(&x, &y, &BoostConfig::default()).unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        assert!(acc > 0.93, "boosted depth-2 trees crack XOR: {acc}");
        assert_eq!(m.n_rounds(), 60);
    }

    #[test]
    fn stumps_cannot_fit_xor() {
        let (x, y) = xor_world(1500, 2);
        let m = GradientBoost::fit(
            &x,
            &y,
            &BoostConfig {
                max_depth: 1,
                ..BoostConfig::default()
            },
        )
        .unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        assert!(acc < 0.7, "stumps lack interactions: {acc}");
    }

    #[test]
    fn more_rounds_improve_auc_until_plateau() {
        let (x, y) = linear_world(1000, 3);
        let auc_at = |rounds: usize| {
            let m = GradientBoost::fit(
                &x,
                &y,
                &BoostConfig {
                    n_rounds: rounds,
                    ..BoostConfig::default()
                },
            )
            .unwrap();
            roc_auc(&y, &m.predict_proba(&x).unwrap()).unwrap()
        };
        assert!(auc_at(40) >= auc_at(2));
        assert!(auc_at(40) > 0.97);
    }

    #[test]
    fn probabilities_bounded() {
        let (x, y) = linear_world(300, 4);
        let m = GradientBoost::fit(&x, &y, &BoostConfig::default()).unwrap();
        for p in m.predict_proba(&x).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn validation() {
        let (x, y) = linear_world(100, 5);
        let bad = BoostConfig {
            n_rounds: 0,
            ..BoostConfig::default()
        };
        assert!(GradientBoost::fit(&x, &y, &bad).is_err());
        assert!(GradientBoost::fit(&x, &[true; 100], &BoostConfig::default()).is_err());
        let m = GradientBoost::fit(&x, &y, &BoostConfig::default()).unwrap();
        assert!(m.score_row(&[1.0]).is_err());
    }
}
