//! Gaussian naive Bayes.

use fact_data::{FactError, Matrix, Result};

use crate::{check_xy, Classifier};

/// A fitted Gaussian naive Bayes classifier.
#[derive(Debug, Clone)]
pub struct GaussianNb {
    prior_pos: f64,
    // per-feature (mean, var) for each class
    pos: Vec<(f64, f64)>,
    neg: Vec<(f64, f64)>,
}

const VAR_FLOOR: f64 = 1e-9;

impl GaussianNb {
    /// Fit on features `x` and labels `y`. Both classes must be present.
    #[allow(clippy::needless_range_loop)] // per-class parallel accumulators
    pub fn fit(x: &Matrix, y: &[bool]) -> Result<Self> {
        check_xy(x, y.len())?;
        let n_pos = y.iter().filter(|&&b| b).count();
        let n_neg = y.len() - n_pos;
        if n_pos == 0 || n_neg == 0 {
            return Err(FactError::InvalidArgument(
                "naive Bayes requires both classes in training data".into(),
            ));
        }
        let d = x.cols();
        let mut pos = vec![(0.0, 0.0); d];
        let mut neg = vec![(0.0, 0.0); d];
        // means
        for i in 0..x.rows() {
            let row = x.row(i);
            let acc = if y[i] { &mut pos } else { &mut neg };
            for (j, &v) in row.iter().enumerate() {
                acc[j].0 += v;
            }
        }
        for j in 0..d {
            pos[j].0 /= n_pos as f64;
            neg[j].0 /= n_neg as f64;
        }
        // variances
        for i in 0..x.rows() {
            let row = x.row(i);
            let acc = if y[i] { &mut pos } else { &mut neg };
            for (j, &v) in row.iter().enumerate() {
                let d = v - acc[j].0;
                acc[j].1 += d * d;
            }
        }
        for j in 0..d {
            pos[j].1 = (pos[j].1 / n_pos as f64).max(VAR_FLOOR);
            neg[j].1 = (neg[j].1 / n_neg as f64).max(VAR_FLOOR);
        }
        Ok(GaussianNb {
            prior_pos: n_pos as f64 / y.len() as f64,
            pos,
            neg,
        })
    }

    fn log_likelihood(row: &[f64], params: &[(f64, f64)]) -> f64 {
        let mut ll = 0.0;
        for (&v, &(m, var)) in row.iter().zip(params) {
            ll += -0.5 * ((v - m) * (v - m) / var + var.ln() + (2.0 * std::f64::consts::PI).ln());
        }
        ll
    }
}

impl Classifier for GaussianNb {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.cols() != self.pos.len() {
            return Err(FactError::LengthMismatch {
                expected: self.pos.len(),
                actual: x.cols(),
            });
        }
        let mut out = Vec::with_capacity(x.rows());
        let log_prior_pos = self.prior_pos.ln();
        let log_prior_neg = (1.0 - self.prior_pos).ln();
        for i in 0..x.rows() {
            let row = x.row(i);
            let lp = log_prior_pos + Self::log_likelihood(row, &self.pos);
            let ln = log_prior_neg + Self::log_likelihood(row, &self.neg);
            // stable softmax over two classes
            let m = lp.max(ln);
            let p = (lp - m).exp() / ((lp - m).exp() + (ln - m).exp());
            out.push(p);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::testutil::linear_world;

    #[test]
    fn separates_shifted_gaussians() {
        let (x, y) = linear_world(2000, 1);
        let m = GaussianNb::fit(&x, &y).unwrap();
        let pred = m.predict(&x).unwrap();
        assert!(accuracy(&y, &pred).unwrap() > 0.9);
    }

    #[test]
    fn probabilities_valid() {
        let (x, y) = linear_world(300, 2);
        let m = GaussianNb::fit(&x, &y).unwrap();
        for p in m.predict_proba(&x).unwrap() {
            assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn single_class_rejected() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(GaussianNb::fit(&x, &[true, true]).is_err());
    }

    #[test]
    fn constant_feature_does_not_explode() {
        let x = Matrix::from_rows(&[
            vec![1.0, 5.0],
            vec![2.0, 5.0],
            vec![3.0, 5.0],
            vec![4.0, 5.0],
        ])
        .unwrap();
        let m = GaussianNb::fit(&x, &[false, false, true, true]).unwrap();
        let p = m.predict_proba(&x).unwrap();
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn prior_shows_in_uninformative_features() {
        // identical feature distributions: probability ≈ prior
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![0.0], vec![0.0]]).unwrap();
        let m = GaussianNb::fit(&x, &[true, true, true, false]).unwrap();
        let p = m.predict_proba(&x).unwrap();
        assert!((p[0] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn dimension_mismatch() {
        let (x, y) = linear_world(100, 3);
        let m = GaussianNb::fit(&x, &y).unwrap();
        assert!(m.predict_proba(&Matrix::zeros(2, 9)).is_err());
    }
}
