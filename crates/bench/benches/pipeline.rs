//! Criterion benchmark for the end-to-end guarded pipeline (E10 kernel):
//! the full cost of being responsible — load + guards + train + audits +
//! DP release + certification — on a 4k-row world.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fact_core::{FactPolicy, GuardedPipeline};
use fact_data::synth::loans::{generate_loans, LoanConfig, LEGIT_FEATURES};
use fact_data::{Dataset, Matrix, Result};
use fact_ml::logistic::{LogisticConfig, LogisticRegression};
use fact_ml::Classifier;

fn trainer(x: &Matrix, y: &[bool], _d: &Dataset, seed: u64) -> Result<Box<dyn Classifier>> {
    let cfg = LogisticConfig {
        seed,
        epochs: 20,
        ..LogisticConfig::default()
    };
    Ok(Box::new(LogisticRegression::fit(x, y, None, &cfg)?))
}

fn policy() -> FactPolicy {
    let mut p = FactPolicy::strict("group", "B");
    if let Some(a) = p.accuracy.as_mut() {
        a.min_accuracy = 0.6;
    }
    p
}

fn full_run(world: &Dataset) -> bool {
    let mut p = GuardedPipeline::new(policy()).unwrap();
    p.load_data("loans", "bench", world.clone()).unwrap();
    p.train("m", "bench", &LEGIT_FEATURES, "approved", 1, trainer)
        .unwrap();
    p.audit_fairness().unwrap();
    if let Some(c) = p.model_card_mut() {
        c.intended_use = "bench".into();
    }
    p.audit_transparency().unwrap();
    p.release_mean("income", 0.0, 250.0, 0.2, 1).unwrap();
    p.certify().is_green()
}

fn bench_pipeline(c: &mut Criterion) {
    let world = generate_loans(&LoanConfig {
        n: 4_000,
        seed: 11,
        ..LoanConfig::default()
    });
    let mut g = c.benchmark_group("e10_pipeline");
    g.sample_size(10);
    g.bench_function("guarded_pipeline_4k_end_to_end", |b| {
        b.iter(|| black_box(full_run(&world)))
    });
    g.finish();
}

criterion_group!(pipeline, bench_pipeline);
criterion_main!(pipeline);
