//! Criterion benchmarks for the columnar segment engine (E17).
//!
//! `e17_scan` prices the primitives behind every segment-backed audit:
//! spilling a dataset, a column-pruned scan, a zone-map-pruned selective
//! scan, and the dense group-by against its in-memory counterpart.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fact_data::agg::{aggregate, aggregate_segments, AggFn};
use fact_data::{Dataset, Predicate, SegmentWriteConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 20_000;
const FILLER: usize = 12;
const ROWS_PER_SEGMENT: usize = 2_048;

fn wide_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let groups = ["asia", "europe", "africa", "americas"];
    let g: Vec<&str> = (0..ROWS)
        .map(|_| groups[rng.gen_range(0..4usize)])
        .collect();
    let ts: Vec<f64> = (0..ROWS).map(|i| i as f64).collect();
    let score: Vec<f64> = (0..ROWS).map(|_| rng.gen_range(-3.0..3.0)).collect();
    let won: Vec<bool> = (0..ROWS).map(|_| rng.gen_bool(0.4)).collect();
    let mut b = Dataset::builder()
        .cat("group", &g)
        .f64("ts", ts)
        .f64("score", score)
        .boolean("won", won);
    for c in 0..FILLER {
        let col: Vec<f64> = (0..ROWS).map(|_| rng.gen_range(0.0..1.0)).collect();
        b = b.f64(format!("filler_{c:02}"), col);
    }
    b.build().expect("valid dataset")
}

fn bench_segments(c: &mut Criterion) {
    let ds = wide_dataset(17);
    let dir = std::env::temp_dir().join(format!("fseg-bench-{}", std::process::id()));
    let cfg = SegmentWriteConfig {
        rows_per_segment: ROWS_PER_SEGMENT,
        ..Default::default()
    };
    let set = ds.to_segments(&dir, &cfg).expect("spill");
    let specs = [
        ("score", AggFn::Mean),
        ("score", AggFn::Sum),
        ("won", AggFn::Count),
        ("won", AggFn::Mean),
    ];
    let zone_pred = Predicate::Range {
        column: "ts".into(),
        min: 0.0,
        max: ROWS as f64 * 0.10,
    };

    let mut g = c.benchmark_group("e17_scan");
    g.bench_function("spill_20k_x16", |b| {
        b.iter(|| {
            let d = std::env::temp_dir().join(format!("fseg-bench-w-{}", std::process::id()));
            let s = black_box(&ds).to_segments(&d, &cfg).expect("spill");
            std::fs::remove_dir_all(s.dir()).ok();
            s.n_segments()
        })
    });
    g.bench_function("scan_2_of_16_columns", |b| {
        b.iter(|| {
            black_box(&set)
                .scan_columns(&["group", "score"], &Predicate::All)
                .expect("scan")
        })
    });
    g.bench_function("scan_zone_pruned_10pct", |b| {
        b.iter(|| {
            black_box(&set)
                .scan_columns(&["group", "score"], &zone_pred)
                .expect("scan")
        })
    });
    g.bench_function("group_by_segments", |b| {
        b.iter(|| {
            aggregate_segments(black_box(&set), "group", &specs, &Predicate::All).expect("agg")
        })
    });
    g.bench_function("group_by_in_memory", |b| {
        b.iter(|| aggregate(black_box(&ds), "group", &specs).expect("agg"))
    });
    g.finish();
    std::fs::remove_dir_all(set.dir()).ok();
}

criterion_group!(segments, bench_segments);
criterion_main!(segments);
