//! Criterion microbenchmarks for the compute kernels behind each experiment.
//!
//! One group per experiment family (see DESIGN.md experiment index):
//! fairness metrics & mitigation (E1/E2), multiple testing (E3), Simpson
//! (E4), DP mechanisms (E5), Mondrian (E6), surrogate distillation (E7),
//! causal estimators (E8), stream guards (E9).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use fact_accuracy::simpson::audit_simpson;
use fact_causal::ipw::ipw_ate;
use fact_causal::propensity::psm_ate;
use fact_confidentiality::kanon::mondrian_k_anonymize;
use fact_confidentiality::mechanisms::{dp_histogram, dp_mean, dp_quantile};
use fact_core::runtime::GuardedStream;
use fact_data::stream::InternetMinute;
use fact_data::synth::admissions::{generate_admissions, AdmissionsConfig};
use fact_data::synth::census::{generate_census, CensusConfig};
use fact_data::synth::clinical::{generate_clinical, ClinicalConfig, CLINICAL_COVARIATES};
use fact_data::synth::loans::{generate_loans, LoanConfig};
use fact_fairness::metrics::{disparate_impact, equalized_odds_difference};
use fact_fairness::mitigation::repair::repair_disparate_impact;
use fact_fairness::mitigation::reweighing::reweighing_weights;
use fact_fairness::protected_mask;
use fact_fairness::proxy::scan_proxies;
use fact_ml::logistic::{LogisticConfig, LogisticRegression};
use fact_ml::tree::{DecisionTree, TreeConfig};
use fact_ml::Classifier;
use fact_stats::multiple::{benjamini_hochberg, holm};
use fact_transparency::surrogate::SurrogateExplainer;
use rand::{Rng, SeedableRng};

fn bench_fairness_metrics(c: &mut Criterion) {
    // E1 kernel: group metrics on 100k predictions
    let n = 100_000;
    let pred: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
    let truth: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    let mask: Vec<bool> = (0..n).map(|i| i % 5 == 0).collect();
    let mut g = c.benchmark_group("e1_fairness_metrics");
    g.bench_function("disparate_impact_100k", |b| {
        b.iter(|| disparate_impact(black_box(&pred), black_box(&mask)).unwrap())
    });
    g.bench_function("equalized_odds_100k", |b| {
        b.iter(|| equalized_odds_difference(black_box(&truth), &pred, &mask).unwrap())
    });
    let loans = generate_loans(&LoanConfig {
        n: 10_000,
        seed: 1,
        proxy_strength: 0.7,
        ..LoanConfig::default()
    });
    let lmask = protected_mask(&loans, "group", "B").unwrap();
    g.bench_function("proxy_scan_10k_x7", |b| {
        b.iter(|| scan_proxies(black_box(&loans), &lmask, &["group", "approved"]).unwrap())
    });
    g.finish();
}

fn bench_mitigation(c: &mut Criterion) {
    // E2 kernel
    let loans = generate_loans(&LoanConfig {
        n: 10_000,
        seed: 2,
        bias_strength: 0.4,
        feature_gap: 10.0,
        ..LoanConfig::default()
    });
    let mask = protected_mask(&loans, "group", "B").unwrap();
    let y = loans.bool_column("approved").unwrap().to_vec();
    let mut g = c.benchmark_group("e2_mitigation");
    g.bench_function("reweighing_weights_10k", |b| {
        b.iter(|| reweighing_weights(black_box(&y), black_box(&mask)).unwrap())
    });
    g.sample_size(20);
    g.bench_function("di_repair_10k_x4", |b| {
        b.iter(|| {
            repair_disparate_impact(
                black_box(&loans),
                &["income", "credit_score", "debt_ratio", "years_employed"],
                &mask,
                0.8,
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_multiple_testing(c: &mut Criterion) {
    // E3 kernel: corrections on 10k p-values
    let ps: Vec<f64> = (1..=10_000).map(|i| i as f64 / 10_001.0).collect();
    let mut g = c.benchmark_group("e3_multiple_testing");
    g.bench_function("holm_10k", |b| b.iter(|| holm(black_box(&ps)).unwrap()));
    g.bench_function("bh_10k", |b| {
        b.iter(|| benjamini_hochberg(black_box(&ps)).unwrap())
    });
    g.finish();
}

fn bench_simpson(c: &mut Criterion) {
    // E4 kernel
    let ds = generate_admissions(&AdmissionsConfig { n: 12_000, seed: 4 });
    c.benchmark_group("e4_simpson")
        .bench_function("audit_12k", |b| {
            b.iter(|| {
                audit_simpson(
                    black_box(&ds),
                    "admitted",
                    "gender",
                    "male",
                    "female",
                    "department",
                )
                .unwrap()
            })
        });
}

fn bench_dp_mechanisms(c: &mut Criterion) {
    // E5 kernel
    let census = generate_census(&CensusConfig {
        n: 10_000,
        seed: 5,
        ..CensusConfig::default()
    });
    let salaries = census.f64_column("salary").unwrap();
    let counts: Vec<u64> = (0..1000).map(|i| (i * 37 % 500) as u64).collect();
    let mut g = c.benchmark_group("e5_dp_mechanisms");
    g.bench_function("dp_mean_10k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            dp_mean(black_box(&salaries), 0.0, 250.0, 1.0, seed).unwrap()
        })
    });
    g.bench_function("dp_histogram_1k_buckets", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            dp_histogram(black_box(&counts), 1.0, seed).unwrap()
        })
    });
    g.bench_function("dp_quantile_10k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            dp_quantile(black_box(&salaries), 0.5, 0.0, 250.0, 1.0, seed).unwrap()
        })
    });
    g.finish();
}

fn bench_kanon(c: &mut Criterion) {
    // E6 kernel
    let census = generate_census(&CensusConfig {
        n: 5_000,
        seed: 6,
        ..CensusConfig::default()
    });
    let mut g = c.benchmark_group("e6_kanon");
    g.sample_size(10);
    g.bench_function("mondrian_5k_k10", |b| {
        b.iter(|| mondrian_k_anonymize(black_box(&census), &["age", "sex", "zipcode"], 10).unwrap())
    });
    g.finish();
}

fn bench_surrogate(c: &mut Criterion) {
    // E7 kernel: tree distillation of a fitted model's predictions
    let loans = generate_loans(&LoanConfig {
        n: 6_000,
        seed: 7,
        ..LoanConfig::default()
    });
    let x = loans
        .to_matrix(&["income", "credit_score", "debt_ratio", "years_employed"])
        .unwrap();
    let y = loans.bool_column("approved").unwrap().to_vec();
    let model = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
    let names = ["income", "credit_score", "debt_ratio", "years_employed"];
    let mut g = c.benchmark_group("e7_surrogate");
    g.sample_size(10);
    g.bench_function("distill_depth4_6k", |b| {
        b.iter(|| SurrogateExplainer::distill(&model, black_box(&x), &x, &names, 4).unwrap())
    });
    g.bench_function("tree_fit_6k", |b| {
        b.iter(|| DecisionTree::fit(black_box(&x), &y, &TreeConfig::default()).unwrap())
    });
    g.bench_function("tree_predict_6k", |b| {
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default()).unwrap();
        b.iter(|| tree.predict(black_box(&x)).unwrap())
    });
    g.finish();
}

fn bench_causal(c: &mut Criterion) {
    // E8 kernel
    let w = generate_clinical(&ClinicalConfig {
        n: 8_000,
        seed: 8,
        ..ClinicalConfig::default()
    });
    let x = w.data.to_matrix(&CLINICAL_COVARIATES).unwrap();
    let t = w.data.bool_column("treated").unwrap().to_vec();
    let y = w.data.bool_column("recovered").unwrap().to_vec();
    let mut g = c.benchmark_group("e8_causal");
    g.sample_size(10);
    g.bench_function("psm_8k", |b| {
        b.iter(|| psm_ate(black_box(&x), &t, &y, f64::INFINITY, 0).unwrap())
    });
    g.bench_function("ipw_8k", |b| {
        b.iter(|| ipw_ate(black_box(&x), &t, &y, 0.01, 0).unwrap())
    });
    g.finish();
}

fn bench_stream_guards(c: &mut Criterion) {
    // E9 kernel: per-event cost with and without guards
    let events: Vec<_> = InternetMinute::new(9).take(100_000).collect();
    let mut g = c.benchmark_group("e9_stream_guards");
    g.sample_size(20);
    g.bench_function("unguarded_100k", |b| {
        b.iter_batched(
            GuardedStream::unguarded,
            |mut p| {
                for ev in &events {
                    p.process(ev);
                }
                black_box(p.value_sum())
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("guarded_100k", |b| {
        b.iter_batched(
            || GuardedStream::guarded(5_000, 0.8, 10_000, 100.0, 100, 1).unwrap(),
            |mut p| {
                for ev in &events {
                    p.process(ev);
                }
                black_box(p.value_sum())
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    // E12 kernel: cache-blocked + parallel matmul vs the naive triple loop
    let square = |n: usize, seed: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        fact_data::Matrix::from_flat(data, n, n).unwrap()
    };
    let a = square(128, 12);
    let b = square(128, 13);
    let mut g = c.benchmark_group("e12_matmul");
    g.sample_size(20);
    g.bench_function("naive_128", |bch| {
        bch.iter(|| black_box(&a).matmul_naive(black_box(&b)).unwrap())
    });
    g.bench_function("tiled_par_128", |bch| {
        bch.iter(|| black_box(&a).matmul(black_box(&b)).unwrap())
    });
    g.bench_function("tiled_1worker_128", |bch| {
        fact_par::set_workers(1);
        bch.iter(|| black_box(&a).matmul(black_box(&b)).unwrap());
        fact_par::set_workers(0);
    });
    g.finish();
}

fn bench_training(c: &mut Criterion) {
    // shared substrate: model training cost
    let loans = generate_loans(&LoanConfig {
        n: 10_000,
        seed: 10,
        ..LoanConfig::default()
    });
    let x = loans
        .to_matrix(&["income", "credit_score", "debt_ratio", "years_employed"])
        .unwrap();
    let y = loans.bool_column("approved").unwrap().to_vec();
    let mut g = c.benchmark_group("substrate_training");
    g.sample_size(10);
    g.bench_function("logistic_fit_10k_x4", |b| {
        b.iter(|| {
            LogisticRegression::fit(
                black_box(&x),
                &y,
                None,
                &LogisticConfig {
                    epochs: 20,
                    ..LogisticConfig::default()
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_fairness_metrics,
    bench_mitigation,
    bench_multiple_testing,
    bench_simpson,
    bench_dp_mechanisms,
    bench_kanon,
    bench_surrogate,
    bench_causal,
    bench_stream_guards,
    bench_matmul,
    bench_training,
);
criterion_main!(kernels);
