//! E15 — segmented audit rotation: restart cost is O(segment), not
//! O(history) (EXPERIMENTS.md, E15).
//!
//! The E13 sink wrote one ever-growing JSONL file, so startup recovery
//! replayed the *entire* history — a service with a year of audit log paid
//! a year of hashing before serving its first decision. The segmented sink
//! rolls to a new file past `max_segment_bytes`, opening each segment with
//! a chain-head handoff record so every segment verifies standalone. Three
//! phases pin the design down:
//!
//! 1. **Recovery scaling** — grow the log ≥10× while recovery's bytes-read
//!    (counted by an instrumented storage, not a stopwatch) stays bounded
//!    by one segment. The full-history audit, by contrast, grows linearly
//!    — that is exactly the work rotation moved off the restart path.
//! 2. **Standalone verification** — every segment of the largest log
//!    verifies on its own from its handoff record, and the segments stitch
//!    into one continuous chain.
//! 3. **Crash at the segment boundary** — a whole `DecisionService` is
//!    killed as the sink rolls (the torn handoff is the worst case: the
//!    newest segment is unusable), restarted, and must report **zero
//!    silent loss**: nothing head-committed missing, and a deliberately
//!    deleted middle segment shows up as exactly its entry count in
//!    `ServiceReport::lost_on_recovery` — provable, quantified, never
//!    papered over.
//!
//! `--smoke` runs reduced sizes with every hard assertion active (the CI
//! gate); the full run also writes `results/e15.txt`.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::header;
use fact_serve::audit_sink::{recover, AuditEvent, AuditSink, AuditSinkConfig, MemStorage};
use fact_serve::{
    verify_all_segments, AuditStorage, DecisionRequest, DecisionService, DegradePolicy,
    GuardConfig, InlineFeatures, ServeConfig,
};

/// Small segments so modest event counts produce deep segment chains.
const SEGMENT_BYTES: u64 = 8 * 1024;

fn sink_config(batch_max: usize) -> AuditSinkConfig {
    AuditSinkConfig {
        batch_max,
        flush_interval: Duration::from_millis(1),
        max_segment_bytes: SEGMENT_BYTES,
        ..AuditSinkConfig::default()
    }
}

fn flagged(key: u64) -> AuditEvent {
    AuditEvent::Flagged {
        shard: 0,
        route_key: key,
        probability: 0.125,
        favorable: false,
        group_b: key.is_multiple_of(2),
    }
}

/// An [`AuditStorage`] decorator that counts the bytes every
/// `read_segment` call returns — recovery cost measured in work, not
/// wall-clock, so the scaling claim is deterministic in CI.
struct CountingStorage {
    inner: MemStorage,
    read_bytes: Arc<AtomicU64>,
    reads: Arc<AtomicU64>,
}

impl AuditStorage for CountingStorage {
    fn list_segments(&mut self) -> io::Result<Vec<u64>> {
        self.inner.list_segments()
    }
    fn read_segment(&mut self, segment: u64) -> io::Result<Vec<u8>> {
        let bytes = self.inner.read_segment(segment)?;
        self.read_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(bytes)
    }
    fn open_segment(&mut self, segment: u64) -> io::Result<()> {
        self.inner.open_segment(segment)
    }
    fn append_log(&mut self, buf: &[u8]) -> io::Result<()> {
        self.inner.append_log(buf)
    }
    fn truncate_segment(&mut self, segment: u64, len: u64) -> io::Result<()> {
        self.inner.truncate_segment(segment, len)
    }
    fn sync_log(&mut self) -> io::Result<()> {
        self.inner.sync_log()
    }
    fn read_head(&mut self) -> io::Result<Option<Vec<u8>>> {
        self.inner.read_head()
    }
    fn write_head(&mut self, buf: &[u8]) -> io::Result<()> {
        self.inner.write_head(buf)
    }
}

/// Fill `storage` with `events` flagged decisions through a rotating sink
/// and return (total log bytes, segments present).
fn fill(storage: &MemStorage, events: u64) -> (u64, u64) {
    let sink = AuditSink::open_with_storage(&sink_config(64), Box::new(storage.clone()))
        .expect("open sink");
    let handle = sink.handle();
    for k in 0..events {
        handle.record(flagged(k));
    }
    drop(handle);
    let report = sink.finish();
    assert_eq!(report.dropped, 0, "healthy storage drops nothing");
    (
        storage.log_bytes().len() as u64,
        storage.segment_ids().len() as u64,
    )
}

struct ScalePoint {
    events: u64,
    log_bytes: u64,
    segments: u64,
    recovery_read: u64,
    recovery_us: f64,
    full_audit_read: u64,
}

/// Phase 1: recovery bytes-read must stay ~one segment while the log (and
/// the full-history audit's bytes-read) grows ≥10×.
fn scaling_phase(out: &mut String, sizes: &[u64]) -> Vec<ScalePoint> {
    let mut points = Vec::new();
    for &events in sizes {
        let storage = MemStorage::new();
        let (log_bytes, segments) = fill(&storage, events);

        let read_bytes = Arc::new(AtomicU64::new(0));
        let reads = Arc::new(AtomicU64::new(0));
        let mut counting = CountingStorage {
            inner: storage.restart(),
            read_bytes: Arc::clone(&read_bytes),
            reads: Arc::clone(&reads),
        };
        let t0 = Instant::now();
        let rec = recover(&mut counting).expect("recover");
        let recovery_us = t0.elapsed().as_nanos() as f64 / 1e3;
        assert_eq!(rec.lost, 0, "clean shutdown loses nothing: {rec:?}");
        assert_eq!(
            rec.replayed_segments, 1,
            "recovery must replay exactly the newest segment: {rec:?}"
        );
        let recovery_read = read_bytes.load(Ordering::Relaxed);

        read_bytes.store(0, Ordering::Relaxed);
        let audit = verify_all_segments(&mut counting).expect("full audit");
        assert!(audit.continuous, "clean log must audit continuous");
        let full_audit_read = read_bytes.load(Ordering::Relaxed);

        points.push(ScalePoint {
            events,
            log_bytes,
            segments,
            recovery_read,
            recovery_us,
            full_audit_read,
        });
    }

    println!(
        "E15a: restart cost vs log size (segment cap {} KiB)\n",
        SEGMENT_BYTES / 1024
    );
    let columns = [
        "events",
        "log(KiB)",
        "segments",
        "rec(KiB)",
        "rec(us)",
        "full(KiB)",
    ];
    let widths = [8, 9, 9, 9, 9, 10];
    header(&columns, &widths);
    let mut head = String::new();
    for (c, w) in columns.iter().zip(widths) {
        head.push_str(&format!("{c:>w$} "));
    }
    out.push_str(&head);
    out.push('\n');
    for p in &points {
        let line = format!(
            "{:>8} {:>9.1} {:>9} {:>9.1} {:>9.1} {:>10.1}",
            p.events,
            p.log_bytes as f64 / 1024.0,
            p.segments,
            p.recovery_read as f64 / 1024.0,
            p.recovery_us,
            p.full_audit_read as f64 / 1024.0,
        );
        println!("{line}");
        out.push_str(&line);
        out.push('\n');
    }

    // the claims, hard-asserted
    let (first, last) = (&points[0], &points[points.len() - 1]);
    // 10× the events should grow the log ~10×; constant per-line overhead
    // (digest, framing) pulls the byte ratio toward 10 from either side, so
    // the floor carries a 2% tolerance rather than demanding exactly ≥10×.
    assert!(
        last.log_bytes * 50 >= first.log_bytes * 49 * 10,
        "the log must grow ~10× (≥9.8×): {} → {}",
        first.log_bytes,
        last.log_bytes
    );
    assert!(
        last.full_audit_read >= first.full_audit_read * 5,
        "full-history audit work must grow with the log"
    );
    // one segment plus at most one batch of overshoot, at any history size
    for p in &points {
        assert!(
            p.recovery_read <= 3 * SEGMENT_BYTES,
            "recovery read {} bytes at {} events — not O(segment)",
            p.recovery_read,
            p.events
        );
    }
    let summary = format!(
        "\nlog grew {:.1}×; recovery stayed ≤{:.1} KiB (one segment) while \
         the full audit grew to {:.1} KiB — restart is O(segment)\n",
        last.log_bytes as f64 / first.log_bytes as f64,
        points
            .iter()
            .map(|p| p.recovery_read)
            .max()
            .unwrap_or_default() as f64
            / 1024.0,
        last.full_audit_read as f64 / 1024.0,
    );
    print!("{summary}");
    out.push_str(&summary);
    points
}

/// Phase 2: every segment of the deepest log verifies standalone from its
/// handoff record, and adjacent segments stitch continuously.
fn standalone_phase(out: &mut String, events: u64) {
    let storage = MemStorage::new();
    let (_, segments) = fill(&storage, events);
    let mut probe: Box<dyn AuditStorage> = Box::new(storage.restart());
    let audit = verify_all_segments(probe.as_mut()).expect("audit");
    assert_eq!(audit.segments.len() as u64, segments);
    let mut entries_total = 0u64;
    for (id, verdict) in &audit.segments {
        let check = verdict
            .as_ref()
            .unwrap_or_else(|e| panic!("segment {id} failed standalone verification: {e}"));
        entries_total += check.entries;
    }
    assert!(audit.continuous, "segments must stitch into one chain");
    let summary = format!(
        "\nE15b: {} segments verified standalone ({} chained entries), \
         continuity confirmed across every boundary\n",
        segments, entries_total
    );
    print!("{summary}");
    out.push_str(&summary);
}

fn service_config() -> ServeConfig {
    ServeConfig {
        shards: 1,
        n_features: 1,
        queue_cap: 256,
        batch_max: 8,
        batch_linger: Duration::from_micros(100),
        default_timeout: Duration::from_secs(5),
        policy: DegradePolicy::AuditAndFlag,
        trip_cooldown: 10_000,
        guards: Some(GuardConfig {
            fairness_window: 100,
            min_di: 0.8,
            min_samples_per_group: 10,
            dp_interval: 1_000_000,
            ..GuardConfig::default()
        }),
        audit: Some(AuditSinkConfig {
            // tiny cap: every flush rolls, so the kill lands on a boundary
            max_segment_bytes: 1,
            ..sink_config(8)
        }),
        ..ServeConfig::default()
    }
}

struct PassThrough;

impl fact_ml::Classifier for PassThrough {
    fn predict_proba(&self, x: &fact_data::Matrix) -> fact_data::Result<Vec<f64>> {
        Ok((0..x.rows()).map(|i| x.get(i, 0).clamp(0.0, 1.0)).collect())
    }
}

fn run_disparity(service: &DecisionService, n: u64) -> u64 {
    let mut served = 0;
    for i in 0..n {
        let group_b = i.is_multiple_of(2);
        let ok = service
            .decide(DecisionRequest {
                features: vec![if group_b { 0.1 } else { 0.9 }],
                group_b,
                route_key: i,
                tenant: 0,
            })
            .is_ok();
        served += u64::from(ok);
    }
    served
}

fn start_service(storage: &MemStorage) -> DecisionService {
    DecisionService::start_with_audit_storage(
        Arc::new(PassThrough),
        service_config(),
        Arc::new(InlineFeatures),
        Box::new(storage.clone()),
    )
    .expect("service start")
}

/// Phase 3: kill a whole service exactly as the sink rolls, restart, and
/// account for every entry — zero silent loss, and deliberate destruction
/// shows up as a quantified `lost_on_recovery`, not a panic.
fn boundary_phase(out: &mut String, requests: u64) {
    let storage = MemStorage::new();

    // run 1: serve with every decision flagged, storage dying 10 bytes
    // into a segment roll (the torn line is the new segment's handoff)
    let service = start_service(&storage);
    let served = run_disparity(&service, requests);
    assert_eq!(served, requests);
    storage.kill_at_byte(storage.log_bytes().len() as u64 + 10);
    let served2 = run_disparity(&service, requests);
    assert_eq!(served2, requests, "a dead audit disk must not stop serving");
    service.shutdown();
    let segments_after_kill = storage.segment_ids().len() as u64;

    // run 2: recovery wipes the torn roll, falls back one segment, and
    // promises that nothing head-committed is gone
    let storage = storage.restart();
    let service = start_service(&storage);
    let rec = service.audit_recovery().expect("sink configured").clone();
    assert_eq!(
        rec.lost, 0,
        "kill at the boundary must cost nothing promised: {rec:?}"
    );
    assert!(
        rec.replayed_segments <= 2,
        "recovery is O(segment) even at a torn boundary: {rec:?}"
    );
    run_disparity(&service, requests);
    let report = service.shutdown();
    assert_eq!(report.lost_on_recovery, 0);
    assert!(report.audit_segments > 1, "rotation must have happened");

    // the full history spanning both runs still audits continuous
    let mut probe: Box<dyn AuditStorage> = Box::new(storage.clone());
    let audit = verify_all_segments(probe.as_mut()).expect("audit");
    assert!(audit.continuous, "{audit:?}");

    // run 3: destroy a middle segment outright; the loss must be provable
    // and exactly quantified by the neighbors' handoff claims
    let ids = storage.segment_ids();
    let mid = ids[ids.len() / 2];
    let swallowed = {
        let mut probe: Box<dyn AuditStorage> = Box::new(storage.clone());
        fact_serve::verify_segment(probe.as_mut(), mid)
            .expect("io")
            .expect("intact before removal")
            .entries
    };
    assert!(storage.remove_segment(mid));
    let storage = storage.restart();
    let service = start_service(&storage);
    let rec3 = service.audit_recovery().expect("sink configured").clone();
    assert_eq!(rec3.missing_segments, 1, "{rec3:?}");
    assert_eq!(
        rec3.lost, swallowed,
        "loss must equal the destroyed segment's entries: {rec3:?}"
    );
    let report3 = service.shutdown();
    assert_eq!(report3.lost_on_recovery, swallowed);

    let summary = format!(
        "\nE15c: killed mid-roll at segment {} → recovered with 0 lost \
         (fallback replayed {} segments); destroying segment {} surfaced \
         exactly {} lost entries in the service report — no silent loss\n",
        segments_after_kill, rec.replayed_segments, mid, swallowed
    );
    print!("{summary}");
    out.push_str(&summary);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut out = String::new();
    out.push_str("E15: segmented audit rotation — O(segment) restart, standalone segments\n\n");

    let (sizes, deep, requests): (&[u64], u64, u64) = if smoke {
        (&[150, 1_500], 1_500, 60)
    } else {
        (&[500, 1_000, 2_500, 5_000], 5_000, 200)
    };

    scaling_phase(&mut out, sizes);
    println!();
    out.push('\n');
    standalone_phase(&mut out, deep);
    boundary_phase(&mut out, requests);

    if smoke {
        println!("\nE15 smoke passed: rotation and recovery contracts hold");
    } else {
        std::fs::create_dir_all("results").expect("create results dir");
        std::fs::write("results/e15.txt", &out).expect("write results/e15.txt");
        println!("\nwrote results/e15.txt");
    }
}
