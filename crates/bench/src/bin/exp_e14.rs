//! E14 — feature caching: steady-state speedup and outage bridging
//! (EXPERIMENTS.md, E14).
//!
//! Two scenarios over the E11 workload shape (a remote feature store
//! charging a 1 ms round trip per batched fetch, key-deterministic
//! feature rows):
//!
//! * **Steady state** — the same batch stream is driven through the bare
//!   [`SimulatedRemoteSource`] and through a [`CachedFeatureSource`] over
//!   it. After one warming pass the cached path serves every batch from
//!   memory; the claim under test is a ≥5× lower mean batch-assembly
//!   latency (it lands near the full 1 ms round trip, ~100×).
//! * **Outage** — a [`DecisionService`] warms a keyspace, then the store
//!   goes hard down ([`FailingFeatureSource::fail_from`]). With the cache
//!   the warm keyspace keeps serving (bridged fraction ≈ 1.0) and cold
//!   keys fail fast from the negative cache with at most one upstream
//!   probe each per negative TTL; without it every request fails.
//!
//! `--smoke` shrinks the trial for CI; full mode writes `results/e14.txt`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fact_serve::{
    CacheConfig, CachedFeatureSource, DecisionRequest, DecisionService, DegradePolicy,
    FailingFeatureSource, FeatureSource, ServeConfig, SimulatedRemoteSource,
};

const N_FEATURES: usize = 8;
/// Simulated feature-store round trip, paid once per uncached batch.
const FETCH: Duration = Duration::from_millis(1);
/// Distinct route keys the workload cycles over.
const KEYSPACE: u64 = 64;
const BATCH: usize = 8;

/// The key-deterministic feature row the cache contract requires: every
/// request for a key carries this exact row, so cached replay is sound.
fn row_for(key: u64) -> Vec<f64> {
    (0..N_FEATURES)
        .map(|j| ((key as f64 + 1.0) * (j as f64 + 1.0) * 0.618).fract())
        .collect()
}

/// Requests land favorable iff the first feature clears 0.5 — a model is
/// beside the point here, so probability = first feature.
struct PassThrough;

impl fact_ml::Classifier for PassThrough {
    fn predict_proba(&self, x: &fact_data::Matrix) -> fact_data::Result<Vec<f64>> {
        Ok((0..x.rows()).map(|i| x.get(i, 0).clamp(0.0, 1.0)).collect())
    }
}

fn request(key: u64) -> DecisionRequest {
    DecisionRequest {
        features: row_for(key),
        group_b: key.is_multiple_of(2),
        route_key: key,
        tenant: 0,
    }
}

/// Mean `fetch_batch` latency in microseconds over `batches` batches of
/// `BATCH` keys cycling through the keyspace.
fn mean_fetch_us(source: &dyn FeatureSource, batches: usize) -> f64 {
    let mut key = 0u64;
    let mut total = Duration::ZERO;
    for _ in 0..batches {
        let keys: Vec<u64> = (0..BATCH)
            .map(|_| {
                key = (key + 1) % KEYSPACE;
                key
            })
            .collect();
        let inline: Vec<Vec<f64>> = keys.iter().map(|&k| row_for(k)).collect();
        let start = Instant::now();
        source.fetch_batch(&keys, &inline).expect("fetch");
        total += start.elapsed();
    }
    total.as_secs_f64() * 1e6 / batches as f64
}

struct SteadyState {
    uncached_us: f64,
    cached_us: f64,
    speedup: f64,
    hit_rate: f64,
}

/// Scenario 1: identical batch streams through the bare remote source and
/// through the cache over it.
fn steady_state(batches: usize) -> SteadyState {
    let remote = SimulatedRemoteSource::new(FETCH);
    let uncached_us = mean_fetch_us(&remote, batches);

    let cached = CachedFeatureSource::new(
        Arc::new(remote),
        CacheConfig {
            positive_ttl: Duration::from_secs(600),
            ..CacheConfig::default()
        },
    );
    // one warming pass over the keyspace, then measure the steady state
    mean_fetch_us(&cached, KEYSPACE as usize / BATCH);
    let cached_us = mean_fetch_us(&cached, batches);
    SteadyState {
        uncached_us,
        cached_us,
        speedup: uncached_us / cached_us,
        hit_rate: cached.stats().snapshot().hit_rate(),
    }
}

struct Outage {
    served: u64,
    failed: u64,
    bridged_fraction: f64,
    upstream_probes: u64,
    negative_hits: u64,
}

/// Scenario 2: warm a service's keyspace, kill the store, keep serving.
/// `batch_max: 1` on one shard makes the Nth decide the Nth upstream
/// fetch, so `fail_from(KEYSPACE)` starts the outage exactly when warming
/// ends.
fn outage(rounds: u64, with_cache: bool) -> Outage {
    let source = Arc::new(
        FailingFeatureSource::new(Arc::new(SimulatedRemoteSource::new(FETCH))).fail_from(KEYSPACE),
    );
    let service = DecisionService::start_with_source(
        Arc::new(PassThrough),
        ServeConfig {
            shards: 1,
            n_features: N_FEATURES,
            batch_max: 1,
            batch_linger: Duration::ZERO,
            default_timeout: Duration::from_secs(5),
            policy: DegradePolicy::Off,
            guards: None,
            cache: with_cache.then(|| CacheConfig {
                positive_ttl: Duration::from_secs(600),
                negative_ttl: Duration::from_secs(600),
                ..CacheConfig::default()
            }),
            ..ServeConfig::default()
        },
        Arc::clone(&source) as Arc<dyn FeatureSource>,
    )
    .expect("service start");

    for key in 0..KEYSPACE {
        service.decide(request(key)).expect("warm fetch");
    }

    // the store is now hard down; replay the warm keyspace plus two
    // probes per round at one never-warmed key
    let (mut served, mut failed) = (0u64, 0u64);
    for round in 0..rounds {
        for key in 0..KEYSPACE {
            match service.decide(request(key)) {
                Ok(_) => served += 1,
                Err(_) => failed += 1,
            }
        }
        for _ in 0..2 {
            let _ = service.decide(request(10_000 + round));
        }
    }
    let report = service.shutdown();
    Outage {
        served,
        failed,
        bridged_fraction: served as f64 / (served + failed) as f64,
        upstream_probes: source.fetches() - KEYSPACE,
        negative_hits: report.cache.negative_hits,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (batches, rounds) = if smoke { (40, 2) } else { (400, 10) };

    println!(
        "E14: feature caching over a {}ms remote store ({} keys, batches of {})\n",
        FETCH.as_millis(),
        KEYSPACE,
        BATCH
    );
    let mut out = String::new();
    let mut emit = |line: &str| {
        println!("{line}");
        out.push_str(line);
        out.push('\n');
    };

    let ss = steady_state(batches);
    emit(&format!(
        "steady state ({batches} batches): uncached {:.1}us/batch, cached {:.1}us/batch",
        ss.uncached_us, ss.cached_us
    ));
    emit(&format!(
        "  speedup {:.0}x (claim: >=5x), cache hit rate {:.3}",
        ss.speedup, ss.hit_rate
    ));
    assert!(
        ss.speedup >= 5.0,
        "cached steady state must be >=5x faster (got {:.1}x)",
        ss.speedup
    );

    let bridged = outage(rounds, true);
    let dark = outage(rounds, false);
    emit(&format!(
        "\noutage ({rounds} rounds over the warm keyspace, store hard down):"
    ));
    emit(&format!(
        "  cached:   served {}/{} warm requests (bridged fraction {:.3}), \
         {} upstream probes, {} negative-cache fast-fails",
        bridged.served,
        bridged.served + bridged.failed,
        bridged.bridged_fraction,
        bridged.upstream_probes,
        bridged.negative_hits,
    ));
    emit(&format!(
        "  uncached: served {}/{} warm requests (bridged fraction {:.3})",
        dark.served,
        dark.served + dark.failed,
        dark.bridged_fraction,
    ));
    assert!(
        bridged.bridged_fraction > 0.99,
        "warm keyspace must be fully bridged (got {:.3})",
        bridged.bridged_fraction
    );
    assert_eq!(dark.served, 0, "no cache, no bridging");
    assert!(
        bridged.upstream_probes <= rounds,
        "negative cache must bound outage probes to one per cold key \
         (got {} for {} cold keys)",
        bridged.upstream_probes,
        rounds,
    );

    if smoke {
        println!("\nsmoke ok");
    } else {
        std::fs::create_dir_all("results").expect("create results dir");
        std::fs::write("results/e14.txt", &out).expect("write results/e14.txt");
        println!("\nwrote results/e14.txt");
    }
}
