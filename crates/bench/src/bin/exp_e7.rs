//! E7 — black box vs transparency (EXPERIMENTS.md, Table E7 / Figure E7).
//!
//! Paper claim (§2): deep networks are "a black box that apparently makes
//! good decisions, but cannot rationalize them. In several domains, this is
//! unacceptable."
//!
//! Figure: surrogate fidelity (and standalone accuracy) vs tree depth for an
//! MLP hiring model — readable explanations exist, priced in fidelity.
//! Table: permutation-importance stability across seeds.

use fact_data::split::train_test_split;
use fact_data::synth::hiring::{generate_hiring, HiringConfig, HIRING_FEATURES};
use fact_ml::metrics::accuracy;
use fact_ml::mlp::{Mlp, MlpConfig};
use fact_ml::tree::{DecisionTree, TreeConfig};
use fact_ml::Classifier;
use fact_transparency::importance::permutation_importance;
use fact_transparency::surrogate::SurrogateExplainer;

fn main() {
    let world = generate_hiring(&HiringConfig {
        n: 12_000,
        seed: 7,
        ..HiringConfig::default()
    });
    let (train, test) = train_test_split(&world, 0.3, 3).unwrap();
    let (x_train, names) = train.to_matrix_onehot(&HIRING_FEATURES).unwrap();
    let (x_test, _) = test.to_matrix_onehot(&HIRING_FEATURES).unwrap();
    let y_train = train.bool_column("hired").unwrap().to_vec();
    let y_test = test.bool_column("hired").unwrap().to_vec();
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();

    let mlp = Mlp::fit(
        &x_train,
        &y_train,
        &MlpConfig {
            hidden: vec![24, 12],
            epochs: 120,
            ..MlpConfig::default()
        },
    )
    .unwrap();
    let mlp_acc = accuracy(&y_test, &mlp.predict(&x_test).unwrap()).unwrap();
    println!("E7: black box vs transparency (hiring world, nonlinear ground truth)");
    println!(
        "black box: MLP, {} parameters, test accuracy {mlp_acc:.3}\n",
        mlp.n_parameters()
    );

    println!(
        "{:>7} {:>10} {:>12} {:>13} {:>8}",
        "depth", "fidelity", "tree acc", "direct-tree", "leaves"
    );
    println!("{}", "-".repeat(54));
    for depth in 1..=8usize {
        let sur = SurrogateExplainer::distill(&mlp, &x_train, &x_test, &name_refs, depth).unwrap();
        let sur_acc = accuracy(&y_test, &sur.tree().predict(&x_test).unwrap()).unwrap();
        // a tree trained directly on labels, for reference
        let direct = DecisionTree::fit(
            &x_train,
            &y_train,
            &TreeConfig {
                max_depth: depth,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        let direct_acc = accuracy(&y_test, &direct.predict(&x_test).unwrap()).unwrap();
        println!(
            "{depth:>7} {:>10.3} {:>12.3} {:>13.3} {:>8}",
            sur.fidelity(),
            sur_acc,
            direct_acc,
            sur.tree().n_leaves()
        );
    }

    println!("\nTable E7b: permutation-importance stability (top feature across 5 shuffle seeds)");
    let mut top_counts: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for seed in 0..5u64 {
        let imp = permutation_importance(&mlp, &x_test, &y_test, &name_refs, 3, seed).unwrap();
        *top_counts.entry(imp[0].name.clone()).or_insert(0) += 1;
        if seed == 0 {
            for fi in &imp {
                println!("  {:<24} {:+.4} ± {:.4}", fi.name, fi.importance, fi.std);
            }
        }
    }
    println!("  top-1 feature by seed: {top_counts:?}");
    println!(
        "\nExpected shape: fidelity rises monotonically with depth and crosses ~0.9\n\
         by depth 3-4; the same features rank top-1 across seeds (stable explanations)."
    );
}
