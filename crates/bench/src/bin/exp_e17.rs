//! E17 — columnar segment storage: scan + group-by throughput, column
//! pruning, and zone-map segment skipping (EXPERIMENTS.md, E17).
//!
//! A wide synthetic dataset (few useful columns among many filler columns —
//! the shape of every audit over an over-collected feature store) is
//! spilled to the binary segment format, then audited three ways:
//!
//! 1. **Group-by throughput** — `aggregate_segments` (dictionary-code keys,
//!    column-pruned reads) against the pre-PR row-ish engine (string group
//!    keys + a `take()` clone per group per aggregate, preserved verbatim in
//!    [`rowish_aggregate`]) and against this PR's rewritten in-memory
//!    `aggregate`. Full mode asserts the segment engine beats the row-ish
//!    engine by ≥ 3×.
//! 2. **Column pruning** — a two-column scan must read a small fraction of
//!    the stored bytes; a selective range predicate on a monotonic column
//!    must let the per-segment zone maps **prove away at least half the
//!    segments**, asserted on the bytes-read counters the scan reports.
//! 3. **Determinism** — materializing the set and aggregating under the
//!    predicate must be bit-identical at 1/2/4 `fact_par` workers.
//!
//! `--smoke` runs a small dataset in debug builds for CI: all correctness
//! and pruning assertions stay on, only the throughput ratio assert is
//! full-mode (release) only.

use std::time::Instant;

use bench::header;
use fact_data::agg::{aggregate, aggregate_segments, AggFn, AggSpec};
use fact_data::bias::{group_rates, group_rates_segments};
use fact_data::column::ColumnData;
use fact_data::{Column, Dataset, Predicate, Result, SegmentWriteConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Sizes {
    rows: usize,
    filler_cols: usize,
    rows_per_segment: usize,
    repeats: usize,
    assert_speedup: Option<f64>,
}

const FULL: Sizes = Sizes {
    rows: 200_000,
    filler_cols: 28,
    rows_per_segment: 8_192,
    repeats: 5,
    assert_speedup: Some(3.0),
};

const SMOKE: Sizes = Sizes {
    rows: 6_000,
    filler_cols: 12,
    rows_per_segment: 512,
    repeats: 2,
    assert_speedup: None,
};

const GROUPS: [&str; 6] = ["asia", "europe", "africa", "americas", "oceania", "other"];

/// The group-by engine as it stood before the segment storage landed: string
/// group keys materialized per row, then a `take()` **clone of the column per
/// group per aggregate**. Kept here verbatim as the experiment's baseline.
fn agg_name(f: AggFn) -> &'static str {
    match f {
        AggFn::Count => "count",
        AggFn::Sum => "sum",
        AggFn::Mean => "mean",
        AggFn::Min => "min",
        AggFn::Max => "max",
    }
}

fn rowish_aggregate(ds: &Dataset, key: &str, specs: &[AggSpec<'_>]) -> Result<Dataset> {
    let groups = ds.group_by(key)?;
    let keys: Vec<String> = groups.keys().iter().map(|k| k.to_string()).collect();
    let mut out = Dataset::builder().cat(key, &keys).build()?;
    for &(col_name, f) in specs {
        let col = ds.column(col_name)?;
        let mut vals = Vec::with_capacity(keys.len());
        for k in &keys {
            let idx = groups.indices(k).expect("key from groups");
            let sub = col.take(idx);
            let v = match f {
                AggFn::Count => idx.len() as f64,
                AggFn::Sum => {
                    let mut s = 0.0;
                    sub.for_each_valid_f64(|x| s += x)?;
                    s
                }
                AggFn::Mean => sub.mean()?,
                AggFn::Min => sub.min()?,
                AggFn::Max => sub.max()?,
            };
            vals.push(v);
        }
        out.add_column(
            format!("{col_name}_{}", agg_name(f)),
            Column::from_f64(vals),
        )?;
    }
    Ok(out)
}

/// A wide dataset: one categorical group, a monotonic event-time column
/// (the zone-map pruning target), a score, a bool outcome, and a wall of
/// filler features nobody's audit reads.
fn wide_dataset(s: &Sizes, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = s.rows;
    let groups: Vec<&str> = (0..n)
        .map(|_| GROUPS[rng.gen_range(0..GROUPS.len())])
        .collect();
    let ts: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let score: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
    let won: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.4)).collect();
    let mut b = Dataset::builder()
        .cat("group", &groups)
        .f64("ts", ts)
        .f64("score", score)
        .boolean("won", won);
    for c in 0..s.filler_cols {
        let col: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        b = b.f64(format!("filler_{c:02}"), col);
    }
    b.build().expect("valid wide dataset")
}

/// Fingerprint a dataset bit-exactly (column order, payload bits, codes).
fn fingerprint(ds: &Dataset) -> Vec<u64> {
    let mut out = Vec::new();
    for name in ds.names() {
        let col = ds.column(name).expect("name from schema");
        match col.data() {
            ColumnData::Float(v) => out.extend(v.iter().map(|x| x.to_bits())),
            ColumnData::Int(v) => out.extend(v.iter().map(|&x| x as u64)),
            ColumnData::Bool(v) => out.extend(v.iter().map(|&x| x as u64)),
            ColumnData::Cat(c) => out.extend(c.codes.iter().map(|&x| x as u64)),
        }
        out.push(col.null_count() as u64);
    }
    out
}

fn fastest<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = f();
    for _ in 0..repeats {
        let t0 = Instant::now();
        last = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, last)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = if smoke { &SMOKE } else { &FULL };
    println!(
        "E17: columnar segments — scan/group-by throughput, column pruning, zone-map skips ({} mode)\n",
        if smoke { "smoke" } else { "full" }
    );

    let ds = wide_dataset(s, 17);
    let total_cols = ds.n_cols();
    let dir = std::env::temp_dir().join(format!("fseg-e17-{}", std::process::id()));
    let cfg = SegmentWriteConfig {
        rows_per_segment: s.rows_per_segment,
        ..Default::default()
    };
    let t0 = Instant::now();
    let set = ds.to_segments(&dir, &cfg).expect("spill to segments");
    let write_ms = t0.elapsed().as_secs_f64() * 1e3;
    let n_seg = set.n_segments();

    let specs: [AggSpec<'_>; 4] = [
        ("score", AggFn::Mean),
        ("score", AggFn::Sum),
        ("won", AggFn::Count),
        ("won", AggFn::Mean),
    ];

    // -- 1. group-by throughput: pre-PR row-ish engine (string keys +
    // per-group column clones) vs the rewritten in-memory aggregate vs the
    // column-pruned segment scan --
    let (rowish_ms, mem_out) = fastest(s.repeats, || {
        rowish_aggregate(&ds, "group", &specs).expect("row-ish aggregate")
    });
    let (mem_ms, _) = fastest(s.repeats, || {
        aggregate(&ds, "group", &specs).expect("in-memory aggregate")
    });
    let (seg_ms, seg_out) = fastest(s.repeats, || {
        aggregate_segments(&set, "group", &specs, &Predicate::All).expect("segment aggregate")
    });
    let (seg_agg, agg_stats) = seg_out;
    let speedup = rowish_ms / seg_ms.max(1e-9);

    // same groups, exact count/min/max-family values, float-tolerant sums
    let mut mem_sorted = mem_out.labels("group").expect("key column");
    let mut seg_sorted = seg_agg.labels("group").expect("key column");
    mem_sorted.sort();
    seg_sorted.sort();
    assert_eq!(mem_sorted, seg_sorted, "group sets must agree");
    let index_of = |ds: &Dataset, label: &str| {
        ds.labels("group")
            .expect("key column")
            .iter()
            .position(|l| l == label)
            .expect("label present")
    };
    for label in &mem_sorted {
        let (mi, si) = (index_of(&mem_out, label), index_of(&seg_agg, label));
        for col in ["score_mean", "score_sum", "won_count", "won_mean"] {
            let m = mem_out.f64_column(col).expect("agg column")[mi];
            let g = seg_agg.f64_column(col).expect("agg column")[si];
            assert!(
                (m - g).abs() <= 1e-9 * m.abs().max(1.0),
                "{label}/{col}: {m} vs {g}"
            );
        }
    }

    // -- 2a. column pruning: 2 of N columns read a fraction of the bytes --
    let (_, pruned_scan) = fastest(s.repeats, || {
        set.scan_columns(&["group", "score"], &Predicate::All)
            .expect("pruned scan")
    });
    let (_, col_stats) = pruned_scan;
    let col_fraction = col_stats.bytes_read as f64 / col_stats.bytes_total as f64;
    assert!(
        col_fraction < 0.5,
        "2/{total_cols} columns read {col_fraction:.2} of stored bytes"
    );

    // -- 2b. zone maps: selective range on monotonic ts skips segments --
    let hi = s.rows as f64 * 0.10;
    let zone_pred = Predicate::Range {
        column: "ts".into(),
        min: 0.0,
        max: hi,
    };
    let (_, zone_scan) = fastest(s.repeats, || {
        set.scan_columns(&["group", "score"], &zone_pred)
            .expect("zone scan")
    });
    let (zone_sub, zone_stats) = zone_scan;
    assert!(
        zone_stats.segments_pruned * 2 >= n_seg,
        "zone maps pruned {}/{n_seg} segments — need at least half",
        zone_stats.segments_pruned
    );
    assert!(
        zone_stats.bytes_read * 2 < zone_stats.bytes_total,
        "selective scan read {} of {} bytes — pruning must halve it",
        zone_stats.bytes_read,
        zone_stats.bytes_total
    );
    assert_eq!(
        zone_sub.n_rows() as u64,
        zone_stats.rows_matched,
        "materialized rows equal matched rows"
    );
    let expected_rows = ds
        .f64_slice("ts")
        .expect("ts column")
        .iter()
        .filter(|&&t| (0.0..=hi).contains(&t))
        .count();
    assert_eq!(zone_sub.n_rows(), expected_rows, "no rows lost to pruning");

    // group-rate probe rides the same pruned scan
    let (rates, rate_stats) =
        group_rates_segments(&set, "won", "group", &zone_pred).expect("segment rates");
    let mem_rates = group_rates(
        &ds.filter(
            &ds.f64_slice("ts")
                .expect("ts column")
                .iter()
                .map(|&t| (0.0..=hi).contains(&t))
                .collect::<Vec<bool>>(),
        )
        .expect("filter"),
        "won",
        "group",
    )
    .expect("in-memory rates");
    assert_eq!(rates, mem_rates, "probe parity under the predicate");
    assert!(rate_stats.segments_pruned * 2 >= n_seg);

    // -- 3. bit-identity at 1/2/4 workers --
    let mut prints: Vec<(Vec<u64>, Vec<u64>)> = Vec::new();
    for workers in [1usize, 2, 4] {
        fact_par::set_workers(workers);
        let back = set.to_dataset().expect("materialize");
        let (agg, _) =
            aggregate_segments(&set, "group", &specs, &zone_pred).expect("agg under pred");
        prints.push((fingerprint(&back), fingerprint(&agg)));
    }
    fact_par::set_workers(0);
    let workers_identical = prints.iter().all(|p| *p == prints[0]);
    assert!(workers_identical, "worker count changed scan output bits");
    assert_eq!(
        fingerprint(&set.to_dataset().expect("materialize")),
        fingerprint(&ds),
        "roundtrip must be bit-identical to the source"
    );

    // -- report --
    let columns = ["metric", "value"];
    let widths = [38usize, 24usize];
    let mut out = String::new();
    let mut push = |label: &str, value: String| {
        let line = format!("{label:>38} {value:>24} ");
        println!("{line}");
        out.push_str(&line);
        out.push('\n');
    };
    header(&columns, &widths);
    push("rows x cols", format!("{} x {total_cols}", s.rows));
    push(
        "segments (rows/seg)",
        format!("{n_seg} ({})", s.rows_per_segment),
    );
    push("spill write (ms)", format!("{write_ms:.1}"));
    push("group-by row-ish engine (ms)", format!("{rowish_ms:.2}"));
    push("group-by in-memory rewrite (ms)", format!("{mem_ms:.2}"));
    push("group-by segments (ms)", format!("{seg_ms:.2}"));
    push("segments vs row-ish speedup (x)", format!("{speedup:.2}"));
    push(
        "agg bytes read / stored",
        format!("{} / {}", agg_stats.bytes_read, agg_stats.bytes_total),
    );
    push("2-col scan byte fraction", format!("{col_fraction:.3}"));
    push(
        "zone-pruned segments",
        format!("{} / {n_seg}", zone_stats.segments_pruned),
    );
    push(
        "selective bytes read / stored",
        format!("{} / {}", zone_stats.bytes_read, zone_stats.bytes_total),
    );
    push(
        "rows matched by predicate",
        format!("{}", zone_stats.rows_matched),
    );
    push(
        "bit-identical @ 1/2/4 workers",
        (if workers_identical { "PASS" } else { "FAIL" }).to_string(),
    );

    if let Some(min_speedup) = s.assert_speedup {
        assert!(
            speedup >= min_speedup,
            "segment group-by speedup {speedup:.2}x below required {min_speedup}x"
        );
    }

    let summary = format!(
        "\nsegment group-by runs {speedup:.2}x the pre-PR row-ish engine (the rewritten \
         in-memory aggregate is at {:.2}x); a 2-column scan reads \
         {:.1}% of stored bytes; zone maps prune {}/{n_seg} segments under a 10% range \
         predicate; outputs bit-identical at 1/2/4 workers\n",
        rowish_ms / mem_ms.max(1e-9),
        col_fraction * 100.0,
        zone_stats.segments_pruned,
    );
    print!("{summary}");
    out.push_str(&summary);

    std::fs::remove_dir_all(&dir).ok();
    if !smoke {
        std::fs::create_dir_all("results").expect("create results dir");
        std::fs::write("results/e17.txt", &out).expect("write results/e17.txt");
        println!("\nwrote results/e17.txt");
    }
}
