//! E12 — thread scaling of the fact-par hot kernels (EXPERIMENTS.md, E12).
//!
//! Runs each parallelized kernel at 1/2/4/8 workers (`fact_par::set_workers`)
//! and reports wall time plus speedup over the 1-worker run. The headline
//! assertion is not the speedup — on a single-core host every column is
//! ~1.0× and that is fine — but the **equality check**: every kernel's
//! output at every worker count must be bit-identical to its 1-worker
//! output, because fact-par chunks by problem size, never by worker count.
//!
//! `--smoke` runs tiny problem sizes at 1–2 workers for CI (seconds, no
//! results file); the full run writes `results/e12.txt`.

use std::time::Instant;

use bench::header;
use fact_data::Matrix;
use fact_ml::forest::{ForestConfig, RandomForest};
use fact_ml::tree::TreeConfig;
use fact_ml::Classifier;
use fact_stats::ci::bootstrap_ci;
use fact_stats::tests::permutation_test;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Sizes {
    matmul: usize,
    forest_rows: usize,
    forest_trees: usize,
    boot_n: usize,
    boot_reps: usize,
    perm_n: usize,
    perm_reps: usize,
    repeats: usize,
    workers: &'static [usize],
}

const FULL: Sizes = Sizes {
    matmul: 192,
    forest_rows: 1_500,
    forest_trees: 24,
    boot_n: 2_000,
    boot_reps: 2_000,
    perm_n: 400,
    perm_reps: 4_000,
    repeats: 3,
    workers: &[1, 2, 4, 8],
};

const SMOKE: Sizes = Sizes {
    matmul: 48,
    forest_rows: 200,
    forest_trees: 4,
    boot_n: 200,
    boot_reps: 100,
    perm_n: 60,
    perm_reps: 200,
    repeats: 1,
    workers: &[1, 2],
};

/// One kernel: returns an output fingerprint (for the equality check) and
/// runs entirely under whatever worker count is currently configured.
struct Kernel {
    name: &'static str,
    run: Box<dyn Fn() -> Vec<u64>>,
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

fn gen_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Matrix::from_flat(data, rows, cols).unwrap()
}

fn labeled_world(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let a: f64 = rng.gen_range(-2.0..2.0);
        let b: f64 = rng.gen_range(-2.0..2.0);
        y.push((a > 0.0) != (b > 0.0));
        rows.push(vec![a, b, a * b]);
    }
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn kernels(s: &Sizes) -> Vec<Kernel> {
    let n = s.matmul;
    let a = gen_matrix(n, n, 1);
    let b = gen_matrix(n, n, 2);
    let (fx, fy) = labeled_world(s.forest_rows, 3);
    let forest_cfg = ForestConfig {
        n_trees: s.forest_trees,
        tree: TreeConfig::default(),
        max_features: None,
        seed: 4,
    };
    let fitted = RandomForest::fit(&fx, &fy, &forest_cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let boot: Vec<f64> = (0..s.boot_n).map(|_| rng.gen_range(0.0..10.0)).collect();
    let boot_reps = s.boot_reps;
    let perm_xs: Vec<f64> = (0..s.perm_n).map(|_| rng.gen_range(0.0..1.0)).collect();
    let perm_ys: Vec<f64> = (0..s.perm_n).map(|_| rng.gen_range(0.1..1.1)).collect();
    let perm_reps = s.perm_reps;

    vec![
        Kernel {
            name: "matmul",
            run: Box::new(move || bits(a.matmul(&b).unwrap().as_slice())),
        },
        Kernel {
            name: "forest_fit",
            run: {
                let (fx, fy) = labeled_world(s.forest_rows, 3);
                let cfg = forest_cfg.clone();
                Box::new(move || {
                    let f = RandomForest::fit(&fx, &fy, &cfg).unwrap();
                    bits(&f.predict_proba(&fx).unwrap())
                })
            },
        },
        Kernel {
            name: "forest_predict",
            run: Box::new(move || bits(&fitted.predict_proba(&fx).unwrap())),
        },
        Kernel {
            name: "bootstrap_ci",
            run: Box::new(move || {
                let ci = bootstrap_ci(
                    &boot,
                    |xs| xs.iter().sum::<f64>() / xs.len() as f64,
                    boot_reps,
                    0.95,
                    6,
                )
                .unwrap();
                bits(&[ci.estimate, ci.lower, ci.upper])
            }),
        },
        Kernel {
            name: "permutation",
            run: Box::new(move || {
                let r = permutation_test(&perm_xs, &perm_ys, perm_reps, 7).unwrap();
                bits(&[r.statistic, r.p_value])
            }),
        },
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = if smoke { &SMOKE } else { &FULL };
    println!(
        "E12: thread scaling of the fact-par kernels ({} mode, host parallelism {})\n",
        if smoke { "smoke" } else { "full" },
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    let ks = kernels(s);
    let mut columns = vec!["kernel", "1w(ms)"];
    for &w in &s.workers[1..] {
        columns.push(match w {
            2 => "2w(x)",
            4 => "4w(x)",
            8 => "8w(x)",
            _ => "nw(x)",
        });
    }
    columns.push("equal");
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len().max(10)).collect();
    widths[0] = ks.iter().map(|k| k.name.len()).max().unwrap_or(10).max(10);
    header(&columns, &widths);
    let mut out = String::new();
    let mut head = String::new();
    for (c, w) in columns.iter().zip(&widths) {
        head.push_str(&format!("{c:>w$} "));
    }
    out.push_str(&head);
    out.push('\n');

    let mut all_equal = true;
    let mut best_speedups: Vec<f64> = Vec::new();
    for k in &ks {
        let mut base_ms = 0.0;
        let mut base_bits: Vec<u64> = Vec::new();
        let mut line = format!("{:>width$} ", k.name, width = widths[0]);
        let mut equal = true;
        let mut best = 1.0f64;
        for (wi, &w) in s.workers.iter().enumerate() {
            fact_par::set_workers(w);
            // warm-up, which is also the output the equality check sees
            let result = (k.run)();
            let mut fastest = f64::INFINITY;
            for _ in 0..s.repeats {
                let t0 = Instant::now();
                let r = (k.run)();
                fastest = fastest.min(t0.elapsed().as_secs_f64() * 1e3);
                assert_eq!(r, result, "{} not deterministic at {w} workers", k.name);
            }
            if wi == 0 {
                base_ms = fastest;
                base_bits = result;
                line.push_str(&format!("{base_ms:>width$.2} ", width = widths[1]));
            } else {
                equal &= result == base_bits;
                let speedup = base_ms / fastest.max(1e-9);
                best = best.max(speedup);
                line.push_str(&format!("{speedup:>width$.2} ", width = widths[wi + 1]));
            }
        }
        fact_par::set_workers(0);
        all_equal &= equal;
        best_speedups.push(best);
        line.push_str(&format!(
            "{:>width$} ",
            if equal { "PASS" } else { "FAIL" },
            width = widths[columns.len() - 1]
        ));
        println!("{line}");
        out.push_str(&line);
        out.push('\n');
    }

    let kernels_scaling = best_speedups.iter().filter(|&&v| v >= 1.5).count();
    let summary = format!(
        "\nsequential-equality: {} (parallel output bit-identical to 1 worker on every kernel)\n\
         kernels with >=1.5x best speedup: {kernels_scaling}/{} \
         (expect 0 on a single-core host; >=3 on 4+ cores)\n",
        if all_equal { "PASS" } else { "FAIL" },
        best_speedups.len(),
    );
    print!("{summary}");
    out.push_str(&summary);
    assert!(all_equal, "determinism contract violated");

    if !smoke {
        std::fs::create_dir_all("results").expect("create results dir");
        std::fs::write("results/e12.txt", &out).expect("write results/e12.txt");
        println!("\nwrote results/e12.txt");
    }
}
