//! E13 — durable audit sink: serving overhead and crash recovery
//! (EXPERIMENTS.md, E13).
//!
//! Two questions, one harness:
//!
//! 1. **What does durable auditing cost?** Replays the E11 open-loop
//!    lending workload (1 ms simulated feature-store fetch per micro-batch,
//!    40k req/s offered) with the guards tripped into sustained
//!    audit-and-flag mode — so *every* decision is flagged and written to
//!    the sink — and compares throughput with the sink on (file-backed,
//!    fsync per batch) vs. off. Claim: within 10% at the E11 workload.
//! 2. **Does recovery hold under a crash?** Replays a deterministic
//!    kill-restart-verify cycle over fault-injected storage: kill the
//!    writer mid-batch, restart over the torn bytes, and hard-assert the
//!    recovered chain verifies, at most one batch was torn, nothing
//!    head-committed was lost, and post-restart entries chain onto the
//!    recovered head. `--smoke` runs only this phase (the CI gate).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::header;
use fact_data::Matrix;
use fact_ml::logistic::{LogisticConfig, LogisticRegression};
use fact_serve::audit_sink::{
    parse_log, verify_all_segments, AuditEvent, AuditSink, AuditSinkConfig, AuditStorage,
    FileStorage, MemStorage,
};
use fact_serve::{
    DecisionRequest, DecisionService, DegradePolicy, GuardConfig, ServeConfig,
    SimulatedRemoteSource,
};
use fact_transparency::{verify_chain_from, ChainHead};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_FEATURES: usize = 8;
const FETCH: Duration = Duration::from_millis(1);
const OFFERED_PER_MS: usize = 40;
const TRIAL: Duration = Duration::from_millis(1200);

fn train_model(seed: u64) -> LogisticRegression {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 2_000;
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..N_FEATURES).map(|_| rng.gen::<f64>()).collect();
        let score = row[0] + 0.2 * row[1] + 0.1 * rng.gen::<f64>();
        y.push(score > 0.65);
        rows.push(row);
    }
    let x = Matrix::from_rows(&rows).unwrap();
    let cfg = LogisticConfig {
        seed,
        ..LogisticConfig::default()
    };
    LogisticRegression::fit(&x, &y, None, &cfg).unwrap()
}

fn lending_request(rng: &mut StdRng, key: u64) -> DecisionRequest {
    let group_b = rng.gen_bool(0.3);
    let mut features: Vec<f64> = (0..N_FEATURES).map(|_| rng.gen::<f64>()).collect();
    features[0] = if group_b {
        rng.gen_range(0.0..0.85)
    } else {
        rng.gen_range(0.15..1.0)
    };
    DecisionRequest {
        features,
        group_b,
        route_key: key,
        tenant: 0,
    }
}

struct Trial {
    throughput: f64,
    p99_us: f64,
    flagged: u64,
    audited: u64,
}

/// The E11 workload, with the fairness guard tripping into a practically
/// permanent audit-and-flag degrade — worst-case audit volume: every
/// decision after the trip is flagged and (when `audit_path` is set)
/// written + fsynced by the sink.
fn run_trial(
    model: Arc<LogisticRegression>,
    shards: usize,
    audit_path: Option<std::path::PathBuf>,
    seed: u64,
) -> Trial {
    let audit = audit_path.map(|path| AuditSinkConfig {
        path,
        ..AuditSinkConfig::default()
    });
    let service = DecisionService::start_with_source(
        model,
        ServeConfig {
            shards,
            n_features: N_FEATURES,
            queue_cap: 256,
            batch_max: 8,
            batch_linger: Duration::from_micros(200),
            default_timeout: Duration::from_secs(5),
            threshold: 0.5,
            policy: DegradePolicy::AuditAndFlag,
            trip_cooldown: u64::MAX / 2, // once tripped, flag everything
            alert_debounce: 1_000,
            guards: Some(GuardConfig {
                fairness_window: 500,
                min_di: 0.95, // trips fast under the mild disparity
                min_samples_per_group: 50,
                dp_interval: 1_000,
                epsilon_per_release: 0.01,
                epsilon_budget: 5.0,
                drift: None,
            }),
            seed,
            audit,
            cache: None,
            topology: None,
            checkpoint: None,
            admission: None,
        },
        Arc::new(SimulatedRemoteSource::new(FETCH)),
    )
    .expect("service start");

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let start = Instant::now();
    let mut key = 0u64;
    while start.elapsed() < TRIAL {
        for _ in 0..OFFERED_PER_MS {
            key += 1;
            match service.submit(lending_request(&mut rng, key)) {
                Ok(handle) => drop(handle),
                Err(_) => {}
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let report = service.shutdown();
    let elapsed = start.elapsed().as_secs_f64();
    let snap = service.metrics();
    Trial {
        throughput: report.decisions_served as f64 / elapsed,
        p99_us: snap.p99.map_or(0.0, |d| d.as_nanos() as f64 / 1e3),
        flagged: report.flagged,
        audited: report.audited,
    }
}

fn overhead_phase(out: &mut String) {
    let model = Arc::new(train_model(13));
    let dir = std::env::temp_dir().join(format!("fact-e13-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    println!(
        "E13a: audited vs unaudited serving, flag-everything degrade \
         ({} req/s offered, {}ms fetch per batch)\n",
        OFFERED_PER_MS * 1000,
        FETCH.as_millis()
    );
    // warm-up
    run_trial(Arc::clone(&model), 1, None, 99);

    let columns = ["shards", "config", "req/s", "p99(us)", "flagged", "audited"];
    let widths = [6, 10, 10, 10, 9, 9];
    header(&columns, &widths);
    let mut head = String::new();
    for (c, w) in columns.iter().zip(widths) {
        head.push_str(&format!("{c:>w$} "));
    }
    out.push_str(&head);
    out.push('\n');

    let mut worst = 0.0f64;
    for &shards in &[1usize, 2, 4] {
        let base = run_trial(Arc::clone(&model), shards, None, 7 + shards as u64);
        let path = dir.join(format!("audit-{shards}.jsonl"));
        let audited = run_trial(
            Arc::clone(&model),
            shards,
            Some(path.clone()),
            7 + shards as u64,
        );
        for (label, t) in [("unaudited", &base), ("audited", &audited)] {
            let line = format!(
                "{shards:>6} {label:>10} {:>10.0} {:>10.1} {:>9} {:>9}",
                t.throughput, t.p99_us, t.flagged, t.audited
            );
            println!("{line}");
            out.push_str(&line);
            out.push('\n');
        }
        assert!(
            audited.audited > audited.flagged / 2,
            "the sink must actually be receiving the flags"
        );
        // the durable log the trial produced must verify — enumerate the
        // segments on disk rather than assuming a single-file layout (the
        // sink rolls past max_segment_bytes)
        let mut disk: Box<dyn AuditStorage> =
            Box::new(FileStorage::open(&path).expect("open audit log"));
        let segments = disk.list_segments().expect("list segments");
        assert!(!segments.is_empty(), "the trial must have left a log");
        let mut entries = Vec::new();
        for &seg in &segments {
            entries.extend(parse_log(&disk.read_segment(seg).expect("read segment")));
        }
        assert_eq!(
            verify_chain_from(ChainHead::genesis(), &entries),
            None,
            "audit chain from the throughput trial must verify"
        );
        let audit_check = verify_all_segments(disk.as_mut()).expect("segment audit");
        assert!(
            audit_check.continuous,
            "every segment must verify standalone and stitch: {audit_check:?}"
        );
        let overhead = 100.0 * (1.0 - audited.throughput / base.throughput);
        worst = worst.max(overhead);
        let line = format!("{shards:>6} {:>10} overhead {overhead:>5.1}%", "audit");
        println!("{line}");
        out.push_str(&line);
        out.push('\n');
    }
    let summary = format!("\nworst audit overhead: {worst:.1}% (claim: <10%)\n");
    print!("{summary}");
    out.push_str(&summary);
    std::fs::remove_dir_all(&dir).ok();
}

fn flagged_event(key: u64) -> AuditEvent {
    AuditEvent::Flagged {
        shard: 0,
        route_key: key,
        probability: 0.2,
        favorable: false,
        group_b: key.is_multiple_of(2),
    }
}

/// Deterministic kill-restart-verify cycle over fault-injected storage.
/// Hard-asserts the recovery contract; this is what `--smoke` (the CI
/// gate) runs.
fn recovery_phase(out: &mut String) {
    const BATCH: usize = 8;
    let cfg = AuditSinkConfig {
        batch_max: BATCH,
        flush_interval: Duration::from_millis(1),
        ..AuditSinkConfig::default()
    };
    let storage = MemStorage::new();

    // phase 1: land synced batches, then die mid-batch
    let sink = AuditSink::open_with_storage(&cfg, Box::new(storage.clone())).unwrap();
    let handle = sink.handle();
    for k in 0..32u64 {
        handle.record(flagged_event(k));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while sink.audited() < 33 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let synced_entries = parse_log(&storage.log_bytes()).len();
    let synced_bytes = storage.log_bytes().len();
    storage.kill_at_byte(synced_bytes as u64 + 200);
    for k in 32..40u64 {
        handle.record(flagged_event(k));
    }
    drop(handle);
    let r1 = sink.finish();
    assert!(r1.io_errors >= 1, "the kill must surface as an io error");
    let torn_bytes = storage.log_bytes().len() - synced_bytes;

    // phase 2: restart over the torn bytes
    let storage = storage.restart();
    let sink = AuditSink::open_with_storage(&cfg, Box::new(storage.clone())).unwrap();
    let rec = sink.recovery().clone();
    assert!(rec.truncated_bytes > 0, "torn tail must be cut: {rec:?}");
    assert_eq!(
        rec.cut_seq, None,
        "a kill is a tear, not tampering: {rec:?}"
    );
    assert!(rec.recovered as usize >= synced_entries, "{rec:?}");
    assert_eq!(
        rec.lost, 0,
        "nothing head-committed may be missing: {rec:?}"
    );
    assert!(
        (rec.cut_lines as usize) < BATCH,
        "at most one torn batch: {rec:?}"
    );
    let resumed = rec.resumed;
    let handle = sink.handle();
    for k in 100..108u64 {
        handle.record(flagged_event(k));
    }
    drop(handle);
    let r2 = sink.finish();
    assert!(r2.audited >= 9, "restart must keep appending: {r2:?}");

    // phase 3: the log spanning the crash verifies as one chain, and the
    // restart marker sits exactly on the recovered head
    let entries = parse_log(&storage.log_bytes());
    assert_eq!(
        verify_chain_from(ChainHead::genesis(), &entries),
        None,
        "chain must verify across the crash"
    );
    let marker = entries
        .iter()
        .find(|e| e.action == "sink_start" && e.seq == resumed.next_seq)
        .expect("restart marker chained at the recovered head");
    assert_eq!(marker.prev_hash, resumed.hash, "prev_hash continuity");

    println!("E13b: kill-restart-verify replay (batch_max={BATCH})\n");
    let columns = ["phase", "entries", "bytes", "cut", "lost"];
    let widths = [22, 8, 8, 6, 5];
    header(&columns, &widths);
    let mut head = String::new();
    for (c, w) in columns.iter().zip(widths) {
        head.push_str(&format!("{c:>w$} "));
    }
    out.push_str(&head);
    out.push('\n');
    for (phase, e, b, cut, lost) in [
        (
            "synced before kill",
            synced_entries,
            synced_bytes,
            0u64,
            0u64,
        ),
        (
            "on disk after kill",
            synced_entries,
            synced_bytes + torn_bytes,
            0,
            0,
        ),
        (
            "recovered at restart",
            rec.recovered as usize,
            rec.cut_offset as usize,
            rec.truncated_bytes,
            rec.lost,
        ),
        (
            "final verified chain",
            entries.len(),
            storage.log_bytes().len(),
            0,
            0,
        ),
    ] {
        let line = format!("{phase:>22} {e:>8} {b:>8} {cut:>6} {lost:>5}");
        println!("{line}");
        out.push_str(&line);
        out.push('\n');
    }
    let summary = format!(
        "\nkill tore {torn_bytes} bytes mid-batch; recovery cut {} bytes \
         ({} lines), lost 0 head-committed entries; chain verified across restart\n",
        rec.truncated_bytes, rec.cut_lines
    );
    print!("{summary}");
    out.push_str(&summary);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut out = String::new();
    out.push_str("E13: durable audit sink — overhead and crash recovery\n\n");

    if !smoke {
        overhead_phase(&mut out);
        println!();
        out.push('\n');
    }
    recovery_phase(&mut out);

    if smoke {
        println!("\nE13 smoke passed: recovery contract holds");
    } else {
        std::fs::create_dir_all("results").expect("create results dir");
        std::fs::write("results/e13.txt", &out).expect("write results/e13.txt");
        println!("\nwrote results/e13.txt");
    }
}
