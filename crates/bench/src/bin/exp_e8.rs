//! E8 — correlation ≠ causation (EXPERIMENTS.md, Table E8).
//!
//! Paper claim (§2): PSM and IPW "address the selection bias, \[but\] their
//! outcomes might still be far away from the results one would obtain with a
//! randomized controlled trial, as was recently illustrated by Gordon et al.
//! (2016)."
//!
//! Bias of each estimator under: RCT, observed confounding (sweep γ), and an
//! unobserved confounder.

use fact_causal::ipw::ipw_ate;
use fact_causal::naive::naive_difference;
use fact_causal::propensity::{psm_ate, stratified_ate};
use fact_causal::regression::{aipw_ate, regression_ate};
use fact_data::synth::clinical::{generate_clinical, ClinicalConfig, CLINICAL_COVARIATES};

fn biases(cfg: &ClinicalConfig) -> (f64, [f64; 6]) {
    let w = generate_clinical(cfg);
    let x = w.data.to_matrix(&CLINICAL_COVARIATES).unwrap();
    let t = w.data.bool_column("treated").unwrap().to_vec();
    let y = w.data.bool_column("recovered").unwrap().to_vec();
    let ests = [
        naive_difference(&t, &y).unwrap(),
        psm_ate(&x, &t, &y, f64::INFINITY, 0).unwrap(),
        stratified_ate(&x, &t, &y, 5, 0).unwrap(),
        ipw_ate(&x, &t, &y, 0.01, 0).unwrap(),
        regression_ate(&x, &t, &y, 0).unwrap(),
        aipw_ate(&x, &t, &y, 0.01, 0).unwrap(),
    ];
    let mut out = [0.0; 6];
    for (o, e) in out.iter_mut().zip(&ests) {
        *o = e - w.true_ate;
    }
    (w.true_ate, out)
}

const NAMES: [&str; 6] = ["naive", "PSM", "strata", "IPW", "regression", "AIPW"];

fn main() {
    println!("E8: estimator bias (estimate − true ATE), n = 30k per world\n");
    println!(
        "{:<34} {:>8} | {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "world", "true ATE", NAMES[0], NAMES[1], NAMES[2], NAMES[3], NAMES[4], NAMES[5]
    );
    println!("{}", "-".repeat(106));

    let base = ClinicalConfig {
        n: 30_000,
        seed: 8,
        ..ClinicalConfig::default()
    };

    let row = |label: &str, cfg: &ClinicalConfig| {
        let (ate, b) = biases(cfg);
        println!(
            "{label:<34} {ate:>+8.3} | {:>+8.3} {:>+8.3} {:>+8.3} {:>+8.3} {:>+8.3} {:>+8.3}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        );
    };

    row(
        "RCT (γ=0)",
        &ClinicalConfig {
            confounding: 0.0,
            ..base.clone()
        },
    );
    for gamma in [0.5, 1.0, 1.5, 2.0] {
        row(
            &format!("observed confounding γ={gamma}"),
            &ClinicalConfig {
                confounding: gamma,
                ..base.clone()
            },
        );
    }
    for u in [0.8, 1.5] {
        row(
            &format!("UNOBSERVED confounder u={u}"),
            &ClinicalConfig {
                confounding: 0.6,
                unobserved_confounding: u,
                ..base.clone()
            },
        );
    }
    println!(
        "\nExpected shape: naive bias grows with γ while PSM/IPW/regression/AIPW stay\n\
         near zero (they 'address the selection bias'); under the unobserved\n\
         confounder ALL observational estimators drift from the RCT truth — the\n\
         Gordon et al. phenomenon."
    );
}
