//! E16 — cross-process shard serving: kill-and-restart under load, and the
//! cost of going remote (EXPERIMENTS.md, E16).
//!
//! Two questions, one harness:
//!
//! 1. **Does guard state survive a worker crash?** Spawns a real
//!    `fact-shardd` process, routes a disparate lending workload to it
//!    through a `ShardSlot::Remote` topology, then SIGKILLs the worker
//!    mid-load. Hard-asserts the periodic checkpoints bound the loss
//!    (decisions lost < shards × checkpoint interval, never a silent
//!    reset to zero), respawns the worker over the same sidecar
//!    directory, and verifies it *resumes*: lifetime decision counts,
//!    fairness window, and ε ledger all continue from the checkpoint.
//!    The worker's durable audit log must verify segment-by-segment
//!    across the crash. `--smoke` runs only this phase (the CI gate).
//! 2. **What does a socket hop cost?** Closed-loop throughput/latency of
//!    the same guarded workload against in-process shards vs. a
//!    `fact-shardd` worker over a Unix socket.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::header;
use fact_data::Matrix;
use fact_ml::Classifier;
use fact_net::RemoteShard;
use fact_serve::audit_sink::{verify_all_segments, AuditStorage, FileStorage};
use fact_serve::{
    load_checkpoint, DecisionRequest, DecisionService, DegradePolicy, GuardConfig, ServeConfig,
    ShardSlot,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_FEATURES: usize = 4;
const WORKER_SHARDS: usize = 2;
const CHECKPOINT_EVERY: u64 = 200;
const DP_INTERVAL: usize = 100;
const FAIRNESS_WINDOW: usize = 800;

/// Same deterministic model `fact-shardd` hosts (probability = mean of the
/// feature vector) so the local and remote columns score identical work.
struct MeanScorer;

impl Classifier for MeanScorer {
    fn predict_proba(&self, x: &Matrix) -> fact_data::Result<Vec<f64>> {
        Ok((0..x.rows())
            .map(|i| {
                let row = x.row(i);
                let mean = row.iter().sum::<f64>() / row.len().max(1) as f64;
                mean.clamp(0.0, 1.0)
            })
            .collect())
    }
}

/// A disparate lending request: group B (30% of traffic) scores low, so
/// the fairness monitor trips and flagged decisions flow to the audit log.
fn lending_request(rng: &mut StdRng, key: u64) -> DecisionRequest {
    let group_b = rng.gen_bool(0.3);
    let center = if group_b { 0.30 } else { 0.70 };
    let features: Vec<f64> = (0..N_FEATURES)
        .map(|_| (center + rng.gen_range(-0.15f64..0.15)).clamp(0.0, 1.0))
        .collect();
    DecisionRequest {
        features,
        group_b,
        route_key: key,
        tenant: 0,
    }
}

struct WorkerDirs {
    root: PathBuf,
    socket: PathBuf,
    checkpoints: PathBuf,
    audit: PathBuf,
}

impl WorkerDirs {
    fn new(tag: &str) -> WorkerDirs {
        let root = std::env::temp_dir().join(format!("fact-e16-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create experiment dir");
        WorkerDirs {
            socket: root.join("shardd.sock"),
            checkpoints: root.join("checkpoints"),
            audit: root.join("audit.jsonl"),
            root,
        }
    }
}

impl Drop for WorkerDirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn shardd_path() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let path = me.parent().expect("bin dir").join("fact-shardd");
    assert!(
        path.exists(),
        "fact-shardd not found at {} — build it first (cargo build --release --bin fact-shardd)",
        path.display()
    );
    path
}

fn spawn_worker(dirs: &WorkerDirs, with_audit: bool) -> Child {
    let mut cmd = Command::new(shardd_path());
    cmd.arg("--socket")
        .arg(&dirs.socket)
        .arg("--checkpoint-dir")
        .arg(&dirs.checkpoints)
        .args(["--shards", &WORKER_SHARDS.to_string()])
        .args(["--n-features", &N_FEATURES.to_string()])
        .args(["--checkpoint-every", &CHECKPOINT_EVERY.to_string()])
        .args(["--dp-interval", &DP_INTERVAL.to_string()])
        .args(["--fairness-window", &FAIRNESS_WINDOW.to_string()])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    if with_audit {
        cmd.arg("--audit").arg(&dirs.audit);
    }
    let child = cmd.spawn().expect("spawn fact-shardd");
    wait_listening(&dirs.socket);
    child
}

/// Block until the worker accepts connections (bounded).
fn wait_listening(socket: &Path) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match RemoteShard::connect(socket) {
            Ok(_) => return,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("worker never came up on {}: {e}", socket.display()),
        }
    }
}

fn remote_client(socket: &Path) -> DecisionService {
    DecisionService::start(
        Arc::new(MeanScorer),
        ServeConfig {
            shards: 1,
            n_features: N_FEATURES,
            guards: None,
            topology: Some(vec![ShardSlot::Remote(socket.to_path_buf())]),
            default_timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        },
    )
    .expect("start remote client")
}

/// Drive `n` requests; returns how many were served (errors tolerated —
/// under a kill some in-flight requests die with the worker).
fn drive(client: &DecisionService, rng: &mut StdRng, n: u64, key_base: u64) -> u64 {
    let mut served = 0;
    for i in 0..n {
        if client.decide(lending_request(rng, key_base + i)).is_ok() {
            served += 1;
        }
    }
    served
}

fn checkpoint_totals(dir: &Path) -> (u64, usize, f64) {
    let mut decisions = 0;
    let mut ledger = 0;
    let mut window_events = 0f64;
    for shard in 0..WORKER_SHARDS {
        if let Some(ck) = load_checkpoint(dir, shard).expect("readable checkpoint") {
            decisions += ck.decisions;
            ledger += ck.ledger.len();
            window_events += ck.window.total_events() as f64;
        }
    }
    (decisions, ledger, window_events)
}

fn kill_restart_phase(n_load: u64, n_resume: u64) {
    println!("## E16a: kill-and-restart a remote shard worker under load\n");
    let dirs = WorkerDirs::new("recovery");
    let mut rng = StdRng::seed_from_u64(16);

    // --- run 1: load, then SIGKILL mid-flight ---------------------------
    let mut worker = spawn_worker(&dirs, true);
    let client = remote_client(&dirs.socket);
    let served1 = drive(&client, &mut rng, n_load, 0);
    assert_eq!(served1, n_load, "healthy worker must serve everything");

    worker.kill().expect("SIGKILL worker");
    worker.wait().expect("reap worker");
    let (ck_decisions, ck_ledger, ck_window) = checkpoint_totals(&dirs.checkpoints);
    let lost = served1 - ck_decisions;
    println!("served before kill            : {served1}");
    println!("checkpointed decisions        : {ck_decisions}");
    println!("decisions lost to the kill    : {lost}");
    println!("ε-ledger entries checkpointed : {ck_ledger}");
    println!("fairness-window events        : {ck_window}");
    assert!(ck_decisions > 0, "silent reset: checkpoints hold nothing");
    let bound = WORKER_SHARDS as u64 * CHECKPOINT_EVERY;
    assert!(
        lost < bound,
        "loss must be bounded by shards × interval: lost {lost}, bound {bound}"
    );
    assert!(ck_ledger > 0, "ε ledger must be checkpointed");

    // the dead worker surfaces as a typed error, not a hang
    let dead = client.decide(lending_request(&mut rng, 999_999));
    assert!(dead.is_err(), "decisions against a dead worker must fail");

    // --- run 2: respawn over the same sidecars, resume, drain cleanly ---
    let mut worker = spawn_worker(&dirs, true);
    let served2 = drive(&client, &mut rng, n_resume, n_load);
    assert_eq!(served2, n_resume, "respawned worker must serve everything");
    let reconnects = client.remote_stats()[0].reconnects;
    assert!(reconnects >= 1, "client must have healed the connection");

    let control = RemoteShard::connect(&dirs.socket).expect("control connection");
    let ack = control
        .control("shutdown", Duration::from_secs(5))
        .expect("shutdown ack");
    assert!(!ack.payload.is_empty());
    let status = worker.wait().expect("worker exit");
    assert!(status.success(), "graceful shutdown must exit 0: {status}");

    let (final_decisions, final_ledger, final_window) = checkpoint_totals(&dirs.checkpoints);
    println!("served after respawn          : {served2}");
    println!("client reconnects             : {reconnects}");
    println!("final lifetime decisions      : {final_decisions}");
    println!("final ε-ledger entries        : {final_ledger}");
    println!("final fairness-window events  : {final_window}");
    assert_eq!(
        final_decisions,
        ck_decisions + served2,
        "lifetime count must resume from the checkpoint, not from zero"
    );
    assert!(
        final_ledger >= ck_ledger,
        "ε ledger must grow monotonically across the restart"
    );
    assert!(final_window > 0.0);

    // --- the audit log must verify across the crash ---------------------
    let mut storage = FileStorage::open(&dirs.audit).expect("open audit log");
    let audit = verify_all_segments(&mut storage as &mut dyn AuditStorage).expect("verify");
    assert!(
        !audit.segments.is_empty(),
        "flagged decisions must be logged"
    );
    assert!(audit.continuous, "audit chain must be continuous");
    let mut entries = 0u64;
    for (id, verdict) in &audit.segments {
        let check = verdict
            .as_ref()
            .unwrap_or_else(|e| panic!("audit segment {id} failed verification: {e:?}"));
        entries += check.entries;
    }
    println!("audit segments verified       : {}", audit.segments.len());
    println!("audit entries across restart  : {entries}");
    assert!(entries > 0, "disparate traffic must have flagged decisions");
    println!("\nPASS: window + ε ledger survive a SIGKILL with bounded loss\n");
    let _ = client.shutdown();
}

// ---------------------------------------------------------------------------
// E16b: local vs remote throughput/latency
// ---------------------------------------------------------------------------

struct Measured {
    throughput: f64,
    mean_us: f64,
    p99_us: f64,
}

fn measure(client: &DecisionService, total: u64, threads: u64, seed: u64) -> Measured {
    let per = total / threads;
    let start = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let client = client.clone();
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ t);
                    let mut lat = Vec::with_capacity(per as usize);
                    for i in 0..per {
                        let req = lending_request(&mut rng, t * per + i);
                        let sent = Instant::now();
                        client.decide(req).expect("decision");
                        lat.push(sent.elapsed().as_micros() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("driver thread"))
            .collect()
    });
    let wall = start.elapsed();
    latencies.sort_unstable();
    let n = latencies.len();
    Measured {
        throughput: n as f64 / wall.as_secs_f64(),
        mean_us: latencies.iter().sum::<u64>() as f64 / n as f64,
        p99_us: latencies[(n * 99) / 100 - 1] as f64,
    }
}

fn comparison_phase(total: u64) {
    println!(
        "## E16b: in-process vs cross-process serving ({total} decisions, 4 driver threads)\n"
    );
    let guard = GuardConfig {
        fairness_window: FAIRNESS_WINDOW,
        dp_interval: DP_INTERVAL,
        ..GuardConfig::default()
    };

    let local = DecisionService::start(
        Arc::new(MeanScorer),
        ServeConfig {
            shards: WORKER_SHARDS,
            n_features: N_FEATURES,
            policy: DegradePolicy::AuditAndFlag,
            guards: Some(guard),
            ..ServeConfig::default()
        },
    )
    .expect("start local service");
    let local_m = measure(&local, total, 4, 7);
    let _ = local.shutdown();

    let dirs = WorkerDirs::new("compare");
    let mut worker = spawn_worker(&dirs, false);
    let remote = remote_client(&dirs.socket);
    let remote_m = measure(&remote, total, 4, 7);
    let rtt = remote.remote_stats()[0].rtt_mean_micros;
    let _ = remote.shutdown();
    let control = RemoteShard::connect(&dirs.socket).expect("control connection");
    control
        .control("shutdown", Duration::from_secs(5))
        .expect("shutdown ack");
    worker.wait().expect("worker exit");

    header(&["mode", "req/s", "mean_us", "p99_us"], &[10, 12, 10, 10]);
    for (mode, m) in [("local", &local_m), ("remote", &remote_m)] {
        println!(
            "{mode:>10} {:>12.0} {:>10.1} {:>10.1}",
            m.throughput, m.mean_us, m.p99_us
        );
    }
    println!("\nremote wire RTT (client-measured): {rtt:.1} µs mean");
    println!(
        "socket-hop slowdown: {:.2}x throughput, {:.2}x mean latency",
        local_m.throughput / remote_m.throughput,
        remote_m.mean_us / local_m.mean_us
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("# E16 — cross-process shard serving with guard-state checkpoint/merge\n");
    if smoke {
        kill_restart_phase(1_200, 600);
        println!("E16 smoke: OK");
    } else {
        kill_restart_phase(6_000, 3_000);
        comparison_phase(20_000);
    }
}
