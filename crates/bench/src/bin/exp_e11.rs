//! E11 — FACT-guarded decision serving under load (EXPERIMENTS.md, E11).
//!
//! Drives `fact-serve` with a synthetic open-loop lending workload: a
//! driver thread submits requests on a fixed arrival schedule (arrivals do
//! not wait for completions; a full shard queue sheds), the service
//! micro-batches them through a logistic model, and the FACT guards watch
//! every decision. Reported per shard count: achieved throughput,
//! p50/p95/p99 end-to-end latency, and the guarded-vs-unguarded overhead.
//!
//! A `SimulatedRemoteSource` charges a 1 ms feature-store fetch per batch —
//! the dominant cost of real online inference — through the `FeatureSource`
//! seam the service assembles every micro-batch with. That is what makes
//! shard scaling honest on a single-core host: shards overlap their
//! *waits*, not CPU, so throughput grows with shard count the way a
//! remote-backed service's would, and the guards' CPU cost shows up
//! undiluted in the overhead column.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::header;
use fact_data::Matrix;
use fact_ml::logistic::{LogisticConfig, LogisticRegression};
use fact_serve::{
    DecisionRequest, DecisionService, DegradePolicy, GuardConfig, ServeConfig,
    SimulatedRemoteSource,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_FEATURES: usize = 8;
/// Simulated feature-store round trip, paid once per micro-batch.
const FETCH: Duration = Duration::from_millis(1);
/// Offered load: past saturation even at 4 shards (capacity ≈ 8k/s/shard).
const OFFERED_PER_MS: usize = 40;
const TRIAL: Duration = Duration::from_millis(1200);

fn train_model(seed: u64) -> LogisticRegression {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 2_000;
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..N_FEATURES).map(|_| rng.gen::<f64>()).collect();
        let score = row[0] + 0.2 * row[1] + 0.1 * rng.gen::<f64>();
        y.push(score > 0.65);
        rows.push(row);
    }
    let x = Matrix::from_rows(&rows).unwrap();
    let cfg = LogisticConfig {
        seed,
        ..LogisticConfig::default()
    };
    LogisticRegression::fit(&x, &y, None, &cfg).unwrap()
}

/// One serving request from the synthetic lending population: group B's
/// qualifying feature is mildly depressed, so the fairness guard has real
/// work to do.
fn lending_request(rng: &mut StdRng, key: u64) -> DecisionRequest {
    let group_b = rng.gen_bool(0.3);
    let mut features: Vec<f64> = (0..N_FEATURES).map(|_| rng.gen::<f64>()).collect();
    features[0] = if group_b {
        rng.gen_range(0.0..0.85)
    } else {
        rng.gen_range(0.15..1.0)
    };
    DecisionRequest {
        features,
        group_b,
        route_key: key,
        tenant: 0,
    }
}

struct Trial {
    throughput: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    shed: u64,
    alerts: u64,
    epsilon: f64,
}

fn run_trial(model: Arc<LogisticRegression>, shards: usize, guarded: bool, seed: u64) -> Trial {
    let guards = guarded.then(|| GuardConfig {
        fairness_window: 2_000,
        min_di: 0.8,
        min_samples_per_group: 100,
        dp_interval: 1_000,
        epsilon_per_release: 0.01,
        epsilon_budget: 5.0,
        // score drift monitored against the serving distribution itself, so
        // it observes every decision without constantly firing
        drift: Some((
            (0..1000).map(|i| i as f64 / 1000.0).collect(),
            10,
            2_000,
            0.25,
        )),
    });
    let service = DecisionService::start_with_source(
        model,
        ServeConfig {
            shards,
            n_features: N_FEATURES,
            queue_cap: 256,
            batch_max: 8,
            batch_linger: Duration::from_micros(200),
            default_timeout: Duration::from_secs(5),
            threshold: 0.5,
            // measure pure observation overhead: guards watch and alert but
            // never change what is served
            policy: DegradePolicy::Off,
            trip_cooldown: 0,
            alert_debounce: 1_000,
            guards,
            seed,
            audit: None,
            cache: None,
            topology: None,
            checkpoint: None,
            admission: None,
        },
        Arc::new(SimulatedRemoteSource::new(FETCH)),
    )
    .expect("service start");

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let start = Instant::now();
    let mut key = 0u64;
    let mut shed = 0u64;
    // open loop: a fixed arrival schedule, one burst per millisecond tick;
    // completions are reaped by the service, never waited on here
    while start.elapsed() < TRIAL {
        for _ in 0..OFFERED_PER_MS {
            key += 1;
            match service.submit(lending_request(&mut rng, key)) {
                Ok(handle) => drop(handle), // fire-and-forget; worker still serves it
                Err(_) => shed += 1,
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let report = service.shutdown(); // drain what was accepted
    let elapsed = start.elapsed().as_secs_f64();
    let snap = service.metrics();
    let us = |d: Option<Duration>| d.map_or(0.0, |d| d.as_nanos() as f64 / 1e3);
    Trial {
        throughput: report.decisions_served as f64 / elapsed,
        p50_us: us(snap.p50),
        p95_us: us(snap.p95),
        p99_us: us(snap.p99),
        shed,
        alerts: report.alerts_raised,
        epsilon: report.epsilon_spent,
    }
}

fn main() {
    let model = Arc::new(train_model(11));
    println!(
        "E11: guarded decision serving, open-loop load ({} req/s offered, {}ms fetch per batch)\n",
        OFFERED_PER_MS * 1000,
        FETCH.as_millis()
    );
    // warm-up (thread spawn, allocator, model)
    run_trial(Arc::clone(&model), 1, true, 99);

    let mut out = String::new();
    let columns = [
        "shards", "config", "req/s", "p50(us)", "p95(us)", "p99(us)", "shed", "alerts", "eps",
    ];
    let widths = [6, 10, 10, 10, 10, 10, 8, 7, 6];
    header(&columns, &widths);
    let mut head = String::new();
    for (c, w) in columns.iter().zip(widths) {
        head.push_str(&format!("{c:>w$} "));
    }
    out.push_str(&head);
    out.push('\n');

    let mut guarded_rates = Vec::new();
    let mut overheads = Vec::new();
    for &shards in &[1usize, 2, 4] {
        let base = run_trial(Arc::clone(&model), shards, false, 7 + shards as u64);
        let guarded = run_trial(Arc::clone(&model), shards, true, 7 + shards as u64);
        for (label, t) in [("unguarded", &base), ("guarded", &guarded)] {
            let line = format!(
                "{shards:>6} {label:>10} {:>10.0} {:>10.1} {:>10.1} {:>10.1} {:>8} {:>7} {:>6.2}",
                t.throughput, t.p50_us, t.p95_us, t.p99_us, t.shed, t.alerts, t.epsilon
            );
            println!("{line}");
            out.push_str(&line);
            out.push('\n');
        }
        let overhead = 100.0 * (1.0 - guarded.throughput / base.throughput);
        overheads.push((shards, overhead));
        guarded_rates.push(guarded.throughput);
        let line = format!("{shards:>6} {:>10} overhead {overhead:>5.1}%", "guard");
        println!("{line}");
        out.push_str(&line);
        out.push('\n');
    }

    let monotone = guarded_rates.windows(2).all(|w| w[1] > w[0]);
    let summary = format!(
        "\nguarded throughput 1→2→4 shards: {:.0} → {:.0} → {:.0} req/s (monotone: {})\n\
         guard overhead at 4 shards: {:.1}% (claim: <15%)\n",
        guarded_rates[0],
        guarded_rates[1],
        guarded_rates[2],
        if monotone { "yes" } else { "NO" },
        overheads.last().unwrap().1,
    );
    print!("{summary}");
    out.push_str(&summary);

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/e11.txt", &out).expect("write results/e11.txt");
    println!("\nwrote results/e11.txt");
}
