//! Ablations for the toolkit's own design choices (DESIGN.md calls for
//! these alongside the paper-claim experiments E1–E10).
//!
//! * A1 — Sparse Vector Technique vs independent Laplace releases: budget
//!   consumed to monitor a stream of threshold queries.
//! * A2 — streaming fairness-monitor window size: detection latency vs
//!   false-alarm robustness.
//! * A3 — boosted-tree depth: interaction effects need depth ≥ 2.
//! * A4 — Platt calibration: expected calibration error before/after on the
//!   MLP's probabilities.

use fact_confidentiality::advanced::SparseVector;
use fact_core::runtime::StreamingFairnessMonitor;
use fact_data::split::train_test_split;
use fact_data::stream::InternetMinute;
use fact_data::synth::hiring::{generate_hiring, HiringConfig, HIRING_FEATURES};
use fact_ml::boosting::{BoostConfig, GradientBoost};
use fact_ml::calibration::{expected_calibration_error, PlattScaler};
use fact_ml::metrics::accuracy;
use fact_ml::mlp::{Mlp, MlpConfig};
use fact_ml::Classifier;

fn a1_svt() {
    println!("A1: budget to answer 1000 threshold queries (5 true positives)\n");
    // independent Laplace releases: every query costs ε_q
    let eps_q = 0.05;
    let independent_total = 1000.0 * eps_q;
    // SVT: one fixed budget answers everything (capped positives)
    let svt_total = 1.0;
    // threshold 250 sits far above the noise floor (query noise scale 20),
    // so false positives are negligible and the budget goes to real spikes
    let mut svt = SparseVector::new(250.0, svt_total, 5, 7).unwrap();
    let mut answered = 0;
    let mut positives = 0;
    for i in 0..1000 {
        let value = if i % 200 == 199 { 500.0 } else { 0.0 }; // 5 spikes
        match svt.query(value) {
            Ok(hit) => {
                answered += 1;
                if hit {
                    positives += 1;
                }
            }
            Err(_) => break,
        }
    }
    println!("  independent Laplace: ε = {independent_total:.1} for 1000 queries");
    println!(
        "  sparse vector:       ε = {svt_total:.1} total — answered {answered}, flagged {positives}"
    );
    println!(
        "  → SVT is {}× cheaper for sparse monitoring\n",
        independent_total / svt_total
    );
}

fn a2_window() {
    println!("A2: fairness-monitor window size vs recovery after remediation\n");
    println!("(10k discriminatory events, then fair traffic; when do alerts stop?)\n");
    println!(
        "{:>8} {:>18} {:>24}",
        "window", "events-to-alert", "recovery (fair events)"
    );
    for window in [500usize, 2_000, 8_000] {
        let mut m = StreamingFairnessMonitor::new(window, 0.8, 50).unwrap();
        let mut latency = None;
        for (i, ev) in InternetMinute::new(1)
            .with_disparity(0.9, 0.4)
            .take(10_000)
            .enumerate()
        {
            if m.observe(ev.group_b, ev.decision_favorable).is_some() && latency.is_none() {
                latency = Some(i + 1);
            }
        }
        // remediation: fair traffic resumes; the stale window keeps alerting
        // until it flushes
        let mut last_alert = 0usize;
        for (i, ev) in InternetMinute::new(2).take(40_000).enumerate() {
            if m.observe(ev.group_b, ev.decision_favorable).is_some() {
                last_alert = i + 1;
            }
        }
        println!(
            "{window:>8} {:>18} {last_alert:>24}",
            latency
                .map(|l| l.to_string())
                .unwrap_or_else(|| "never".into())
        );
    }
    println!("  → detection latency is gated by min-samples, but recovery time scales with\n    the window: a stale window keeps accusing a remediated system\n");
}

fn a3_boost_depth() {
    println!("A3: gradient-boost tree depth on a pure-interaction (XOR) decision rule\n");
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(3);
    let n = 4_000;
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let a: f64 = rng.gen_range(-1.0..1.0);
        let b: f64 = rng.gen_range(-1.0..1.0);
        rows.push(vec![a, b]);
        y.push((a > 0.0) ^ (b > 0.0));
    }
    let x = fact_data::Matrix::from_rows(&rows).unwrap();
    println!("{:>7} {:>10}", "depth", "train acc");
    for depth in [1usize, 2, 3] {
        let m = GradientBoost::fit(
            &x,
            &y,
            &BoostConfig {
                max_depth: depth,
                ..BoostConfig::default()
            },
        )
        .unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        println!("{depth:>7} {acc:>10.3}");
    }
    println!("  → depth-1 stumps cannot represent the interaction; depth ≥ 2 solves it\n");
}

fn a4_calibration() {
    println!("A4: Platt calibration of the MLP's probabilities (hiring world)\n");
    let world = generate_hiring(&HiringConfig {
        n: 10_000,
        seed: 4,
        ..HiringConfig::default()
    });
    let (train, rest) = train_test_split(&world, 0.5, 2).unwrap();
    let (calib, test) = train_test_split(&rest, 0.5, 3).unwrap();
    let (x, _) = train.to_matrix_onehot(&HIRING_FEATURES).unwrap();
    let y = train.bool_column("hired").unwrap().to_vec();
    let mlp = Mlp::fit(
        &x,
        &y,
        &MlpConfig {
            epochs: 100,
            ..MlpConfig::default()
        },
    )
    .unwrap();
    let (xc, _) = calib.to_matrix_onehot(&HIRING_FEATURES).unwrap();
    let yc = calib.bool_column("hired").unwrap().to_vec();
    let (xt, _) = test.to_matrix_onehot(&HIRING_FEATURES).unwrap();
    let yt = test.bool_column("hired").unwrap().to_vec();
    let raw = mlp.predict_proba(&xt).unwrap();
    let before = expected_calibration_error(&yt, &raw, 10).unwrap();
    let scaler = PlattScaler::fit(&mlp.predict_proba(&xc).unwrap(), &yc).unwrap();
    let after = expected_calibration_error(&yt, &scaler.transform(&raw), 10).unwrap();
    let (a, b) = scaler.coefficients();
    println!("  ECE before {before:.4} → after {after:.4}   (fitted a={a:.2}, b={b:+.2})");
    println!("  → the accuracy pillar's 'meta-information' requires calibrated scores\n");
}

fn main() {
    a1_svt();
    a2_window();
    a3_boost_depth();
    a4_calibration();
}
