//! E3 — multiple testing (EXPERIMENTS.md, Table E3 / Figure E3).
//!
//! Paper claim (§2): "If enough hypotheses are tested, one will eventually
//! be true for the sample data used" — the terrorist/eye-color example.
//!
//! A pure-noise world: binary response, m random predictors, Welch tests.
//! Table: naive vs corrected discovery counts by m. Figure: estimated
//! family-wise error rate vs m, uncorrected vs Holm.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fact_accuracy::registry::{CorrectionMethod, HypothesisRegistry};
use fact_stats::tests::welch_t_test;

fn null_p_values(n_rows: usize, m: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let response: Vec<bool> = (0..n_rows).map(|_| rng.gen_bool(0.5)).collect();
    let mut ps = Vec::with_capacity(m);
    for _ in 0..m {
        let x: Vec<f64> = (0..n_rows).map(|_| rng.gen()).collect();
        let yes: Vec<f64> = x
            .iter()
            .zip(&response)
            .filter(|(_, &r)| r)
            .map(|(&v, _)| v)
            .collect();
        let no: Vec<f64> = x
            .iter()
            .zip(&response)
            .filter(|(_, &r)| !r)
            .map(|(&v, _)| v)
            .collect();
        ps.push(welch_t_test(&yes, &no).unwrap().p_value);
    }
    ps
}

fn main() {
    println!("E3: multiple testing on pure noise (n=300 rows, α=0.05)\n");
    println!(
        "{:>6} {:>8} {:>11} {:>8} {:>8} {:>8}",
        "m", "naive", "bonferroni", "holm", "BH", "BY"
    );
    println!("{}", "-".repeat(56));
    for m in [10usize, 100, 1_000, 5_000] {
        let ps = null_p_values(300, m, m as u64);
        let mut reg = HypothesisRegistry::new();
        for (i, &p) in ps.iter().enumerate() {
            reg.register(format!("h{i}"), p).unwrap();
        }
        let counts: Vec<usize> = [
            CorrectionMethod::Bonferroni,
            CorrectionMethod::Holm,
            CorrectionMethod::BenjaminiHochberg,
            CorrectionMethod::BenjaminiYekutieli,
        ]
        .iter()
        .map(|&method| reg.report(0.05, method).unwrap().corrected_discoveries)
        .collect();
        let naive = reg
            .report(0.05, CorrectionMethod::Holm)
            .unwrap()
            .naive_discoveries;
        println!(
            "{m:>6} {naive:>8} {:>11} {:>8} {:>8} {:>8}",
            counts[0], counts[1], counts[2], counts[3]
        );
    }

    println!("\nFigure E3: family-wise error rate (P[≥1 false discovery], 40 replications)");
    println!("{:>6} {:>12} {:>10}", "m", "uncorrected", "holm");
    for m in [5usize, 20, 100, 400] {
        let mut fw_naive = 0;
        let mut fw_holm = 0;
        for rep in 0..40u64 {
            let ps = null_p_values(200, m, 1000 + rep * 7 + m as u64);
            if ps.iter().any(|&p| p <= 0.05) {
                fw_naive += 1;
            }
            let adj = fact_stats::multiple::holm(&ps).unwrap();
            if adj.iter().any(|&p| p <= 0.05) {
                fw_holm += 1;
            }
        }
        println!(
            "{m:>6} {:>12.2} {:>10.2}",
            fw_naive as f64 / 40.0,
            fw_holm as f64 / 40.0
        );
    }
    println!("\nExpected shape: uncorrected FWER → 1 as m grows; Holm stays ≤ 0.05.");
}
