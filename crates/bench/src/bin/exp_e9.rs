//! E9 — responsibility at Internet-Minute scale (EXPERIMENTS.md, Table E9).
//!
//! Paper §3 cites ≈13.8M events/minute across seven services. This
//! experiment prices the FACT guards on that mix: throughput of the event
//! pipeline with guards off vs on (fairness monitor + periodic DP release +
//! audit sampling), and how long a paper-scale minute takes to audit.

use std::time::Instant;

use bench::header;
use fact_core::runtime::GuardedStream;
use fact_data::stream::{InternetMinute, Service};

fn throughput(guarded: bool, n_events: usize, seed: u64) -> (f64, u64, usize) {
    let events: Vec<_> = InternetMinute::new(seed)
        .with_disparity(0.85, 0.65) // mild disparity so the monitor has work
        .take(n_events)
        .collect();
    let mut proc = if guarded {
        GuardedStream::guarded(5_000, 0.8, 10_000, 50.0, 100, seed).unwrap()
    } else {
        GuardedStream::unguarded()
    };
    let start = Instant::now();
    for ev in &events {
        proc.process(ev);
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(proc.value_sum());
    (
        n_events as f64 / secs,
        proc.audit_entries,
        proc.alerts.len(),
    )
}

fn main() {
    println!(
        "E9: guarded-stream throughput (paper's Internet Minute = {} events/min)\n",
        Service::total_per_minute()
    );
    let n = 2_000_000usize;
    // warm-up
    throughput(false, 100_000, 0);

    header(
        &[
            "config",
            "events/sec",
            "audit entries",
            "alerts",
            "paper-minute cost",
        ],
        &[14, 14, 14, 8, 20],
    );
    let mut base_rate = 0.0;
    for (label, guarded) in [("unguarded", false), ("guarded", true)] {
        let (rate, audit, alerts) = throughput(guarded, n, 42);
        if !guarded {
            base_rate = rate;
        }
        let minute_cost = Service::total_per_minute() as f64 / rate;
        println!("{label:>14} {rate:>14.0} {audit:>14} {alerts:>8} {minute_cost:>18.2}s");
    }
    let (guarded_rate, _, _) = throughput(true, n, 43);
    println!(
        "\nguard overhead: {:.1}% of unguarded throughput",
        100.0 * (1.0 - guarded_rate / base_rate)
    );
    println!(
        "\nExpected shape: guards cost a constant factor (well under one order of\n\
         magnitude), and one full Internet Minute audits in seconds on one core —\n\
         responsibility does not preclude scale."
    );
}
