//! E1 — proxy discrimination (EXPERIMENTS.md, Table E1 / Figure E1).
//!
//! Paper claim (§2): "Even if sensitive attributes are omitted, members of
//! certain groups may still be systematically rejected."
//!
//! Sweep label-bias strength β; for each β train three models:
//!   (a) WITH the sensitive column,
//!   (b) WITHOUT it, no proxy in the world,
//!   (c) WITHOUT it, but a zip-code proxy (strength 0.8) present.
//! Report held-out disparate impact and accuracy. Expected shape: (a) and
//! (c) discriminate increasingly with β; (b) cannot express the bias and
//! stays near DI = 1.

use fact_data::split::train_test_split;
use fact_data::synth::loans::{generate_loans, LoanConfig};
use fact_fairness::metrics::disparate_impact;
use fact_fairness::protected_mask;
use fact_ml::logistic::{LogisticConfig, LogisticRegression};
use fact_ml::metrics::accuracy;
use fact_ml::Classifier;

fn run(ds: &fact_data::Dataset, features: &[&str], seed: u64) -> (f64, f64) {
    let (train, test) = train_test_split(ds, 0.3, seed).unwrap();
    let x = train.to_matrix_onehot(features).unwrap().0;
    let y = train.bool_column("approved").unwrap().to_vec();
    let model = LogisticRegression::fit(
        &x,
        &y,
        None,
        &LogisticConfig {
            seed,
            ..LogisticConfig::default()
        },
    )
    .unwrap();
    let xt = test.to_matrix_onehot(features).unwrap().0;
    let pred = model.predict(&xt).unwrap();
    let yt = test.bool_column("approved").unwrap().to_vec();
    let mask = protected_mask(&test, "group", "B").unwrap();
    (
        disparate_impact(&pred, &mask).unwrap(),
        accuracy(&yt, &pred).unwrap(),
    )
}

fn main() {
    println!("E1: proxy discrimination — DI (accuracy) by label-bias strength β");
    println!("world: n=20000, group B = 30%, proxy strength 0.8 in column (c)\n");
    println!(
        "{:>5} | {:>22} | {:>22} | {:>22}",
        "β", "(a) with sensitive", "(b) w/o sens, no proxy", "(c) w/o sens, proxy"
    );
    println!("{}", "-".repeat(82));
    for beta in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let seed = (beta * 100.0) as u64 + 1;
        let no_proxy_world = generate_loans(&LoanConfig {
            n: 20_000,
            seed,
            bias_strength: beta,
            proxy_strength: 0.0,
            ..LoanConfig::default()
        });
        let proxy_world = generate_loans(&LoanConfig {
            n: 20_000,
            seed,
            bias_strength: beta,
            proxy_strength: 0.8,
            ..LoanConfig::default()
        });
        let legit = ["income", "credit_score", "debt_ratio", "years_employed"];
        let with_sens = [
            "income",
            "credit_score",
            "debt_ratio",
            "years_employed",
            "group",
        ];
        let with_proxy = [
            "income",
            "credit_score",
            "debt_ratio",
            "years_employed",
            "zip_risk",
        ];
        let (di_a, acc_a) = run(&no_proxy_world, &with_sens, seed);
        let (di_b, acc_b) = run(&no_proxy_world, &legit, seed);
        let (di_c, acc_c) = run(&proxy_world, &with_proxy, seed);
        println!(
            "{beta:>5.1} | {:>12.3} ({acc_a:.3}) | {:>12.3} ({acc_b:.3}) | {:>12.3} ({acc_c:.3})",
            di_a, di_b, di_c
        );
    }
    println!();
    println!("Figure E1: DI of configuration (c) vs proxy strength at fixed β=0.5");
    println!("{:>8} {:>8}", "proxy", "DI");
    for strength in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let world = generate_loans(&LoanConfig {
            n: 20_000,
            seed: 91,
            bias_strength: 0.5,
            proxy_strength: strength,
            ..LoanConfig::default()
        });
        let with_proxy = [
            "income",
            "credit_score",
            "debt_ratio",
            "years_employed",
            "zip_risk",
        ];
        let (di, _) = run(&world, &with_proxy, 91);
        println!("{strength:>8.1} {di:>8.3}");
    }
}
