//! E5 — privacy-utility under a strict budget (EXPERIMENTS.md, Table E5 /
//! Figure E5).
//!
//! Paper claim (§2): confidentiality-preserving analysis means "techniques
//! that work under a strict privacy budget".
//!
//! Figure: mean-absolute error of a DP mean release vs ε, Laplace vs
//! Gaussian (δ=1e-6). Table: queries affordable at total ε=1 under basic vs
//! advanced composition.

use fact_confidentiality::accountant::{advanced_composition_epsilon, queries_affordable_advanced};
use fact_confidentiality::mechanisms::{dp_mean, gaussian_mechanism};
use fact_data::synth::census::{generate_census, CensusConfig};
use fact_stats::descriptive::mean;

fn main() {
    let census = generate_census(&CensusConfig {
        n: 10_000,
        seed: 5,
        ..CensusConfig::default()
    });
    let salaries = census.f64_column("salary").unwrap();
    let truth = mean(&salaries).unwrap();
    let n = salaries.len() as f64;
    let reps = 200u64;

    println!("E5: privacy-utility tradeoff — DP mean(salary), n=10k, bounds [0,250]");
    println!("true mean = {truth:.3}\n");
    println!("{:>8} {:>14} {:>14}", "ε", "Laplace MAE", "Gaussian MAE");
    println!("{}", "-".repeat(40));
    for eps in [0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
        let mut lap = 0.0;
        let mut gau = 0.0;
        for seed in 0..reps {
            lap += (dp_mean(&salaries, 0.0, 250.0, eps, seed).unwrap() - truth).abs();
            // same sensitivity (range/n), Gaussian at δ=1e-6
            let sens = 250.0 / n;
            gau += (gaussian_mechanism(truth, sens, eps, 1e-6, seed).unwrap() - truth).abs();
        }
        println!(
            "{eps:>8.2} {:>14.4} {:>14.4}",
            lap / reps as f64,
            gau / reps as f64
        );
    }

    println!("\nTable E5b: queries affordable within total ε = 1.0 (δ' = 1e-5)");
    println!(
        "{:>10} {:>10} {:>10} {:>14}",
        "ε/query", "basic", "advanced", "adv ε@basic-k"
    );
    println!("{}", "-".repeat(48));
    for eps_step in [0.1f64, 0.05, 0.02, 0.01, 0.005] {
        let basic = (1.0 / eps_step).floor() as usize;
        let adv = queries_affordable_advanced(1.0, eps_step, 1e-5).unwrap();
        let adv_eps_at_basic = advanced_composition_epsilon(basic, eps_step, 1e-5).unwrap();
        println!("{eps_step:>10.3} {basic:>10} {adv:>10} {adv_eps_at_basic:>14.3}");
    }
    println!(
        "\nExpected shape: error ∝ 1/ε; Gaussian pays a √(2 ln(1.25/δ)) premium at\n\
         pure-DP-comparable ε; advanced composition overtakes basic once queries\n\
         are small (crossover where ε√(2k ln 1/δ') < kε, i.e. k > 2 ln(1/δ'))."
    );
}
