//! E18 — adaptive admission control under open-loop overload
//! (EXPERIMENTS.md, E18).
//!
//! Three questions, one harness:
//!
//! 1. **Does the static bound collapse?** An open-loop arrival process
//!    (requests fired on a clock, not gated on completions) at ~4× a
//!    slow model's service rate drives a `queue_cap`-bounded service.
//!    With admission off, the queue pins at its cap and the client-side
//!    post-warmup p99 collapses to `queue_cap × service_time` — hard
//!    asserted at ≥ 4× the 25 ms target.
//! 2. **Does the AIMD controller hold the target?** The same workload
//!    against the same service with adaptive admission on: the
//!    controller shrinks the effective capacity until the observed p99
//!    sits at the target. Hard-asserted: post-warmup p99 ≤ 2× target,
//!    while still serving (not black-holed).
//! 3. **Do tenant quotas isolate?** A flooding tenant plus a quiet
//!    in-quota tenant share the adaptive service; the quiet tenant must
//!    complete ≥ 95% of its requests with p99 ≤ 2× target while the hot
//!    tenant eats `Throttled`. The same contract is then proven across
//!    the wire against a real spawned `fact-shardd` worker (typed
//!    `Throttled` rebuilt client-side).
//!
//! `--smoke` runs shorter sweeps of all three phases with the same hard
//! asserts (the CI gate).

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fact_data::Matrix;
use fact_ml::Classifier;
use fact_net::RemoteShard;
use fact_serve::{
    AdmissionConfig, DecisionRequest, DecisionService, DegradePolicy, ServeConfig, ServeError,
    ShardSlot,
};

const N_FEATURES: usize = 4;
const TARGET_P99: Duration = Duration::from_millis(25);
const SERVICE_TIME: Duration = Duration::from_millis(1);
const QUEUE_CAP: usize = 512;

/// Scores instantly computable work after a fixed per-batch stall: a
/// deterministic stand-in for a model whose inference budget dominates.
/// With `batch_max: 1` every request costs exactly one stall.
struct SlowModel;

impl Classifier for SlowModel {
    fn predict_proba(&self, x: &Matrix) -> fact_data::Result<Vec<f64>> {
        std::thread::sleep(SERVICE_TIME);
        Ok((0..x.rows()).map(|i| x.get(i, 0).clamp(0.0, 1.0)).collect())
    }
}

fn request(tenant: u64, key: u64) -> DecisionRequest {
    DecisionRequest {
        features: vec![0.7; N_FEATURES],
        group_b: key % 2 == 0,
        route_key: key,
        tenant,
    }
}

fn overload_config(admission: Option<AdmissionConfig>) -> ServeConfig {
    ServeConfig {
        shards: 1,
        n_features: N_FEATURES,
        queue_cap: QUEUE_CAP,
        batch_max: 1,
        batch_linger: Duration::ZERO,
        default_timeout: Duration::from_secs(10),
        policy: DegradePolicy::Off,
        guards: None,
        admission,
        ..ServeConfig::default()
    }
}

fn adaptive() -> AdmissionConfig {
    AdmissionConfig {
        target_p99: TARGET_P99,
        ..AdmissionConfig::default()
    }
}

fn p99(samples: &mut [Duration]) -> Duration {
    assert!(!samples.is_empty(), "p99 of an empty sample set");
    samples.sort_unstable();
    samples[(samples.len() - 1) * 99 / 100]
}

struct OpenLoopOutcome {
    served: u64,
    shed: u64,
    throttled: u64,
    /// Client-side completion latencies for requests submitted after the
    /// warmup cutoff.
    post_warmup: Vec<Duration>,
}

/// Fire `total` requests at `rate` arrivals/second regardless of
/// completions (open loop); a collector thread drains the handles.
/// Latency is measured client-side per request, and only requests
/// submitted after `warmup` count toward the reported distribution —
/// the ramp transient is not the steady state under test.
fn open_loop(
    service: &DecisionService,
    tenant: u64,
    rate: f64,
    total: u64,
    warmup: Duration,
) -> OpenLoopOutcome {
    type Pending = (Instant, bool, fact_serve::DecisionHandle);
    let (tx, rx) = mpsc::channel::<Pending>();
    let collector = std::thread::spawn(move || {
        let mut post_warmup = Vec::new();
        let mut served = 0u64;
        for (submitted, counted, handle) in rx {
            match handle.wait(Duration::from_secs(10)) {
                Ok(_) => {
                    served += 1;
                    if counted {
                        post_warmup.push(submitted.elapsed());
                    }
                }
                Err(e) => panic!("admitted request must complete: {e:?}"),
            }
        }
        (served, post_warmup)
    });

    let interval = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now();
    let mut shed = 0u64;
    let mut throttled = 0u64;
    for i in 0..total {
        // pace the arrival clock; if we fall behind, submit immediately
        // (open loop: the arrival process never waits for the service)
        let due = start + interval.mul_f64(i as f64);
        loop {
            let now = Instant::now();
            if now >= due {
                break;
            }
            std::thread::sleep((due - now).min(Duration::from_micros(200)));
        }
        let submitted = Instant::now();
        let counted = submitted.duration_since(start) >= warmup;
        match service.submit(request(tenant, i)) {
            Ok(handle) => tx.send((submitted, counted, handle)).expect("collector"),
            Err(ServeError::Busy { .. }) => shed += 1,
            Err(ServeError::Throttled { .. }) => throttled += 1,
            Err(e) => panic!("unexpected submit error: {e:?}"),
        }
    }
    drop(tx);
    let (served, post_warmup) = collector.join().expect("collector thread");
    OpenLoopOutcome {
        served,
        shed,
        throttled,
        post_warmup,
    }
}

/// Phase A: static bound vs adaptive controller under the same overload.
fn overload_phase(rate: f64, total: u64, warmup: Duration) {
    println!("## E18a: open-loop overload, static bound vs adaptive controller\n");
    println!(
        "arrivals {rate:.0}/s, {total} requests, service {SERVICE_TIME:?}, \
         queue_cap {QUEUE_CAP}, target p99 {TARGET_P99:?}\n"
    );

    let report = |label: &str, out: &mut OpenLoopOutcome| -> Duration {
        let p = p99(&mut out.post_warmup);
        println!(
            "{label:>10}: served={} shed={} throttled={} post-warmup p99={:.1}ms",
            out.served,
            out.shed,
            out.throttled,
            p.as_secs_f64() * 1e3,
        );
        p
    };

    let service = DecisionService::start(Arc::new(SlowModel), overload_config(None)).unwrap();
    let mut stat = open_loop(&service, 0, rate, total, warmup);
    let static_p99 = report("static", &mut stat);
    service.shutdown();

    let service =
        DecisionService::start(Arc::new(SlowModel), overload_config(Some(adaptive()))).unwrap();
    let mut adap = open_loop(&service, 0, rate, total, warmup);
    let adaptive_p99 = report("adaptive", &mut adap);
    let snap = service.metrics();
    println!(
        "{:>10}: cap={} ticks={} shrinks={} grows={}\n",
        "controller",
        snap.admission.effective_cap,
        snap.admission.ticks,
        snap.admission.shrinks,
        snap.admission.grows,
    );
    service.shutdown();

    assert!(
        static_p99 >= TARGET_P99 * 4,
        "static bound must collapse under overload: p99 {static_p99:?} < 4x target"
    );
    assert!(
        adaptive_p99 <= TARGET_P99 * 2,
        "adaptive controller must hold p99 within 2x target: {adaptive_p99:?}"
    );
    assert!(adap.served > 0, "adaptive service must not black-hole");
    assert!(
        adap.shed > 0,
        "holding the target under overload requires shedding"
    );
}

/// Phase B (local): a flooding tenant and an in-quota quiet tenant share
/// the adaptive service.
fn isolation_phase(flood_rate: f64, quiet_total: u64) {
    println!("## E18b: tenant isolation under a flooding neighbor (local)\n");
    let quota = AdmissionConfig {
        target_p99: TARGET_P99,
        tenant_rate: 100.0,
        tenant_burst: 50.0,
        ..AdmissionConfig::default()
    };
    let service =
        DecisionService::start(Arc::new(SlowModel), overload_config(Some(quota))).unwrap();

    // hot tenant: open-loop flood on a background thread
    let hot_service = service.clone();
    let hot_total = (flood_rate / 10.0) as u64 * 10; // ~1s of flood
    let hot = std::thread::spawn(move || {
        open_loop(&hot_service, 1, flood_rate, hot_total, Duration::ZERO)
    });

    // quiet tenant: paced *within* its quota, closed-loop, measured
    let quiet_interval = Duration::from_millis(20); // 50/s against a 100/s quota
    let mut quiet_ok = 0u64;
    let mut quiet_err = 0u64;
    let mut quiet_latency = Vec::new();
    for i in 0..quiet_total {
        let t0 = Instant::now();
        match service.decide(request(2, 1_000_000 + i)) {
            Ok(_) => {
                quiet_ok += 1;
                quiet_latency.push(t0.elapsed());
            }
            Err(_) => quiet_err += 1,
        }
        std::thread::sleep(quiet_interval.saturating_sub(t0.elapsed()));
    }
    let hot_out = hot.join().expect("hot tenant thread");

    let quiet_p99 = p99(&mut quiet_latency);
    let completion = quiet_ok as f64 / (quiet_ok + quiet_err) as f64;
    println!(
        "hot   : served={} shed={} throttled={}",
        hot_out.served, hot_out.shed, hot_out.throttled
    );
    println!(
        "quiet : completion={:.1}% p99={:.1}ms\n",
        completion * 100.0,
        quiet_p99.as_secs_f64() * 1e3
    );
    let snap = service.metrics();
    let quiet_stats = snap.admission.tenant(2).expect("quiet tenant tracked");
    service.shutdown();

    assert!(
        hot_out.throttled > 0,
        "the flood must exhaust the hot tenant's quota"
    );
    assert!(
        completion >= 0.95,
        "quiet tenant completion {completion:.3} < 95%"
    );
    assert!(
        quiet_p99 <= TARGET_P99 * 2,
        "quiet tenant p99 {quiet_p99:?} blew the SLO"
    );
    assert_eq!(quiet_stats.throttled, 0, "quiet tenant must never throttle");
}

// ---- Phase C: the same quota contract across a real fact-shardd ----

fn shardd_path() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let path = me.parent().expect("bin dir").join("fact-shardd");
    assert!(
        path.exists(),
        "fact-shardd not found at {} — build it first (cargo build --bin fact-shardd)",
        path.display()
    );
    path
}

fn wait_listening(socket: &Path) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match RemoteShard::connect(socket) {
            Ok(_) => return,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("worker never came up on {}: {e}", socket.display()),
        }
    }
}

fn spawn_worker(root: &Path, socket: &Path) -> Child {
    let child = Command::new(shardd_path())
        .arg("--socket")
        .arg(socket)
        .arg("--checkpoint-dir")
        .arg(root.join("checkpoints"))
        .args(["--shards", "4"])
        .args(["--n-features", &N_FEATURES.to_string()])
        .args(["--queue-cap", "256"])
        .args(["--target-p99-us", "25000"])
        .args(["--tenant-rate", "1"])
        .args(["--tenant-burst", "8"])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn fact-shardd");
    wait_listening(socket);
    child
}

fn remote_phase() {
    println!("## E18c: typed throttling across a real fact-shardd worker\n");
    let root = std::env::temp_dir().join(format!("fact-e18-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("experiment dir");
    let socket = root.join("shardd.sock");
    let mut worker = spawn_worker(&root, &socket);

    let client = DecisionService::start(
        Arc::new(SlowModel),
        ServeConfig {
            shards: 4,
            n_features: N_FEATURES,
            guards: None,
            topology: Some(vec![ShardSlot::Remote(socket.clone()); 4]),
            default_timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        },
    )
    .expect("start remote client");

    // hot tenant bursts 40 against a burst-8 quota: the worker throttles
    // the excess and the client rebuilds the *typed* error from the wire
    let mut hot_ok = 0u64;
    let mut hot_throttled = 0u64;
    for i in 0..40u64 {
        match client.decide(request(1, i)) {
            Ok(_) => hot_ok += 1,
            Err(ServeError::Throttled { tenant }) => {
                assert_eq!(tenant, 1, "throttle must name the tenant across the wire");
                hot_throttled += 1;
            }
            Err(e) => panic!("unexpected remote error: {e:?}"),
        }
    }
    // quiet tenant: fresh bucket, everything completes
    let mut quiet_ok = 0u64;
    for i in 0..5u64 {
        if client.decide(request(2, 1_000 + i)).is_ok() {
            quiet_ok += 1;
        }
    }
    println!("hot   : served={hot_ok} throttled={hot_throttled}");
    println!("quiet : completion={}/5\n", quiet_ok);

    assert_eq!(hot_ok, 8, "exactly the burst is admitted");
    assert_eq!(hot_throttled, 32, "the rest must throttle, typed");
    assert_eq!(quiet_ok, 5, "quiet tenant completion must be 100%");

    let client_throttled: u64 = client.metrics().shards.iter().map(|s| s.throttled).sum();
    assert_eq!(
        client_throttled, 32,
        "client shard counters must mirror remote throttles"
    );
    client.shutdown();

    let control = RemoteShard::connect(&socket).expect("control connection");
    let _ = control.control("shutdown", Duration::from_secs(5));
    let status = worker.wait().expect("worker exit");
    assert!(status.success(), "graceful shutdown must exit 0: {status}");
    let _ = std::fs::remove_dir_all(&root);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("# E18: adaptive admission control under open-loop overload\n");

    if smoke {
        overload_phase(4_000.0, 4_800, Duration::from_millis(400));
        isolation_phase(1_000.0, 40);
    } else {
        overload_phase(4_000.0, 12_000, Duration::from_millis(600));
        isolation_phase(2_000.0, 100);
    }
    remote_phase();

    println!(
        "E18: all asserts passed{}",
        if smoke { " (smoke)" } else { "" }
    );
}
