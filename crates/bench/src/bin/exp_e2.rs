//! E2 — mitigation comparison (EXPERIMENTS.md, Table E2 / Figure E2).
//!
//! Paper claim (§2): "approaches are needed to detect unfair decisions …
//! and to find ways to ensure fairness." Compares the four mitigation
//! families on one biased world, and traces the fairness/accuracy frontier
//! of the disparate-impact remover.

use fact_data::split::train_test_split;
use fact_data::synth::loans::{generate_loans, LoanConfig};
use fact_fairness::metrics::{
    disparate_impact, equal_opportunity_difference, statistical_parity_difference,
};
use fact_fairness::mitigation::prejudice::{PrejudiceConfig, PrejudiceRemover};
use fact_fairness::mitigation::repair::repair_disparate_impact;
use fact_fairness::mitigation::reweighing::reweighing_weights;
use fact_fairness::mitigation::threshold::equalize_selection_rates;
use fact_fairness::protected_mask;
use fact_ml::logistic::{LogisticConfig, LogisticRegression};
use fact_ml::metrics::accuracy;
use fact_ml::Classifier;

const FEATURES: [&str; 5] = [
    "income",
    "credit_score",
    "debt_ratio",
    "years_employed",
    "zip_risk",
];

fn main() {
    let world = generate_loans(&LoanConfig {
        n: 24_000,
        seed: 2,
        bias_strength: 0.45,
        proxy_strength: 0.85,
        feature_gap: 5.0,
        ..LoanConfig::default()
    });
    let (train, test) = train_test_split(&world, 0.3, 7).unwrap();
    let x = train.to_matrix(&FEATURES).unwrap();
    let y = train.bool_column("approved").unwrap().to_vec();
    let xt = test.to_matrix(&FEATURES).unwrap();
    let yt = test.bool_column("approved").unwrap().to_vec();
    let mask_tr = protected_mask(&train, "group", "B").unwrap();
    let mask_te = protected_mask(&test, "group", "B").unwrap();
    let cfg = LogisticConfig::default();

    let report = |name: &str, pred: &[bool]| {
        let acc = accuracy(&yt, pred).unwrap();
        let di = disparate_impact(pred, &mask_te).unwrap();
        let spd = statistical_parity_difference(pred, &mask_te).unwrap();
        let eod = equal_opportunity_difference(&yt, pred, &mask_te).unwrap();
        println!("{name:<30} {acc:>8.3} {di:>8.3} {spd:>+8.3} {eod:>+8.3}");
    };

    println!("E2: mitigation comparison (biased loans, test split)");
    println!(
        "{:<30} {:>8} {:>8} {:>8} {:>8}",
        "method", "acc", "DI", "SPD", "EOD"
    );
    println!("{}", "-".repeat(68));

    let base = LogisticRegression::fit(&x, &y, None, &cfg).unwrap();
    report("unmitigated", &base.predict(&xt).unwrap());

    let w = reweighing_weights(&y, &mask_tr).unwrap();
    let m = LogisticRegression::fit(&x, &y, Some(&w), &cfg).unwrap();
    report("reweighing (pre)", &m.predict(&xt).unwrap());

    let rep_tr = repair_disparate_impact(&train, &FEATURES, &mask_tr, 1.0).unwrap();
    let rep_te = repair_disparate_impact(&test, &FEATURES, &mask_te, 1.0).unwrap();
    let m = LogisticRegression::fit(&rep_tr.to_matrix(&FEATURES).unwrap(), &y, None, &cfg).unwrap();
    report(
        "DI repair λ=1.0 (pre)",
        &m.predict(&rep_te.to_matrix(&FEATURES).unwrap()).unwrap(),
    );

    for eta in [0.5, 2.0] {
        let m = PrejudiceRemover::fit(
            &x,
            &y,
            &mask_tr,
            &PrejudiceConfig {
                eta,
                ..PrejudiceConfig::default()
            },
        )
        .unwrap();
        report(
            &format!("prejudice remover η={eta} (in)"),
            &m.predict(&xt).unwrap(),
        );
    }

    let scores = base.predict_proba(&xt).unwrap();
    let th = equalize_selection_rates(&scores, &mask_te, 0.5).unwrap();
    report(
        "threshold opt (post)",
        &th.apply(&scores, &mask_te).unwrap(),
    );

    println!("\nFigure E2: DI-repair fairness/accuracy frontier");
    println!("{:>6} {:>8} {:>8}", "λ", "acc", "DI");
    for lambda in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let r_tr = repair_disparate_impact(&train, &FEATURES, &mask_tr, lambda).unwrap();
        let r_te = repair_disparate_impact(&test, &FEATURES, &mask_te, lambda).unwrap();
        let m =
            LogisticRegression::fit(&r_tr.to_matrix(&FEATURES).unwrap(), &y, None, &cfg).unwrap();
        let pred = m.predict(&r_te.to_matrix(&FEATURES).unwrap()).unwrap();
        println!(
            "{lambda:>6.2} {:>8.3} {:>8.3}",
            accuracy(&yt, &pred).unwrap(),
            disparate_impact(&pred, &mask_te).unwrap()
        );
    }
}
