//! E6 — anonymization quality vs k (EXPERIMENTS.md, Table E6).
//!
//! Paper claim (§2): safe sharing via pseudonymization/anonymization rather
//! than not sharing at all. Mondrian k-anonymity over census
//! quasi-identifiers: privacy (risk, diversity) vs utility (information
//! loss) as k grows.

use fact_confidentiality::kanon::{max_t_distance, min_l_diversity, mondrian_k_anonymize};
use fact_confidentiality::risk::{reidentification_risk, schema_risk};
use fact_data::synth::census::{generate_census, CensusConfig};

fn main() {
    let census = generate_census(&CensusConfig {
        n: 10_000,
        seed: 6,
        ..CensusConfig::default()
    });
    let qis = ["age", "sex", "zipcode"];
    let raw = schema_risk(&census).unwrap();
    println!("E6: Mondrian k-anonymity on census microdata (n=10k, QIs: age/sex/zipcode)");
    println!(
        "raw data: unique {:.1}%, prosecutor risk {:.3}, {} QI classes\n",
        100.0 * raw.unique_fraction,
        raw.prosecutor_risk,
        raw.n_classes
    );
    println!(
        "{:>5} {:>9} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "k", "classes", "min class", "avg class", "info loss", "risk", "l-div", "t-dist"
    );
    println!("{}", "-".repeat(76));
    for k in [2usize, 5, 10, 25, 50, 100] {
        let anon = mondrian_k_anonymize(&census, &qis, k).unwrap();
        let risk = reidentification_risk(&anon.data, &qis).unwrap();
        println!(
            "{k:>5} {:>9} {:>10} {:>10.1} {:>10.3} {:>8.3} {:>8} {:>8.3}",
            anon.n_classes,
            anon.min_class_size(),
            anon.mean_class_size(),
            anon.information_loss,
            risk.prosecutor_risk,
            min_l_diversity(&anon, "diagnosis").unwrap(),
            max_t_distance(&anon, "diagnosis").unwrap(),
        );
    }
    println!(
        "\nExpected shape: prosecutor risk ≤ 1/k (monotone down), information loss\n\
         monotone up, l-diversity and t-closeness improve with class size — the\n\
         privacy/utility dial the paper's Q3 asks for."
    );
}
