//! E10 — green certification end-to-end (EXPERIMENTS.md, Table E10).
//!
//! Paper §3–4: systems should be "green" by design — FACT guards embedded in
//! the pipeline. A biased loan pipeline is certified (fails), remediated
//! (drop proxy, reweigh), and re-certified (passes). The full before/after
//! compliance matrix is the table.

use fact_core::{FactPolicy, GuardedPipeline};
use fact_data::synth::loans::{generate_loans, LoanConfig, LEGIT_FEATURES};
use fact_data::{Dataset, Matrix, Result};
use fact_fairness::mitigation::reweighing::reweighing_weights;
use fact_fairness::protected_mask;
use fact_ml::logistic::{LogisticConfig, LogisticRegression};
use fact_ml::Classifier;

fn policy() -> FactPolicy {
    let mut p = FactPolicy::strict("group", "B");
    if let Some(f) = p.fairness.as_mut() {
        f.thresholds.max_equalized_odds = 1.0; // labels are bias-corrupted
    }
    if let Some(a) = p.accuracy.as_mut() {
        a.min_accuracy = 0.65;
    }
    p
}

fn plain(x: &Matrix, y: &[bool], _d: &Dataset, seed: u64) -> Result<Box<dyn Classifier>> {
    let cfg = LogisticConfig {
        seed,
        ..LogisticConfig::default()
    };
    Ok(Box::new(LogisticRegression::fit(x, y, None, &cfg)?))
}

fn reweighed(x: &Matrix, y: &[bool], d: &Dataset, seed: u64) -> Result<Box<dyn Classifier>> {
    let mask = protected_mask(d, "group", "B")?;
    let w = reweighing_weights(y, &mask)?;
    let cfg = LogisticConfig {
        seed,
        ..LogisticConfig::default()
    };
    Ok(Box::new(LogisticRegression::fit(x, y, Some(&w), &cfg)?))
}

fn main() -> Result<()> {
    let world = generate_loans(&LoanConfig {
        n: 16_000,
        seed: 10,
        bias_strength: 0.45,
        proxy_strength: 0.9,
        ..LoanConfig::default()
    });

    println!("E10: green certification — before vs after remediation\n");
    println!("### BEFORE: careless pipeline (proxy feature, no mitigation) ###\n");
    let mut before = GuardedPipeline::new(policy())?;
    before.load_data("loans", "e10", world.clone())?;
    let with_proxy = [
        "income",
        "credit_score",
        "debt_ratio",
        "years_employed",
        "zip_risk",
    ];
    before.train("model-v1", "e10", &with_proxy, "approved", 1, plain)?;
    before.audit_fairness()?;
    if let Some(c) = before.model_card_mut() {
        c.intended_use = "loan approvals".into();
    }
    before.audit_transparency()?;
    before.release_mean("income", 0.0, 250.0, 0.3, 1)?;
    let r1 = before.certify();
    println!("{r1}\n");

    println!("\n### AFTER: remediated pipeline (legit features + reweighing) ###\n");
    let mut after = GuardedPipeline::new(policy())?;
    after.load_data("loans", "e10", world)?;
    after.train("model-v2", "e10", &LEGIT_FEATURES, "approved", 1, reweighed)?;
    after.audit_fairness()?;
    if let Some(c) = after.model_card_mut() {
        c.intended_use = "loan approvals (remediated)".into();
    }
    after.audit_transparency()?;
    after.release_mean("income", 0.0, 250.0, 0.3, 2)?;
    let r2 = after.certify();
    println!("{r2}\n");

    println!(
        "\nsummary: before green={}  after green={}  (expected: false → true)",
        r1.is_green(),
        r2.is_green()
    );
    Ok(())
}
