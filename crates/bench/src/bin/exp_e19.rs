//! E19 — live resharding under sustained load (EXPERIMENTS.md, E19).
//!
//! Takes a guarded serving topology from 4 shards to 8 to 3 while driver
//! threads keep a closed loop of disparate lending traffic running, and
//! hard-asserts the three continuity properties the reshard orchestrator
//! promises:
//!
//! 1. **Zero lost decisions** — every request issued is served; submits
//!    that land mid-cutover park at the gate and replay into the new
//!    topology (the hold window is set above the cutover time, so no
//!    request sees `ServeError::Resharding`).
//! 2. **Window-state continuity** — per cutover, the fairness-window
//!    counts summed over the post-split sidecars are cell-for-cell equal
//!    to the pre-merge sum, and lifetime decision counts conserve
//!    exactly; the final sidecars account for every decision served.
//! 3. **Audit-chain continuity** — the hash-chained audit log verifies
//!    segment-by-segment and `continuous` across both cutovers (the new
//!    epoch's sink resumes the old epoch's chain).
//!
//! `--smoke` runs the in-process phase only (the CI gate). The full run
//! adds the wire phase: the same 4→8→3 schedule driven through a real
//! `fact-shardd` process over TCP via `Control {"command":"reshard <M>"}`
//! frames, proving the cutover holds across the socket too.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fact_data::Matrix;
use fact_ml::Classifier;
use fact_net::RemoteShard;
use fact_serve::audit_sink::{verify_all_segments, AuditStorage, FileStorage};
use fact_serve::{
    load_checkpoint, AuditSinkConfig, CheckpointConfig, DecisionRequest, DecisionService,
    DegradePolicy, GuardConfig, ReshardConfig, ReshardableService, ServeConfig, ShardSlot,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_FEATURES: usize = 4;
const CHECKPOINT_EVERY: u64 = 200;
const DP_INTERVAL: usize = 100;
const FAIRNESS_WINDOW: usize = 800;
/// The reshard schedule both phases run: grow, then shrink below start.
const SCHEDULE: [usize; 2] = [8, 3];
const START_SHARDS: usize = 4;

/// Same deterministic model `fact-shardd` hosts (probability = mean of the
/// feature vector) so both phases score identical work.
struct MeanScorer;

impl Classifier for MeanScorer {
    fn predict_proba(&self, x: &Matrix) -> fact_data::Result<Vec<f64>> {
        Ok((0..x.rows())
            .map(|i| {
                let row = x.row(i);
                let mean = row.iter().sum::<f64>() / row.len().max(1) as f64;
                mean.clamp(0.0, 1.0)
            })
            .collect())
    }
}

/// A disparate lending request: group B (30% of traffic) scores low, so
/// the fairness monitor trips and flagged decisions flow to the audit log.
fn lending_request(rng: &mut StdRng, key: u64) -> DecisionRequest {
    let group_b = rng.gen_bool(0.3);
    let center = if group_b { 0.30 } else { 0.70 };
    let features: Vec<f64> = (0..N_FEATURES)
        .map(|_| (center + rng.gen_range(-0.15f64..0.15)).clamp(0.0, 1.0))
        .collect();
    DecisionRequest {
        features,
        group_b,
        route_key: key,
        tenant: 0,
    }
}

struct Dirs {
    root: PathBuf,
    checkpoints: PathBuf,
    audit: PathBuf,
}

impl Dirs {
    fn new(tag: &str) -> Dirs {
        let root = std::env::temp_dir().join(format!("fact-e19-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create experiment dir");
        Dirs {
            checkpoints: root.join("checkpoints"),
            audit: root.join("audit.jsonl"),
            root,
        }
    }
}

impl Drop for Dirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn verify_audit_chain(audit: &Path) -> (usize, u64) {
    let mut storage = FileStorage::open(audit).expect("open audit log");
    let report = verify_all_segments(&mut storage as &mut dyn AuditStorage).expect("verify");
    assert!(
        !report.segments.is_empty(),
        "flagged decisions must be logged"
    );
    assert!(
        report.continuous,
        "audit chain must be continuous across the cutovers"
    );
    let mut entries = 0u64;
    for (id, verdict) in &report.segments {
        let check = verdict
            .as_ref()
            .unwrap_or_else(|e| panic!("audit segment {id} failed verification: {e:?}"));
        entries += check.entries;
    }
    (report.segments.len(), entries)
}

fn sidecar_decisions(dir: &Path, shards: usize) -> u64 {
    (0..shards)
        .map(|s| {
            load_checkpoint(dir, s)
                .expect("readable sidecar")
                .unwrap_or_else(|| panic!("sidecar {s} missing after reshard"))
                .decisions
        })
        .sum()
}

// ---------------------------------------------------------------------------
// Phase A: in-process reshard under closed-loop load
// ---------------------------------------------------------------------------

fn local_phase(per_epoch: u64) {
    println!("## E19a: in-process 4 -> 8 -> 3 under sustained load\n");
    let dirs = Dirs::new("local");
    let service = ReshardableService::start(
        Arc::new(MeanScorer),
        ServeConfig {
            shards: START_SHARDS,
            n_features: N_FEATURES,
            policy: DegradePolicy::AuditAndFlag,
            guards: Some(GuardConfig {
                fairness_window: FAIRNESS_WINDOW,
                dp_interval: DP_INTERVAL,
                ..GuardConfig::default()
            }),
            checkpoint: Some(CheckpointConfig {
                dir: dirs.checkpoints.clone(),
                every: CHECKPOINT_EVERY,
                segment_events: 100,
            }),
            audit: Some(AuditSinkConfig {
                path: dirs.audit.clone(),
                ..AuditSinkConfig::default()
            }),
            default_timeout: Duration::from_secs(30),
            ..ServeConfig::default()
        },
        ReshardConfig {
            // generous: the point of this phase is zero refusals, so the
            // hold window must dominate any cutover on a loaded box
            hold_max: Duration::from_secs(120),
        },
    )
    .expect("start reshardable service");

    let stop = Arc::new(AtomicBool::new(false));
    let issued = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let drivers: Vec<_> = (0..2u64)
        .map(|t| {
            let service = service.clone();
            let stop = Arc::clone(&stop);
            let issued = Arc::clone(&issued);
            let served = Arc::clone(&served);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(19 + t);
                let mut key = t * 10_000_000;
                while !stop.load(Ordering::Relaxed) {
                    key += 1;
                    issued.fetch_add(1, Ordering::Relaxed);
                    service
                        .decide(lending_request(&mut rng, key))
                        .expect("no decision may be lost to a cutover");
                    served.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    let wait_for = |target: u64| {
        while served.load(Ordering::Relaxed) < target {
            std::thread::sleep(Duration::from_millis(5));
        }
    };

    bench::header(
        &["cutover", "pre_decisions", "held", "cutover_ms"],
        &[12, 14, 6, 10],
    );
    let mut marks = Vec::new();
    for (i, &to) in SCHEDULE.iter().enumerate() {
        wait_for(per_epoch * (i as u64 + 1));
        let report = service.reshard(to).expect("reshard");
        assert_eq!(
            report.pre_counts, report.post_counts,
            "fairness-window counts must conserve across {} -> {}",
            report.from, report.to
        );
        assert_eq!(
            report.pre_decisions, report.post_decisions,
            "lifetime decision counts must conserve across {} -> {}",
            report.from, report.to
        );
        assert_eq!(service.shards(), to);
        println!(
            "{:>12} {:>14} {:>6} {:>10.1}",
            format!("{} -> {}", report.from, report.to),
            report.pre_decisions,
            report.held,
            report.cutover.as_secs_f64() * 1e3,
        );
        marks.push(report);
    }

    wait_for(per_epoch * (SCHEDULE.len() as u64 + 1));
    stop.store(true, Ordering::Relaxed);
    for d in drivers {
        d.join().expect("driver panicked — a decision was lost");
    }
    let epochs = service.shutdown();

    let issued = issued.load(Ordering::Relaxed);
    let served = served.load(Ordering::Relaxed);
    let epoch_sum: u64 = epochs.iter().map(|e| e.decisions_served).sum();
    assert_eq!(issued, served, "zero lost decisions (caller side)");
    assert_eq!(epoch_sum, served, "zero lost decisions (epoch accounting)");
    assert_eq!(
        epochs.len(),
        SCHEDULE.len() + 1,
        "one report per topology epoch"
    );
    let final_sidecars = sidecar_decisions(&dirs.checkpoints, SCHEDULE[SCHEDULE.len() - 1]);
    assert_eq!(
        final_sidecars, served,
        "final sidecars must account for every decision across both transforms"
    );
    let (segments, entries) = verify_audit_chain(&dirs.audit);
    assert!(entries > 0, "disparate traffic must have flagged decisions");

    println!("\ndecisions issued = served     : {served}");
    println!("epoch reports                 : {}", epochs.len());
    println!("final sidecar decision total  : {final_sidecars}");
    println!("audit segments verified       : {segments} ({entries} entries, continuous)");
    println!("\nPASS: 4 -> 8 -> 3 with zero lost decisions, conserved windows, continuous audit\n");
}

// ---------------------------------------------------------------------------
// Phase B: the same schedule over TCP against a real fact-shardd
// ---------------------------------------------------------------------------

fn shardd_path() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let path = me.parent().expect("bin dir").join("fact-shardd");
    assert!(
        path.exists(),
        "fact-shardd not found at {} — build it first (cargo build --release --bin fact-shardd)",
        path.display()
    );
    path
}

/// Spawn a worker on an ephemeral TCP port; parse the resolved address
/// from its startup banner.
fn spawn_tcp_worker(dirs: &Dirs) -> (Child, String) {
    let mut child = Command::new(shardd_path())
        .args(["--tcp", "127.0.0.1:0"])
        .arg("--checkpoint-dir")
        .arg(&dirs.checkpoints)
        .args(["--shards", &START_SHARDS.to_string()])
        .args(["--n-features", &N_FEATURES.to_string()])
        .args(["--checkpoint-every", &CHECKPOINT_EVERY.to_string()])
        .args(["--dp-interval", &DP_INTERVAL.to_string()])
        .args(["--fairness-window", &FAIRNESS_WINDOW.to_string()])
        .args(["--reshard-hold-ms", "120000"])
        .arg("--audit")
        .arg(&dirs.audit)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn fact-shardd");
    let stdout = child.stdout.take().expect("worker stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(addr) = line.strip_prefix("fact-shardd: listening on tcp:") {
                    break addr.trim().to_string();
                }
            }
            _ => assert!(
                Instant::now() < deadline,
                "worker exited before announcing its TCP address"
            ),
        }
    };
    // keep draining the banner so the worker never blocks on a full pipe
    std::thread::spawn(move || for _ in lines.flatten() {});
    (child, addr)
}

fn wire_phase(per_epoch: u64) {
    println!("## E19b: the same schedule over TCP via reshard control frames\n");
    let dirs = Dirs::new("wire");
    let (mut worker, addr) = spawn_tcp_worker(&dirs);
    println!("worker listening on tcp:{addr}");

    // front-end: one remote slot over TCP, same routing fabric as local
    let client = DecisionService::start(
        Arc::new(MeanScorer),
        ServeConfig {
            shards: 1,
            n_features: N_FEATURES,
            guards: None,
            topology: Some(vec![ShardSlot::RemoteTcp(addr.clone())]),
            default_timeout: Duration::from_secs(150),
            ..ServeConfig::default()
        },
    )
    .expect("start remote client");
    // a second connection for control frames, so cutover acks don't queue
    // behind held decision thunks
    let control = RemoteShard::connect_endpoint(fact_net::Endpoint::Tcp(addr)).expect("control");

    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let driver = {
        let stop = Arc::clone(&stop);
        let served = Arc::clone(&served);
        let client = client.clone();
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(119);
            let mut key = 0u64;
            while !stop.load(Ordering::Relaxed) {
                key += 1;
                client
                    .decide(lending_request(&mut rng, key))
                    .expect("no decision may be lost to a remote cutover");
                served.fetch_add(1, Ordering::Relaxed);
            }
            key
        })
    };

    let wait_for = |target: u64| {
        while served.load(Ordering::Relaxed) < target {
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    for (i, &to) in SCHEDULE.iter().enumerate() {
        wait_for(per_epoch * (i as u64 + 1));
        let ack = control
            .control(&format!("reshard {to}"), Duration::from_secs(150))
            .expect("reshard control frame");
        let wire: fact_net::ControlAckWire = fact_net::decode(&ack.payload).expect("ack");
        assert!(wire.ok, "remote reshard failed: {}", wire.info);
        println!("cutover {i}: {}", wire.info);
    }

    wait_for(per_epoch * (SCHEDULE.len() as u64 + 1));
    stop.store(true, Ordering::Relaxed);
    let issued = driver
        .join()
        .expect("driver panicked — a decision was lost");
    let served = served.load(Ordering::Relaxed);
    assert_eq!(issued, served, "zero lost decisions across the wire");

    // graceful worker shutdown → final sidecars + audit chain on disk
    let ack = control
        .control("shutdown", Duration::from_secs(30))
        .expect("shutdown control");
    let wire: fact_net::ControlAckWire = fact_net::decode(&ack.payload).expect("ack");
    assert!(wire.ok, "{}", wire.info);
    let status = worker.wait().expect("reap worker");
    assert!(status.success(), "worker must exit 0 after a drain");

    let final_sidecars = sidecar_decisions(&dirs.checkpoints, SCHEDULE[SCHEDULE.len() - 1]);
    assert_eq!(
        final_sidecars, served,
        "worker sidecars must account for every decision served over TCP"
    );
    let (segments, entries) = verify_audit_chain(&dirs.audit);
    let stats = client.remote_stats();
    println!("\ndecisions issued = served     : {served}");
    println!("final sidecar decision total  : {final_sidecars}");
    println!("audit segments verified       : {segments} ({entries} entries, continuous)");
    println!(
        "client transport              : requests={} reconnects={} errors={} rtt_mean={:.1}us",
        stats[0].requests, stats[0].reconnects, stats[0].errors, stats[0].rtt_mean_micros
    );
    client.shutdown();
    println!("\nPASS: remote 4 -> 8 -> 3 over TCP with zero lost decisions and a continuous audit chain\n");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("# E19 — live resharding under sustained load\n");
    if smoke {
        local_phase(600);
        println!("E19 smoke: OK");
    } else {
        local_phase(2_500);
        wire_phase(1_500);
    }
}
