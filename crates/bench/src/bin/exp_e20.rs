//! E20 — background audit-segment archiving: hot-path cost and crash
//! safety (EXPERIMENTS.md, E20).
//!
//! Two questions, one harness:
//!
//! 1. **Does the archiver stay off the writer hot path?** Runs the same
//!    paced flagged-event workload through an `AuditSink` twice — archiver
//!    off vs. on — over a timing-instrumented `FileStorage` that stamps
//!    every append+fsync batch. The log rotates 10×+ in both modes so the
//!    archiver has a steady diet of sealed segments to verify, compress,
//!    and delete *while* the writer flushes. Hard-asserts the writer's
//!    batch p99 stays within 5% of the archiver-off baseline (plus a small
//!    absolute floor that absorbs single-core scheduler quantization when
//!    the baseline fsync is tens of microseconds), that every archive
//!    container decodes back byte-identically (sha256-checked), and that
//!    the compacted store still verifies as one continuous chain.
//! 2. **Does a SIGKILL mid-archive lose or double-count anything?** Spawns
//!    a real `fact-shardd` with `--archive-retain`/`--archive-tick-ms`
//!    over a tiny segment cap, drives disparate lending load so flagged
//!    decisions rotate the log while the archiver compacts it, SIGKILLs
//!    the worker, and inspects the store offline: recovery reports zero
//!    provably-lost entries and zero missing segments, every segment is
//!    present as the original xor a verified archive, and after a respawn
//!    + graceful drain the whole history still verifies from genesis.
//!
//! `--smoke` runs reduced sizes of both phases (the CI gate).

use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bench::header;
use fact_data::Matrix;
use fact_ml::Classifier;
use fact_net::RemoteShard;
use fact_serve::audit_sink::{parse_log, recover};
use fact_serve::{
    decode_archive, read_segment_or_archive, verify_all_segments, ArchiveConfig, AuditEvent,
    AuditSink, AuditSinkConfig, AuditStorage, DecisionRequest, DecisionService, FileStorage,
    ServeConfig, ShardSlot,
};
use fact_transparency::{verify_chain_from, ChainHead};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_FEATURES: usize = 4;
const WORKER_SHARDS: usize = 2;

/// Absolute slack (µs) added to the 5% bound. On a single-core runner over
/// tmpfs the baseline batch fsync is tens of microseconds, so one scheduler
/// quantum of wakeup jitter would dwarf a pure percentage bound; on any
/// real disk the 5% term dominates and this floor is noise.
const P99_SLACK_US: f64 = 50.0;

// ---------------------------------------------------------------------------
// Phase A: writer hot-path p99, archiver off vs. on
// ---------------------------------------------------------------------------

/// `FileStorage` wrapper that times each append+fsync pair — the writer's
/// per-batch hot path. The archiver runs on its own handle
/// ([`AuditStorage::archive_handle`] delegates to the inner store), so its
/// I/O is never stamped: only writer-side latency lands in `samples`.
struct TimingStorage {
    inner: FileStorage,
    pending: Option<Instant>,
    samples: Arc<Mutex<Vec<u64>>>,
}

impl AuditStorage for TimingStorage {
    fn list_segments(&mut self) -> io::Result<Vec<u64>> {
        self.inner.list_segments()
    }
    fn read_segment(&mut self, segment: u64) -> io::Result<Vec<u8>> {
        self.inner.read_segment(segment)
    }
    fn open_segment(&mut self, segment: u64) -> io::Result<()> {
        self.inner.open_segment(segment)
    }
    fn append_log(&mut self, buf: &[u8]) -> io::Result<()> {
        self.pending = Some(Instant::now());
        self.inner.append_log(buf)
    }
    fn truncate_segment(&mut self, segment: u64, len: u64) -> io::Result<()> {
        self.inner.truncate_segment(segment, len)
    }
    fn sync_log(&mut self) -> io::Result<()> {
        self.inner.sync_log()?;
        if let Some(t0) = self.pending.take() {
            self.samples
                .lock()
                .unwrap()
                .push(t0.elapsed().as_micros() as u64);
        }
        Ok(())
    }
    fn read_head(&mut self) -> io::Result<Option<Vec<u8>>> {
        self.inner.read_head()
    }
    fn write_head(&mut self, buf: &[u8]) -> io::Result<()> {
        self.inner.write_head(buf)
    }
    fn list_archives(&mut self) -> io::Result<Vec<u64>> {
        self.inner.list_archives()
    }
    fn read_archive(&mut self, segment: u64) -> io::Result<Vec<u8>> {
        self.inner.read_archive(segment)
    }
    fn write_archive(&mut self, segment: u64, buf: &[u8]) -> io::Result<()> {
        self.inner.write_archive(segment, buf)
    }
    fn remove_segment_file(&mut self, segment: u64) -> io::Result<()> {
        self.inner.remove_segment_file(segment)
    }
    fn read_manifest(&mut self) -> io::Result<Option<Vec<u8>>> {
        self.inner.read_manifest()
    }
    fn write_manifest(&mut self, buf: &[u8]) -> io::Result<()> {
        self.inner.write_manifest(buf)
    }
    fn archive_handle(&self) -> Option<Box<dyn AuditStorage>> {
        self.inner.archive_handle()
    }
}

struct Trial {
    p99_us: f64,
    mean_us: f64,
    batches: usize,
    rolls: u64,
    archived: u64,
    ratio: f64,
}

/// Phase A runs on tmpfs when the host has one. The gate is about the
/// *design* — the archiver owns a second storage handle and never takes
/// the writer's locks — so the measured interference should be scheduler
/// and lock time, not two fsync streams queueing in one ext4 journal.
/// This harness forces a rotation every ~8 KiB to compact a 10×-rotated
/// log within seconds, inflating the archiver's fsync duty cycle ~1000×
/// over the 64 MiB default; on a journaled disk that artifact measures
/// the device, not the hot path. Phase B keeps real durable storage.
fn phase_a_root() -> PathBuf {
    let shm = Path::new("/dev/shm");
    if shm.is_dir() {
        shm.to_path_buf()
    } else {
        std::env::temp_dir()
    }
}

/// One paced run: `events` flagged records through a rotating sink, with or
/// without the background archiver, over a fresh tempdir. Returns writer
/// batch-latency stats and verifies the store end-to-end afterwards.
fn run_trial(events: u64, seg_bytes: u64, archive_on: bool, tag: &str) -> Trial {
    let root = phase_a_root().join(format!("fact-e20-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create trial dir");
    let path = root.join("audit.jsonl");

    let samples = Arc::new(Mutex::new(Vec::new()));
    let storage = TimingStorage {
        inner: FileStorage::open(&path).expect("open file storage"),
        pending: None,
        samples: Arc::clone(&samples),
    };
    let config = AuditSinkConfig {
        path: path.clone(),
        batch_max: 16,
        flush_interval: Duration::from_millis(1),
        max_segment_bytes: seg_bytes,
        archive: archive_on.then(|| ArchiveConfig {
            retain_segments: 1,
            tick: Duration::from_millis(10),
            ..ArchiveConfig::default()
        }),
        ..AuditSinkConfig::default()
    };
    let sink = AuditSink::open_with_storage(&config, Box::new(storage)).expect("open sink");

    // Paced producer: ~20k events/s, so the archiver has idle slack to run
    // in — sustained load, not a closed-loop stampede that would starve a
    // single-core runner of the CPU the background thread needs.
    let handle = sink.handle();
    for k in 0..events {
        handle.record(AuditEvent::Flagged {
            shard: (k % WORKER_SHARDS as u64) as usize,
            route_key: k,
            probability: 0.25 + (k % 50) as f64 / 100.0,
            favorable: k % 3 == 0,
            group_b: k % 10 < 3,
        });
        if k % 20 == 19 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    drop(handle);
    let report = sink.finish();
    assert_eq!(report.dropped, 0, "healthy sink must not shed events");
    assert_eq!(report.io_errors, 0, "tempdir storage must not error");
    assert!(
        report.rolls >= 10,
        "the log must rotate 10x+ to exercise archiving: {} rolls",
        report.rolls
    );

    // Post-run: the store — live, compacted, or mixed — must still verify
    // as one continuous chain, and every archive must decode back to the
    // exact original bytes (the container's sha256 is checked on decode).
    let mut check = FileStorage::open(&path).expect("reopen");
    let audit = verify_all_segments(&mut check as &mut dyn AuditStorage).expect("verify");
    assert!(audit.continuous, "chain must stay continuous: {audit:?}");
    let archives = check.list_archives().expect("list archives");
    for &id in &archives {
        let container = check.read_archive(id).expect("read archive");
        let (seg, bytes) = decode_archive(&container)
            .unwrap_or_else(|e| panic!("archive {id} failed byte-identical decode: {e}"));
        assert_eq!(seg, id);
        assert!(!bytes.is_empty());
    }
    if archive_on {
        assert!(
            report.archive.segments_archived >= 1,
            "archiver must make progress under load: {:?}",
            report.archive
        );
        assert_eq!(report.archive.verify_failures, 0);
        assert!(
            report.archive.bytes_after < report.archive.bytes_before,
            "JSONL must compress: {:?}",
            report.archive
        );
    } else {
        assert!(archives.is_empty(), "archiver-off run must not compact");
    }

    let mut lat = samples.lock().unwrap().clone();
    lat.sort_unstable();
    let n = lat.len();
    assert!(n >= 100, "need enough batches for a stable p99: {n}");
    let trial = Trial {
        p99_us: lat[(n * 99) / 100 - 1] as f64,
        mean_us: lat.iter().sum::<u64>() as f64 / n as f64,
        batches: n,
        rolls: report.rolls,
        archived: report.archive.segments_archived,
        ratio: report.archive.ratio(),
    };
    let _ = std::fs::remove_dir_all(&root);
    trial
}

fn hot_path_phase(events: u64, seg_bytes: u64, trials: usize) {
    println!("## E20a: writer batch p99, archiver off vs. on ({events} events/trial)\n");
    header(
        &[
            "trial", "mode", "batches", "mean_us", "p99_us", "archived", "ratio",
        ],
        &[6, 6, 8, 9, 9, 9, 7],
    );

    // Interleave off/on trials and take the min-of-trials p99 per mode:
    // min is the right estimator for "what does the hot path cost when the
    // machine is not doing something else", which is the quantity the 5%
    // bound is about.
    let (mut best_off, mut best_on) = (f64::MAX, f64::MAX);
    for t in 0..trials {
        for (mode, on) in [("off", false), ("on", true)] {
            let r = run_trial(events, seg_bytes, on, &format!("{mode}{t}"));
            println!(
                "{t:>6} {mode:>6} {:>8} {:>9.1} {:>9.1} {:>9} {:>7.3}",
                r.batches, r.mean_us, r.p99_us, r.archived, r.ratio
            );
            if on {
                best_on = best_on.min(r.p99_us);
                assert!(r.rolls >= 10 && r.archived >= 1);
            } else {
                best_off = best_off.min(r.p99_us);
            }
        }
    }

    let bound = best_off * 1.05 + P99_SLACK_US;
    println!(
        "\nwriter batch p99: off {best_off:.1} µs, on {best_on:.1} µs \
         (bound {bound:.1} µs = 1.05x + {P99_SLACK_US:.0} µs floor)"
    );
    assert!(
        best_on <= bound,
        "archiver leaked onto the writer hot path: p99 on {best_on:.1} µs \
         vs off {best_off:.1} µs (bound {bound:.1} µs)"
    );
    println!("\nPASS: background compaction leaves the writer hot-path p99 within bounds\n");
}

// ---------------------------------------------------------------------------
// Phase B: SIGKILL a compacting fact-shardd, recover offline, resume
// ---------------------------------------------------------------------------

/// Same deterministic model `fact-shardd` hosts (probability = mean of the
/// feature vector) so the driver scores the work the worker audits.
struct MeanScorer;

impl Classifier for MeanScorer {
    fn predict_proba(&self, x: &Matrix) -> fact_data::Result<Vec<f64>> {
        Ok((0..x.rows())
            .map(|i| {
                let row = x.row(i);
                let mean = row.iter().sum::<f64>() / row.len().max(1) as f64;
                mean.clamp(0.0, 1.0)
            })
            .collect())
    }
}

/// A disparate lending request: group B (30% of traffic) scores low, so
/// the fairness monitor trips and flagged decisions flow to the audit log.
fn lending_request(rng: &mut StdRng, key: u64) -> DecisionRequest {
    let group_b = rng.gen_bool(0.3);
    let center = if group_b { 0.30 } else { 0.70 };
    let features: Vec<f64> = (0..N_FEATURES)
        .map(|_| (center + rng.gen_range(-0.15f64..0.15)).clamp(0.0, 1.0))
        .collect();
    DecisionRequest {
        features,
        group_b,
        route_key: key,
        tenant: 0,
    }
}

struct WorkerDirs {
    root: PathBuf,
    socket: PathBuf,
    checkpoints: PathBuf,
    audit: PathBuf,
}

impl WorkerDirs {
    fn new(tag: &str) -> WorkerDirs {
        let root = std::env::temp_dir().join(format!("fact-e20-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create experiment dir");
        WorkerDirs {
            socket: root.join("shardd.sock"),
            checkpoints: root.join("checkpoints"),
            audit: root.join("audit.jsonl"),
            root,
        }
    }
}

impl Drop for WorkerDirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn shardd_path() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let path = me.parent().expect("bin dir").join("fact-shardd");
    assert!(
        path.exists(),
        "fact-shardd not found at {} — build it first (cargo build --release --bin fact-shardd)",
        path.display()
    );
    path
}

/// Spawn a worker that rotates its audit log every 4 KiB and compacts all
/// but the newest sealed segment on a 25 ms tick — aggressive enough that
/// a SIGKILL lands while segments are mid-flight through the archiver.
fn spawn_worker(dirs: &WorkerDirs) -> Child {
    let mut cmd = Command::new(shardd_path());
    cmd.arg("--socket")
        .arg(&dirs.socket)
        .arg("--checkpoint-dir")
        .arg(&dirs.checkpoints)
        .args(["--shards", &WORKER_SHARDS.to_string()])
        .args(["--n-features", &N_FEATURES.to_string()])
        .args(["--checkpoint-every", "200"])
        .args(["--dp-interval", "100"])
        .args(["--fairness-window", "800"])
        .arg("--audit")
        .arg(&dirs.audit)
        .args(["--audit-segment-bytes", "4096"])
        .args(["--archive-retain", "1"])
        .args(["--archive-tick-ms", "25"])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    let child = cmd.spawn().expect("spawn fact-shardd");
    wait_listening(&dirs.socket);
    child
}

/// Block until the worker accepts connections (bounded).
fn wait_listening(socket: &Path) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match RemoteShard::connect(socket) {
            Ok(_) => return,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("worker never came up on {}: {e}", socket.display()),
        }
    }
}

fn remote_client(socket: &Path) -> DecisionService {
    DecisionService::start(
        Arc::new(MeanScorer),
        ServeConfig {
            shards: 1,
            n_features: N_FEATURES,
            guards: None,
            topology: Some(vec![ShardSlot::Remote(socket.to_path_buf())]),
            default_timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        },
    )
    .expect("start remote client")
}

fn drive(client: &DecisionService, rng: &mut StdRng, n: u64, key_base: u64) -> u64 {
    let mut served = 0;
    for i in 0..n {
        if client.decide(lending_request(rng, key_base + i)).is_ok() {
            served += 1;
        }
    }
    served
}

struct StoreState {
    live: Vec<u64>,
    archived: Vec<u64>,
    entries: u64,
    lost: u64,
}

/// Offline inspection of the audit store: recover first (cut the torn tail
/// a SIGKILL leaves, quantify any provable loss), then demand the mixed
/// live/archived history verifies from genesis with every segment present
/// as the original xor a decodable archive — never neither, never a torn
/// hybrid.
fn inspect_store(audit: &Path, label: &str) -> StoreState {
    let mut storage = FileStorage::open(audit).expect("open audit store");
    let rec = recover(&mut storage as &mut dyn AuditStorage).expect("offline recovery");
    assert_eq!(
        rec.missing_segments, 0,
        "{label}: no segment may vanish mid-archive: {rec:?}"
    );
    assert_eq!(
        rec.lost, 0,
        "{label}: nothing the chain head promised may be missing: {rec:?}"
    );

    let audit_report = verify_all_segments(&mut storage as &mut dyn AuditStorage).expect("verify");
    assert!(
        audit_report.continuous,
        "{label}: chain must be continuous: {audit_report:?}"
    );
    let live = storage.list_segments().expect("list segments");
    let archived = storage.list_archives().expect("list archives");
    for &id in &archived {
        let container = storage.read_archive(id).expect("read archive");
        let (seg, bytes) = decode_archive(&container)
            .unwrap_or_else(|e| panic!("{label}: archive {id} failed verified decode: {e}"));
        assert_eq!(seg, id);
        assert!(!bytes.is_empty());
        assert!(
            !live.contains(&id),
            "{label}: segment {id} double-present as original and archive \
             past the commit point is fine, but only pre-delete — recovery \
             must still read it exactly once"
        );
    }

    // Replay the whole history — archived or live — and verify the chain
    // from genesis, counting entries exactly once.
    let mut ids: Vec<u64> = live.iter().chain(archived.iter()).copied().collect();
    ids.sort_unstable();
    ids.dedup();
    let mut all = Vec::new();
    for &id in &ids {
        all.extend(
            read_segment_or_archive(&mut storage as &mut dyn AuditStorage, id).expect("read"),
        );
    }
    let entries = parse_log(&all);
    assert_eq!(
        verify_chain_from(ChainHead::genesis(), &entries),
        None,
        "{label}: full replay must verify from genesis"
    );
    StoreState {
        live,
        archived,
        entries: entries.len() as u64,
        lost: rec.lost,
    }
}

fn crash_phase(n_load: u64, n_resume: u64) {
    println!("## E20b: SIGKILL a fact-shardd mid-compaction, recover, resume\n");
    let dirs = WorkerDirs::new("crash");
    let mut rng = StdRng::seed_from_u64(20);

    // --- run 1: rotate + compact under load, then SIGKILL ---------------
    let mut worker = spawn_worker(&dirs);
    let client = remote_client(&dirs.socket);
    let served1 = drive(&client, &mut rng, n_load, 0);
    assert_eq!(served1, n_load, "healthy worker must serve everything");
    // let the 25 ms archiver bite into the rotated backlog before the kill
    std::thread::sleep(Duration::from_millis(300));
    worker.kill().expect("SIGKILL worker");
    worker.wait().expect("reap worker");

    let after_kill = inspect_store(&dirs.audit, "after SIGKILL");
    println!("served before kill      : {served1}");
    println!("live segments           : {}", after_kill.live.len());
    println!("archived segments       : {}", after_kill.archived.len());
    println!("chained entries intact  : {}", after_kill.entries);
    println!("provably lost entries   : {}", after_kill.lost);
    assert!(
        !after_kill.archived.is_empty(),
        "the archiver must have compacted sealed segments before the kill"
    );
    assert!(after_kill.entries > 0, "flagged traffic must be on disk");

    // --- run 2: respawn over the compacted store, drain gracefully ------
    let mut worker = spawn_worker(&dirs);
    let served2 = drive(&client, &mut rng, n_resume, n_load);
    assert_eq!(served2, n_resume, "respawned worker must serve everything");
    let control = RemoteShard::connect(&dirs.socket).expect("control connection");
    let ack = control
        .control("shutdown", Duration::from_secs(5))
        .expect("shutdown ack");
    assert!(!ack.payload.is_empty());
    let status = worker.wait().expect("worker exit");
    assert!(status.success(), "graceful shutdown must exit 0: {status}");

    let final_state = inspect_store(&dirs.audit, "after resume");
    println!("served after respawn    : {served2}");
    println!("final live segments     : {}", final_state.live.len());
    println!("final archived segments : {}", final_state.archived.len());
    println!("final chained entries   : {}", final_state.entries);
    assert!(
        final_state.entries > after_kill.entries,
        "the respawned worker must extend the same chain, not restart it"
    );
    assert!(!final_state.archived.is_empty());
    println!("\nPASS: SIGKILL mid-archive loses nothing and double-counts nothing\n");
    let _ = client.shutdown();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("# E20 — background audit archiving: hot-path cost and crash safety\n");
    if smoke {
        hot_path_phase(3_000, 8 * 1024, 2);
        crash_phase(1_200, 600);
        println!("E20 smoke: OK");
    } else {
        hot_path_phase(20_000, 32 * 1024, 5);
        crash_phase(4_000, 2_000);
    }
}
