//! E4 — Simpson's paradox (EXPERIMENTS.md, Table E4).
//!
//! Paper claim (§2): "a trend appears in different groups of data but
//! disappears or reverses when these groups are combined."
//!
//! Berkeley-style admissions; the auditor must flag the reversal, and a
//! placebo stratifier must not be flagged.

use fact_accuracy::simpson::{audit_simpson, scan_stratifiers};
use fact_data::synth::admissions::{generate_admissions, AdmissionsConfig};

fn main() {
    let ds = generate_admissions(&AdmissionsConfig { n: 24_000, seed: 4 });

    let rep = audit_simpson(&ds, "admitted", "gender", "male", "female", "department").unwrap();
    println!("E4: Simpson's paradox — admissions by gender, stratified by department\n");
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>9}",
        "stratum", "n", "male", "female", "gap"
    );
    println!("{}", "-".repeat(54));
    let mut strata = rep.strata.clone();
    strata.sort_by(|a, b| a.stratum.cmp(&b.stratum));
    for s in &strata {
        println!(
            "{:<12} {:>8} {:>10.3} {:>10.3} {:>+9.3}",
            s.stratum,
            s.n,
            s.rate_group1,
            s.rate_group2,
            s.difference()
        );
    }
    println!("{}", "-".repeat(54));
    println!(
        "{:<12} {:>8} aggregate gap {:>+7.3}   adjusted gap {:>+7.3}",
        "ALL",
        ds.n_rows(),
        rep.aggregate_difference,
        rep.adjusted_difference
    );
    println!("\nreversal detected: {}", rep.reversal);

    // placebo control
    let coin: Vec<&str> = (0..ds.n_rows())
        .map(|i| if i % 2 == 0 { "heads" } else { "tails" })
        .collect();
    let mut ds2 = ds.clone();
    ds2.add_column("coin", fact_data::Column::from_labels(&coin))
        .unwrap();
    let scans = scan_stratifiers(
        &ds2,
        "admitted",
        "gender",
        "male",
        "female",
        &["coin", "department"],
    )
    .unwrap();
    println!("\nstratifier scan (reversals first):");
    for s in &scans {
        println!(
            "  {:<12} aggregate {:>+7.3} adjusted {:>+7.3} reversal={}",
            s.stratifier, s.aggregate_difference, s.adjusted_difference, s.reversal
        );
    }
    println!(
        "\nExpected shape: aggregate favors men by >8pp; within departments women\n\
         match or lead; the department stratifier flags the reversal, the coin does not."
    );
}
