//! Experiment harness library shared by the `exp_e*` binaries and the
//! Criterion benches.
//!
//! Each binary regenerates one experiment from EXPERIMENTS.md (the
//! evaluation section this vision paper does not have — see DESIGN.md).
//! The helpers here keep table formatting consistent across experiments.

/// Print a table header row followed by a separator line sized to it.
pub fn header(columns: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in columns.iter().zip(widths) {
        line.push_str(&format!("{c:>w$} ", w = w));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
}

/// Format one f64 cell at a width/precision.
pub fn cell(v: f64, width: usize, precision: usize) -> String {
    format!("{v:>width$.precision$}")
}

/// A deterministic seed stream for experiments that need several seeds.
pub fn seeds(base: u64, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| base.wrapping_mul(0x9e3779b9).wrapping_add(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_stream_is_deterministic_and_distinct() {
        let a = seeds(7, 5);
        let b = seeds(7, 5);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
    }

    #[test]
    fn cell_formats() {
        assert_eq!(cell(1.23456, 8, 3), "   1.235");
    }
}
