//! # fact-par — a std-only data-parallel runtime
//!
//! The FACT guards only get deployed if they are cheap at scale, and cheap
//! at scale means using every core the host offers. This crate is the
//! workspace's parallel-compute substrate, built on `std::thread::scope`
//! alone (the build environment has no rayon): chunked [`Pool::par_map`],
//! [`Pool::par_for_each_mut`], and [`Pool::par_reduce`] over index ranges.
//!
//! Three properties every caller can rely on:
//!
//! * **Determinism.** Work is split into chunks whose boundaries depend
//!   only on the problem size and the grain — *never* on the worker count.
//!   Chunk results are merged in index order. A kernel built on these
//!   primitives therefore produces **bit-identical** output at any
//!   `FACT_THREADS` value, including 1; "parallel" and "sequential" are the
//!   same computation scheduled differently.
//! * **Zero overhead below the grain.** Inputs that fit in a single chunk
//!   (or a pool with one worker) run inline on the caller's thread — no
//!   spawn, no lock, no allocation beyond the output.
//! * **No global executor state.** [`Pool`] is a plain value; the
//!   module-level [`par_map`]/[`par_for_each_mut`]/[`par_reduce`] helpers
//!   snapshot the configured worker count per call, so [`set_workers`] (or
//!   the `FACT_THREADS` environment variable) takes effect immediately.
//!
//! Worker-count resolution order: [`set_workers`] runtime override, then
//! the `FACT_THREADS` environment variable (read once), then
//! `std::thread::available_parallelism()`.
//!
//! ```
//! let squares = fact_par::par_map(10_000, 1024, |i| (i * i) as u64);
//! assert_eq!(squares[77], 77 * 77);
//!
//! let total = fact_par::par_reduce(
//!     10_000,
//!     1024,
//!     |range| range.map(|i| i as u64).sum::<u64>(),
//!     |a, b| a + b,
//! );
//! assert_eq!(total, Some(9_999 * 10_000 / 2));
//! ```
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

mod pool;

pub use pool::Pool;

/// Default chunk grain for index-range primitives: below this many index
/// units a call runs inline on the caller's thread.
pub const DEFAULT_GRAIN: usize = 1024;

/// Runtime worker override (0 = unset). Set via [`set_workers`].
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `FACT_THREADS` parsed once per process.
static ENV_WORKERS: OnceLock<Option<usize>> = OnceLock::new();

/// The worker count parallel calls will use right now.
///
/// Resolution order: [`set_workers`] override, then `FACT_THREADS`, then
/// `available_parallelism()` (1 when even that is unavailable).
pub fn workers() -> usize {
    let over = WORKER_OVERRIDE.load(Ordering::Relaxed);
    if over != 0 {
        return over;
    }
    let env = ENV_WORKERS.get_or_init(|| {
        std::env::var("FACT_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    });
    if let Some(n) = *env {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Override the worker count process-wide (experiments, tests). `0` clears
/// the override and falls back to `FACT_THREADS` / detected parallelism.
///
/// Because chunking never depends on the worker count, changing this knob
/// changes scheduling only — results stay bit-identical.
pub fn set_workers(n: usize) {
    WORKER_OVERRIDE.store(n, Ordering::Relaxed);
}

/// [`Pool::par_map`] on a pool with the configured worker count.
pub fn par_map<T, F>(n: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    Pool::global().par_map(n, grain, f)
}

/// [`Pool::par_for_each_mut`] on a pool with the configured worker count.
pub fn par_for_each_mut<T, F>(data: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    Pool::global().par_for_each_mut(data, grain, f)
}

/// [`Pool::par_reduce`] on a pool with the configured worker count.
pub fn par_reduce<A, M, R>(n: usize, grain: usize, map: M, reduce: R) -> Option<A>
where
    A: Send,
    M: Fn(std::ops::Range<usize>) -> A + Sync,
    R: Fn(A, A) -> A,
{
    Pool::global().par_reduce(n, grain, map, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_helpers_match_explicit_pool() {
        let a = par_map(500, 64, |i| i * 3);
        let b = Pool::new(4).par_map(500, 64, |i| i * 3);
        assert_eq!(a, b);
    }

    #[test]
    fn set_workers_overrides_and_clears() {
        set_workers(3);
        assert_eq!(workers(), 3);
        set_workers(0);
        assert!(workers() >= 1);
    }
}
