//! The scoped worker pool and its chunked primitives.
//!
//! A [`Pool`] is a plain value holding a worker count; each parallel call
//! opens a `std::thread::scope`, so closures may borrow from the caller's
//! stack freely and no thread outlives the call. Spawn cost (~tens of
//! microseconds per worker) is amortized by the grain gate: work that fits
//! in one chunk never spawns at all.
//!
//! Scheduling is dynamic — workers pull the next unclaimed chunk from a
//! shared queue, so an unlucky slow chunk cannot serialize the rest — but
//! every chunk writes its result into a slot fixed by its index, which is
//! what makes the output independent of scheduling.

use std::mem::MaybeUninit;
use std::ops::Range;
use std::sync::Mutex;

/// Work queue for [`Pool::par_map`]: each entry is a chunk's starting index
/// plus the uninitialized output slots it must fill.
type MapQueue<'a, T> = Mutex<std::vec::IntoIter<(usize, &'a mut [MaybeUninit<T>])>>;

/// A reusable handle for running chunked data-parallel work.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool that uses up to `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Pool {
            workers: workers.max(1),
        }
    }

    /// A pool with the globally configured worker count
    /// ([`crate::workers`]): the `set_workers` override, `FACT_THREADS`, or
    /// detected parallelism, in that order.
    pub fn global() -> Self {
        Pool::new(crate::workers())
    }

    /// This pool's worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// `f(i)` for every `i in 0..n`, results in index order.
    ///
    /// Chunks of `grain` indices are distributed over the workers; each
    /// element lands in its own slot, so the result is identical to
    /// `(0..n).map(f).collect()` for any worker count.
    pub fn par_map<T, F>(&self, n: usize, grain: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let grain = grain.max(1);
        let mut out = Vec::with_capacity(n);
        if n == 0 {
            return out;
        }
        let n_chunks = n.div_ceil(grain);
        let threads = self.workers.min(n_chunks);
        if threads <= 1 {
            out.extend((0..n).map(f));
            return out;
        }
        {
            let slots = &mut out.spare_capacity_mut()[..n];
            let mut chunks: Vec<(usize, &mut [MaybeUninit<T>])> = Vec::with_capacity(n_chunks);
            let mut start = 0;
            for chunk in slots.chunks_mut(grain) {
                let len = chunk.len();
                chunks.push((start, chunk));
                start += len;
            }
            let queue = Mutex::new(chunks.into_iter());
            let run = |queue: &MapQueue<T>| loop {
                let next = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
                match next {
                    Some((base, slot)) => {
                        for (k, cell) in slot.iter_mut().enumerate() {
                            cell.write(f(base + k));
                        }
                    }
                    None => return,
                }
            };
            std::thread::scope(|s| {
                for _ in 1..threads {
                    s.spawn(|| run(&queue));
                }
                run(&queue);
            });
        }
        // SAFETY: the chunks partition exactly the first `n` spare slots and
        // every worker writes each slot of its claimed chunks exactly once;
        // the scope joined all workers before we get here. (If `f` panics the
        // scope propagates it and `out` is dropped at its old length — any
        // already-written elements leak, which is safe.)
        unsafe { out.set_len(n) };
        out
    }

    /// Run `f(offset, chunk)` over `grain`-sized disjoint chunks of `data`
    /// in parallel; `offset` is the chunk's starting index in `data`.
    pub fn par_for_each_mut<T, F>(&self, data: &mut [T], grain: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let grain = grain.max(1);
        if data.is_empty() {
            return;
        }
        let n_chunks = data.len().div_ceil(grain);
        let threads = self.workers.min(n_chunks);
        if threads <= 1 {
            let mut start = 0;
            for chunk in data.chunks_mut(grain) {
                let len = chunk.len();
                f(start, chunk);
                start += len;
            }
            return;
        }
        let mut chunks: Vec<(usize, &mut [T])> = Vec::with_capacity(n_chunks);
        let mut start = 0;
        for chunk in data.chunks_mut(grain) {
            let len = chunk.len();
            chunks.push((start, chunk));
            start += len;
        }
        let queue = Mutex::new(chunks.into_iter());
        let run = |queue: &Mutex<std::vec::IntoIter<(usize, &mut [T])>>| loop {
            let next = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
            match next {
                Some((base, chunk)) => f(base, chunk),
                None => return,
            }
        };
        std::thread::scope(|s| {
            for _ in 1..threads {
                s.spawn(|| run(&queue));
            }
            run(&queue);
        });
    }

    /// Map every `grain`-sized index chunk of `0..n` through `map`, then
    /// fold the per-chunk results **in chunk order** with `reduce`.
    ///
    /// Because the chunk boundaries depend only on `n` and `grain` and the
    /// fold order is fixed, the result is bit-identical at any worker count
    /// — including for non-associative float accumulation. Returns `None`
    /// when `n == 0`.
    pub fn par_reduce<A, M, R>(&self, n: usize, grain: usize, map: M, reduce: R) -> Option<A>
    where
        A: Send,
        M: Fn(Range<usize>) -> A + Sync,
        R: Fn(A, A) -> A,
    {
        let grain = grain.max(1);
        if n == 0 {
            return None;
        }
        let n_chunks = n.div_ceil(grain);
        let range_of = |c: usize| (c * grain)..(((c + 1) * grain).min(n));
        let threads = self.workers.min(n_chunks);
        if threads <= 1 {
            // Same chunk structure as the parallel path, so the fold order —
            // and therefore the bits — match at any worker count.
            return (0..n_chunks).map(|c| map(range_of(c))).reduce(&reduce);
        }
        let mut results: Vec<Option<A>> = (0..n_chunks).map(|_| None).collect();
        {
            let slots: Vec<(usize, &mut Option<A>)> = results.iter_mut().enumerate().collect();
            let queue = Mutex::new(slots.into_iter());
            let run = |queue: &Mutex<std::vec::IntoIter<(usize, &mut Option<A>)>>| loop {
                let next = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
                match next {
                    Some((c, slot)) => *slot = Some(map(range_of(c))),
                    None => return,
                }
            };
            std::thread::scope(|s| {
                for _ in 1..threads {
                    s.spawn(|| run(&queue));
                }
                run(&queue);
            });
        }
        results
            .into_iter()
            .map(|r| r.expect("chunk computed"))
            .reduce(&reduce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_map() {
        for &workers in &[1usize, 2, 3, 8] {
            let pool = Pool::new(workers);
            for &n in &[0usize, 1, 7, 64, 1000] {
                let got = pool.par_map(n, 16, |i| i as u64 * 3 + 1);
                let want: Vec<u64> = (0..n).map(|i| i as u64 * 3 + 1).collect();
                assert_eq!(got, want, "n={n} workers={workers}");
            }
        }
    }

    #[test]
    fn par_map_handles_non_copy_types() {
        let got = Pool::new(4).par_map(100, 8, |i| format!("v{i}"));
        assert_eq!(got.len(), 100);
        assert_eq!(got[42], "v42");
    }

    #[test]
    fn par_for_each_mut_touches_every_element_once() {
        for &workers in &[1usize, 2, 5] {
            let mut data = vec![0u32; 999];
            Pool::new(workers).par_for_each_mut(&mut data, 100, |base, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v += (base + k) as u32 + 1;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
        }
    }

    #[test]
    fn par_reduce_is_deterministic_across_worker_counts() {
        // float accumulation: chunk order is what guarantees equal bits
        let xs: Vec<f64> = (0..10_000).map(|i| (i as f64).sin() * 1e-3).collect();
        let sum_with = |workers: usize| {
            Pool::new(workers)
                .par_reduce(
                    xs.len(),
                    128,
                    |r| r.map(|i| xs[i]).sum::<f64>(),
                    |a, b| a + b,
                )
                .unwrap()
        };
        let s1 = sum_with(1);
        for &w in &[2usize, 3, 4, 8, 16] {
            assert_eq!(s1.to_bits(), sum_with(w).to_bits(), "workers={w}");
        }
    }

    #[test]
    fn par_reduce_empty_is_none() {
        assert_eq!(Pool::new(4).par_reduce(0, 8, |_| 1u32, |a, b| a + b), None);
    }

    #[test]
    fn par_reduce_single_chunk_runs_inline() {
        let v = Pool::new(8)
            .par_reduce(5, 100, |r| r.sum::<usize>(), |a, b| a + b)
            .unwrap();
        assert_eq!(v, (0..5).sum());
    }

    #[test]
    fn grain_zero_is_clamped() {
        let got = Pool::new(2).par_map(10, 0, |i| i);
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn dynamic_scheduling_balances_uneven_chunks() {
        // one slow chunk must not change the result
        let got = Pool::new(4).par_map(64, 4, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * i
        });
        let want: Vec<usize> = (0..64).map(|i| i * i).collect();
        assert_eq!(got, want);
    }
}
