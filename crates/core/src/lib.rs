//! # fact-core — FACT-based information systems by design
//!
//! The paper's constructive demand (§3–4): information systems should embed
//! Fairness, Accuracy, Confidentiality, and Transparency "already during the
//! design and requirements phases", so that data science becomes **green** —
//! valuable without the "pollution" of discrimination, guesswork, leaks, and
//! black boxes.
//!
//! This crate is that embedding:
//!
//! * [`policy`] — FACT requirements as typed, machine-checkable objects (the
//!   "FACT elements in our requirements" of §4);
//! * [`pipeline`] — [`pipeline::GuardedPipeline`], a data-science pipeline
//!   whose stages *cannot skip* the guards: loading runs adequacy and risk
//!   checks, training records provenance, releases spend privacy budget,
//!   decisions carry explanations;
//! * [`report`] — the compliance scorecard and **green certification**;
//! * [`runtime`] — streaming guards for production traffic at Internet-
//!   Minute scale (experiment E9);
//! * [`drift`] — population-stability (PSI) drift monitoring, because a
//!   certification is only as fresh as the distribution it was measured on.

#![warn(missing_docs)]

pub mod drift;
pub mod pipeline;
pub mod policy;
pub mod report;
pub mod runtime;

pub use pipeline::GuardedPipeline;
pub use policy::FactPolicy;
pub use report::{FactReport, GuardCheck, Pillar};
