//! The FACT compliance scorecard and "green" certification.
//!
//! §3 coins *green data science*: benefitting from data "while ensuring
//! Fairness, Accuracy, Confidentiality, and Transparency". A [`FactReport`]
//! is the mechanical rendering of that promise — every guard the pipeline
//! ran, each attributed to a pillar with a pass/fail verdict, rolled up into
//! a certification that is green only when **every enabled pillar passes**.

use std::fmt;

use serde::Serialize;

/// The four FACT pillars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Pillar {
    /// Q1 — data science without prejudice.
    Fairness,
    /// Q2 — data science without guesswork.
    Accuracy,
    /// Q3 — answering without revealing secrets.
    Confidentiality,
    /// Q4 — answers that are clarified, not black-boxed.
    Transparency,
}

impl Pillar {
    /// All pillars, FACT order.
    pub const ALL: [Pillar; 4] = [
        Pillar::Fairness,
        Pillar::Accuracy,
        Pillar::Confidentiality,
        Pillar::Transparency,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Pillar::Fairness => "Fairness",
            Pillar::Accuracy => "Accuracy",
            Pillar::Confidentiality => "Confidentiality",
            Pillar::Transparency => "Transparency",
        }
    }
}

/// One executed guard.
#[derive(Debug, Clone, Serialize)]
pub struct GuardCheck {
    /// Pillar the guard belongs to.
    pub pillar: Pillar,
    /// Guard name, e.g. `"disparate impact"`.
    pub name: String,
    /// Whether the guard passed.
    pub passed: bool,
    /// Human-readable measurement/explanation.
    pub detail: String,
}

/// The certification scorecard.
#[derive(Debug, Clone, Serialize)]
pub struct FactReport {
    /// Every guard executed, in order.
    pub checks: Vec<GuardCheck>,
    /// Pillars that had at least one guard executed.
    pub pillars_evaluated: Vec<Pillar>,
    /// Whether the audit log's hash chain verified.
    pub audit_chain_intact: bool,
    /// ε spent / ε budget, when a confidentiality budget exists.
    pub privacy_spent: Option<(f64, f64)>,
}

impl FactReport {
    /// Checks belonging to one pillar.
    pub fn checks_for(&self, pillar: Pillar) -> Vec<&GuardCheck> {
        self.checks.iter().filter(|c| c.pillar == pillar).collect()
    }

    /// A pillar passes when it was evaluated and none of its guards failed.
    pub fn pillar_passes(&self, pillar: Pillar) -> bool {
        let checks = self.checks_for(pillar);
        !checks.is_empty() && checks.iter().all(|c| c.passed)
    }

    /// Green certification: every evaluated pillar passes, at least one
    /// pillar was evaluated, and the audit chain is intact.
    pub fn is_green(&self) -> bool {
        self.audit_chain_intact
            && !self.pillars_evaluated.is_empty()
            && self
                .pillars_evaluated
                .iter()
                .all(|&p| self.pillar_passes(p))
    }

    /// Failed checks, for remediation.
    pub fn failures(&self) -> Vec<&GuardCheck> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }

    /// Serialize the scorecard to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is serializable")
    }
}

impl fmt::Display for FactReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== FACT compliance report ===")?;
        for pillar in Pillar::ALL {
            let checks = self.checks_for(pillar);
            if checks.is_empty() {
                writeln!(f, "[{:>15}]  (not evaluated)", pillar.name())?;
                continue;
            }
            let verdict = if self.pillar_passes(pillar) {
                "PASS"
            } else {
                "FAIL"
            };
            writeln!(f, "[{:>15}]  {verdict}", pillar.name())?;
            for c in checks {
                writeln!(
                    f,
                    "    {} {:<28} {}",
                    if c.passed { "✓" } else { "✗" },
                    c.name,
                    c.detail
                )?;
            }
        }
        if let Some((spent, budget)) = self.privacy_spent {
            writeln!(f, "privacy budget: ε {spent:.3} of {budget:.3} spent")?;
        }
        writeln!(
            f,
            "audit chain: {}",
            if self.audit_chain_intact {
                "intact"
            } else {
                "BROKEN"
            }
        )?;
        write!(
            f,
            "certification: {}",
            if self.is_green() {
                "GREEN ✓"
            } else {
                "NOT GREEN ✗"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(pillar: Pillar, passed: bool) -> GuardCheck {
        GuardCheck {
            pillar,
            name: "t".into(),
            passed,
            detail: "d".into(),
        }
    }

    #[test]
    fn green_requires_all_evaluated_pillars_passing() {
        let rep = FactReport {
            checks: vec![check(Pillar::Fairness, true), check(Pillar::Accuracy, true)],
            pillars_evaluated: vec![Pillar::Fairness, Pillar::Accuracy],
            audit_chain_intact: true,
            privacy_spent: None,
        };
        assert!(rep.is_green());
        assert!(rep.pillar_passes(Pillar::Fairness));
        assert!(
            !rep.pillar_passes(Pillar::Transparency),
            "not evaluated ≠ pass"
        );
    }

    #[test]
    fn one_failure_blocks_certification() {
        let rep = FactReport {
            checks: vec![
                check(Pillar::Fairness, true),
                check(Pillar::Fairness, false),
            ],
            pillars_evaluated: vec![Pillar::Fairness],
            audit_chain_intact: true,
            privacy_spent: None,
        };
        assert!(!rep.is_green());
        assert_eq!(rep.failures().len(), 1);
    }

    #[test]
    fn broken_audit_chain_blocks_certification() {
        let rep = FactReport {
            checks: vec![check(Pillar::Fairness, true)],
            pillars_evaluated: vec![Pillar::Fairness],
            audit_chain_intact: false,
            privacy_spent: None,
        };
        assert!(!rep.is_green());
    }

    #[test]
    fn nothing_evaluated_is_not_green() {
        let rep = FactReport {
            checks: vec![],
            pillars_evaluated: vec![],
            audit_chain_intact: true,
            privacy_spent: None,
        };
        assert!(!rep.is_green());
    }

    #[test]
    fn display_renders_matrix() {
        let rep = FactReport {
            checks: vec![check(Pillar::Confidentiality, true)],
            pillars_evaluated: vec![Pillar::Confidentiality],
            audit_chain_intact: true,
            privacy_spent: Some((0.5, 1.0)),
        };
        let s = rep.to_string();
        assert!(s.contains("Confidentiality"));
        assert!(s.contains("GREEN"));
        assert!(s.contains("privacy budget"));
        assert!(rep.to_json().contains("Confidentiality"));
    }
}
