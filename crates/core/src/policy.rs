//! FACT requirements as typed policy objects.
//!
//! §4 of the paper asks: "should we add FACT elements to our modeling
//! languages? How can FACT elements be embedded in our requirements?" A
//! [`FactPolicy`] is that embedding: each pillar's requirements are explicit
//! data, checked mechanically by the pipeline guards, rather than prose in a
//! compliance document.

use fact_data::{FactError, Result};
use fact_fairness::FairnessThresholds;
use serde::{Deserialize, Serialize};

/// Fairness requirements (pillar Q1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FairnessPolicy {
    /// Column holding the protected attribute.
    pub protected_column: String,
    /// The protected group's label within that column.
    pub protected_label: String,
    /// Metric thresholds (four-fifths rule etc.).
    pub thresholds: FairnessThresholds,
    /// Refuse to train on features flagged as proxies above this normalized
    /// mutual information.
    pub max_proxy_nmi: f64,
}

impl FairnessPolicy {
    /// A policy with default thresholds.
    pub fn new(column: impl Into<String>, label: impl Into<String>) -> Self {
        FairnessPolicy {
            protected_column: column.into(),
            protected_label: label.into(),
            thresholds: FairnessThresholds::default(),
            max_proxy_nmi: 0.5,
        }
    }
}

/// Accuracy requirements (pillar Q2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyPolicy {
    /// Minimum held-out accuracy the model must achieve.
    pub min_accuracy: f64,
    /// Significance level for any registered hypotheses.
    pub alpha: f64,
    /// Minimum rows per protected group for estimates to be trusted.
    pub min_group_n: usize,
    /// Fraction of data reserved for honest evaluation.
    pub test_frac: f64,
}

impl Default for AccuracyPolicy {
    fn default() -> Self {
        AccuracyPolicy {
            min_accuracy: 0.7,
            alpha: 0.05,
            min_group_n: 30,
            test_frac: 0.25,
        }
    }
}

/// Confidentiality requirements (pillar Q3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfidentialityPolicy {
    /// Total ε budget for the pipeline's lifetime.
    pub epsilon_budget: f64,
    /// Total δ budget.
    pub delta_budget: f64,
    /// Maximum acceptable prosecutor re-identification risk of the loaded
    /// data (1.0 disables the check).
    pub max_reidentification_risk: f64,
}

impl Default for ConfidentialityPolicy {
    fn default() -> Self {
        ConfidentialityPolicy {
            epsilon_budget: 1.0,
            delta_budget: 1e-6,
            max_reidentification_risk: 1.0,
        }
    }
}

/// Transparency requirements (pillar Q4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransparencyPolicy {
    /// Minimum surrogate fidelity for the model to count as explainable.
    pub min_surrogate_fidelity: f64,
    /// Surrogate tree depth allowed (deeper = more faithful, less readable).
    pub surrogate_depth: usize,
    /// Require a complete model card before certification.
    pub require_model_card: bool,
}

impl Default for TransparencyPolicy {
    fn default() -> Self {
        TransparencyPolicy {
            min_surrogate_fidelity: 0.85,
            surrogate_depth: 4,
            require_model_card: true,
        }
    }
}

/// The complete FACT requirement set. Pillars are optional so a pipeline can
/// adopt them incrementally, but [`FactPolicy::strict`] — all four — is what
/// "green" certification requires.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FactPolicy {
    /// Fairness requirements (Q1).
    pub fairness: Option<FairnessPolicy>,
    /// Accuracy requirements (Q2).
    pub accuracy: Option<AccuracyPolicy>,
    /// Confidentiality requirements (Q3).
    pub confidentiality: Option<ConfidentialityPolicy>,
    /// Transparency requirements (Q4).
    pub transparency: Option<TransparencyPolicy>,
}

impl FactPolicy {
    /// All four pillars at their defaults, with the given protected
    /// attribute.
    pub fn strict(protected_column: impl Into<String>, protected_label: impl Into<String>) -> Self {
        FactPolicy {
            fairness: Some(FairnessPolicy::new(protected_column, protected_label)),
            accuracy: Some(AccuracyPolicy::default()),
            confidentiality: Some(ConfidentialityPolicy::default()),
            transparency: Some(TransparencyPolicy::default()),
        }
    }

    /// Serialize the policy to JSON — "FACT elements in the requirements"
    /// as a reviewable, versionable artifact.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| FactError::InvalidArgument(format!("policy serialization: {e}")))
    }

    /// Load a policy from JSON.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| FactError::Parse {
            line: 0,
            message: format!("policy: {e}"),
        })
    }

    /// Number of pillars enabled.
    pub fn pillars_enabled(&self) -> usize {
        usize::from(self.fairness.is_some())
            + usize::from(self.accuracy.is_some())
            + usize::from(self.confidentiality.is_some())
            + usize::from(self.transparency.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_enables_all_pillars() {
        let p = FactPolicy::strict("group", "B");
        assert_eq!(p.pillars_enabled(), 4);
        assert_eq!(p.fairness.as_ref().unwrap().protected_label, "B");
    }

    #[test]
    fn default_is_empty() {
        assert_eq!(FactPolicy::default().pillars_enabled(), 0);
    }

    #[test]
    fn policy_round_trips_through_json() {
        let p = FactPolicy::strict("group", "B");
        let json = p.to_json().unwrap();
        assert!(json.contains("protected_column"));
        let back = FactPolicy::from_json(&json).unwrap();
        assert_eq!(back.pillars_enabled(), 4);
        assert_eq!(back.fairness.as_ref().unwrap().protected_label, "B");
        assert!(FactPolicy::from_json("{oops").is_err());
    }

    #[test]
    fn partial_policy_from_config_text() {
        // an ops team writes only the pillars they enforce
        let json = r#"{
            "fairness": {
                "protected_column": "ethnicity",
                "protected_label": "minority",
                "thresholds": {
                    "min_disparate_impact": 0.9,
                    "max_parity_difference": 0.05,
                    "max_equalized_odds": 0.05
                },
                "max_proxy_nmi": 0.3
            },
            "accuracy": null,
            "confidentiality": null,
            "transparency": null
        }"#;
        let p = FactPolicy::from_json(json).unwrap();
        assert_eq!(p.pillars_enabled(), 1);
        assert_eq!(
            p.fairness.as_ref().unwrap().thresholds.min_disparate_impact,
            0.9
        );
    }

    #[test]
    fn defaults_are_sane() {
        let a = AccuracyPolicy::default();
        assert!(a.min_accuracy > 0.5 && a.test_frac > 0.0);
        let c = ConfidentialityPolicy::default();
        assert!(c.epsilon_budget > 0.0);
        let t = TransparencyPolicy::default();
        assert!(t.min_surrogate_fidelity > 0.5);
    }
}
