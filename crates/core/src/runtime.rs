//! Streaming FACT guards for production traffic.
//!
//! §3 motivates scale with the "Internet Minute" — millions of automated
//! decisions per minute. Responsibility cannot mean re-running batch audits:
//! these guards process one event at a time in O(1):
//!
//! * [`StreamingFairnessMonitor`] — sliding-window selection rates per
//!   group; raises an alert when the window's disparate impact drops below
//!   threshold;
//! * [`StreamingDpCounter`] — periodic differentially-private counts of
//!   events, spending from a shared budget;
//! * [`GuardedStream`] — composes the guards plus audit sampling, and counts
//!   work done so experiment E9 can price the overhead of responsibility.

use std::collections::VecDeque;

use fact_data::stream::Event;
use fact_data::{FactError, Result};

use crate::drift::{DriftAlert, DriftMonitor};

use fact_confidentiality::mechanisms::laplace_noise;
use fact_confidentiality::PrivacyAccountant;
use fact_fairness::WindowSummary;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An alert raised by a streaming guard.
#[derive(Debug, Clone, PartialEq)]
pub enum Alert {
    /// Windowed disparate impact fell below the threshold.
    FairnessViolation {
        /// Windowed favorable rate for group B.
        rate_protected: f64,
        /// Windowed favorable rate for group A.
        rate_unprotected: f64,
        /// The DI ratio that tripped the alert. `f64::INFINITY` when the
        /// unprotected group's windowed rate is zero while the protected
        /// group's is positive (total one-sided disparity).
        disparate_impact: f64,
    },
    /// A DP count was released.
    DpRelease {
        /// Events counted in the interval (noised).
        noisy_count: f64,
        /// ε spent on this release.
        epsilon: f64,
    },
    /// The DP budget ran out; releases have stopped.
    BudgetExhausted,
    /// The payload-value distribution drifted from the reference (PSI).
    Drift(DriftAlert),
}

/// O(1)-per-event sliding-window fairness monitor.
#[derive(Debug)]
pub struct StreamingFairnessMonitor {
    window: usize,
    min_di: f64,
    min_samples_per_group: usize,
    events: VecDeque<(bool, bool)>, // (group_b, favorable)
    counts: [[usize; 2]; 2],        // [group][favorable]
}

impl StreamingFairnessMonitor {
    /// Monitor the last `window` events; alert when windowed DI < `min_di`
    /// (once both groups have `min_samples_per_group` events in the window).
    pub fn new(window: usize, min_di: f64, min_samples_per_group: usize) -> Result<Self> {
        if window == 0 || !(0.0..=1.0).contains(&min_di) {
            return Err(FactError::InvalidArgument(
                "window must be positive and min_di in [0, 1]".into(),
            ));
        }
        Ok(StreamingFairnessMonitor {
            window,
            min_di,
            min_samples_per_group,
            events: VecDeque::with_capacity(window),
            counts: [[0; 2]; 2],
        })
    }

    /// Ingest one event; returns an alert when the window shows disparity.
    pub fn observe(&mut self, group_b: bool, favorable: bool) -> Option<Alert> {
        if self.events.len() == self.window {
            if let Some((g, f)) = self.events.pop_front() {
                self.counts[usize::from(g)][usize::from(f)] -= 1;
            }
        }
        self.events.push_back((group_b, favorable));
        self.counts[usize::from(group_b)][usize::from(favorable)] += 1;

        let n_a = self.counts[0][0] + self.counts[0][1];
        let n_b = self.counts[1][0] + self.counts[1][1];
        if n_a < self.min_samples_per_group || n_b < self.min_samples_per_group {
            return None;
        }
        let rate_a = self.counts[0][1] as f64 / n_a as f64;
        let rate_b = self.counts[1][1] as f64 / n_b as f64;
        // DI is rate_b / rate_a. When rate_a == 0 the ratio is not finite:
        // if rate_b > 0 the window shows total one-sided disparity (A never
        // favored while B is) — the worst case, which must alert rather than
        // be masked; if both rates are zero the window carries no evidence
        // either way.
        let di = if rate_a > 0.0 {
            rate_b / rate_a
        } else if rate_b > 0.0 {
            f64::INFINITY
        } else {
            return None;
        };
        if di < self.min_di || di.is_infinite() {
            Some(Alert::FairnessViolation {
                rate_protected: rate_b,
                rate_unprotected: rate_a,
                disparate_impact: di,
            })
        } else {
            None
        }
    }

    /// Events currently held in the window.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Export the window contents as a mergeable [`WindowSummary`] at
    /// `segment_events` resolution — the checkpoint/merge form a shard
    /// serializes before shutdown and other shards can combine.
    pub fn summary(&self, segment_events: usize) -> Result<WindowSummary> {
        WindowSummary::from_events(
            self.window as u64,
            segment_events as u64,
            self.events.iter().copied(),
        )
    }

    /// Rebuild the window from a checkpointed summary by replaying its
    /// resynthesized events (alerts raised during replay are discarded —
    /// they were already raised, and acted on, before the checkpoint).
    /// Window size, DI threshold and sample floor stay as constructed;
    /// per-segment counts are restored exactly, ordering within a segment
    /// is not (the documented one-segment resolution loss).
    pub fn restore(&mut self, summary: &WindowSummary) {
        self.events.clear();
        self.counts = [[0; 2]; 2];
        for (group_b, favorable) in summary.events() {
            let _ = self.observe(group_b, favorable);
        }
    }
}

/// Periodic DP release of event counts under a shared budget.
#[derive(Debug)]
pub struct StreamingDpCounter {
    interval: usize,
    epsilon_per_release: f64,
    pending: usize,
    rng: StdRng,
    exhausted_reported: bool,
}

impl StreamingDpCounter {
    /// Release a noisy count every `interval` events, spending
    /// `epsilon_per_release` each time.
    pub fn new(interval: usize, epsilon_per_release: f64, seed: u64) -> Result<Self> {
        if interval == 0 || epsilon_per_release <= 0.0 {
            return Err(FactError::InvalidArgument(
                "interval and epsilon must be positive".into(),
            ));
        }
        Ok(StreamingDpCounter {
            interval,
            epsilon_per_release,
            pending: 0,
            rng: StdRng::seed_from_u64(seed),
            exhausted_reported: false,
        })
    }

    /// Ingest one event; may emit a [`Alert::DpRelease`] (or a one-time
    /// [`Alert::BudgetExhausted`]).
    pub fn observe(&mut self, accountant: &mut PrivacyAccountant) -> Option<Alert> {
        self.pending += 1;
        if self.pending < self.interval {
            return None;
        }
        let count = self.pending;
        self.pending = 0;
        match accountant.spend(self.epsilon_per_release, 0.0, "stream dp count") {
            Ok(()) => {
                let noisy =
                    count as f64 + laplace_noise(1.0 / self.epsilon_per_release, &mut self.rng);
                Some(Alert::DpRelease {
                    noisy_count: noisy.max(0.0),
                    epsilon: self.epsilon_per_release,
                })
            }
            Err(_) => {
                if self.exhausted_reported {
                    None
                } else {
                    self.exhausted_reported = true;
                    Some(Alert::BudgetExhausted)
                }
            }
        }
    }

    /// Events accumulated since the last release (checkpoint export).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Whether budget exhaustion was already reported (checkpoint export).
    pub fn exhausted_reported(&self) -> bool {
        self.exhausted_reported
    }

    /// Restore checkpointed counter state: events pending since the last
    /// release and the one-shot exhaustion flag. The noise RNG restarts from
    /// the constructor seed — a restarted shard draws a fresh noise stream,
    /// which is safe (DP noise must only be unpredictable, not continuous)
    /// and keeps the checkpoint free of RNG internals.
    pub fn restore(&mut self, pending: usize, exhausted_reported: bool) {
        self.pending = pending;
        self.exhausted_reported = exhausted_reported;
    }
}

/// The composed guarded stream processor for experiment E9.
pub struct GuardedStream {
    fairness: Option<StreamingFairnessMonitor>,
    /// Minimum events between recorded fairness alerts (debounce): a
    /// sustained violation produces one alert per cooldown period, not one
    /// per event.
    fairness_cooldown: u64,
    last_fairness_alert: Option<u64>,
    dp: Option<(StreamingDpCounter, PrivacyAccountant)>,
    drift: Option<DriftMonitor>,
    audit_every: usize,
    /// Count of processed events.
    pub processed: u64,
    /// Count of audit-log entries that would be written (sampled).
    pub audit_entries: u64,
    /// Alerts raised.
    pub alerts: Vec<Alert>,
    // baseline work: aggregate of payload values (what an unguarded pipeline
    // would compute anyway)
    value_sum: f64,
}

impl GuardedStream {
    /// A processor with no guards — the baseline for overhead measurements.
    pub fn unguarded() -> Self {
        GuardedStream {
            fairness: None,
            fairness_cooldown: 0,
            last_fairness_alert: None,
            dp: None,
            drift: None,
            audit_every: 0,
            processed: 0,
            audit_entries: 0,
            alerts: Vec::new(),
            value_sum: 0.0,
        }
    }

    /// A processor with the full FACT guard set.
    pub fn guarded(
        fairness_window: usize,
        min_di: f64,
        dp_interval: usize,
        epsilon_budget: f64,
        audit_every: usize,
        seed: u64,
    ) -> Result<Self> {
        Ok(GuardedStream {
            fairness: Some(StreamingFairnessMonitor::new(fairness_window, min_di, 50)?),
            fairness_cooldown: (fairness_window as u64 / 2).max(1),
            last_fairness_alert: None,
            drift: None,
            dp: Some((
                StreamingDpCounter::new(dp_interval, 0.01, seed)?,
                PrivacyAccountant::pure(epsilon_budget)?,
            )),
            audit_every: audit_every.max(1),
            processed: 0,
            audit_entries: 0,
            alerts: Vec::new(),
            value_sum: 0.0,
        })
    }

    /// Attach a PSI drift monitor over the event payload values.
    pub fn with_drift_monitor(mut self, monitor: DriftMonitor) -> Self {
        self.drift = Some(monitor);
        self
    }

    /// Process one event through baseline work plus all enabled guards.
    pub fn process(&mut self, event: &Event) {
        self.processed += 1;
        self.value_sum += event.value;
        if let Some(f) = &mut self.fairness {
            if let Some(alert) = f.observe(event.group_b, event.decision_favorable) {
                let due = match self.last_fairness_alert {
                    None => true,
                    Some(at) => self.processed - at >= self.fairness_cooldown,
                };
                if due {
                    self.last_fairness_alert = Some(self.processed);
                    self.alerts.push(alert);
                }
            }
        }
        if let Some((dp, acc)) = &mut self.dp {
            if let Some(alert) = dp.observe(acc) {
                self.alerts.push(alert);
            }
        }
        if let Some(d) = &mut self.drift {
            if let Some(alert) = d.observe(event.value) {
                self.alerts.push(Alert::Drift(alert));
            }
        }
        if self.audit_every > 0 && self.processed.is_multiple_of(self.audit_every as u64) {
            self.audit_entries += 1;
        }
    }

    /// The baseline aggregate (kept so the compiler cannot elide the work).
    pub fn value_sum(&self) -> f64 {
        self.value_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_data::stream::InternetMinute;

    #[test]
    fn fairness_monitor_stays_quiet_on_fair_traffic() {
        let mut m = StreamingFairnessMonitor::new(2000, 0.8, 100).unwrap();
        let mut alerts = 0;
        for ev in InternetMinute::new(1).take(20_000) {
            if m.observe(ev.group_b, ev.decision_favorable).is_some() {
                alerts += 1;
            }
        }
        assert_eq!(alerts, 0, "equal rates should not trip the monitor");
    }

    #[test]
    fn fairness_monitor_fires_on_disparity() {
        let mut m = StreamingFairnessMonitor::new(2000, 0.8, 100).unwrap();
        let mut alerts = 0;
        for ev in InternetMinute::new(2).with_disparity(0.9, 0.4).take(20_000) {
            if let Some(Alert::FairnessViolation {
                disparate_impact, ..
            }) = m.observe(ev.group_b, ev.decision_favorable)
            {
                alerts += 1;
                assert!(disparate_impact < 0.8);
            }
        }
        assert!(
            alerts > 100,
            "sustained disparity must keep alerting: {alerts}"
        );
    }

    #[test]
    fn monitor_window_slides() {
        // disparity early, fairness later: alerts must stop
        let mut m = StreamingFairnessMonitor::new(500, 0.8, 50).unwrap();
        let mut early = 0;
        for ev in InternetMinute::new(3).with_disparity(0.9, 0.2).take(3_000) {
            if m.observe(ev.group_b, ev.decision_favorable).is_some() {
                early += 1;
            }
        }
        assert!(early > 0);
        let mut late = 0;
        for ev in InternetMinute::new(4).take(3_000) {
            if m.observe(ev.group_b, ev.decision_favorable).is_some() {
                late += 1;
            }
        }
        // after the window refills with fair traffic, alerts stop
        assert!(
            late < early,
            "sliding window must recover: {late} < {early}"
        );
    }

    #[test]
    fn dp_counter_releases_until_budget_gone() {
        let mut acc = PrivacyAccountant::pure(0.05).unwrap(); // 5 releases at 0.01
        let mut dp = StreamingDpCounter::new(100, 0.01, 7).unwrap();
        let mut releases = 0;
        let mut exhausted = 0;
        for _ in 0..2_000 {
            match dp.observe(&mut acc) {
                Some(Alert::DpRelease { noisy_count, .. }) => {
                    releases += 1;
                    assert!(noisy_count >= 0.0);
                    assert!((noisy_count - 100.0).abs() < 10_000.0);
                }
                Some(Alert::BudgetExhausted) => exhausted += 1,
                _ => {}
            }
        }
        assert_eq!(releases, 5);
        assert_eq!(exhausted, 1, "exhaustion reported exactly once");
    }

    #[test]
    fn guarded_stream_counts_work() {
        let mut guarded = GuardedStream::guarded(1000, 0.8, 500, 1.0, 100, 9).unwrap();
        let mut unguarded = GuardedStream::unguarded();
        for ev in InternetMinute::new(5).take(10_000) {
            guarded.process(&ev);
            unguarded.process(&ev);
        }
        assert_eq!(guarded.processed, 10_000);
        assert_eq!(unguarded.processed, 10_000);
        assert_eq!(guarded.audit_entries, 100);
        assert_eq!(unguarded.audit_entries, 0);
        assert!((guarded.value_sum() - unguarded.value_sum()).abs() < 1e-6);
        // DP releases happened
        assert!(guarded
            .alerts
            .iter()
            .any(|a| matches!(a, Alert::DpRelease { .. })));
    }

    #[test]
    fn monitor_summary_round_trip_preserves_window_counts() {
        let mut m = StreamingFairnessMonitor::new(500, 0.8, 50).unwrap();
        for ev in InternetMinute::new(11).with_disparity(0.9, 0.4).take(2_300) {
            m.observe(ev.group_b, ev.decision_favorable);
        }
        let summary = m.summary(50).unwrap();
        assert_eq!(summary.total_events() as usize, m.len());

        let mut restored = StreamingFairnessMonitor::new(500, 0.8, 50).unwrap();
        restored.restore(&summary);
        assert_eq!(restored.len(), m.len());
        assert_eq!(restored.summary(50).unwrap().counts(), summary.counts());
        // both monitors alert identically on the next disparate event
        let a = m.observe(true, false);
        let b = restored.observe(true, false);
        assert_eq!(a.is_some(), b.is_some());
    }

    #[test]
    fn dp_counter_restore_resumes_pending_and_exhaustion() {
        let mut acc = PrivacyAccountant::pure(1.0).unwrap();
        let mut dp = StreamingDpCounter::new(100, 0.01, 7).unwrap();
        for _ in 0..150 {
            dp.observe(&mut acc);
        }
        assert_eq!(dp.pending(), 50);
        assert!(!dp.exhausted_reported());

        let mut resumed = StreamingDpCounter::new(100, 0.01, 8).unwrap();
        resumed.restore(dp.pending(), dp.exhausted_reported());
        // 50 pending survive: the next release fires after 50 more events
        let mut fired_at = None;
        for i in 0..100 {
            if resumed.observe(&mut acc).is_some() {
                fired_at = Some(i);
                break;
            }
        }
        assert_eq!(fired_at, Some(49));
    }

    #[test]
    fn validation() {
        assert!(StreamingFairnessMonitor::new(0, 0.8, 10).is_err());
        assert!(StreamingFairnessMonitor::new(10, 1.5, 10).is_err());
        assert!(StreamingDpCounter::new(0, 0.1, 0).is_err());
        assert!(StreamingDpCounter::new(10, 0.0, 0).is_err());
    }
}
