//! Streaming distribution-drift detection (population stability index).
//!
//! A model certified green on yesterday's data can silently rot as the
//! population shifts — an accuracy-pillar failure mode in production. The
//! monitor bins a reference sample once, then maintains a sliding window of
//! live values; when the PSI between window and reference exceeds the
//! threshold (0.2 is the conventional "significant shift" line), it alerts.

use std::collections::VecDeque;

use fact_data::{FactError, Result};

/// A drift alert with the measured PSI.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftAlert {
    /// Population stability index of the current window vs the reference.
    pub psi: f64,
    /// The configured threshold that was exceeded.
    pub threshold: f64,
}

/// Sliding-window PSI drift monitor for one numeric feature.
#[derive(Debug)]
pub struct DriftMonitor {
    edges: Vec<f64>,
    reference: Vec<f64>, // per-bin reference proportions (smoothed)
    window: VecDeque<f64>,
    window_size: usize,
    counts: Vec<usize>,
    threshold: f64,
    cooldown: usize,
    since_alert: usize,
}

const SMOOTH: f64 = 1e-4;

impl DriftMonitor {
    /// Build from a reference sample, `n_bins` equal-width bins over the
    /// reference range, a window size, and a PSI alert threshold.
    pub fn new(
        reference: &[f64],
        n_bins: usize,
        window_size: usize,
        threshold: f64,
    ) -> Result<Self> {
        if reference.len() < 2 * n_bins {
            return Err(FactError::EmptyData(
                "reference sample too small for the requested bins".into(),
            ));
        }
        if n_bins < 2 || window_size < 10 || threshold <= 0.0 {
            return Err(FactError::InvalidArgument(
                "need n_bins ≥ 2, window ≥ 10, threshold > 0".into(),
            ));
        }
        let lo = reference.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = reference.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if lo >= hi {
            return Err(FactError::Numeric("constant reference sample".into()));
        }
        let edges: Vec<f64> = (0..=n_bins)
            .map(|i| lo + (hi - lo) * i as f64 / n_bins as f64)
            .collect();
        let mut ref_counts = vec![0usize; n_bins];
        for &v in reference {
            ref_counts[bin_of(&edges, v)] += 1;
        }
        let n = reference.len() as f64;
        let reference_props = ref_counts
            .iter()
            .map(|&c| (c as f64 / n).max(SMOOTH))
            .collect();
        Ok(DriftMonitor {
            edges,
            reference: reference_props,
            window: VecDeque::with_capacity(window_size),
            window_size,
            counts: vec![0; n_bins],
            threshold,
            cooldown: window_size / 2,
            since_alert: usize::MAX / 2,
        })
    }

    /// Current PSI of the window vs the reference (`None` until the window
    /// is full).
    pub fn psi(&self) -> Option<f64> {
        if self.window.len() < self.window_size {
            return None;
        }
        let n = self.window.len() as f64;
        let mut psi = 0.0;
        for (c, &r) in self.counts.iter().zip(&self.reference) {
            let p = (*c as f64 / n).max(SMOOTH);
            psi += (p - r) * (p / r).ln();
        }
        Some(psi)
    }

    /// Observe one value; returns an alert when PSI crosses the threshold
    /// (debounced to one alert per half-window).
    pub fn observe(&mut self, value: f64) -> Option<DriftAlert> {
        if self.window.len() == self.window_size {
            if let Some(old) = self.window.pop_front() {
                self.counts[bin_of(&self.edges, old)] -= 1;
            }
        }
        self.window.push_back(value);
        self.counts[bin_of(&self.edges, value)] += 1;
        self.since_alert = self.since_alert.saturating_add(1);
        match self.psi() {
            Some(psi) if psi > self.threshold && self.since_alert >= self.cooldown => {
                self.since_alert = 0;
                Some(DriftAlert {
                    psi,
                    threshold: self.threshold,
                })
            }
            _ => None,
        }
    }
}

fn bin_of(edges: &[f64], v: f64) -> usize {
    let n_bins = edges.len() - 1;
    if v <= edges[0] {
        return 0;
    }
    if v >= edges[n_bins] {
        return n_bins - 1;
    }
    let span = edges[n_bins] - edges[0];
    (((v - edges[0]) / span) * n_bins as f64)
        .floor()
        .min(n_bins as f64 - 1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(lo..hi)).collect()
    }

    #[test]
    fn stable_stream_stays_quiet() {
        let reference = uniform(5_000, 0.0, 1.0, 1);
        let mut m = DriftMonitor::new(&reference, 10, 500, 0.2).unwrap();
        let mut alerts = 0;
        for v in uniform(5_000, 0.0, 1.0, 2) {
            if m.observe(v).is_some() {
                alerts += 1;
            }
        }
        assert_eq!(alerts, 0, "same distribution must not alert");
        assert!(m.psi().unwrap() < 0.05);
    }

    #[test]
    fn shifted_stream_alerts() {
        let reference = uniform(5_000, 0.0, 1.0, 3);
        let mut m = DriftMonitor::new(&reference, 10, 500, 0.2).unwrap();
        // warm-up with in-distribution data, then shift hard
        for v in uniform(600, 0.0, 1.0, 4) {
            m.observe(v);
        }
        let mut alerts = 0;
        for v in uniform(2_000, 0.6, 1.4, 5) {
            if m.observe(v).is_some() {
                alerts += 1;
            }
        }
        assert!(alerts >= 1, "hard shift must alert");
        assert!(m.psi().unwrap() > 0.2);
    }

    #[test]
    fn alerts_are_debounced() {
        let reference = uniform(2_000, 0.0, 1.0, 6);
        let mut m = DriftMonitor::new(&reference, 10, 100, 0.1).unwrap();
        let mut alerts = 0;
        for v in uniform(2_000, 2.0, 3.0, 7) {
            if m.observe(v).is_some() {
                alerts += 1;
            }
        }
        // 2000 shifted events / cooldown 50 → at most ~40 alerts
        assert!(alerts > 0 && alerts <= 41, "debounced: {alerts}");
    }

    #[test]
    fn psi_none_until_window_full() {
        let reference = uniform(1_000, 0.0, 1.0, 8);
        let mut m = DriftMonitor::new(&reference, 5, 100, 0.2).unwrap();
        for v in uniform(99, 0.0, 1.0, 9) {
            m.observe(v);
            assert!(m.psi().is_none());
        }
        m.observe(0.5);
        assert!(m.psi().is_some());
    }

    #[test]
    fn out_of_range_values_clamp_to_edge_bins() {
        let reference = uniform(1_000, 0.0, 1.0, 10);
        let mut m = DriftMonitor::new(&reference, 5, 10, 5.0).unwrap();
        for _ in 0..20 {
            m.observe(-100.0);
            m.observe(100.0);
        }
        // no panic; window full; PSI computable
        assert!(m.psi().unwrap() > 0.0);
    }

    #[test]
    fn validation() {
        assert!(DriftMonitor::new(&[1.0; 5], 10, 100, 0.2).is_err());
        let r = uniform(1_000, 0.0, 1.0, 11);
        assert!(DriftMonitor::new(&r, 1, 100, 0.2).is_err());
        assert!(DriftMonitor::new(&r, 10, 5, 0.2).is_err());
        assert!(DriftMonitor::new(&r, 10, 100, 0.0).is_err());
        assert!(DriftMonitor::new(&vec![0.5; 100], 5, 20, 0.2).is_err());
    }
}
