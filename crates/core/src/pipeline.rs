//! The guarded pipeline: a data-science pipeline that cannot skip its FACT
//! guards.
//!
//! Design decisions, mapped to the paper:
//!
//! * **Guards record, budget blocks.** Fairness/accuracy/transparency guards
//!   record pass/fail checks rather than aborting — certification (§3's
//!   "green") is the enforcement point, and an honest audit trail of
//!   failures is itself a transparency requirement. The privacy budget is
//!   the exception: an exhausted budget *hard-fails* the release, because a
//!   leak cannot be remediated retroactively.
//! * **Honest evaluation is structural.** [`GuardedPipeline::train`] splits
//!   off a held-out test set internally; training-set accuracy is never
//!   reported (Q2: no guesswork).
//! * **Everything is attributed.** Every stage appends to the provenance
//!   DAG and the hash-chained audit log (Q4: steps and actors).

use std::collections::HashMap;

use fact_accuracy::adequacy::check_group_sizes;
use fact_confidentiality::mechanisms::{dp_count, dp_histogram, dp_mean};
use fact_confidentiality::risk::reidentification_risk;
use fact_confidentiality::PrivacyAccountant;
use fact_data::split::train_test_split;
use fact_data::{Dataset, FactError, Matrix, Result};
use fact_fairness::intersectional::{intersectional_audit, IntersectionalReport};
use fact_fairness::protected_mask;
use fact_fairness::proxy::scan_proxies;
use fact_fairness::report::{FairnessReport, FairnessThresholds};
use fact_ml::metrics::accuracy;
use fact_ml::Classifier;
use fact_transparency::counterfactual::{find_counterfactual, Counterfactual};
use fact_transparency::explanation::explain_decision;
use fact_transparency::modelcard::ModelCard;
use fact_transparency::provenance::NodeId;
use fact_transparency::surrogate::SurrogateExplainer;
use fact_transparency::{AuditLog, ProvenanceGraph};

use crate::policy::FactPolicy;
use crate::report::{FactReport, GuardCheck, Pillar};

struct ModelState {
    node: NodeId,
    model: Box<dyn Classifier>,
    feature_names: Vec<String>,
    x_train: Matrix,
    x_test: Matrix,
    y_test: Vec<bool>,
    test_data: Dataset,
    card: ModelCard,
}

/// A FACT-guarded data-science pipeline.
pub struct GuardedPipeline {
    policy: FactPolicy,
    provenance: ProvenanceGraph,
    audit: AuditLog,
    accountant: Option<PrivacyAccountant>,
    data: Option<(NodeId, Dataset)>,
    model: Option<ModelState>,
    checks: Vec<GuardCheck>,
}

impl GuardedPipeline {
    /// Create a pipeline governed by `policy`.
    pub fn new(policy: FactPolicy) -> Result<Self> {
        let accountant = match &policy.confidentiality {
            Some(c) => Some(PrivacyAccountant::new(c.epsilon_budget, c.delta_budget)?),
            None => None,
        };
        Ok(GuardedPipeline {
            policy,
            provenance: ProvenanceGraph::new(),
            audit: AuditLog::new(),
            accountant,
            data: None,
            model: None,
            checks: Vec::new(),
        })
    }

    fn check(&mut self, pillar: Pillar, name: &str, passed: bool, detail: String) {
        self.audit.append(
            "pipeline",
            format!("guard:{}", name),
            format!("{} — {detail}", if passed { "pass" } else { "FAIL" }),
        );
        self.checks.push(GuardCheck {
            pillar,
            name: name.to_string(),
            passed,
            detail,
        });
    }

    /// Load the working dataset. Runs load-time guards: protected-group
    /// adequacy (accuracy pillar) and re-identification risk (confidentiality
    /// pillar, when quasi-identifiers are declared in the schema).
    pub fn load_data(&mut self, name: &str, actor: &str, ds: Dataset) -> Result<&mut Self> {
        let mut attrs = HashMap::new();
        attrs.insert("rows".to_string(), ds.n_rows().to_string());
        attrs.insert("cols".to_string(), ds.n_cols().to_string());
        let node = self.provenance.add_entity(name, actor, attrs);
        self.audit
            .append(actor, "load_data", format!("{name} rows={}", ds.n_rows()));

        if let (Some(fp), Some(ap)) = (&self.policy.fairness, &self.policy.accuracy) {
            let warnings = check_group_sizes(&ds, &fp.protected_column, ap.min_group_n)?;
            let detail = if warnings.is_empty() {
                format!(
                    "all groups of '{}' have ≥ {} rows",
                    fp.protected_column, ap.min_group_n
                )
            } else {
                warnings
                    .iter()
                    .map(|w| w.message.clone())
                    .collect::<Vec<_>>()
                    .join("; ")
            };
            self.check(
                Pillar::Accuracy,
                "group adequacy",
                warnings.is_empty(),
                detail,
            );
        }

        if let Some(cp) = &self.policy.confidentiality {
            let qis = ds.schema().quasi_identifiers();
            if !qis.is_empty() && cp.max_reidentification_risk < 1.0 {
                let risk = reidentification_risk(&ds, &qis)?;
                let passed = risk.prosecutor_risk <= cp.max_reidentification_risk;
                self.check(
                    Pillar::Confidentiality,
                    "re-identification risk",
                    passed,
                    format!(
                        "prosecutor risk {:.3} (limit {:.3}), unique fraction {:.3}",
                        risk.prosecutor_risk, cp.max_reidentification_risk, risk.unique_fraction
                    ),
                );
            }
        }

        self.data = Some((node, ds));
        Ok(self)
    }

    /// Apply a named transformation to the working dataset, recording it.
    pub fn transform<F>(&mut self, name: &str, actor: &str, f: F) -> Result<&mut Self>
    where
        F: FnOnce(&Dataset) -> Result<Dataset>,
    {
        let (node, ds) = self
            .data
            .take()
            .ok_or_else(|| FactError::InvalidArgument("no data loaded".into()))?;
        let out = f(&ds)?;
        let (_, outputs) = self.provenance.record_activity(
            name,
            actor,
            HashMap::new(),
            &[node],
            &[&format!("{name}:output")],
        )?;
        self.audit.append(
            actor,
            "transform",
            format!("{name}: {} → {} rows", ds.n_rows(), out.n_rows()),
        );
        self.data = Some((outputs[0], out));
        Ok(self)
    }

    /// Train a classifier on `features` → `label`, with guards:
    ///
    /// * fairness — refuses nothing, but flags direct use of the protected
    ///   column and any feature whose proxy strength exceeds policy;
    /// * accuracy — splits off `test_frac` rows first and records held-out
    ///   accuracy against the policy minimum.
    ///
    /// `trainer` receives the (one-hot-encoded) training matrix, labels, the
    /// training-split *dataset* (so fairness-aware trainers can compute
    /// group masks or instance weights on exactly the rows they will fit),
    /// and a seed.
    pub fn train<F>(
        &mut self,
        name: &str,
        actor: &str,
        features: &[&str],
        label: &str,
        seed: u64,
        trainer: F,
    ) -> Result<&mut Self>
    where
        F: FnOnce(&Matrix, &[bool], &Dataset, u64) -> Result<Box<dyn Classifier>>,
    {
        let (data_node, ds) = self
            .data
            .as_ref()
            .ok_or_else(|| FactError::InvalidArgument("no data loaded".into()))?;
        let ds = ds.clone();
        let data_node = *data_node;

        // fairness guards at training time
        if let Some(fp) = &self.policy.fairness.clone() {
            let direct_use = features.contains(&fp.protected_column.as_str());
            self.check(
                Pillar::Fairness,
                "no direct sensitive feature",
                !direct_use,
                if direct_use {
                    format!(
                        "training features include protected column '{}'",
                        fp.protected_column
                    )
                } else {
                    format!(
                        "protected column '{}' excluded from features",
                        fp.protected_column
                    )
                },
            );
            let mask = protected_mask(&ds, &fp.protected_column, &fp.protected_label)?;
            let candidate = ds.select(features)?;
            let scores = scan_proxies(&candidate, &mask, &[])?;
            let offenders: Vec<String> = scores
                .iter()
                .filter(|s| s.normalized_mi > fp.max_proxy_nmi)
                .map(|s| format!("{} (nMI {:.2})", s.feature, s.normalized_mi))
                .collect();
            self.check(
                Pillar::Fairness,
                "proxy scan",
                offenders.is_empty(),
                if offenders.is_empty() {
                    format!("no feature exceeds proxy nMI {:.2}", fp.max_proxy_nmi)
                } else {
                    format!("proxy features detected: {}", offenders.join(", "))
                },
            );
        }

        // honest split
        let test_frac = self
            .policy
            .accuracy
            .as_ref()
            .map(|a| a.test_frac)
            .unwrap_or(0.25);
        let (train_ds, test_ds) = train_test_split(&ds, test_frac, seed)?;
        let (x_train, feature_names) = train_ds.to_matrix_onehot(features)?;
        let (x_test, _) = test_ds.to_matrix_onehot(features)?;
        let y_train = train_ds.bool_column(label)?.to_vec();
        let y_test = test_ds.bool_column(label)?.to_vec();

        let model = trainer(&x_train, &y_train, &train_ds, seed)?;

        // accuracy guard on the held-out split
        let acc = accuracy(&y_test, &model.predict(&x_test)?)?;
        if let Some(ap) = &self.policy.accuracy {
            self.check(
                Pillar::Accuracy,
                "held-out accuracy",
                acc >= ap.min_accuracy,
                format!(
                    "accuracy {:.3} on {} held-out rows (min {:.3})",
                    acc,
                    y_test.len(),
                    ap.min_accuracy
                ),
            );
        }

        let mut attrs = HashMap::new();
        attrs.insert("seed".to_string(), seed.to_string());
        attrs.insert("features".to_string(), features.join(","));
        let (_, outputs) = self.provenance.record_activity(
            format!("train:{name}"),
            actor,
            attrs,
            &[data_node],
            &[name],
        )?;
        self.audit.append(
            actor,
            "train",
            format!(
                "{name} on {} rows, held-out accuracy {acc:.3}",
                x_train.rows()
            ),
        );

        let mut card = ModelCard::new(name, "0.1.0");
        card.training_data = format!(
            "{} rows × {} features (internal split, test_frac {test_frac})",
            x_train.rows(),
            feature_names.len()
        );
        card = card.with_metric("accuracy", acc, "held-out test");
        if let Some(fp) = &self.policy.fairness {
            card.sensitive_attributes = vec![fp.protected_column.clone()];
        }

        self.model = Some(ModelState {
            node: outputs[0],
            model,
            feature_names,
            x_train,
            x_test,
            y_test,
            test_data: test_ds,
            card,
        });
        Ok(self)
    }

    /// Run the fairness audit on the held-out split and record its guards.
    pub fn audit_fairness(&mut self) -> Result<FairnessReport> {
        let fp =
            self.policy.fairness.clone().ok_or_else(|| {
                FactError::InvalidArgument("no fairness policy configured".into())
            })?;
        let ms = self
            .model
            .as_ref()
            .ok_or_else(|| FactError::NotFitted("train a model before auditing".into()))?;
        let pred = ms.model.predict(&ms.x_test)?;
        let mask = protected_mask(&ms.test_data, &fp.protected_column, &fp.protected_label)?;
        let report = FairnessReport::audit(
            Some(&ms.y_test),
            &pred,
            &mask,
            FairnessThresholds {
                ..fp.thresholds.clone()
            },
        )?;
        let di = report.disparate_impact;
        let spd = report.statistical_parity_difference;
        let di_pass = report.passes_disparate_impact();
        let parity_pass = report.passes_parity();
        let eo_pass = report.passes_equalized_odds();
        let eo = report.equalized_odds_difference;
        self.check(
            Pillar::Fairness,
            "disparate impact",
            di_pass,
            format!(
                "DI {di:.3} (four-fifths band [{:.2}, {:.2}])",
                fp.thresholds.min_disparate_impact,
                1.0 / fp.thresholds.min_disparate_impact
            ),
        );
        self.check(
            Pillar::Fairness,
            "statistical parity",
            parity_pass,
            format!(
                "SPD {spd:+.3} (limit ±{:.2})",
                fp.thresholds.max_parity_difference
            ),
        );
        if let Some(eo) = eo {
            self.check(
                Pillar::Fairness,
                "equalized odds",
                eo_pass,
                format!(
                    "EO distance {eo:.3} (limit {:.2})",
                    fp.thresholds.max_equalized_odds
                ),
            );
        }
        Ok(report)
    }

    /// Release a differentially private mean of `column` — the only way this
    /// pipeline releases raw-data statistics. Spends `epsilon` from the
    /// budget; hard-fails with [`FactError::BudgetExhausted`] when the budget
    /// cannot cover it.
    pub fn release_mean(
        &mut self,
        column: &str,
        lo: f64,
        hi: f64,
        epsilon: f64,
        seed: u64,
    ) -> Result<f64> {
        let accountant = self.accountant.as_mut().ok_or_else(|| {
            FactError::InvalidArgument("no confidentiality policy/budget configured".into())
        })?;
        let (_, ds) = self
            .data
            .as_ref()
            .ok_or_else(|| FactError::InvalidArgument("no data loaded".into()))?;
        let values = ds.f64_column(column)?;
        match accountant.spend(epsilon, 0.0, format!("dp_mean({column})")) {
            Ok(()) => {}
            Err(e) => {
                self.audit.append(
                    "pipeline",
                    "release_denied",
                    format!("dp_mean({column}) ε={epsilon}: {e}"),
                );
                // the guard doing its job is a *pass* for the pillar
                self.check(
                    Pillar::Confidentiality,
                    "budget enforced",
                    true,
                    format!("release of mean({column}) denied: {e}"),
                );
                return Err(e);
            }
        }
        let released = dp_mean(&values, lo, hi, epsilon, seed)?;
        let (spent, budget) = self
            .accountant
            .as_ref()
            .map(|a| (a.spent_epsilon(), a.budget_epsilon()))
            .unwrap_or((0.0, 0.0));
        self.check(
            Pillar::Confidentiality,
            "dp release within budget",
            true,
            format!("dp_mean({column}) at ε={epsilon} (ε spent {spent:.2}/{budget:.2})"),
        );
        self.audit.append(
            "pipeline",
            "release",
            format!("dp_mean({column}) ε={epsilon} → {released:.4}"),
        );
        Ok(released)
    }

    /// Release a differentially private row count (sensitivity 1, Laplace).
    pub fn release_count(&mut self, epsilon: f64, seed: u64) -> Result<f64> {
        let accountant = self.accountant.as_mut().ok_or_else(|| {
            FactError::InvalidArgument("no confidentiality policy/budget configured".into())
        })?;
        let (_, ds) = self
            .data
            .as_ref()
            .ok_or_else(|| FactError::InvalidArgument("no data loaded".into()))?;
        let n = ds.n_rows();
        accountant.spend(epsilon, 0.0, "dp_count(rows)")?;
        let released = dp_count(n, epsilon, seed)?;
        self.check(
            Pillar::Confidentiality,
            "dp release within budget",
            true,
            format!("dp_count at ε={epsilon}"),
        );
        self.audit.append(
            "pipeline",
            "release",
            format!("dp_count ε={epsilon} → {released:.1}"),
        );
        Ok(released)
    }

    /// Release a differentially private histogram of a categorical column:
    /// `(label, noisy count)` pairs in dictionary order.
    pub fn release_histogram(
        &mut self,
        column: &str,
        epsilon: f64,
        seed: u64,
    ) -> Result<Vec<(String, f64)>> {
        let accountant = self.accountant.as_mut().ok_or_else(|| {
            FactError::InvalidArgument("no confidentiality policy/budget configured".into())
        })?;
        let (_, ds) = self
            .data
            .as_ref()
            .ok_or_else(|| FactError::InvalidArgument("no data loaded".into()))?;
        let labels = ds.labels(column)?;
        // Count buckets over row chunks in parallel. Each chunk records
        // labels in local first-appearance order; merging chunks in index
        // order preserves the global first-appearance order exactly, so the
        // released histogram is bit-identical at any worker count.
        let (order, counts): (Vec<String>, Vec<u64>) = fact_par::par_reduce(
            labels.len(),
            1024,
            |range| {
                let mut order: Vec<String> = Vec::new();
                let mut counts: Vec<u64> = Vec::new();
                for l in &labels[range] {
                    match order.iter().position(|o| o == l) {
                        Some(i) => counts[i] += 1,
                        None => {
                            order.push(l.clone());
                            counts.push(1);
                        }
                    }
                }
                (order, counts)
            },
            |(mut order, mut counts), (border, bcounts)| {
                for (l, c) in border.into_iter().zip(bcounts) {
                    match order.iter().position(|o| *o == l) {
                        Some(i) => counts[i] += c,
                        None => {
                            order.push(l);
                            counts.push(c);
                        }
                    }
                }
                (order, counts)
            },
        )
        .unwrap_or_default();
        accountant.spend(epsilon, 0.0, format!("dp_histogram({column})"))?;
        let noisy = dp_histogram(&counts, epsilon, seed)?;
        self.check(
            Pillar::Confidentiality,
            "dp release within budget",
            true,
            format!("dp_histogram({column}) at ε={epsilon}"),
        );
        self.audit.append(
            "pipeline",
            "release",
            format!(
                "dp_histogram({column}) ε={epsilon}, {} buckets",
                order.len()
            ),
        );
        Ok(order.into_iter().zip(noisy).collect())
    }

    /// Run the transparency guards: distill a surrogate at the policy depth
    /// and check its fidelity; check model-card completeness.
    pub fn audit_transparency(&mut self) -> Result<f64> {
        let tp = self.policy.transparency.clone().ok_or_else(|| {
            FactError::InvalidArgument("no transparency policy configured".into())
        })?;
        let ms = self
            .model
            .as_ref()
            .ok_or_else(|| FactError::NotFitted("train a model before auditing".into()))?;
        let names: Vec<&str> = ms.feature_names.iter().map(|s| s.as_str()).collect();
        let surrogate = SurrogateExplainer::distill(
            ms.model.as_ref(),
            &ms.x_train,
            &ms.x_test,
            &names,
            tp.surrogate_depth,
        )?;
        let fidelity = surrogate.fidelity();
        let card_issues = ms.card.completeness_issues();
        self.check(
            Pillar::Transparency,
            "surrogate fidelity",
            fidelity >= tp.min_surrogate_fidelity,
            format!(
                "depth-{} surrogate agrees with model on {:.1}% of held-out rows (min {:.0}%)",
                tp.surrogate_depth,
                fidelity * 100.0,
                tp.min_surrogate_fidelity * 100.0
            ),
        );
        if tp.require_model_card {
            let issues_txt = card_issues.join("; ");
            let passed = card_issues.is_empty();
            self.check(
                Pillar::Transparency,
                "model card complete",
                passed,
                if passed {
                    "all required fields present".into()
                } else {
                    issues_txt
                },
            );
        }
        Ok(fidelity)
    }

    /// Explain one held-out decision in subject-readable terms (and log that
    /// an explanation was produced — explanations given are accountability
    /// events too).
    pub fn explain_decision(&mut self, test_row: usize) -> Result<String> {
        let ms = self
            .model
            .as_ref()
            .ok_or_else(|| FactError::NotFitted("train a model before explaining".into()))?;
        if test_row >= ms.x_test.rows() {
            return Err(FactError::InvalidArgument(format!(
                "test row {test_row} out of range ({} rows)",
                ms.x_test.rows()
            )));
        }
        let names: Vec<&str> = ms.feature_names.iter().map(|s| s.as_str()).collect();
        let row: Vec<f64> = ms.x_test.row(test_row).to_vec();
        let explanation = explain_decision(ms.model.as_ref(), &ms.x_train, &row, &names)?;
        let text = explanation.render();
        self.audit.append(
            "pipeline",
            "explain_decision",
            format!("test row {test_row}: score {:.3}", explanation.probability),
        );
        Ok(text)
    }

    /// Run an intersectional subgroup audit on the held-out split over the
    /// given attribute combination; records a fairness guard that fails when
    /// any adequately-sized subgroup falls below the policy's disparate-
    /// impact threshold.
    pub fn audit_intersectional(&mut self, attributes: &[&str]) -> Result<IntersectionalReport> {
        let fp =
            self.policy.fairness.clone().ok_or_else(|| {
                FactError::InvalidArgument("no fairness policy configured".into())
            })?;
        let ms = self
            .model
            .as_ref()
            .ok_or_else(|| FactError::NotFitted("train a model before auditing".into()))?;
        let pred = ms.model.predict(&ms.x_test)?;
        let report = intersectional_audit(&ms.test_data, &pred, attributes, 30)?;
        let threshold = fp.thresholds.min_disparate_impact;
        let violations = report.violations(threshold);
        let detail = if violations.is_empty() {
            format!(
                "all {} adequately-sized subgroups of ({}) above impact ratio {threshold:.2}",
                report.subgroups.iter().filter(|s| !s.small_cell).count(),
                attributes.join("×")
            )
        } else {
            violations
                .iter()
                .map(|v| format!("{:?} at {:.2}", v.labels, v.impact_ratio))
                .collect::<Vec<_>>()
                .join("; ")
        };
        self.check(
            Pillar::Fairness,
            "intersectional audit",
            violations.is_empty(),
            detail,
        );
        Ok(report)
    }

    /// Offer recourse for one held-out decision: a minimal plausible feature
    /// change that would flip it. `immutable_features` names features that
    /// must not be proposed for change (logged either way).
    pub fn counterfactual(
        &mut self,
        test_row: usize,
        immutable_features: &[&str],
    ) -> Result<Option<Counterfactual>> {
        let ms = self
            .model
            .as_ref()
            .ok_or_else(|| FactError::NotFitted("train a model before recourse".into()))?;
        if test_row >= ms.x_test.rows() {
            return Err(FactError::InvalidArgument(format!(
                "test row {test_row} out of range ({} rows)",
                ms.x_test.rows()
            )));
        }
        let names: Vec<&str> = ms.feature_names.iter().map(|s| s.as_str()).collect();
        let immutable: Vec<usize> = names
            .iter()
            .enumerate()
            .filter(|(_, n)| immutable_features.contains(n))
            .map(|(i, _)| i)
            .collect();
        let row: Vec<f64> = ms.x_test.row(test_row).to_vec();
        let cf = find_counterfactual(ms.model.as_ref(), &ms.x_train, &row, &names, &immutable)?;
        self.audit.append(
            "pipeline",
            "counterfactual",
            match &cf {
                Some(c) => format!("test row {test_row}: {}", c.render()),
                None => format!("test row {test_row}: no plausible recourse found"),
            },
        );
        Ok(cf)
    }

    /// Mutable access to the model card so operators can complete it.
    pub fn model_card_mut(&mut self) -> Option<&mut ModelCard> {
        self.model.as_mut().map(|m| &mut m.card)
    }

    /// The working dataset, if loaded.
    pub fn data(&self) -> Option<&Dataset> {
        self.data.as_ref().map(|(_, d)| d)
    }

    /// The provenance graph accumulated so far.
    pub fn provenance(&self) -> &ProvenanceGraph {
        &self.provenance
    }

    /// The audit log accumulated so far.
    pub fn audit_log(&self) -> &AuditLog {
        &self.audit
    }

    /// The privacy accountant, when a confidentiality policy is active.
    pub fn accountant(&self) -> Option<&PrivacyAccountant> {
        self.accountant.as_ref()
    }

    /// Produce the certification scorecard from every guard run so far.
    pub fn certify(&self) -> FactReport {
        let mut pillars: Vec<Pillar> = Vec::new();
        for p in Pillar::ALL {
            if self.checks.iter().any(|c| c.pillar == p) {
                pillars.push(p);
            }
        }
        FactReport {
            checks: self.checks.clone(),
            pillars_evaluated: pillars,
            audit_chain_intact: self.audit.verify().is_none(),
            privacy_spent: self
                .accountant
                .as_ref()
                .map(|a| (a.spent_epsilon(), a.budget_epsilon())),
        }
    }

    /// The lineage (as node names) of the trained model — "from raw data to
    /// insight" made queryable.
    pub fn model_lineage(&self) -> Result<Vec<String>> {
        let ms = self
            .model
            .as_ref()
            .ok_or_else(|| FactError::NotFitted("no model trained".into()))?;
        Ok(self
            .provenance
            .lineage(ms.node)?
            .into_iter()
            .filter_map(|id| self.provenance.node(id).map(|n| n.name.clone()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_data::synth::loans::{generate_loans, LoanConfig, LEGIT_FEATURES};
    use fact_ml::logistic::{LogisticConfig, LogisticRegression};

    fn trainer(x: &Matrix, y: &[bool], _ds: &Dataset, seed: u64) -> Result<Box<dyn Classifier>> {
        let cfg = LogisticConfig {
            seed,
            ..LogisticConfig::default()
        };
        Ok(Box::new(LogisticRegression::fit(x, y, None, &cfg)?))
    }

    fn fair_world() -> Dataset {
        generate_loans(&LoanConfig {
            n: 8_000,
            seed: 1,
            ..LoanConfig::default()
        })
    }

    fn biased_world() -> Dataset {
        generate_loans(&LoanConfig {
            n: 8_000,
            seed: 1,
            bias_strength: 0.5,
            proxy_strength: 0.9,
            ..LoanConfig::default()
        })
    }

    #[test]
    fn fair_pipeline_certifies_green() {
        let mut p = GuardedPipeline::new(FactPolicy::strict("group", "B")).unwrap();
        p.load_data("loans", "ingest", fair_world()).unwrap();
        p.train("loan-model", "ml", &LEGIT_FEATURES, "approved", 42, trainer)
            .unwrap();
        p.audit_fairness().unwrap();
        {
            let card = p.model_card_mut().unwrap();
            card.intended_use = "demo lending decisions on synthetic data".into();
        }
        p.audit_transparency().unwrap();
        let _released = p.release_mean("income", 0.0, 200.0, 0.5, 7).unwrap();
        let report = p.certify();
        assert!(report.is_green(), "fair world must certify:\n{report}");
        assert_eq!(report.pillars_evaluated.len(), 4);
    }

    #[test]
    fn biased_world_fails_fairness_pillar() {
        let mut p = GuardedPipeline::new(FactPolicy::strict("group", "B")).unwrap();
        p.load_data("loans", "ingest", biased_world()).unwrap();
        // include the proxy feature: both the proxy scan and the audit fail
        let features = [
            "income",
            "credit_score",
            "debt_ratio",
            "years_employed",
            "zip_risk",
        ];
        p.train("loan-model", "ml", &features, "approved", 42, trainer)
            .unwrap();
        p.audit_fairness().unwrap();
        let report = p.certify();
        assert!(!report.is_green());
        assert!(!report.pillar_passes(Pillar::Fairness));
        assert!(!report.failures().is_empty());
    }

    #[test]
    fn budget_exhaustion_hard_fails() {
        let mut p = GuardedPipeline::new(FactPolicy::strict("group", "B")).unwrap();
        p.load_data("loans", "ingest", fair_world()).unwrap();
        p.release_mean("income", 0.0, 200.0, 0.8, 1).unwrap();
        let err = p.release_mean("income", 0.0, 200.0, 0.8, 2).unwrap_err();
        assert!(matches!(err, FactError::BudgetExhausted { .. }));
        // the denial is in the audit log
        assert!(p
            .audit_log()
            .entries()
            .iter()
            .any(|e| e.action == "release_denied"));
    }

    #[test]
    fn training_on_sensitive_column_is_flagged() {
        let mut p = GuardedPipeline::new(FactPolicy::strict("group", "B")).unwrap();
        p.load_data("loans", "ingest", fair_world()).unwrap();
        let features = ["income", "credit_score", "group"];
        p.train("bad-model", "ml", &features, "approved", 1, trainer)
            .unwrap();
        let report = p.certify();
        let flag = report
            .checks
            .iter()
            .find(|c| c.name == "no direct sensitive feature")
            .unwrap();
        assert!(!flag.passed);
    }

    #[test]
    fn lineage_reaches_raw_data() {
        let mut p = GuardedPipeline::new(FactPolicy::strict("group", "B")).unwrap();
        p.load_data("raw_loans", "ingest", fair_world()).unwrap();
        p.transform("drop_nulls", "engineer", |d| Ok(d.drop_nulls()))
            .unwrap();
        p.train("m", "ml", &LEGIT_FEATURES, "approved", 3, trainer)
            .unwrap();
        let lineage = p.model_lineage().unwrap();
        assert!(lineage.iter().any(|n| n == "raw_loans"));
        assert!(lineage.iter().any(|n| n.contains("drop_nulls")));
    }

    #[test]
    fn stage_ordering_is_enforced() {
        let mut p = GuardedPipeline::new(FactPolicy::strict("group", "B")).unwrap();
        assert!(p
            .train("m", "ml", &LEGIT_FEATURES, "approved", 1, trainer)
            .is_err());
        assert!(p.audit_fairness().is_err());
        assert!(p.explain_decision(0).is_err());
        assert!(p.transform("t", "x", |d| Ok(d.clone())).is_err());
    }

    #[test]
    fn explanations_are_produced_and_logged() {
        let mut p = GuardedPipeline::new(FactPolicy::strict("group", "B")).unwrap();
        p.load_data("loans", "ingest", fair_world()).unwrap();
        p.train("m", "ml", &LEGIT_FEATURES, "approved", 5, trainer)
            .unwrap();
        let text = p.explain_decision(0).unwrap();
        assert!(text.contains("Decision:"));
        assert!(p
            .audit_log()
            .entries()
            .iter()
            .any(|e| e.action == "explain_decision"));
        assert!(p.explain_decision(10_000_000).is_err());
    }

    #[test]
    fn count_and_histogram_releases_spend_budget() {
        let mut p = GuardedPipeline::new(FactPolicy::strict("group", "B")).unwrap();
        p.load_data("loans", "ingest", fair_world()).unwrap();
        let count = p.release_count(0.3, 1).unwrap();
        assert!((count - 8_000.0).abs() < 50.0);
        let hist = p.release_histogram("group", 0.3, 2).unwrap();
        assert_eq!(hist.len(), 2);
        assert!(hist.iter().any(|(l, _)| l == "A"));
        let spent = p.accountant().unwrap().spent_epsilon();
        assert!((spent - 0.6).abs() < 1e-9);
        // third release at 0.5 would exceed ε=1
        assert!(p.release_mean("income", 0.0, 250.0, 0.5, 3).is_err());
    }

    #[test]
    fn no_policy_pillars_means_not_green() {
        let mut p = GuardedPipeline::new(FactPolicy::default()).unwrap();
        p.load_data("loans", "ingest", fair_world()).unwrap();
        p.train("m", "ml", &LEGIT_FEATURES, "approved", 1, trainer)
            .unwrap();
        assert!(p.accountant().is_none());
        assert!(p.release_mean("income", 0.0, 200.0, 0.1, 0).is_err());
        let report = p.certify();
        assert!(!report.is_green(), "no guards evaluated → not green");
    }
}
