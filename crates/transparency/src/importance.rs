//! Permutation feature importance.
//!
//! Model-agnostic: shuffle one feature column, measure how much a quality
//! metric drops. Works on any [`Classifier`], black box or not — the first
//! of the two ways this crate pries open the paper's deep-learning black box.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use fact_data::{FactError, Matrix, Result};
use fact_ml::metrics::roc_auc;
use fact_ml::Classifier;

/// Importance of one feature.
#[derive(Debug, Clone)]
pub struct FeatureImportance {
    /// Feature index in the matrix.
    pub feature: usize,
    /// Feature name (as supplied).
    pub name: String,
    /// Mean AUC drop over repeats (higher = more important).
    pub importance: f64,
    /// Standard deviation over repeats.
    pub std: f64,
}

/// Permutation importance of every feature, by AUC drop, sorted descending.
///
/// `repeats` independent shuffles per feature give a stability estimate.
#[allow(clippy::needless_range_loop)]
pub fn permutation_importance(
    model: &dyn Classifier,
    x: &Matrix,
    y: &[bool],
    names: &[&str],
    repeats: usize,
    seed: u64,
) -> Result<Vec<FeatureImportance>> {
    if x.rows() != y.len() {
        return Err(FactError::LengthMismatch {
            expected: x.rows(),
            actual: y.len(),
        });
    }
    if names.len() != x.cols() {
        return Err(FactError::LengthMismatch {
            expected: x.cols(),
            actual: names.len(),
        });
    }
    if repeats == 0 {
        return Err(FactError::InvalidArgument(
            "at least one repeat required".into(),
        ));
    }
    let baseline = roc_auc(y, &model.predict_proba(x)?)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(x.cols());
    for j in 0..x.cols() {
        let mut drops = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let mut xp = x.clone();
            let mut col: Vec<f64> = (0..x.rows()).map(|i| x.get(i, j)).collect();
            col.shuffle(&mut rng);
            for (i, &v) in col.iter().enumerate() {
                xp.set(i, j, v);
            }
            let auc = roc_auc(y, &model.predict_proba(&xp)?)?;
            drops.push(baseline - auc);
        }
        let mean = drops.iter().sum::<f64>() / repeats as f64;
        let std = if repeats > 1 {
            (drops.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (repeats - 1) as f64).sqrt()
        } else {
            0.0
        };
        out.push(FeatureImportance {
            feature: j,
            name: names[j].to_string(),
            importance: mean,
            std,
        });
    }
    out.sort_by(|a, b| {
        b.importance
            .partial_cmp(&a.importance)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_ml::logistic::{LogisticConfig, LogisticRegression};
    use rand::Rng;

    /// y depends strongly on x0, weakly on x1, not at all on x2.
    fn graded_world(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            let c: f64 = rng.gen_range(-1.0..1.0);
            rows.push(vec![a, b, c]);
            y.push(3.0 * a + 0.6 * b + rng.gen_range(-0.5..0.5) > 0.0);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn importance_ranking_matches_ground_truth() {
        let (x, y) = graded_world(3000, 1);
        let m = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
        let imp = permutation_importance(&m, &x, &y, &["strong", "weak", "noise"], 5, 7).unwrap();
        assert_eq!(imp[0].name, "strong");
        assert!(imp[0].importance > 0.2);
        let weak = imp.iter().find(|i| i.name == "weak").unwrap();
        let noise = imp.iter().find(|i| i.name == "noise").unwrap();
        assert!(weak.importance > noise.importance);
        assert!(
            noise.importance.abs() < 0.02,
            "noise ≈ 0: {}",
            noise.importance
        );
    }

    #[test]
    fn repeats_give_stability_estimates() {
        let (x, y) = graded_world(800, 2);
        let m = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
        let imp = permutation_importance(&m, &x, &y, &["a", "b", "c"], 8, 3).unwrap();
        assert!(imp.iter().all(|i| i.std >= 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = graded_world(500, 4);
        let m = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
        let a = permutation_importance(&m, &x, &y, &["a", "b", "c"], 3, 9).unwrap();
        let b = permutation_importance(&m, &x, &y, &["a", "b", "c"], 3, 9).unwrap();
        assert_eq!(a[0].importance, b[0].importance);
    }

    #[test]
    fn validation() {
        let (x, y) = graded_world(100, 5);
        let m = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
        assert!(permutation_importance(&m, &x, &y, &["a", "b"], 3, 0).is_err());
        assert!(permutation_importance(&m, &x, &y[..50], &["a", "b", "c"], 3, 0).is_err());
        assert!(permutation_importance(&m, &x, &y, &["a", "b", "c"], 0, 0).is_err());
    }
}
