//! Counterfactual explanations: "what would have had to be different?"
//!
//! A decision subject doesn't only deserve to know *why* (contributions) but
//! *what would change the outcome* — the actionable form of transparency
//! GDPR-era recourse demands. [`find_counterfactual`] searches for a minimal
//! single- or two-feature change that flips the model's decision, using
//! per-feature plausibility ranges from background data (so "increase your
//! income to $10M" is never proposed).

use fact_data::{FactError, Matrix, Result};
use fact_ml::Classifier;

/// One proposed feature change.
#[derive(Debug, Clone)]
pub struct FeatureChange {
    /// Feature index.
    pub feature: usize,
    /// Feature name.
    pub name: String,
    /// Current value.
    pub from: f64,
    /// Proposed value.
    pub to: f64,
}

/// A counterfactual: the changes and the resulting probability.
#[derive(Debug, Clone)]
pub struct Counterfactual {
    /// Proposed changes (1 or 2 features).
    pub changes: Vec<FeatureChange>,
    /// Model probability after the changes.
    pub new_probability: f64,
    /// Total normalized distance of the change (search objective).
    pub distance: f64,
}

impl Counterfactual {
    /// Plain-language rendering for the decision subject.
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        for c in &self.changes {
            parts.push(format!(
                "change {} from {:.2} to {:.2}",
                c.name, c.from, c.to
            ));
        }
        format!(
            "To flip the decision: {} (new score {:.2})",
            parts.join(" and "),
            self.new_probability
        )
    }
}

/// Search for a minimal counterfactual that flips `row`'s decision across
/// the 0.5 threshold. `immutable` lists feature indices that must not change
/// (e.g. age, protected attributes). Returns `None` when no single- or
/// two-feature change within the background's [5th, 95th]-percentile ranges
/// flips the decision.
pub fn find_counterfactual(
    model: &dyn Classifier,
    background: &Matrix,
    row: &[f64],
    feature_names: &[&str],
    immutable: &[usize],
) -> Result<Option<Counterfactual>> {
    let d = background.cols();
    if row.len() != d || feature_names.len() != d {
        return Err(FactError::LengthMismatch {
            expected: d,
            actual: row.len().min(feature_names.len()),
        });
    }
    if background.rows() < 20 {
        return Err(FactError::EmptyData(
            "counterfactual search needs at least 20 background rows".into(),
        ));
    }
    let base = Matrix::from_rows(&[row.to_vec()])?;
    let p0 = model.predict_proba(&base)?[0];
    let target_positive = p0 < 0.5; // flip direction

    // plausibility ranges per feature: 5th..95th percentile of background
    let mut ranges = Vec::with_capacity(d);
    for j in 0..d {
        let mut col: Vec<f64> = (0..background.rows())
            .map(|i| background.get(i, j))
            .collect();
        col.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let lo = col[(col.len() as f64 * 0.05) as usize];
        let hi = col[((col.len() as f64 * 0.95) as usize).min(col.len() - 1)];
        let span = (hi - lo).max(1e-12);
        ranges.push((lo, hi, span));
    }

    let grid = 9usize;
    let candidate_values = |j: usize| -> Vec<f64> {
        let (lo, hi, _) = ranges[j];
        (0..=grid)
            .map(|g| lo + (hi - lo) * g as f64 / grid as f64)
            .collect()
    };
    let mutable: Vec<usize> = (0..d).filter(|j| !immutable.contains(j)).collect();

    let flips = |p: f64| -> bool {
        if target_positive {
            p >= 0.5
        } else {
            p < 0.5
        }
    };
    let mut best: Option<Counterfactual> = None;
    fn consider(
        model: &dyn Classifier,
        ranges: &[(f64, f64, f64)],
        flips: &dyn Fn(f64) -> bool,
        best: &mut Option<Counterfactual>,
        changes: Vec<FeatureChange>,
        probe: Vec<f64>,
    ) -> Result<()> {
        let m = Matrix::from_rows(&[probe])?;
        let p = model.predict_proba(&m)?[0];
        if flips(p) {
            let distance: f64 = changes
                .iter()
                .map(|c| ((c.to - c.from) / ranges[c.feature].2).abs())
                .sum();
            if best.as_ref().map(|b| distance < b.distance).unwrap_or(true) {
                *best = Some(Counterfactual {
                    changes,
                    new_probability: p,
                    distance,
                });
            }
        }
        Ok(())
    }

    // single-feature search
    for &j in &mutable {
        for v in candidate_values(j) {
            if (v - row[j]).abs() < 1e-12 {
                continue;
            }
            let mut probe = row.to_vec();
            probe[j] = v;
            consider(
                model,
                &ranges,
                &flips,
                &mut best,
                vec![FeatureChange {
                    feature: j,
                    name: feature_names[j].to_string(),
                    from: row[j],
                    to: v,
                }],
                probe,
            )?;
        }
    }
    if best.is_some() {
        return Ok(best);
    }
    // two-feature search (coarser grid to bound cost)
    let coarse = |j: usize| -> Vec<f64> {
        let (lo, hi, _) = ranges[j];
        (0..=4).map(|g| lo + (hi - lo) * g as f64 / 4.0).collect()
    };
    for (a_pos, &ja) in mutable.iter().enumerate() {
        for &jb in mutable.iter().skip(a_pos + 1) {
            for va in coarse(ja) {
                for vb in coarse(jb) {
                    let mut probe = row.to_vec();
                    probe[ja] = va;
                    probe[jb] = vb;
                    consider(
                        model,
                        &ranges,
                        &flips,
                        &mut best,
                        vec![
                            FeatureChange {
                                feature: ja,
                                name: feature_names[ja].to_string(),
                                from: row[ja],
                                to: va,
                            },
                            FeatureChange {
                                feature: jb,
                                name: feature_names[jb].to_string(),
                                from: row[jb],
                                to: vb,
                            },
                        ],
                        probe,
                    )?;
                }
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_ml::logistic::{LogisticConfig, LogisticRegression};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn world() -> (LogisticRegression, Matrix) {
        // approve iff income − debt > 0 (scaled)
        let mut rng = StdRng::seed_from_u64(1);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..2000 {
            let income: f64 = rng.gen_range(0.0..100.0);
            let debt: f64 = rng.gen_range(0.0..100.0);
            rows.push(vec![income, debt]);
            y.push(income - debt > 0.0);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let m = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
        (m, x)
    }

    #[test]
    fn finds_single_feature_flip() {
        let (m, x) = world();
        // rejected subject: low income, high debt
        let cf = find_counterfactual(&m, &x, &[20.0, 70.0], &["income", "debt"], &[])
            .unwrap()
            .expect("flip exists");
        assert_eq!(cf.changes.len(), 1);
        assert!(cf.new_probability >= 0.5);
        // the proposal must move in the sensible direction
        let c = &cf.changes[0];
        if c.name == "income" {
            assert!(c.to > c.from);
        } else {
            assert!(c.to < c.from);
        }
        assert!(cf.render().contains("To flip the decision"));
    }

    #[test]
    fn respects_immutable_features() {
        let (m, x) = world();
        // forbid touching income: must flip via debt
        let cf = find_counterfactual(&m, &x, &[20.0, 70.0], &["income", "debt"], &[0])
            .unwrap()
            .expect("debt-only flip exists");
        assert!(cf.changes.iter().all(|c| c.name == "debt"));
    }

    #[test]
    fn flips_in_both_directions() {
        let (m, x) = world();
        // an approved subject: counterfactual should find a rejection
        let cf = find_counterfactual(&m, &x, &[90.0, 10.0], &["income", "debt"], &[])
            .unwrap()
            .expect("reverse flip exists");
        assert!(cf.new_probability < 0.5);
    }

    #[test]
    fn proposals_stay_plausible() {
        let (m, x) = world();
        let cf = find_counterfactual(&m, &x, &[1.0, 99.0], &["income", "debt"], &[])
            .unwrap()
            .expect("flip exists");
        for c in &cf.changes {
            assert!(
                (0.0..=100.0).contains(&c.to),
                "{} proposed outside data range: {}",
                c.name,
                c.to
            );
        }
    }

    #[test]
    fn returns_none_when_everything_is_immutable() {
        let (m, x) = world();
        let cf = find_counterfactual(&m, &x, &[20.0, 70.0], &["income", "debt"], &[0, 1]).unwrap();
        assert!(cf.is_none());
    }

    #[test]
    fn validation() {
        let (m, x) = world();
        assert!(find_counterfactual(&m, &x, &[1.0], &["income", "debt"], &[]).is_err());
        let tiny = Matrix::zeros(5, 2);
        assert!(find_counterfactual(&m, &tiny, &[1.0, 2.0], &["a", "b"], &[]).is_err());
    }
}
