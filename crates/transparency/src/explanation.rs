//! Per-decision explanations by ablation-to-baseline.
//!
//! For one decision, each feature's **contribution** is how much the model's
//! probability changes when that feature is replaced by its dataset-baseline
//! (mean) value. A decision subject gets "these three factors, in this
//! direction, drove your outcome" — the comprehensibility half of Q4 at the
//! level where GDPR-style explanation rights operate.

use fact_data::{FactError, Matrix, Result};
use fact_ml::Classifier;

/// One feature's contribution to one decision.
#[derive(Debug, Clone)]
pub struct Contribution {
    /// Feature name.
    pub name: String,
    /// Probability change when the feature is ablated to baseline
    /// (positive = this feature pushed the decision up).
    pub delta: f64,
    /// The subject's value.
    pub value: f64,
    /// The baseline it was compared against.
    pub baseline: f64,
}

/// A complete decision explanation.
#[derive(Debug, Clone)]
pub struct DecisionExplanation {
    /// The model's probability for this subject.
    pub probability: f64,
    /// The hard decision at 0.5.
    pub decision: bool,
    /// Contributions, sorted by |delta| descending.
    pub contributions: Vec<Contribution>,
}

impl DecisionExplanation {
    /// The top-k contributions.
    pub fn top(&self, k: usize) -> &[Contribution] {
        &self.contributions[..k.min(self.contributions.len())]
    }

    /// A plain-language rendering for the decision subject.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Decision: {} (score {:.2})\n",
            if self.decision {
                "POSITIVE"
            } else {
                "NEGATIVE"
            },
            self.probability
        );
        for c in self.top(3) {
            out.push_str(&format!(
                "  {} = {:.2} ({} the outcome by {:.3}; typical value {:.2})\n",
                c.name,
                c.value,
                if c.delta >= 0.0 { "raised" } else { "lowered" },
                c.delta.abs(),
                c.baseline,
            ));
        }
        out
    }
}

/// Explain `model`'s decision on `row` against baselines computed from
/// `background` (typically the training data).
pub fn explain_decision(
    model: &dyn Classifier,
    background: &Matrix,
    row: &[f64],
    feature_names: &[&str],
) -> Result<DecisionExplanation> {
    let d = background.cols();
    if row.len() != d || feature_names.len() != d {
        return Err(FactError::LengthMismatch {
            expected: d,
            actual: row.len().min(feature_names.len()),
        });
    }
    if background.rows() == 0 {
        return Err(FactError::EmptyData("empty background data".into()));
    }
    // baselines: column means of the background
    let mut baselines = vec![0.0; d];
    for i in 0..background.rows() {
        for (j, b) in baselines.iter_mut().enumerate() {
            *b += background.get(i, j);
        }
    }
    for b in baselines.iter_mut() {
        *b /= background.rows() as f64;
    }

    let base_row = Matrix::from_rows(&[row.to_vec()])?;
    let probability = model.predict_proba(&base_row)?[0];

    let mut contributions = Vec::with_capacity(d);
    for j in 0..d {
        let mut ablated = row.to_vec();
        ablated[j] = baselines[j];
        let m = Matrix::from_rows(&[ablated])?;
        let p_ablated = model.predict_proba(&m)?[0];
        contributions.push(Contribution {
            name: feature_names[j].to_string(),
            delta: probability - p_ablated,
            value: row[j],
            baseline: baselines[j],
        });
    }
    contributions.sort_by(|a, b| {
        b.delta
            .abs()
            .partial_cmp(&a.delta.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(DecisionExplanation {
        probability,
        decision: probability >= 0.5,
        contributions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_ml::logistic::{LogisticConfig, LogisticRegression};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn model_and_data() -> (LogisticRegression, Matrix) {
        // y driven by x0 strongly (positive), x1 negatively, x2 irrelevant
        let mut rng = StdRng::seed_from_u64(1);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..2000 {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            let c: f64 = rng.gen_range(-1.0..1.0);
            rows.push(vec![a, b, c]);
            y.push(2.5 * a - 1.5 * b > 0.0);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let m = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
        (m, x)
    }

    #[test]
    fn contribution_signs_match_the_mechanism() {
        let (m, x) = model_and_data();
        // subject with high x0 (helps) and high x1 (hurts)
        let exp = explain_decision(&m, &x, &[0.9, 0.9, 0.0], &["a", "b", "c"]).unwrap();
        let get = |name: &str| exp.contributions.iter().find(|c| c.name == name).unwrap();
        assert!(get("a").delta > 0.05, "a raised the score");
        assert!(get("b").delta < -0.05, "b lowered the score");
        assert!(get("c").delta.abs() < 0.02, "c irrelevant");
    }

    #[test]
    fn contributions_sorted_by_magnitude() {
        let (m, x) = model_and_data();
        let exp = explain_decision(&m, &x, &[0.8, -0.4, 0.9], &["a", "b", "c"]).unwrap();
        for w in exp.contributions.windows(2) {
            assert!(w[0].delta.abs() >= w[1].delta.abs());
        }
        assert_eq!(exp.top(2).len(), 2);
        assert_eq!(exp.top(99).len(), 3);
    }

    #[test]
    fn render_is_subject_readable() {
        let (m, x) = model_and_data();
        let exp = explain_decision(&m, &x, &[0.9, -0.9, 0.0], &["income", "debt", "age"]).unwrap();
        let text = exp.render();
        assert!(text.contains("Decision: POSITIVE"));
        assert!(text.contains("income"));
        assert!(text.contains("raised") || text.contains("lowered"));
    }

    #[test]
    fn validation() {
        let (m, x) = model_and_data();
        assert!(explain_decision(&m, &x, &[0.0, 0.0], &["a", "b", "c"]).is_err());
        assert!(explain_decision(&m, &x, &[0.0; 3], &["a", "b"]).is_err());
        let empty = Matrix::zeros(0, 3);
        assert!(explain_decision(&m, &empty, &[0.0; 3], &["a", "b", "c"]).is_err());
    }
}
