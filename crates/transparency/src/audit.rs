//! Tamper-evident audit log.
//!
//! Accountability (§2) needs more than a log — it needs a log whose
//! alteration is detectable. Entries form a hash chain: each entry's digest
//! covers its content *and* the previous digest, so edits, deletions, or
//! reordering anywhere in the middle break verification from that point on.
//!
//! Two shapes share one hashing rule: [`AuditLog`] holds a whole chain in
//! memory (offline audits), while [`ChainHead`] is the O(1) moving head a
//! durable writer carries — everything needed to extend the chain or check
//! continuity without the entries themselves. `fact-serve`'s audit sink
//! streams entries to disk through a `ChainHead` and re-derives it on
//! restart with [`verify_chain_from`].
//!
//! The digest is SHA-256 ([`mod@crate::sha256`]). Chain format **v2** (the
//! default since this revision) stores the full 256-bit digest, so link
//! forgery requires a second-preimage attack on SHA-256 and collision
//! resistance is the full 2¹²⁸. Format **v1** chains — everything written
//! before the bump — truncated the digest to its leading 64 bits; they
//! remain first-class: a [`Digest`] carries its width, old JSON (numeric
//! digests) deserializes as v1, and a v1 chain keeps extending and
//! verifying at v1 width. The width is fixed at genesis
//! ([`ChainHead::genesis`] vs [`ChainHead::genesis_v1`]) and inherited by
//! every subsequent link; mixed-width links never verify, because digests
//! of different widths are never equal.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::sha256::Sha256;

/// Chain format written by new chains: full-width SHA-256 digests.
pub const CHAIN_FORMAT_VERSION: u16 = 2;

/// A chain digest, tagged with its storage width.
///
/// `V1` is the legacy 64-bit truncated form (chain format v1); `V2` is the
/// full SHA-256. JSON keeps the two distinguishable — and v1 logs readable
/// — by writing `V1` as the same unsigned number it always was and `V2` as
/// a 64-character lowercase hex string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Digest {
    /// Leading 64 bits of SHA-256 (legacy chain format v1).
    V1(u64),
    /// Full 256-bit SHA-256 (chain format v2).
    V2([u8; 32]),
}

impl Digest {
    /// The genesis back-link of a v2 (full-width) chain.
    pub fn zero() -> Self {
        Digest::V2([0u8; 32])
    }

    /// The genesis back-link of a legacy v1 chain.
    pub fn zero_v1() -> Self {
        Digest::V1(0)
    }

    /// The chain-format version this digest's width belongs to.
    pub fn version(&self) -> u16 {
        match self {
            Digest::V1(_) => 1,
            Digest::V2(_) => 2,
        }
    }

    /// Whether this is a genesis back-link (all-zero, either width).
    pub fn is_zero(&self) -> bool {
        match self {
            Digest::V1(v) => *v == 0,
            Digest::V2(b) => b.iter().all(|&x| x == 0),
        }
    }

    /// Truncate (or keep) a raw SHA-256 digest to this digest's width.
    fn sibling_of(raw: [u8; 32], width: &Digest) -> Digest {
        match width {
            Digest::V1(_) => Digest::V1(u64::from_le_bytes(raw[..8].try_into().expect("32 bytes"))),
            Digest::V2(_) => Digest::V2(raw),
        }
    }

    /// Lowercase hex, width-length: 16 chars for v1, 64 for v2.
    pub fn to_hex(&self) -> String {
        match self {
            Digest::V1(v) => format!("{v:016x}"),
            Digest::V2(b) => b.iter().map(|x| format!("{x:02x}")).collect(),
        }
    }

    /// Parse hex produced by [`to_hex`](Self::to_hex); the string length
    /// (16 vs 64) selects the width. Anything else is `None`.
    pub fn from_hex(s: &str) -> Option<Digest> {
        match s.len() {
            16 => u64::from_str_radix(s, 16).ok().map(Digest::V1),
            64 => {
                let mut out = [0u8; 32];
                for (i, byte) in out.iter_mut().enumerate() {
                    *byte = u8::from_str_radix(s.get(2 * i..2 * i + 2)?, 16).ok()?;
                }
                Some(Digest::V2(out))
            }
            _ => None,
        }
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

// Hand-written (not derived) so the wire form stays compatible in both
// directions: v1 digests keep serializing as the bare number every
// pre-existing log and head sidecar stores, v2 digests are hex strings.
impl serde::Serialize for Digest {
    fn to_value(&self) -> serde::Value {
        match self {
            Digest::V1(v) => serde::Value::UInt(*v),
            Digest::V2(_) => serde::Value::String(self.to_hex()),
        }
    }
}

impl serde::Deserialize for Digest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::UInt(u) => Ok(Digest::V1(*u)),
            serde::Value::Int(i) if *i >= 0 => Ok(Digest::V1(*i as u64)),
            serde::Value::String(s) => Digest::from_hex(s)
                .ok_or_else(|| serde::Error::custom(format!("malformed digest hex '{s}'"))),
            other => Err(serde::Error::custom(format!(
                "expected digest number or hex string, got {other:?}"
            ))),
        }
    }
}

/// One audit-log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Sequence number (0-based).
    pub seq: u64,
    /// Who performed the action.
    pub actor: String,
    /// What was done.
    pub action: String,
    /// Free-form detail (parameters, affected records…).
    pub details: String,
    /// Digest of the previous entry (all-zero for the genesis entry).
    pub prev_hash: Digest,
    /// Digest of this entry (same width as `prev_hash`).
    pub hash: Digest,
}

/// An append-only, hash-chained audit log.
#[derive(Debug, Clone, Default, Serialize)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
}

fn entry_hash(seq: u64, actor: &str, action: &str, details: &str, prev: Digest) -> Digest {
    // Fixed-width fields first, then length-prefixed strings: the encoding
    // is injective, so no two distinct entries hash the same input bytes.
    // The previous digest is absorbed at its own width (8 bytes for v1 —
    // byte-identical to the pre-bump format, so old chains still verify —
    // 32 bytes for v2), and the output is truncated to the same width.
    let mut h = Sha256::new();
    match prev {
        Digest::V1(v) => {
            h.update(&v.to_le_bytes());
        }
        Digest::V2(b) => {
            h.update(&b);
        }
    }
    h.update(&seq.to_le_bytes());
    for s in [actor, action, details] {
        h.update(&(s.len() as u64).to_le_bytes());
        h.update(s.as_bytes());
    }
    Digest::sibling_of(h.finalize(), &prev)
}

/// The moving head of an audit hash chain: the sequence number the next
/// entry must carry and the digest it must link back to. A `ChainHead` is
/// all the state a streaming writer needs to extend a chain of any length,
/// and all a verifier needs to check that a later segment continues an
/// earlier one (e.g. across a process restart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainHead {
    /// Sequence number of the next entry to be appended.
    pub next_seq: u64,
    /// Digest the next entry must record as its `prev_hash` (all-zero at
    /// genesis). Its width fixes the chain's format for every later link.
    pub hash: Digest,
}

impl Default for ChainHead {
    fn default() -> Self {
        ChainHead::genesis()
    }
}

impl ChainHead {
    /// The head of an empty chain in the current (v2, full-width) format.
    pub fn genesis() -> Self {
        ChainHead {
            next_seq: 0,
            hash: Digest::zero(),
        }
    }

    /// The head of an empty chain in the legacy v1 (64-bit) format. Only
    /// needed to reproduce or extend chains written before the format
    /// bump; new chains should use [`genesis`](Self::genesis).
    pub fn genesis_v1() -> Self {
        ChainHead {
            next_seq: 0,
            hash: Digest::zero_v1(),
        }
    }

    /// The chain-format version this head's digest width belongs to.
    pub fn version(&self) -> u16 {
        self.hash.version()
    }

    /// Build the next chained entry and advance the head past it.
    pub fn extend(
        &mut self,
        actor: impl Into<String>,
        action: impl Into<String>,
        details: impl Into<String>,
    ) -> AuditEntry {
        let actor = actor.into();
        let action = action.into();
        let details = details.into();
        let hash = entry_hash(self.next_seq, &actor, &action, &details, self.hash);
        let entry = AuditEntry {
            seq: self.next_seq,
            actor,
            action,
            details,
            prev_hash: self.hash,
            hash,
        };
        self.next_seq += 1;
        self.hash = hash;
        entry
    }

    /// Whether `entry` correctly extends this head: right sequence number,
    /// right back-link, and a digest that matches its content.
    ///
    /// At genesis (seq 0, all-zero digest) the back-link check accepts a
    /// zero digest of **either width**: both encode "nothing before me",
    /// and accepting them interchangeably is what lets a v1 log recorded
    /// before the format bump verify from a plain [`genesis`] head. The
    /// chain's width is then fixed by the genesis entry itself and checked
    /// exactly on every later link.
    ///
    /// [`genesis`]: Self::genesis
    pub fn follows(&self, entry: &AuditEntry) -> bool {
        let back_link_ok = if self.next_seq == 0 && self.hash.is_zero() {
            entry.prev_hash.is_zero()
        } else {
            entry.prev_hash == self.hash
        };
        entry.seq == self.next_seq
            && back_link_ok
            && entry.hash
                == entry_hash(
                    entry.seq,
                    &entry.actor,
                    &entry.action,
                    &entry.details,
                    entry.prev_hash,
                )
    }

    /// The head after `entry` (which the caller has already checked with
    /// [`follows`](Self::follows), or trusts).
    pub fn advanced_past(entry: &AuditEntry) -> Self {
        ChainHead {
            next_seq: entry.seq + 1,
            hash: entry.hash,
        }
    }
}

/// Verify that `entries` forms an intact chain continuing `from`. Returns
/// the index (into `entries`) of the first entry that breaks the chain, or
/// `None` when the whole segment verifies.
pub fn verify_chain_from(from: ChainHead, entries: &[AuditEntry]) -> Option<usize> {
    let mut head = from;
    for (i, e) in entries.iter().enumerate() {
        if !head.follows(e) {
            return Some(i);
        }
        head = ChainHead::advanced_past(e);
    }
    None
}

// ---------------------------------------------------------------------------
// segment handoff records
// ---------------------------------------------------------------------------

/// The `action` every segment-handoff record carries. A rotated log writes
/// one of these as the first entry of each new segment: a normal chained
/// entry whose `details` restate the head it continues, so the segment
/// carries its own resume point and verifies standalone.
pub const SEGMENT_HANDOFF_ACTION: &str = "segment_handoff";

impl ChainHead {
    /// The canonical `details` payload of a handoff record that opens
    /// `segment` by continuing this head. The payload restates the head
    /// (`prev_seq`, `prev_hash`) so a verifier holding only the segment's
    /// bytes knows where the chain resumes — and because the details are
    /// covered by the entry's own digest, the claim is tamper-evident.
    pub fn handoff_details(&self, segment: u64) -> String {
        format!(
            "segment={segment} prev_seq={} prev_hash={}",
            self.next_seq,
            self.hash.to_hex()
        )
    }
}

/// Whether `entry` is a segment-handoff record (by action name; its claim
/// still has to check out via [`verify_segment_entries`]).
pub fn is_handoff(entry: &AuditEntry) -> bool {
    entry.action == SEGMENT_HANDOFF_ACTION
}

/// Parse a handoff `details` payload back into `(segment, claimed head)`.
/// Returns `None` when the payload is not in canonical form. The hex length
/// of `prev_hash` (16 vs 64 chars) carries the chain-format width, so v1
/// handoffs written before the bump parse back at v1 width.
pub fn parse_handoff_details(details: &str) -> Option<(u64, ChainHead)> {
    let mut segment = None;
    let mut prev_seq = None;
    let mut prev_hash = None;
    for field in details.split_whitespace() {
        let (key, value) = field.split_once('=')?;
        match key {
            "segment" => segment = Some(value.parse::<u64>().ok()?),
            "prev_seq" => prev_seq = Some(value.parse::<u64>().ok()?),
            "prev_hash" => prev_hash = Some(Digest::from_hex(value)?),
            _ => return None,
        }
    }
    Some((
        segment?,
        ChainHead {
            next_seq: prev_seq?,
            hash: prev_hash?,
        },
    ))
}

/// What standalone verification of one segment established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentCheck {
    /// The head the segment continues from: genesis for a segment that
    /// opens at sequence 0, or the handoff record's (verified) claim.
    pub start: ChainHead,
    /// The head after the segment's last entry — what the next segment's
    /// handoff must claim for the pair to be continuous.
    pub end: ChainHead,
    /// Entries the segment holds (including the handoff record itself).
    pub entries: u64,
    /// Segment id the handoff record claims to open; `None` for the
    /// genesis segment.
    pub handoff_segment: Option<u64>,
}

/// Why a segment failed standalone verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// The segment holds no entries at all.
    Empty,
    /// The first entry neither starts at genesis nor is a parseable
    /// handoff record — the segment carries no resume point.
    BadStart,
    /// The first entry is a handoff record whose claimed head does not
    /// match the entry's own chain position (or its digest is wrong).
    HandoffMismatch,
    /// The chain breaks at this entry index (0-based into the segment).
    ChainBreak(usize),
    /// The segment's byte tail did not parse into entries (torn write);
    /// the value is the index the intact prefix ends at.
    TornTail(usize),
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Empty => write!(f, "segment is empty"),
            SegmentError::BadStart => {
                write!(f, "first entry is neither genesis nor a handoff record")
            }
            SegmentError::HandoffMismatch => {
                write!(f, "handoff claim does not match the entry's chain position")
            }
            SegmentError::ChainBreak(i) => write!(f, "chain breaks at entry {i}"),
            SegmentError::TornTail(i) => write!(f, "torn bytes after entry {i}"),
        }
    }
}

/// Verify one segment **standalone**: establish its start head from its
/// own first entry (genesis, or a handoff record whose claim must match
/// the entry's chain position), then verify every entry from there. No
/// other segment is needed — this is what makes a rotated log's segments
/// independently checkable and recovery O(newest segment).
pub fn verify_segment_entries(entries: &[AuditEntry]) -> Result<SegmentCheck, SegmentError> {
    let first = entries.first().ok_or(SegmentError::Empty)?;
    let (start, handoff_segment) = if is_handoff(first) {
        let (segment, claim) =
            parse_handoff_details(&first.details).ok_or(SegmentError::BadStart)?;
        if !claim.follows(first) {
            return Err(SegmentError::HandoffMismatch);
        }
        (claim, Some(segment))
    } else if first.seq == 0 && first.prev_hash.is_zero() {
        // genesis at the entry's own width, so v1 and v2 segments both
        // verify standalone
        (
            ChainHead {
                next_seq: 0,
                hash: first.prev_hash,
            },
            None,
        )
    } else {
        return Err(SegmentError::BadStart);
    };
    if let Some(i) = verify_chain_from(start, entries) {
        return Err(SegmentError::ChainBreak(i));
    }
    Ok(SegmentCheck {
        start,
        end: ChainHead::advanced_past(entries.last().expect("non-empty")),
        entries: entries.len() as u64,
        handoff_segment,
    })
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an action; returns the new entry's digest.
    pub fn append(
        &mut self,
        actor: impl Into<String>,
        action: impl Into<String>,
        details: impl Into<String>,
    ) -> Digest {
        let mut head = self.head();
        let entry = head.extend(actor, action, details);
        let hash = entry.hash;
        self.entries.push(entry);
        hash
    }

    /// The chain head after the last entry (genesis for an empty log).
    pub fn head(&self) -> ChainHead {
        self.entries
            .last()
            .map(ChainHead::advanced_past)
            .unwrap_or_default()
    }

    /// All entries in order.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Verify the whole chain. Returns the index of the first corrupted
    /// entry, or `None` when the log is intact.
    pub fn verify(&self) -> Option<usize> {
        verify_chain_from(ChainHead::genesis(), &self.entries)
    }

    /// Export as JSON for external archiving.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.entries).expect("audit entries are serializable")
    }

    /// Mutable access for tamper simulations. Only compiled into this
    /// crate's own tests or under the opt-in `tamper` feature: the public
    /// API of a release build is append-only, so production code cannot
    /// silently break the chain.
    #[cfg(any(test, feature = "tamper"))]
    #[doc(hidden)]
    pub fn entries_mut(&mut self) -> &mut Vec<AuditEntry> {
        &mut self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> AuditLog {
        let mut log = AuditLog::new();
        log.append("pipeline", "load", "loans.csv rows=10000");
        log.append("ml-engineer", "train", "logistic seed=42");
        log.append("auditor", "fairness_audit", "di=0.78 verdict=UNFAIR");
        log.append("ml-engineer", "mitigate", "reweighing");
        log
    }

    #[test]
    fn intact_log_verifies() {
        assert_eq!(sample_log().verify(), None);
        assert_eq!(AuditLog::new().verify(), None);
    }

    #[test]
    fn edit_in_the_middle_is_detected() {
        let mut log = sample_log();
        log.entries_mut()[1].details = "logistic seed=41".into(); // falsify
        assert_eq!(log.verify(), Some(1));
    }

    #[test]
    fn deletion_is_detected() {
        let mut log = sample_log();
        log.entries_mut().remove(1);
        assert_eq!(log.verify(), Some(1));
    }

    #[test]
    fn reordering_is_detected() {
        let mut log = sample_log();
        log.entries_mut().swap(1, 2);
        assert_eq!(log.verify(), Some(1));
    }

    #[test]
    fn recomputed_hash_without_chain_still_detected() {
        // an attacker rewrites an entry AND fixes its own hash, but cannot
        // fix the next entry's prev_hash without rewriting the whole suffix
        let mut log = sample_log();
        let e = &mut log.entries_mut()[1];
        e.details = "logistic seed=41".into();
        e.hash = entry_hash(e.seq, &e.actor, &e.action, &e.details, e.prev_hash);
        assert_eq!(log.verify(), Some(2));
    }

    #[test]
    fn chain_links_prev_hashes() {
        let log = sample_log();
        for w in log.entries().windows(2) {
            assert_eq!(w[1].prev_hash, w[0].hash);
        }
        assert_eq!(log.entries()[0].prev_hash, Digest::zero());
    }

    #[test]
    fn json_export() {
        let log = sample_log();
        let json = log.to_json();
        assert!(json.contains("fairness_audit"));
        assert!(json.contains("prev_hash"));
        assert_eq!(log.len(), 4);
        assert!(!log.is_empty());
    }

    #[test]
    fn chain_head_extends_identically_to_append() {
        let log = sample_log();
        let mut head = ChainHead::genesis();
        for e in log.entries() {
            assert!(head.follows(e));
            let rebuilt = head.extend(e.actor.clone(), e.action.clone(), e.details.clone());
            assert_eq!(&rebuilt, e);
        }
        assert_eq!(head, log.head());
        assert_eq!(AuditLog::new().head(), ChainHead::genesis());
    }

    #[test]
    fn verify_chain_from_checks_continuity_across_a_split() {
        let log = sample_log();
        let (a, b) = log.entries().split_at(2);
        assert_eq!(verify_chain_from(ChainHead::genesis(), a), None);
        let mid = ChainHead::advanced_past(&a[1]);
        assert_eq!(verify_chain_from(mid, b), None);
        // the wrong resume point is rejected at the first entry
        assert_eq!(verify_chain_from(ChainHead::genesis(), b), Some(0));
    }

    // ----- segment handoff records -----

    /// Split a chain into two "segments", opening the second with a
    /// handoff record, the way a rotating writer does.
    fn segmented_chain() -> (Vec<AuditEntry>, Vec<AuditEntry>) {
        let mut head = ChainHead::genesis();
        let seg0: Vec<AuditEntry> = (0..4)
            .map(|i| head.extend("writer", "append", format!("n={i}")))
            .collect();
        let claim = head;
        let mut seg1 =
            vec![head.extend("writer", SEGMENT_HANDOFF_ACTION, claim.handoff_details(1))];
        seg1.extend((4..7).map(|i| head.extend("writer", "append", format!("n={i}"))));
        (seg0, seg1)
    }

    #[test]
    fn handoff_details_round_trip() {
        // legacy v1 head: 16-char hex parses back at v1 width
        let head = ChainHead {
            next_seq: 42,
            hash: Digest::V1(0xdead_beef_0123_4567),
        };
        let details = head.handoff_details(3);
        assert!(details.contains("prev_hash=deadbeef01234567"));
        assert_eq!(parse_handoff_details(&details), Some((3, head)));
        // v2 head: 64-char hex parses back at full width
        let mut raw = [0u8; 32];
        raw[0] = 0xab;
        raw[31] = 0x01;
        let head2 = ChainHead {
            next_seq: 7,
            hash: Digest::V2(raw),
        };
        assert_eq!(
            parse_handoff_details(&head2.handoff_details(9)),
            Some((9, head2))
        );
        assert_eq!(parse_handoff_details("segment=1 prev_seq=x"), None);
        assert_eq!(parse_handoff_details("garbage"), None);
        assert_eq!(parse_handoff_details("segment=1 prev_seq=2"), None);
        // wrong-length hex is rejected
        assert_eq!(
            parse_handoff_details("segment=1 prev_seq=2 prev_hash=abc"),
            None
        );
    }

    #[test]
    fn each_segment_verifies_standalone_and_the_pair_is_continuous() {
        let (seg0, seg1) = segmented_chain();
        let c0 = verify_segment_entries(&seg0).unwrap();
        assert_eq!(c0.start, ChainHead::genesis());
        assert_eq!(c0.handoff_segment, None);
        assert_eq!(c0.entries, 4);
        let c1 = verify_segment_entries(&seg1).unwrap();
        assert_eq!(c1.handoff_segment, Some(1));
        assert_eq!(c1.start, c0.end, "handoff claim stitches the segments");
        assert!(is_handoff(&seg1[0]) && !is_handoff(&seg0[0]));
        // the concatenation is still one plain chain from genesis
        let all: Vec<AuditEntry> = seg0.iter().chain(&seg1).cloned().collect();
        assert_eq!(verify_chain_from(ChainHead::genesis(), &all), None);
    }

    #[test]
    fn segment_faults_are_classified() {
        let (seg0, mut seg1) = segmented_chain();
        assert_eq!(verify_segment_entries(&[]), Err(SegmentError::Empty));
        // a segment starting mid-chain without a handoff carries no
        // resume point
        assert_eq!(
            verify_segment_entries(&seg0[2..]),
            Err(SegmentError::BadStart)
        );
        // a handoff whose details were rewritten (claim no longer matches
        // the entry's own position) is caught even though the rest chains
        let mut forged = seg1.clone();
        forged[0].details = ChainHead {
            next_seq: 99,
            hash: Digest::V1(7),
        }
        .handoff_details(1);
        assert!(matches!(
            verify_segment_entries(&forged),
            // rewriting details breaks the entry digest first; a forged
            // digest would then trip the claim check
            Err(SegmentError::ChainBreak(0) | SegmentError::HandoffMismatch)
        ));
        // tamper deep in the segment: caught at that index, standalone
        seg1[2].details = "n=999".into();
        assert_eq!(
            verify_segment_entries(&seg1),
            Err(SegmentError::ChainBreak(2))
        );
    }

    #[test]
    fn forged_handoff_with_recomputed_hash_is_a_mismatch() {
        let (_, mut seg1) = segmented_chain();
        let wrong = ChainHead {
            next_seq: seg1[0].seq,
            hash: Digest::V2([0x12; 32]),
        };
        seg1[0].details = wrong.handoff_details(1);
        seg1[0].hash = entry_hash(
            seg1[0].seq,
            &seg1[0].actor,
            &seg1[0].action,
            &seg1[0].details,
            seg1[0].prev_hash,
        );
        // its own digest now verifies, but the claim disagrees with the
        // entry's actual back-link
        assert_eq!(
            verify_segment_entries(&seg1[..1]),
            Err(SegmentError::HandoffMismatch)
        );
    }

    // ----- chain format v1/v2 compatibility -----

    #[test]
    fn new_chains_are_full_width() {
        let log = sample_log();
        assert_eq!(log.head().version(), CHAIN_FORMAT_VERSION);
        for e in log.entries() {
            assert!(matches!(e.hash, Digest::V2(_)));
        }
        // and the stored form is a 64-char hex string
        let json = log.to_json();
        assert!(json.contains(&log.entries()[0].hash.to_hex()));
    }

    #[test]
    fn v1_chain_extends_and_verifies_at_v1_width() {
        let mut head = ChainHead::genesis_v1();
        let entries: Vec<AuditEntry> = (0..5)
            .map(|i| head.extend("legacy", "append", format!("n={i}")))
            .collect();
        assert_eq!(head.version(), 1);
        for e in &entries {
            assert!(matches!(e.hash, Digest::V1(_)));
        }
        // verifies from a v1 genesis, and from the default (v2) genesis via
        // the width-flexible zero back-link
        assert_eq!(verify_chain_from(ChainHead::genesis_v1(), &entries), None);
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
        // a v1 segment verifies standalone at v1 width
        let check = verify_segment_entries(&entries).unwrap();
        assert_eq!(check.start, ChainHead::genesis_v1());
        assert_eq!(check.end.version(), 1);
    }

    #[test]
    fn v1_digests_keep_their_numeric_wire_form() {
        // the exact JSON shape every pre-bump log stores: digests as bare
        // unsigned numbers
        let mut head = ChainHead::genesis_v1();
        let e = head.extend("legacy", "load", "rows=3");
        let json = serde_json::to_string(&e).expect("serializable");
        let Digest::V1(h) = e.hash else {
            panic!("v1 chain produced a non-v1 digest")
        };
        assert!(json.contains(&format!("\"hash\":{h}")));
        // and it reads back identically
        let back: AuditEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        // a pre-bump head sidecar (numeric hash) also still reads
        let sidecar = format!("{{\"next_seq\":1,\"hash\":{h}}}");
        let parsed: ChainHead = serde_json::from_str(&sidecar).unwrap();
        assert_eq!(parsed, head);
    }

    #[test]
    fn mixed_width_links_never_verify() {
        // a v2 entry cannot claim to extend a v1 head (and vice versa),
        // because digests of different widths are never equal
        let mut v1 = ChainHead::genesis_v1();
        v1.extend("w", "a", "x");
        let mut v2 = ChainHead::genesis();
        let e2 = v2.extend("w", "a", "y");
        assert!(!v1.follows(&e2));
    }

    #[test]
    fn digest_hex_round_trips() {
        let d1 = Digest::V1(0x0123_4567_89ab_cdef);
        assert_eq!(Digest::from_hex(&d1.to_hex()), Some(d1));
        let d2 = Digest::V2(core::array::from_fn(|i| i as u8));
        assert_eq!(d2.to_hex().len(), 64);
        assert_eq!(Digest::from_hex(&d2.to_hex()), Some(d2));
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex(&"f".repeat(63)), None);
        assert!(Digest::zero().is_zero() && Digest::zero_v1().is_zero());
        assert_ne!(Digest::zero(), Digest::zero_v1());
    }

    // ----- property tests: tamper detection over random logs and ops -----

    use proptest::prelude::*;

    fn build_log(rows: &[(String, String, String)]) -> AuditLog {
        let mut log = AuditLog::new();
        for (actor, action, details) in rows {
            log.append(actor.clone(), action.clone(), details.clone());
        }
        log
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The public API is append-only: no sequence of appends can
        /// produce a log that fails verification, and the head always
        /// matches the last entry.
        #[test]
        fn public_api_alone_cannot_break_the_chain(
            rows in prop::collection::vec(
                ("[a-z]{1,8}", "[a-z]{1,8}", "[a-z0-9]{0,16}"), 0..24),
        ) {
            let log = build_log(&rows);
            prop_assert_eq!(log.verify(), None);
            prop_assert_eq!(log.head().next_seq, rows.len() as u64);
            if let Some(last) = log.entries().last() {
                prop_assert_eq!(log.head().hash, last.hash);
            }
        }

        /// Any single-entry mutation, deletion, or reordering is caught at
        /// or before the tampered index; tail truncation (which in-memory
        /// verification alone cannot see) is caught by the recorded head.
        #[test]
        fn any_single_tamper_is_caught(
            rows in prop::collection::vec(
                ("[a-z]{1,8}", "[a-z]{1,8}", "[a-z0-9]{0,16}"), 2..20),
            op_sel in 0usize..5,
            raw_i in 0usize..1000,
            raw_j in 0usize..1000,
        ) {
            let mut log = build_log(&rows);
            let head_before = log.head();
            let n = log.len();
            let i = raw_i % n;
            // plain mutation/deletion/reordering must be caught AT the
            // tampered index or earlier; a recomputed-hash rewrite is only
            // betrayed by the NEXT entry's back-link (+1)
            let mut slack = 0usize;
            let tampered_at = match op_sel {
                0 => {
                    log.entries_mut()[i].details.push('!');
                    i
                }
                1 => {
                    log.entries_mut()[i].actor = "mallory".into();
                    i
                }
                2 => {
                    // rewrite an entry AND recompute its own hash: the next
                    // entry's dangling prev_hash betrays it (or, for the
                    // last entry, the recorded head does)
                    let e = &mut log.entries_mut()[i];
                    e.details.push('!');
                    e.hash = entry_hash(e.seq, &e.actor, &e.action, &e.details, e.prev_hash);
                    slack = 1;
                    i
                }
                3 => {
                    log.entries_mut().remove(i);
                    i
                }
                _ => {
                    let j = raw_j % n;
                    prop_assume!(i != j);
                    log.entries_mut().swap(i, j);
                    i.min(j)
                }
            };
            let caught = log.verify();
            match caught {
                Some(at) => prop_assert!(
                    at <= tampered_at + slack,
                    "caught at {at}, tampered at {tampered_at} (slack {slack})"
                ),
                None => {
                    // only a chain-consistent suffix rewrite can slip past
                    // verify(); the recorded head still exposes it
                    prop_assert!(
                        log.head() != head_before,
                        "tamper op {op_sel} at {tampered_at} invisible to both \
                         verify() and the recorded head"
                    );
                }
            }
        }
    }
}
