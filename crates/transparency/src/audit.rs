//! Tamper-evident audit log.
//!
//! Accountability (§2) needs more than a log — it needs a log whose
//! alteration is detectable. Entries form a hash chain: each entry's digest
//! covers its content *and* the previous digest, so edits, deletions, or
//! reordering anywhere in the middle break verification from that point on.
//!
//! The digest is a 64-bit mixing hash — adequate for demonstrating the
//! mechanism and for accidental-corruption detection; a production
//! deployment would swap in SHA-256 behind the same interface (noted in
//! DESIGN.md).

use serde::Serialize;

/// One audit-log entry.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AuditEntry {
    /// Sequence number (0-based).
    pub seq: u64,
    /// Who performed the action.
    pub actor: String,
    /// What was done.
    pub action: String,
    /// Free-form detail (parameters, affected records…).
    pub details: String,
    /// Digest of the previous entry (0 for the genesis entry).
    pub prev_hash: u64,
    /// Digest of this entry.
    pub hash: u64,
}

/// An append-only, hash-chained audit log.
#[derive(Debug, Clone, Default, Serialize)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
}

fn mix(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    // splitmix64 finalizer
    h = h.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn entry_hash(seq: u64, actor: &str, action: &str, details: &str, prev: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ prev;
    h = mix(h, &seq.to_le_bytes());
    h = mix(h, actor.as_bytes());
    h = mix(h, &[0x1f]);
    h = mix(h, action.as_bytes());
    h = mix(h, &[0x1f]);
    h = mix(h, details.as_bytes());
    h
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an action; returns the new entry's digest.
    pub fn append(
        &mut self,
        actor: impl Into<String>,
        action: impl Into<String>,
        details: impl Into<String>,
    ) -> u64 {
        let seq = self.entries.len() as u64;
        let prev_hash = self.entries.last().map(|e| e.hash).unwrap_or(0);
        let actor = actor.into();
        let action = action.into();
        let details = details.into();
        let hash = entry_hash(seq, &actor, &action, &details, prev_hash);
        self.entries.push(AuditEntry {
            seq,
            actor,
            action,
            details,
            prev_hash,
            hash,
        });
        hash
    }

    /// All entries in order.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Verify the whole chain. Returns the index of the first corrupted
    /// entry, or `None` when the log is intact.
    pub fn verify(&self) -> Option<usize> {
        let mut prev = 0u64;
        for (i, e) in self.entries.iter().enumerate() {
            if e.seq != i as u64 || e.prev_hash != prev {
                return Some(i);
            }
            let expect = entry_hash(e.seq, &e.actor, &e.action, &e.details, e.prev_hash);
            if expect != e.hash {
                return Some(i);
            }
            prev = e.hash;
        }
        None
    }

    /// Export as JSON for external archiving.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.entries).expect("audit entries are serializable")
    }

    /// Test-only access for tamper simulations.
    #[doc(hidden)]
    pub fn entries_mut(&mut self) -> &mut Vec<AuditEntry> {
        &mut self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> AuditLog {
        let mut log = AuditLog::new();
        log.append("pipeline", "load", "loans.csv rows=10000");
        log.append("ml-engineer", "train", "logistic seed=42");
        log.append("auditor", "fairness_audit", "di=0.78 verdict=UNFAIR");
        log.append("ml-engineer", "mitigate", "reweighing");
        log
    }

    #[test]
    fn intact_log_verifies() {
        assert_eq!(sample_log().verify(), None);
        assert_eq!(AuditLog::new().verify(), None);
    }

    #[test]
    fn edit_in_the_middle_is_detected() {
        let mut log = sample_log();
        log.entries_mut()[1].details = "logistic seed=41".into(); // falsify
        assert_eq!(log.verify(), Some(1));
    }

    #[test]
    fn deletion_is_detected() {
        let mut log = sample_log();
        log.entries_mut().remove(1);
        assert_eq!(log.verify(), Some(1));
    }

    #[test]
    fn reordering_is_detected() {
        let mut log = sample_log();
        log.entries_mut().swap(1, 2);
        assert_eq!(log.verify(), Some(1));
    }

    #[test]
    fn recomputed_hash_without_chain_still_detected() {
        // an attacker rewrites an entry AND fixes its own hash, but cannot
        // fix the next entry's prev_hash without rewriting the whole suffix
        let mut log = sample_log();
        let e = &mut log.entries_mut()[1];
        e.details = "logistic seed=41".into();
        e.hash = entry_hash(e.seq, &e.actor, &e.action, &e.details, e.prev_hash);
        assert_eq!(log.verify(), Some(2));
    }

    #[test]
    fn chain_links_prev_hashes() {
        let log = sample_log();
        for w in log.entries().windows(2) {
            assert_eq!(w[1].prev_hash, w[0].hash);
        }
        assert_eq!(log.entries()[0].prev_hash, 0);
    }

    #[test]
    fn json_export() {
        let log = sample_log();
        let json = log.to_json();
        assert!(json.contains("fairness_audit"));
        assert!(json.contains("prev_hash"));
        assert_eq!(log.len(), 4);
        assert!(!log.is_empty());
    }
}
