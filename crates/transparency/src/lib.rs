//! # fact-transparency — the Transparency pillar (Q4)
//!
//! "Data science that provides transparency — how to clarify answers so that
//! they become indisputable?" (van der Aalst et al. 2017, §2). The paper
//! decomposes this into two demands:
//!
//! 1. **Accountability of the pipeline** — "the journey from raw data to
//!    meaningful inferences involves multiple steps and actors":
//!    * [`provenance`] — a DAG recording every artifact, operation, and actor
//!      from raw data to decision, with lineage queries;
//!    * [`audit`] — a tamper-evident (hash-chained) audit log of actions;
//!    * [`mod@sha256`] — std-only SHA-256 (FIPS 180-4) backing the chain
//!      digest.
//! 2. **Comprehensibility of the model** — deep nets are "a black box that
//!    apparently makes good decisions, but cannot rationalize them":
//!    * [`surrogate`] — global surrogate decision trees with measured
//!      fidelity to the black box (experiment E7);
//!    * [`importance`] — permutation feature importance;
//!    * [`explanation`] — per-decision contribution breakdowns;
//!    * [`counterfactual`] — minimal actionable changes that flip a decision;
//!    * [`modelcard`] — machine-readable model cards and dataset datasheets.

#![warn(missing_docs)]

pub mod audit;
pub mod counterfactual;
pub mod explanation;
pub mod importance;
pub mod modelcard;
pub mod provenance;
pub mod sha256;
pub mod surrogate;

pub use audit::{
    is_handoff, parse_handoff_details, verify_chain_from, verify_segment_entries, AuditEntry,
    AuditLog, ChainHead, Digest, SegmentCheck, SegmentError, CHAIN_FORMAT_VERSION,
    SEGMENT_HANDOFF_ACTION,
};
pub use provenance::ProvenanceGraph;
pub use sha256::{sha256, Sha256};
pub use surrogate::SurrogateExplainer;
