//! Model cards and dataset datasheets — machine-readable accountability
//! artifacts.
//!
//! §4 of the paper asks how "FACT elements \[can\] be embedded in our
//! requirements". A model card is that embedding at the artifact level: a
//! structured record of what a model is for, what it was trained on, how
//! accurate and how fair it measured, and what it must not be used for. Both
//! structures serialize to JSON for registries and audits.

use serde::{Deserialize, Serialize};

use fact_data::{Dataset, FactError, Result};

/// A metric entry on a card.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CardMetric {
    /// Metric name, e.g. `"accuracy"` or `"disparate_impact"`.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Slice it was measured on, e.g. `"test"` or `"group=B"`.
    pub slice: String,
}

/// A model card (Mitchell et al. 2019, adapted to FACT).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ModelCard {
    /// Model name.
    pub name: String,
    /// Version string.
    pub version: String,
    /// What the model is intended to do.
    pub intended_use: String,
    /// Uses the model must not be put to.
    pub out_of_scope_uses: Vec<String>,
    /// Description of the training data.
    pub training_data: String,
    /// Quality and fairness measurements.
    pub metrics: Vec<CardMetric>,
    /// Known caveats, risks, and failure modes.
    pub caveats: Vec<String>,
    /// Sensitive attributes considered in the fairness evaluation.
    pub sensitive_attributes: Vec<String>,
}

impl ModelCard {
    /// Start a card.
    pub fn new(name: impl Into<String>, version: impl Into<String>) -> Self {
        ModelCard {
            name: name.into(),
            version: version.into(),
            ..ModelCard::default()
        }
    }

    /// Add one metric measurement.
    pub fn with_metric(
        mut self,
        name: impl Into<String>,
        value: f64,
        slice: impl Into<String>,
    ) -> Self {
        self.metrics.push(CardMetric {
            name: name.into(),
            value,
            slice: slice.into(),
        });
        self
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| FactError::InvalidArgument(format!("model card serialization: {e}")))
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| FactError::Parse {
            line: 0,
            message: format!("model card: {e}"),
        })
    }

    /// A card is *complete* when the fields an auditor needs are non-empty.
    pub fn completeness_issues(&self) -> Vec<String> {
        let mut issues = Vec::new();
        if self.intended_use.is_empty() {
            issues.push("intended_use is empty".into());
        }
        if self.training_data.is_empty() {
            issues.push("training_data is undocumented".into());
        }
        if self.metrics.is_empty() {
            issues.push("no metrics recorded".into());
        }
        if self.sensitive_attributes.is_empty() {
            issues.push("sensitive attributes not declared".into());
        }
        issues
    }
}

/// A datasheet for a dataset (Gebru et al. 2018, abbreviated).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Datasheet {
    /// Dataset name.
    pub name: String,
    /// Why and by whom it was collected.
    pub motivation: String,
    /// Row count.
    pub n_rows: usize,
    /// Per-column name/type/annotation summary.
    pub columns: Vec<DatasheetColumn>,
    /// Known collection biases or gaps.
    pub known_biases: Vec<String>,
}

/// One column's entry in a datasheet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasheetColumn {
    /// Column name.
    pub name: String,
    /// Logical type.
    pub dtype: String,
    /// Flagged sensitive in the schema.
    pub sensitive: bool,
    /// Flagged quasi-identifier in the schema.
    pub quasi_identifier: bool,
    /// Null count.
    pub nulls: usize,
}

impl Datasheet {
    /// Generate a datasheet skeleton directly from a dataset's schema —
    /// annotations travel with the data automatically.
    pub fn from_dataset(name: impl Into<String>, ds: &Dataset) -> Self {
        let columns = ds
            .schema()
            .fields()
            .iter()
            .map(|f| DatasheetColumn {
                name: f.name.clone(),
                dtype: f.dtype.to_string(),
                sensitive: f.sensitive,
                quasi_identifier: f.quasi_identifier,
                nulls: ds.column(&f.name).map(|c| c.null_count()).unwrap_or(0),
            })
            .collect();
        Datasheet {
            name: name.into(),
            motivation: String::new(),
            n_rows: ds.n_rows(),
            columns,
            known_biases: Vec::new(),
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| FactError::InvalidArgument(format!("datasheet serialization: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn card_round_trips_through_json() {
        let card = ModelCard::new("loan-approver", "1.2.0")
            .with_metric("accuracy", 0.87, "test")
            .with_metric("disparate_impact", 0.83, "group=B vs A");
        let json = card.to_json().unwrap();
        let back = ModelCard::from_json(&json).unwrap();
        assert_eq!(card, back);
        assert!(json.contains("disparate_impact"));
    }

    #[test]
    fn completeness_audit() {
        let empty = ModelCard::new("m", "0.1");
        let issues = empty.completeness_issues();
        assert_eq!(issues.len(), 4);
        let mut full = ModelCard::new("m", "0.1").with_metric("acc", 0.9, "test");
        full.intended_use = "demo".into();
        full.training_data = "synthetic loans".into();
        full.sensitive_attributes = vec!["group".into()];
        assert!(full.completeness_issues().is_empty());
    }

    #[test]
    fn bad_json_is_a_parse_error() {
        assert!(matches!(
            ModelCard::from_json("{nope"),
            Err(FactError::Parse { .. })
        ));
    }

    #[test]
    fn datasheet_reflects_schema_annotations() {
        let ds = Dataset::builder()
            .f64_opt("income", vec![Some(1.0), None])
            .cat("gender", &["m", "f"])
            .sensitive()
            .cat("zip", &["a", "b"])
            .quasi_identifier()
            .build()
            .unwrap();
        let sheet = Datasheet::from_dataset("people", &ds);
        assert_eq!(sheet.n_rows, 2);
        assert_eq!(sheet.columns.len(), 3);
        assert!(sheet.columns[1].sensitive);
        assert!(sheet.columns[2].quasi_identifier);
        assert_eq!(sheet.columns[0].nulls, 1);
        assert!(sheet.to_json().unwrap().contains("quasi_identifier"));
    }
}
