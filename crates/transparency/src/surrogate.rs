//! Global surrogate explanation of black-box models.
//!
//! "In several domains, [an unexplainable black box] is unacceptable" (§2).
//! A surrogate is an interpretable decision tree trained to *mimic the black
//! box's predictions* (not the ground truth). Its **fidelity** — agreement
//! with the black box on held-out data — quantifies exactly how much of the
//! black box the human-readable explanation captures; experiment E7 traces
//! the fidelity-vs-depth curve.

use fact_data::{FactError, Matrix, Result};
use fact_ml::tree::{DecisionTree, TreeConfig};
use fact_ml::Classifier;

/// A fitted surrogate explainer.
#[derive(Debug, Clone)]
pub struct SurrogateExplainer {
    tree: DecisionTree,
    fidelity: f64,
    feature_names: Vec<String>,
}

impl SurrogateExplainer {
    /// Distill `black_box` into a depth-limited tree using `x_train` for
    /// fitting and `x_eval` for the fidelity measurement (they should be
    /// disjoint for an honest number).
    pub fn distill(
        black_box: &dyn Classifier,
        x_train: &Matrix,
        x_eval: &Matrix,
        feature_names: &[&str],
        max_depth: usize,
    ) -> Result<Self> {
        if feature_names.len() != x_train.cols() {
            return Err(FactError::LengthMismatch {
                expected: x_train.cols(),
                actual: feature_names.len(),
            });
        }
        let bb_train = black_box.predict(x_train)?;
        let tree = DecisionTree::fit_to_predictions(
            x_train,
            &bb_train,
            &TreeConfig {
                max_depth,
                min_samples_split: 10,
                min_samples_leaf: 3,
            },
        )?;
        let bb_eval = black_box.predict(x_eval)?;
        let sur_eval = tree.predict(x_eval)?;
        let agree = bb_eval
            .iter()
            .zip(&sur_eval)
            .filter(|(a, b)| a == b)
            .count();
        Ok(SurrogateExplainer {
            tree,
            fidelity: agree as f64 / bb_eval.len().max(1) as f64,
            feature_names: feature_names.iter().map(|s| s.to_string()).collect(),
        })
    }

    /// Fraction of evaluation rows where the surrogate reproduces the black
    /// box's decision.
    pub fn fidelity(&self) -> f64 {
        self.fidelity
    }

    /// The underlying interpretable tree.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// Human-readable explanation of the surrogate's decision for one row:
    /// the rule path plus the leaf probability.
    pub fn explain_row(&self, row: &[f64]) -> Result<String> {
        let (path, prob) = self.tree.decision_path(row)?;
        let mut parts: Vec<String> = path.iter().map(|c| c.render(&self.feature_names)).collect();
        if parts.is_empty() {
            parts.push("(no conditions: constant model)".into());
        }
        Ok(format!(
            "IF {} THEN P(positive) = {prob:.2}",
            parts.join(" AND ")
        ))
    }

    /// All global rules of the surrogate, rendered.
    pub fn rules(&self) -> Vec<String> {
        self.tree
            .rules()
            .into_iter()
            .map(|(conds, prob, n)| {
                let body = if conds.is_empty() {
                    "(always)".to_string()
                } else {
                    conds
                        .iter()
                        .map(|c| c.render(&self.feature_names))
                        .collect::<Vec<_>>()
                        .join(" AND ")
                };
                format!("IF {body} THEN P(positive) = {prob:.2}  [n={n}]")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_ml::mlp::{Mlp, MlpConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn xor_world(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            rows.push(vec![a, b]);
            y.push((a > 0.0) ^ (b > 0.0));
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    fn black_box() -> (Mlp, Matrix, Matrix) {
        let (x, y) = xor_world(1500, 1);
        let (x_eval, _) = xor_world(500, 2);
        let mlp = Mlp::fit(
            &x,
            &y,
            &MlpConfig {
                epochs: 120,
                ..MlpConfig::default()
            },
        )
        .unwrap();
        (mlp, x, x_eval)
    }

    #[test]
    fn deep_surrogate_is_faithful_to_the_black_box() {
        let (mlp, x, x_eval) = black_box();
        let sur = SurrogateExplainer::distill(&mlp, &x, &x_eval, &["a", "b"], 6).unwrap();
        assert!(
            sur.fidelity() > 0.9,
            "depth-6 tree should mimic the XOR MLP: {}",
            sur.fidelity()
        );
    }

    #[test]
    fn fidelity_grows_with_depth() {
        let (mlp, x, x_eval) = black_box();
        let f = |d: usize| {
            SurrogateExplainer::distill(&mlp, &x, &x_eval, &["a", "b"], d)
                .unwrap()
                .fidelity()
        };
        // Depth 1 cannot express XOR; depth 6 can. Intermediate depths are
        // not asserted on: every root split of XOR has near-zero gain, so
        // greedy CART's early splits are sampling-noise-driven and how fast
        // fidelity recovers depends on the RNG sample (see KNOWN_ISSUES.md).
        let f1 = f(1);
        let f6 = f(6);
        assert!(
            f6 > f1 + 0.1,
            "XOR needs depth ≥ 2: depth1 {f1:.3} vs depth6 {f6:.3}"
        );
    }

    #[test]
    fn explanations_are_readable_rules() {
        let (mlp, x, x_eval) = black_box();
        let sur = SurrogateExplainer::distill(&mlp, &x, &x_eval, &["a", "b"], 4).unwrap();
        let text = sur.explain_row(&[0.5, -0.5]).unwrap();
        assert!(text.starts_with("IF "));
        assert!(text.contains("THEN P(positive)"));
        assert!(text.contains('a') || text.contains('b'));
        let rules = sur.rules();
        assert!(!rules.is_empty());
        assert!(rules.iter().all(|r| r.contains("[n=")));
    }

    #[test]
    fn validation() {
        let (mlp, x, x_eval) = black_box();
        assert!(SurrogateExplainer::distill(&mlp, &x, &x_eval, &["only_one"], 4).is_err());
    }
}
