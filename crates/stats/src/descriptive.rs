//! Descriptive statistics on `f64` slices.

use fact_data::{FactError, Result};

/// Arithmetic mean. Errors on empty input.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(FactError::EmptyData("mean of empty slice".into()));
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Sample variance (n−1 denominator). Errors with fewer than 2 values.
pub fn variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(FactError::EmptyData(
            "variance requires at least 2 values".into(),
        ));
    }
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Median (average of middle two for even lengths).
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Linear-interpolated quantile, `q ∈ [0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(FactError::EmptyData("quantile of empty slice".into()));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(FactError::InvalidArgument(format!(
            "quantile level must be in [0, 1], got {q}"
        )));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Sample covariance (n−1 denominator).
pub fn covariance(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(FactError::LengthMismatch {
            expected: xs.len(),
            actual: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(FactError::EmptyData(
            "covariance requires at least 2 pairs".into(),
        ));
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    Ok(xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / (xs.len() - 1) as f64)
}

/// Pearson product-moment correlation. Errors when either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    let cov = covariance(xs, ys)?;
    let sx = std_dev(xs)?;
    let sy = std_dev(ys)?;
    if sx < 1e-300 || sy < 1e-300 {
        return Err(FactError::Numeric(
            "correlation undefined for a constant variable".into(),
        ));
    }
    Ok((cov / (sx * sy)).clamp(-1.0, 1.0))
}

/// Spearman rank correlation (average ranks for ties).
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(FactError::LengthMismatch {
            expected: xs.len(),
            actual: ys.len(),
        });
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Fractional ranks (1-based; ties share their average rank).
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Fisher–Pearson sample skewness (adjusted).
pub fn skewness(xs: &[f64]) -> Result<f64> {
    let n = xs.len();
    if n < 3 {
        return Err(FactError::EmptyData(
            "skewness requires at least 3 values".into(),
        ));
    }
    let m = mean(xs)?;
    let s = std_dev(xs)?;
    if s < 1e-300 {
        return Err(FactError::Numeric("skewness of constant data".into()));
    }
    let nf = n as f64;
    let m3 = xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>();
    Ok(nf / ((nf - 1.0) * (nf - 2.0)) * m3)
}

/// Proportion of `true` values.
pub fn proportion(bs: &[bool]) -> Result<f64> {
    if bs.is_empty() {
        return Err(FactError::EmptyData("proportion of empty slice".into()));
    }
    Ok(bs.iter().filter(|&&b| b).count() as f64 / bs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs).unwrap(), 5.0);
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!(mean(&[]).is_err());
        assert!(variance(&[1.0]).is_err());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_eq!(median(&xs).unwrap(), 2.5);
        assert_eq!(quantile(&xs, 0.25).unwrap(), 1.75);
        assert!(quantile(&xs, 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn median_odd_length() {
        assert_eq!(median(&[5.0, 1.0, 3.0]).unwrap(), 3.0);
    }

    #[test]
    fn perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_constant_errors() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let xs = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect(); // monotone
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        // pearson would be < 1 for this
        assert!(pearson(&xs, &ys).unwrap() < 0.95);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn skewness_signs() {
        let right = [1.0, 1.0, 1.0, 2.0, 10.0];
        assert!(skewness(&right).unwrap() > 0.5);
        let left: Vec<f64> = right.iter().map(|x| -x).collect();
        assert!(skewness(&left).unwrap() < -0.5);
        assert!(skewness(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn covariance_matches_manual() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((covariance(&xs, &ys).unwrap() - 2.0).abs() < 1e-12);
        assert!(covariance(&xs, &[1.0]).is_err());
    }

    #[test]
    fn proportion_counts() {
        assert_eq!(proportion(&[true, false, true, true]).unwrap(), 0.75);
        assert!(proportion(&[]).is_err());
    }
}
