//! Nonparametric tests — distribution-free inference for when "letting the
//! data speak" must not assume normality.

use fact_data::{FactError, Result};

use crate::descriptive::ranks;
use crate::dist::norm_cdf;
use crate::tests::TestResult;

/// Mann–Whitney U test (two-sided, normal approximation with tie
/// correction). Suitable for n ≥ ~8 per group.
pub fn mann_whitney_u(xs: &[f64], ys: &[f64]) -> Result<TestResult> {
    if xs.len() < 2 || ys.len() < 2 {
        return Err(FactError::EmptyData(
            "Mann–Whitney requires at least 2 values per group".into(),
        ));
    }
    let nx = xs.len() as f64;
    let ny = ys.len() as f64;
    let combined: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
    let r = ranks(&combined);
    let rank_sum_x: f64 = r[..xs.len()].iter().sum();
    let u_x = rank_sum_x - nx * (nx + 1.0) / 2.0;
    // tie correction for the variance
    let n = combined.len() as f64;
    let mut sorted = combined.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let mean_u = nx * ny / 2.0;
    let var_u = nx * ny / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    if var_u <= 0.0 {
        return Err(FactError::Numeric(
            "Mann–Whitney variance is zero (all values tied)".into(),
        ));
    }
    // continuity correction
    let z = (u_x - mean_u - 0.5 * (u_x - mean_u).signum()) / var_u.sqrt();
    Ok(TestResult {
        statistic: u_x,
        p_value: (2.0 * (1.0 - norm_cdf(z.abs()))).clamp(0.0, 1.0),
        df: None,
    })
}

/// Two-sample Kolmogorov–Smirnov test (asymptotic p-value via the KS
/// distribution series).
pub fn ks_two_sample(xs: &[f64], ys: &[f64]) -> Result<TestResult> {
    if xs.is_empty() || ys.is_empty() {
        return Err(FactError::EmptyData("KS test with an empty sample".into()));
    }
    let mut a = xs.to_vec();
    let mut b = ys.to_vec();
    a.sort_by(|p, q| p.partial_cmp(q).unwrap_or(std::cmp::Ordering::Equal));
    b.sort_by(|p, q| p.partial_cmp(q).unwrap_or(std::cmp::Ordering::Equal));
    let (na, nb) = (a.len(), b.len());
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d: f64 = 0.0;
    while i < na && j < nb {
        let va = a[i];
        let vb = b[j];
        let v = va.min(vb);
        while i < na && a[i] <= v {
            i += 1;
        }
        while j < nb && b[j] <= v {
            j += 1;
        }
        let fa = i as f64 / na as f64;
        let fb = j as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }
    let ne = (na as f64 * nb as f64) / (na as f64 + nb as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    // Q_KS(0) = 1; the series below does not converge at λ ≈ 0
    if lambda < 1e-3 {
        return Ok(TestResult {
            statistic: d,
            p_value: 1.0,
            df: None,
        });
    }
    // Q_KS(λ) = 2 Σ (−1)^{k−1} e^{−2 k² λ²}
    let mut p = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        p += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    Ok(TestResult {
        statistic: d,
        p_value: (2.0 * p).clamp(0.0, 1.0),
        df: None,
    })
}

/// One-way ANOVA across `groups` (F statistic with p-value via the F
/// relation to the incomplete beta).
pub fn anova_oneway(groups: &[&[f64]]) -> Result<TestResult> {
    if groups.len() < 2 {
        return Err(FactError::InvalidArgument(
            "ANOVA needs at least 2 groups".into(),
        ));
    }
    if groups.iter().any(|g| g.len() < 2) {
        return Err(FactError::EmptyData(
            "every ANOVA group needs at least 2 values".into(),
        ));
    }
    let k = groups.len() as f64;
    let n: f64 = groups.iter().map(|g| g.len() as f64).sum();
    let grand_mean: f64 = groups.iter().flat_map(|g| g.iter()).sum::<f64>() / n;
    let ss_between: f64 = groups
        .iter()
        .map(|g| {
            let m = g.iter().sum::<f64>() / g.len() as f64;
            g.len() as f64 * (m - grand_mean).powi(2)
        })
        .sum();
    let ss_within: f64 = groups
        .iter()
        .map(|g| {
            let m = g.iter().sum::<f64>() / g.len() as f64;
            g.iter().map(|x| (x - m).powi(2)).sum::<f64>()
        })
        .sum();
    let df1 = k - 1.0;
    let df2 = n - k;
    if ss_within <= 0.0 {
        return Err(FactError::Numeric(
            "ANOVA within-group variance is zero".into(),
        ));
    }
    let f = (ss_between / df1) / (ss_within / df2);
    // P(F > f) = I_{df2/(df2+df1 f)}(df2/2, df1/2)
    let x = df2 / (df2 + df1 * f);
    let p = crate::special::beta_inc(df2 / 2.0, df1 / 2.0, x);
    Ok(TestResult {
        statistic: f,
        p_value: p.clamp(0.0, 1.0),
        df: Some(df1),
    })
}

/// Significance test for a Pearson correlation coefficient
/// (t = r √((n−2)/(1−r²)), two-sided).
pub fn pearson_test(xs: &[f64], ys: &[f64]) -> Result<TestResult> {
    let r = crate::descriptive::pearson(xs, ys)?;
    let n = xs.len() as f64;
    if n < 3.0 {
        return Err(FactError::EmptyData(
            "correlation test requires at least 3 pairs".into(),
        ));
    }
    let denom = (1.0 - r * r).max(1e-15);
    let t = r * ((n - 2.0) / denom).sqrt();
    Ok(TestResult {
        statistic: r,
        p_value: crate::dist::t_sf_two_sided(t, n - 2.0)?,
        df: Some(n - 2.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mwu_detects_shift() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x + 3.0).collect();
        let r = mann_whitney_u(&xs, &ys).unwrap();
        assert!(r.p_value < 1e-6, "clear shift: p={}", r.p_value);
        let null = mann_whitney_u(&xs, &xs).unwrap();
        assert!(null.p_value > 0.5);
    }

    #[test]
    fn mwu_known_value() {
        // scipy.stats.mannwhitneyu([1,2,3,4,5],[6,7,8,9,10]) → U=0 (for x)
        let r = mann_whitney_u(&[1.0, 2.0, 3.0, 4.0, 5.0], &[6.0, 7.0, 8.0, 9.0, 10.0]).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert!(r.p_value < 0.02);
    }

    #[test]
    fn mwu_is_robust_to_outliers_where_t_is_not() {
        // one colossal outlier: t-test p-value degrades, MWU barely moves
        let xs: Vec<f64> = (0..30).map(|i| i as f64 * 0.1).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| x + 1.5).collect();
        ys[0] = 1e6;
        let mwu = mann_whitney_u(&xs, &ys).unwrap();
        let t = crate::tests::welch_t_test(&xs, &ys).unwrap();
        assert!(mwu.p_value < 0.01);
        assert!(
            t.p_value > 0.05,
            "t-test destroyed by the outlier: {}",
            t.p_value
        );
    }

    #[test]
    fn mwu_all_tied_errors() {
        assert!(mann_whitney_u(&[1.0; 10], &[1.0; 10]).is_err());
    }

    #[test]
    fn ks_separates_different_distributions() {
        let uniform: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        let squashed: Vec<f64> = uniform.iter().map(|x| x * x).collect();
        let r = ks_two_sample(&uniform, &squashed).unwrap();
        assert!(r.statistic > 0.2);
        assert!(r.p_value < 0.001);
        let same = ks_two_sample(&uniform, &uniform).unwrap();
        assert!(same.statistic < 1e-12);
        assert!(same.p_value > 0.99);
    }

    #[test]
    fn ks_statistic_is_max_cdf_gap() {
        // x in {0..1}, y in {1..2}: D = 1 at the boundary
        let xs = [0.1, 0.2, 0.3];
        let ys = [1.1, 1.2, 1.3];
        let r = ks_two_sample(&xs, &ys).unwrap();
        assert!((r.statistic - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anova_matches_r() {
        // R: g1=c(1,2,3), g2=c(2,3,4), g3=c(5,6,7)
        // summary(aov(...)): F = 13, p = 0.00662
        let r = anova_oneway(&[&[1.0, 2.0, 3.0], &[2.0, 3.0, 4.0], &[5.0, 6.0, 7.0]]).unwrap();
        assert!((r.statistic - 13.0).abs() < 1e-9, "F={}", r.statistic);
        assert!((r.p_value - 0.00662).abs() < 2e-4, "p={}", r.p_value);
        assert_eq!(r.df, Some(2.0));
    }

    #[test]
    fn anova_null_case() {
        let g = [1.0, 2.0, 3.0, 4.0];
        let r = anova_oneway(&[&g, &g, &g]).unwrap();
        assert!(r.statistic.abs() < 1e-12);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn anova_validation() {
        assert!(anova_oneway(&[&[1.0, 2.0]]).is_err());
        assert!(anova_oneway(&[&[1.0, 2.0], &[1.0]]).is_err());
        assert!(anova_oneway(&[&[1.0, 1.0], &[1.0, 1.0]]).is_err());
    }

    #[test]
    fn pearson_test_detects_real_correlation() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + (x % 7.0)).collect();
        let r = pearson_test(&xs, &ys).unwrap();
        assert!(r.statistic > 0.99);
        assert!(r.p_value < 1e-10);
    }

    #[test]
    fn pearson_test_null() {
        // alternate up/down around 0, no trend vs index
        let xs: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r = pearson_test(&xs, &ys).unwrap();
        assert!(r.p_value > 0.2, "p={}", r.p_value);
    }
}
