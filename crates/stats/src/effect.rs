//! Effect sizes — the magnitude half of "meta-information on accuracy".
//!
//! A p-value without an effect size invites exactly the over-claiming the
//! paper warns about; reports in `fact-accuracy` pair both.

use fact_data::{FactError, Result};

use crate::descriptive::{mean, variance};

/// Cohen's d with the pooled standard deviation.
pub fn cohens_d(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() < 2 || ys.len() < 2 {
        return Err(FactError::EmptyData(
            "Cohen's d requires at least 2 values per group".into(),
        ));
    }
    let nx = xs.len() as f64;
    let ny = ys.len() as f64;
    let pooled =
        (((nx - 1.0) * variance(xs)? + (ny - 1.0) * variance(ys)?) / (nx + ny - 2.0)).sqrt();
    if pooled < 1e-300 {
        return Err(FactError::Numeric("Cohen's d of constant data".into()));
    }
    Ok((mean(xs)? - mean(ys)?) / pooled)
}

/// Risk ratio between two binomial groups: `(x1/n1) / (x2/n2)`.
pub fn risk_ratio(x1: u64, n1: u64, x2: u64, n2: u64) -> Result<f64> {
    if n1 == 0 || n2 == 0 {
        return Err(FactError::EmptyData("risk ratio with empty group".into()));
    }
    if x1 > n1 || x2 > n2 {
        return Err(FactError::InvalidArgument(
            "successes cannot exceed trials".into(),
        ));
    }
    let p2 = x2 as f64 / n2 as f64;
    if p2 == 0.0 {
        return Err(FactError::Numeric(
            "risk ratio undefined: reference risk is zero".into(),
        ));
    }
    Ok((x1 as f64 / n1 as f64) / p2)
}

/// Odds ratio between two binomial groups, with the Haldane–Anscombe 0.5
/// correction when any cell is zero.
pub fn odds_ratio(x1: u64, n1: u64, x2: u64, n2: u64) -> Result<f64> {
    if n1 == 0 || n2 == 0 {
        return Err(FactError::EmptyData("odds ratio with empty group".into()));
    }
    if x1 > n1 || x2 > n2 {
        return Err(FactError::InvalidArgument(
            "successes cannot exceed trials".into(),
        ));
    }
    let (mut a, mut b) = (x1 as f64, (n1 - x1) as f64);
    let (mut c, mut d) = (x2 as f64, (n2 - x2) as f64);
    if a == 0.0 || b == 0.0 || c == 0.0 || d == 0.0 {
        a += 0.5;
        b += 0.5;
        c += 0.5;
        d += 0.5;
    }
    Ok((a / b) / (c / d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohens_d_unit_shift() {
        // two groups with sd 1, means 1 apart → d ≈ 1
        let xs: Vec<f64> = vec![0.0, 1.0, 2.0, 0.0, 1.0, 2.0, 1.0, 1.0];
        let ys: Vec<f64> = xs.iter().map(|x| x + 1.0).collect();
        let d = cohens_d(&ys, &xs).unwrap();
        assert!((d - 1.0 / variance(&xs).unwrap().sqrt()).abs() < 1e-9);
        assert!(d > 0.0);
        assert!(cohens_d(&xs, &xs).unwrap().abs() < 1e-12);
    }

    #[test]
    fn cohens_d_validates() {
        assert!(cohens_d(&[1.0], &[1.0, 2.0]).is_err());
        assert!(cohens_d(&[1.0, 1.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn risk_ratio_basics() {
        assert_eq!(risk_ratio(20, 100, 10, 100).unwrap(), 2.0);
        assert_eq!(risk_ratio(10, 100, 10, 100).unwrap(), 1.0);
        assert!(risk_ratio(1, 10, 0, 10).is_err());
        assert!(risk_ratio(1, 0, 1, 10).is_err());
    }

    #[test]
    fn odds_ratio_known_value() {
        // a=30,b=70,c=10,d=90 → OR = (30/70)/(10/90) = 27/7
        let or = odds_ratio(30, 100, 10, 100).unwrap();
        assert!((or - 27.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn odds_ratio_zero_cell_correction() {
        let or = odds_ratio(0, 10, 5, 10).unwrap();
        assert!(or.is_finite());
        assert!(or < 1.0);
    }
}
