//! Probability distributions: PDF, CDF, and quantiles.

use fact_data::{FactError, Result};

use crate::special::{beta_inc, erfc, gamma_p, norm_quantile};

/// Standard normal PDF.
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile (inverse CDF), `p ∈ (0, 1)`.
pub fn norm_ppf(p: f64) -> Result<f64> {
    norm_quantile(p)
}

/// Student-t CDF with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> Result<f64> {
    if df <= 0.0 {
        return Err(FactError::InvalidArgument(format!(
            "t distribution requires df > 0, got {df}"
        )));
    }
    let x = df / (df + t * t);
    let p = 0.5 * beta_inc(df / 2.0, 0.5, x);
    Ok(if t > 0.0 { 1.0 - p } else { p })
}

/// Two-sided p-value for a t statistic.
pub fn t_sf_two_sided(t: f64, df: f64) -> Result<f64> {
    let cdf = t_cdf(t.abs(), df)?;
    Ok((2.0 * (1.0 - cdf)).clamp(0.0, 1.0))
}

/// χ² CDF with `df` degrees of freedom.
pub fn chi2_cdf(x: f64, df: f64) -> Result<f64> {
    if df <= 0.0 {
        return Err(FactError::InvalidArgument(format!(
            "chi-square requires df > 0, got {df}"
        )));
    }
    if x < 0.0 {
        return Ok(0.0);
    }
    Ok(gamma_p(df / 2.0, x / 2.0))
}

/// Upper-tail p-value for a χ² statistic.
pub fn chi2_sf(x: f64, df: f64) -> Result<f64> {
    Ok((1.0 - chi2_cdf(x, df)?).clamp(0.0, 1.0))
}

/// Laplace(μ, b) CDF — the distribution of the paper's "strict privacy
/// budget" noise mechanism.
pub fn laplace_cdf(x: f64, mu: f64, b: f64) -> Result<f64> {
    if b <= 0.0 {
        return Err(FactError::InvalidArgument(format!(
            "Laplace scale must be positive, got {b}"
        )));
    }
    let z = (x - mu) / b;
    Ok(if z < 0.0 {
        0.5 * z.exp()
    } else {
        1.0 - 0.5 * (-z).exp()
    })
}

/// Laplace(μ, b) quantile, `p ∈ (0, 1)`.
pub fn laplace_ppf(p: f64, mu: f64, b: f64) -> Result<f64> {
    if b <= 0.0 {
        return Err(FactError::InvalidArgument(format!(
            "Laplace scale must be positive, got {b}"
        )));
    }
    if !(0.0 < p && p < 1.0) {
        return Err(FactError::InvalidArgument(format!(
            "quantile requires p in (0, 1), got {p}"
        )));
    }
    Ok(if p < 0.5 {
        mu + b * (2.0 * p).ln()
    } else {
        mu - b * (2.0 * (1.0 - p)).ln()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_cdf_known_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((norm_cdf(1.959963984540054) - 0.975).abs() < 1e-9);
        assert!((norm_cdf(-1.6448536269514722) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn norm_pdf_peak() {
        assert!((norm_pdf(0.0) - 0.3989422804014327).abs() < 1e-12);
        assert!(norm_pdf(3.0) < norm_pdf(0.0));
    }

    #[test]
    fn norm_ppf_inverts_cdf() {
        for &p in &[0.01, 0.3, 0.5, 0.7, 0.99] {
            assert!((norm_cdf(norm_ppf(p).unwrap()) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn t_cdf_known_values() {
        // t(df→∞) → normal; at df=1 it's Cauchy: CDF(1) = 0.75
        assert!((t_cdf(1.0, 1.0).unwrap() - 0.75).abs() < 1e-9);
        assert!((t_cdf(0.0, 7.0).unwrap() - 0.5).abs() < 1e-12);
        // R: pt(2.0, 10) = 0.9633060
        assert!((t_cdf(2.0, 10.0).unwrap() - 0.96330598).abs() < 1e-6);
        assert!(t_cdf(1.0, 0.0).is_err());
    }

    #[test]
    fn t_two_sided_pvalue() {
        // R: 2*pt(-2.228, 10) ≈ 0.05
        let p = t_sf_two_sided(2.228138851986273, 10.0).unwrap();
        assert!((p - 0.05).abs() < 1e-6);
        assert_eq!(t_sf_two_sided(0.0, 5.0).unwrap(), 1.0);
    }

    #[test]
    fn chi2_known_values() {
        // R: pchisq(3.841459, 1) = 0.95
        assert!((chi2_cdf(3.841458820694124, 1.0).unwrap() - 0.95).abs() < 1e-8);
        // R: qchisq(0.95, 5) = 11.0705
        assert!((chi2_sf(11.070497693516351, 5.0).unwrap() - 0.05).abs() < 1e-8);
        assert_eq!(chi2_cdf(-1.0, 3.0).unwrap(), 0.0);
        assert!(chi2_cdf(1.0, -1.0).is_err());
    }

    #[test]
    fn laplace_round_trip() {
        for &p in &[0.05, 0.25, 0.5, 0.75, 0.95] {
            let x = laplace_ppf(p, 2.0, 1.5).unwrap();
            assert!((laplace_cdf(x, 2.0, 1.5).unwrap() - p).abs() < 1e-12);
        }
        assert_eq!(laplace_cdf(2.0, 2.0, 1.0).unwrap(), 0.5);
        assert!(laplace_ppf(0.5, 0.0, 0.0).is_err());
        assert!(laplace_ppf(1.0, 0.0, 1.0).is_err());
    }
}
