//! Power analysis and sample-size adequacy.
//!
//! "How to answer questions with a guaranteed level of accuracy?" (paper §2,
//! Q2). One necessary condition is that the sample is large enough to detect
//! the effect of interest; these helpers quantify that before any test runs,
//! and `fact-accuracy` uses them to warn when an analysis is underpowered.

use fact_data::{FactError, Result};

use crate::dist::{norm_cdf, norm_ppf};

/// Required per-group sample size for a two-sample test of means to detect a
/// standardized effect `d` at significance `alpha` with power `power`
/// (two-sided, normal approximation).
pub fn sample_size_two_means(d: f64, alpha: f64, power: f64) -> Result<usize> {
    if d == 0.0 || !d.is_finite() {
        return Err(FactError::InvalidArgument(
            "effect size must be non-zero and finite".into(),
        ));
    }
    check_probs(alpha, power)?;
    let z_a = norm_ppf(1.0 - alpha / 2.0)?;
    let z_b = norm_ppf(power)?;
    let n = 2.0 * ((z_a + z_b) / d).powi(2);
    Ok(n.ceil() as usize)
}

/// Required per-group sample size to detect the difference between
/// proportions `p1` and `p2` (two-sided, normal approximation).
pub fn sample_size_two_proportions(p1: f64, p2: f64, alpha: f64, power: f64) -> Result<usize> {
    for p in [p1, p2] {
        if !(0.0 < p && p < 1.0) {
            return Err(FactError::InvalidArgument(format!(
                "proportions must be in (0, 1), got {p}"
            )));
        }
    }
    if (p1 - p2).abs() < 1e-12 {
        return Err(FactError::InvalidArgument(
            "proportions must differ to compute a sample size".into(),
        ));
    }
    check_probs(alpha, power)?;
    let z_a = norm_ppf(1.0 - alpha / 2.0)?;
    let z_b = norm_ppf(power)?;
    let pbar = (p1 + p2) / 2.0;
    let num =
        z_a * (2.0 * pbar * (1.0 - pbar)).sqrt() + z_b * (p1 * (1.0 - p1) + p2 * (1.0 - p2)).sqrt();
    Ok((num / (p1 - p2)).powi(2).ceil() as usize)
}

/// Achieved power of a two-sample mean test with per-group size `n`,
/// standardized effect `d`, significance `alpha` (two-sided, normal
/// approximation).
pub fn power_two_means(n: usize, d: f64, alpha: f64) -> Result<f64> {
    if n == 0 {
        return Err(FactError::EmptyData("power with n = 0".into()));
    }
    if !d.is_finite() {
        return Err(FactError::InvalidArgument(
            "effect size must be finite".into(),
        ));
    }
    if !(0.0 < alpha && alpha < 1.0) {
        return Err(FactError::InvalidArgument(format!(
            "alpha must be in (0, 1), got {alpha}"
        )));
    }
    let z_a = norm_ppf(1.0 - alpha / 2.0)?;
    let ncp = d.abs() * (n as f64 / 2.0).sqrt();
    Ok((norm_cdf(ncp - z_a) + norm_cdf(-ncp - z_a)).clamp(0.0, 1.0))
}

fn check_probs(alpha: f64, power: f64) -> Result<()> {
    if !(0.0 < alpha && alpha < 1.0) {
        return Err(FactError::InvalidArgument(format!(
            "alpha must be in (0, 1), got {alpha}"
        )));
    }
    if !(0.0 < power && power < 1.0) {
        return Err(FactError::InvalidArgument(format!(
            "power must be in (0, 1), got {power}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_sample_size_for_medium_effect() {
        // d=0.5, alpha=.05, power=.8 → n ≈ 63 per group (normal approx)
        let n = sample_size_two_means(0.5, 0.05, 0.8).unwrap();
        assert!((62..=64).contains(&n), "got {n}");
    }

    #[test]
    fn smaller_effects_need_more_samples() {
        let n_small = sample_size_two_means(0.2, 0.05, 0.8).unwrap();
        let n_large = sample_size_two_means(0.8, 0.05, 0.8).unwrap();
        assert!(n_small > 4 * n_large);
    }

    #[test]
    fn proportions_sample_size_reasonable() {
        // 0.5 vs 0.6, alpha=.05, power=.8 → ≈ 387-397 per group
        let n = sample_size_two_proportions(0.5, 0.6, 0.05, 0.8).unwrap();
        assert!((380..=400).contains(&n), "got {n}");
    }

    #[test]
    fn power_round_trips_sample_size() {
        let n = sample_size_two_means(0.5, 0.05, 0.8).unwrap();
        let p = power_two_means(n, 0.5, 0.05).unwrap();
        assert!((0.8..0.85).contains(&p), "power {p}");
    }

    #[test]
    fn power_grows_with_n() {
        let p10 = power_two_means(10, 0.5, 0.05).unwrap();
        let p100 = power_two_means(100, 0.5, 0.05).unwrap();
        assert!(p100 > p10);
    }

    #[test]
    fn zero_effect_power_equals_alpha() {
        let p = power_two_means(100, 0.0, 0.05).unwrap();
        assert!((p - 0.05).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(sample_size_two_means(0.0, 0.05, 0.8).is_err());
        assert!(sample_size_two_means(0.5, 1.5, 0.8).is_err());
        assert!(sample_size_two_proportions(0.5, 0.5, 0.05, 0.8).is_err());
        assert!(sample_size_two_proportions(0.0, 0.5, 0.05, 0.8).is_err());
        assert!(power_two_means(0, 0.5, 0.05).is_err());
    }
}
