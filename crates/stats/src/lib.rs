//! # fact-stats — the statistical inference engine
//!
//! Implements the statistical machinery the paper's **accuracy** pillar (Q2)
//! depends on: "data science approaches should not just present results or
//! make predictions, but also explicitly provide meta-information on the
//! accuracy of the output" (van der Aalst et al. 2017, §2).
//!
//! * [`descriptive`] — means, variances, quantiles, correlation;
//! * [`special`] — erf, incomplete gamma/beta (the kernels under every CDF);
//! * [`dist`] — Normal, Student-t, χ², Laplace distributions;
//! * [`tests`] — z, t (Welch), χ² independence, two-proportion, permutation;
//! * [`ci`] — normal, Wilson, and bootstrap confidence intervals;
//! * [`multiple`] — Bonferroni/Holm/Šidák FWER and Benjamini–Hochberg/
//!   Benjamini–Yekutieli FDR corrections (experiment E3);
//! * [`nonparametric`] — Mann–Whitney U, two-sample Kolmogorov–Smirnov,
//!   one-way ANOVA, correlation significance;
//! * [`power`] — sample-size and power calculations;
//! * [`effect`] — effect sizes (Cohen's d, odds/risk ratios).

#![warn(missing_docs)]

pub mod ci;
pub mod descriptive;
pub mod dist;
pub mod effect;
pub mod multiple;
pub mod nonparametric;
pub mod power;
pub mod special;
pub mod tests;

pub use ci::ConfidenceInterval;
pub use tests::TestResult;
