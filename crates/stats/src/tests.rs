//! Hypothesis tests.
//!
//! Every test returns a [`TestResult`] with the statistic, degrees of
//! freedom where applicable, and the p-value — never a bare "significant"
//! boolean, because thresholding belongs to the caller (and, per the paper's
//! accuracy pillar, should pass through the multiple-testing registry in
//! `fact-accuracy` rather than be eyeballed).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use fact_data::{FactError, Result};

use crate::descriptive::{mean, variance};
use crate::dist::{chi2_sf, norm_cdf, t_sf_two_sided};

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, PartialEq)]
pub struct TestResult {
    /// The test statistic.
    pub statistic: f64,
    /// Two-sided p-value (except where documented otherwise).
    pub p_value: f64,
    /// Degrees of freedom, when the test has them.
    pub df: Option<f64>,
}

/// One-sample z-test of `mean(xs) = mu0` with known population `sigma`.
pub fn z_test(xs: &[f64], mu0: f64, sigma: f64) -> Result<TestResult> {
    if sigma <= 0.0 {
        return Err(FactError::InvalidArgument(format!(
            "sigma must be positive, got {sigma}"
        )));
    }
    let m = mean(xs)?;
    let z = (m - mu0) / (sigma / (xs.len() as f64).sqrt());
    let p = 2.0 * (1.0 - norm_cdf(z.abs()));
    Ok(TestResult {
        statistic: z,
        p_value: p.clamp(0.0, 1.0),
        df: None,
    })
}

/// One-sample t-test of `mean(xs) = mu0`.
pub fn t_test_one_sample(xs: &[f64], mu0: f64) -> Result<TestResult> {
    let n = xs.len();
    if n < 2 {
        return Err(FactError::EmptyData(
            "t-test requires at least 2 values".into(),
        ));
    }
    let m = mean(xs)?;
    let s = variance(xs)?.sqrt();
    if s < 1e-300 {
        return Err(FactError::Numeric("t-test on constant data".into()));
    }
    let t = (m - mu0) / (s / (n as f64).sqrt());
    let df = (n - 1) as f64;
    Ok(TestResult {
        statistic: t,
        p_value: t_sf_two_sided(t, df)?,
        df: Some(df),
    })
}

/// Welch's two-sample t-test (unequal variances).
pub fn welch_t_test(xs: &[f64], ys: &[f64]) -> Result<TestResult> {
    if xs.len() < 2 || ys.len() < 2 {
        return Err(FactError::EmptyData(
            "Welch test requires at least 2 values per group".into(),
        ));
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let vx = variance(xs)?;
    let vy = variance(ys)?;
    let nx = xs.len() as f64;
    let ny = ys.len() as f64;
    let se2 = vx / nx + vy / ny;
    if se2 < 1e-300 {
        return Err(FactError::Numeric("Welch test on constant data".into()));
    }
    let t = (mx - my) / se2.sqrt();
    let df = se2 * se2 / ((vx / nx).powi(2) / (nx - 1.0) + (vy / ny).powi(2) / (ny - 1.0));
    Ok(TestResult {
        statistic: t,
        p_value: t_sf_two_sided(t, df)?,
        df: Some(df),
    })
}

/// χ² test of independence on an r×c contingency table of counts.
pub fn chi2_independence(table: &[Vec<f64>]) -> Result<TestResult> {
    let r = table.len();
    if r < 2 {
        return Err(FactError::InvalidArgument(
            "contingency table needs at least 2 rows".into(),
        ));
    }
    let c = table[0].len();
    if c < 2 || table.iter().any(|row| row.len() != c) {
        return Err(FactError::InvalidArgument(
            "contingency table needs at least 2 equal-length columns".into(),
        ));
    }
    if table.iter().flatten().any(|&v| v < 0.0 || !v.is_finite()) {
        return Err(FactError::InvalidArgument(
            "contingency counts must be finite and non-negative".into(),
        ));
    }
    let row_sums: Vec<f64> = table.iter().map(|row| row.iter().sum()).collect();
    let col_sums: Vec<f64> = (0..c)
        .map(|j| table.iter().map(|row| row[j]).sum())
        .collect();
    let total: f64 = row_sums.iter().sum();
    if total <= 0.0 {
        return Err(FactError::EmptyData("contingency table of zeros".into()));
    }
    let mut stat = 0.0;
    for i in 0..r {
        for j in 0..c {
            let expected = row_sums[i] * col_sums[j] / total;
            if expected > 0.0 {
                let d = table[i][j] - expected;
                stat += d * d / expected;
            }
        }
    }
    let df = ((r - 1) * (c - 1)) as f64;
    Ok(TestResult {
        statistic: stat,
        p_value: chi2_sf(stat, df)?,
        df: Some(df),
    })
}

/// Two-proportion z-test: success counts `x1`/`n1` vs `x2`/`n2` (pooled SE).
pub fn two_proportion_z_test(x1: u64, n1: u64, x2: u64, n2: u64) -> Result<TestResult> {
    if n1 == 0 || n2 == 0 {
        return Err(FactError::EmptyData(
            "proportion test with empty group".into(),
        ));
    }
    if x1 > n1 || x2 > n2 {
        return Err(FactError::InvalidArgument(
            "successes cannot exceed trials".into(),
        ));
    }
    let p1 = x1 as f64 / n1 as f64;
    let p2 = x2 as f64 / n2 as f64;
    let p = (x1 + x2) as f64 / (n1 + n2) as f64;
    let se = (p * (1.0 - p) * (1.0 / n1 as f64 + 1.0 / n2 as f64)).sqrt();
    if se < 1e-300 {
        // all successes or all failures in both groups: no evidence of difference
        return Ok(TestResult {
            statistic: 0.0,
            p_value: 1.0,
            df: None,
        });
    }
    let z = (p1 - p2) / se;
    Ok(TestResult {
        statistic: z,
        p_value: (2.0 * (1.0 - norm_cdf(z.abs()))).clamp(0.0, 1.0),
        df: None,
    })
}

/// Shuffles per parallel chunk in the permutation test.
const PERM_CHUNK: usize = 128;

/// Permutation test for a difference in means between two samples.
///
/// The p-value is the fraction of `n_perm` label shuffles whose |mean
/// difference| is at least the observed one (with the +1 small-sample
/// correction). Exact in distribution as `n_perm → ∞`; makes no normality
/// assumption.
///
/// Shuffles run in parallel chunks of `PERM_CHUNK`; each chunk shuffles
/// its own copy of the pooled sample with a child RNG seeded from the
/// master RNG in chunk order, so the p-value depends only on `seed` and
/// `n_perm`, not on the worker count.
pub fn permutation_test(xs: &[f64], ys: &[f64], n_perm: usize, seed: u64) -> Result<TestResult> {
    if xs.is_empty() || ys.is_empty() {
        return Err(FactError::EmptyData(
            "permutation test with empty group".into(),
        ));
    }
    if n_perm == 0 {
        return Err(FactError::InvalidArgument(
            "permutation test needs at least 1 permutation".into(),
        ));
    }
    let observed = mean(xs)? - mean(ys)?;
    let pool: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
    let nx = xs.len();
    let mut master = StdRng::seed_from_u64(seed);
    let n_chunks = n_perm.div_ceil(PERM_CHUNK);
    let chunk_seeds: Vec<u64> = (0..n_chunks).map(|_| master.gen()).collect();
    let extreme = fact_par::par_reduce(
        n_perm,
        PERM_CHUNK,
        |range| {
            let mut rng = StdRng::seed_from_u64(chunk_seeds[range.start / PERM_CHUNK]);
            let mut local = pool.clone();
            let mut hits = 0usize;
            for _ in range {
                local.shuffle(&mut rng);
                let mx: f64 = local[..nx].iter().sum::<f64>() / nx as f64;
                let my: f64 = local[nx..].iter().sum::<f64>() / (local.len() - nx) as f64;
                if (mx - my).abs() >= observed.abs() - 1e-12 {
                    hits += 1;
                }
            }
            hits
        },
        |a, b| a + b,
    )
    .expect("n_perm >= 1");
    Ok(TestResult {
        statistic: observed,
        p_value: (extreme + 1) as f64 / (n_perm + 1) as f64,
        df: None,
    })
}

#[cfg(test)]
mod unit_tests {
    use super::*;

    #[test]
    fn z_test_detects_shift() {
        let xs: Vec<f64> = (0..100).map(|i| 1.0 + (i % 7) as f64 * 0.01).collect();
        let r = z_test(&xs, 0.0, 1.0).unwrap();
        assert!(r.p_value < 1e-6);
        let r0 = z_test(&xs, xs.iter().sum::<f64>() / 100.0, 1.0).unwrap();
        assert!(r0.p_value > 0.9);
        assert!(z_test(&xs, 0.0, 0.0).is_err());
    }

    #[test]
    fn one_sample_t_matches_r() {
        // R: t.test(c(1,2,3,4,5), mu=2.5): t = 0.7071, p = 0.5185
        let r = t_test_one_sample(&[1.0, 2.0, 3.0, 4.0, 5.0], 2.5).unwrap();
        assert!((r.statistic - 0.7071067811865476).abs() < 1e-10);
        assert!((r.p_value - 0.51851852).abs() < 1e-5);
        assert_eq!(r.df, Some(4.0));
    }

    #[test]
    fn welch_matches_r() {
        // R: t.test(x, y): x=c(1,2,3,4), y=c(6,7,8,9,10)
        // t = -5.7446, df = 6.9808, p = 0.0007161
        let r = welch_t_test(&[1.0, 2.0, 3.0, 4.0], &[6.0, 7.0, 8.0, 9.0, 10.0]).unwrap();
        assert!((r.statistic + 5.744562646538029).abs() < 1e-9);
        assert!((r.df.unwrap() - 6.98076923).abs() < 1e-6);
        assert!((r.p_value - 0.00070930707603747).abs() < 1e-9);
    }

    #[test]
    fn welch_null_case() {
        let xs: Vec<f64> = (0..50).map(|i| (i % 10) as f64).collect();
        let r = welch_t_test(&xs, &xs).unwrap();
        assert!(r.statistic.abs() < 1e-12);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn chi2_matches_r() {
        // R: chisq.test(matrix(c(20,30,30,20),2,2), correct=FALSE)
        // X-squared = 4, df = 1, p = 0.0455
        let r = chi2_independence(&[vec![20.0, 30.0], vec![30.0, 20.0]]).unwrap();
        assert!((r.statistic - 4.0).abs() < 1e-10);
        assert_eq!(r.df, Some(1.0));
        assert!((r.p_value - 0.04550026).abs() < 1e-6);
    }

    #[test]
    fn chi2_independent_table_high_p() {
        let r = chi2_independence(&[vec![25.0, 25.0], vec![50.0, 50.0]]).unwrap();
        assert!(r.statistic.abs() < 1e-10);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn chi2_validates_input() {
        assert!(chi2_independence(&[vec![1.0, 2.0]]).is_err());
        assert!(chi2_independence(&[vec![1.0], vec![2.0]]).is_err());
        assert!(chi2_independence(&[vec![1.0, -2.0], vec![3.0, 4.0]]).is_err());
        assert!(chi2_independence(&[vec![0.0, 0.0], vec![0.0, 0.0]]).is_err());
    }

    #[test]
    fn two_proportion_known_value() {
        // p1=0.6 (60/100), p2=0.4 (40/100): z ≈ 2.8284, p ≈ 0.00468
        let r = two_proportion_z_test(60, 100, 40, 100).unwrap();
        assert!((r.statistic - 2.8284271247461903).abs() < 1e-10);
        assert!((r.p_value - 0.004677735).abs() < 1e-6);
    }

    #[test]
    fn two_proportion_degenerate() {
        let r = two_proportion_z_test(10, 10, 10, 10).unwrap();
        assert_eq!(r.p_value, 1.0);
        assert!(two_proportion_z_test(0, 0, 1, 2).is_err());
        assert!(two_proportion_z_test(3, 2, 1, 2).is_err());
    }

    #[test]
    fn permutation_test_agrees_with_welch_roughly() {
        let xs: Vec<f64> = (0..30).map(|i| (i % 5) as f64).collect();
        let ys: Vec<f64> = (0..30).map(|i| (i % 5) as f64 + 2.0).collect();
        let p = permutation_test(&xs, &ys, 2000, 7).unwrap();
        assert!(p.p_value < 0.01, "clear shift: {}", p.p_value);
        let null = permutation_test(&xs, &xs, 2000, 7).unwrap();
        assert!(null.p_value > 0.5, "no shift: {}", null.p_value);
    }

    #[test]
    fn permutation_p_is_worker_count_invariant() {
        let xs: Vec<f64> = (0..40).map(|i| (i % 9) as f64).collect();
        let ys: Vec<f64> = (0..40).map(|i| (i % 9) as f64 + 0.5).collect();
        fact_par::set_workers(1);
        let a = permutation_test(&xs, &ys, 1000, 3).unwrap();
        fact_par::set_workers(8);
        let b = permutation_test(&xs, &ys, 1000, 3).unwrap();
        fact_par::set_workers(0);
        assert_eq!(a, b);
    }

    #[test]
    fn permutation_p_never_zero() {
        let p = permutation_test(&[100.0, 101.0], &[0.0, 1.0], 50, 1).unwrap();
        assert!(p.p_value >= 1.0 / 51.0);
    }
}
