//! Confidence intervals — the "meta-information on the accuracy of the
//! output" (paper §2) that responsible analyses must attach to every number.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fact_data::{FactError, Result};

use crate::descriptive::{mean, quantile, std_dev};
use crate::dist::norm_ppf;

/// A two-sided confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub estimate: f64,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// True when the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        (self.lower..=self.upper).contains(&value)
    }
}

fn check_level(level: f64) -> Result<()> {
    if !(0.0 < level && level < 1.0) {
        return Err(FactError::InvalidArgument(format!(
            "confidence level must be in (0, 1), got {level}"
        )));
    }
    Ok(())
}

/// Normal-approximation CI for a mean (uses the sample standard deviation).
pub fn mean_ci(xs: &[f64], level: f64) -> Result<ConfidenceInterval> {
    check_level(level)?;
    if xs.len() < 2 {
        return Err(FactError::EmptyData(
            "mean CI requires at least 2 values".into(),
        ));
    }
    let m = mean(xs)?;
    let se = std_dev(xs)? / (xs.len() as f64).sqrt();
    let z = norm_ppf(0.5 + level / 2.0)?;
    Ok(ConfidenceInterval {
        estimate: m,
        lower: m - z * se,
        upper: m + z * se,
        level,
    })
}

/// Wilson score interval for a binomial proportion — well-behaved even at
/// extreme proportions and small n, unlike the Wald interval.
pub fn wilson_ci(successes: u64, trials: u64, level: f64) -> Result<ConfidenceInterval> {
    check_level(level)?;
    if trials == 0 {
        return Err(FactError::EmptyData(
            "proportion CI with zero trials".into(),
        ));
    }
    if successes > trials {
        return Err(FactError::InvalidArgument(
            "successes cannot exceed trials".into(),
        ));
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = norm_ppf(0.5 + level / 2.0)?;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    Ok(ConfidenceInterval {
        estimate: p,
        lower: (center - half).max(0.0),
        upper: (center + half).min(1.0),
        level,
    })
}

/// Replicates per parallel chunk when bootstrapping.
const BOOT_CHUNK: usize = 64;

/// Percentile bootstrap CI for an arbitrary statistic of one sample.
///
/// `statistic` is evaluated on `n_boot` seeded resamples; the interval is the
/// empirical `(1±level)/2` quantile range of those replicates.
///
/// Replicates are computed in parallel chunks of `BOOT_CHUNK`. Each chunk
/// owns a child RNG whose seed is drawn from the master RNG in chunk order,
/// so the replicate stream depends only on `seed` and `n_boot` — never on
/// the worker count.
pub fn bootstrap_ci<F>(
    xs: &[f64],
    statistic: F,
    n_boot: usize,
    level: f64,
    seed: u64,
) -> Result<ConfidenceInterval>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    check_level(level)?;
    if xs.is_empty() {
        return Err(FactError::EmptyData("bootstrap of empty sample".into()));
    }
    if n_boot < 10 {
        return Err(FactError::InvalidArgument(
            "bootstrap needs at least 10 replicates".into(),
        ));
    }
    let mut master = StdRng::seed_from_u64(seed);
    let n_chunks = n_boot.div_ceil(BOOT_CHUNK);
    let chunk_seeds: Vec<u64> = (0..n_chunks).map(|_| master.gen()).collect();
    let replicates = fact_par::par_reduce(
        n_boot,
        BOOT_CHUNK,
        |range| {
            let mut rng = StdRng::seed_from_u64(chunk_seeds[range.start / BOOT_CHUNK]);
            let mut resample = vec![0.0; xs.len()];
            let mut reps = Vec::with_capacity(range.len());
            for _ in range {
                for slot in resample.iter_mut() {
                    *slot = xs[rng.gen_range(0..xs.len())];
                }
                reps.push(statistic(&resample));
            }
            reps
        },
        |mut a, b| {
            a.extend(b);
            a
        },
    )
    .expect("n_boot >= 10");
    let alpha = (1.0 - level) / 2.0;
    Ok(ConfidenceInterval {
        estimate: statistic(xs),
        lower: quantile(&replicates, alpha)?,
        upper: quantile(&replicates, 1.0 - alpha)?,
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_covers_truth_mostly() {
        // 100 repeated draws from a known world; ~95% coverage
        let mut covered = 0;
        for seed in 0..100u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let xs: Vec<f64> = (0..200)
                .map(|_| {
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen();
                    5.0 + (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                })
                .collect();
            if mean_ci(&xs, 0.95).unwrap().contains(5.0) {
                covered += 1;
            }
        }
        assert!((88..=100).contains(&covered), "coverage {covered}/100");
    }

    #[test]
    fn mean_ci_shrinks_with_n() {
        let xs: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let big: Vec<f64> = (0..10_000).map(|i| (i % 10) as f64).collect();
        assert!(mean_ci(&big, 0.95).unwrap().width() < mean_ci(&xs, 0.95).unwrap().width());
    }

    #[test]
    fn wilson_known_value() {
        // 8/10 at 95%: Wilson interval ≈ (0.4902, 0.9433)
        let ci = wilson_ci(8, 10, 0.95).unwrap();
        assert!((ci.lower - 0.4901625).abs() < 1e-4, "lower {}", ci.lower);
        assert!((ci.upper - 0.9433178).abs() < 1e-4, "upper {}", ci.upper);
        assert_eq!(ci.estimate, 0.8);
    }

    #[test]
    fn wilson_extremes_stay_in_unit_interval() {
        let ci0 = wilson_ci(0, 20, 0.95).unwrap();
        assert_eq!(ci0.lower, 0.0);
        assert!(ci0.upper > 0.0 && ci0.upper < 0.3);
        let ci1 = wilson_ci(20, 20, 0.95).unwrap();
        assert_eq!(ci1.upper, 1.0);
        assert!(ci1.lower > 0.7);
    }

    #[test]
    fn wilson_validates() {
        assert!(wilson_ci(1, 0, 0.95).is_err());
        assert!(wilson_ci(5, 3, 0.95).is_err());
        assert!(wilson_ci(1, 2, 1.5).is_err());
    }

    #[test]
    fn bootstrap_mean_ci_contains_sample_mean() {
        let xs: Vec<f64> = (0..500).map(|i| (i % 13) as f64).collect();
        let ci = bootstrap_ci(
            &xs,
            |s| s.iter().sum::<f64>() / s.len() as f64,
            500,
            0.95,
            3,
        )
        .unwrap();
        assert!(ci.contains(ci.estimate));
        assert!(ci.width() > 0.0 && ci.width() < 2.0);
    }

    #[test]
    fn bootstrap_works_for_median() {
        let xs: Vec<f64> = (0..301).map(|i| i as f64).collect();
        let ci =
            bootstrap_ci(&xs, |s| crate::descriptive::median(s).unwrap(), 300, 0.9, 5).unwrap();
        assert!(ci.contains(150.0));
    }

    #[test]
    fn bootstrap_is_worker_count_invariant() {
        let xs: Vec<f64> = (0..400).map(|i| ((i * 7) % 23) as f64).collect();
        let stat = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
        fact_par::set_workers(1);
        let a = bootstrap_ci(&xs, stat, 300, 0.95, 17).unwrap();
        fact_par::set_workers(6);
        let b = bootstrap_ci(&xs, stat, 300, 0.95, 17).unwrap();
        fact_par::set_workers(0);
        assert_eq!(a, b);
    }

    #[test]
    fn bootstrap_validates() {
        assert!(bootstrap_ci(&[], |_| 0.0, 100, 0.95, 0).is_err());
        assert!(bootstrap_ci(&[1.0], |_| 0.0, 5, 0.95, 0).is_err());
    }

    #[test]
    fn interval_helpers() {
        let ci = ConfidenceInterval {
            estimate: 0.5,
            lower: 0.2,
            upper: 0.9,
            level: 0.95,
        };
        assert!((ci.width() - 0.7).abs() < 1e-12);
        assert!(ci.contains(0.2));
        assert!(!ci.contains(0.95));
    }
}
