//! Multiple-testing corrections.
//!
//! The paper (§2): "If enough hypotheses are tested, one will eventually be
//! true for the sample data used. … Multiple testing problems are well-known
//! in statistical inference, but often underestimated." These procedures are
//! the standard defenses; experiment E3 demonstrates the uncorrected false-
//! discovery explosion and how each procedure contains it.
//!
//! All functions take raw p-values and return **adjusted** p-values in the
//! original order; reject `H0_i` when `adjusted[i] <= alpha`.

use fact_data::{FactError, Result};

fn validate(p_values: &[f64]) -> Result<()> {
    if p_values.is_empty() {
        return Err(FactError::EmptyData("no p-values to adjust".into()));
    }
    if p_values
        .iter()
        .any(|&p| !(0.0..=1.0).contains(&p) || p.is_nan())
    {
        return Err(FactError::InvalidArgument(
            "p-values must lie in [0, 1]".into(),
        ));
    }
    Ok(())
}

/// Bonferroni correction: `p̃ = min(1, m·p)`. Controls FWER, very conservative.
pub fn bonferroni(p_values: &[f64]) -> Result<Vec<f64>> {
    validate(p_values)?;
    let m = p_values.len() as f64;
    Ok(p_values.iter().map(|&p| (p * m).min(1.0)).collect())
}

/// Šidák correction: `p̃ = 1 − (1 − p)^m`. Slightly less conservative than
/// Bonferroni under independence.
pub fn sidak(p_values: &[f64]) -> Result<Vec<f64>> {
    validate(p_values)?;
    let m = p_values.len() as f64;
    Ok(p_values
        .iter()
        .map(|&p| (1.0 - (1.0 - p).powf(m)).min(1.0))
        .collect())
}

/// Holm step-down procedure. Controls FWER uniformly, dominates Bonferroni.
pub fn holm(p_values: &[f64]) -> Result<Vec<f64>> {
    validate(p_values)?;
    let m = p_values.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| p_values[a].partial_cmp(&p_values[b]).expect("validated"));
    let mut adjusted = vec![0.0; m];
    let mut running_max = 0.0f64;
    for (rank, &i) in order.iter().enumerate() {
        let factor = (m - rank) as f64;
        let adj = (p_values[i] * factor).min(1.0);
        running_max = running_max.max(adj);
        adjusted[i] = running_max;
    }
    Ok(adjusted)
}

/// Benjamini–Hochberg step-up procedure. Controls the false discovery rate
/// under independence (and positive dependence).
pub fn benjamini_hochberg(p_values: &[f64]) -> Result<Vec<f64>> {
    validate(p_values)?;
    bh_with_factor(p_values, 1.0)
}

/// Benjamini–Yekutieli: BH with the harmonic-sum factor, valid under
/// arbitrary dependence.
pub fn benjamini_yekutieli(p_values: &[f64]) -> Result<Vec<f64>> {
    validate(p_values)?;
    let m = p_values.len();
    let c: f64 = (1..=m).map(|i| 1.0 / i as f64).sum();
    bh_with_factor(p_values, c)
}

fn bh_with_factor(p_values: &[f64], c: f64) -> Result<Vec<f64>> {
    let m = p_values.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| p_values[a].partial_cmp(&p_values[b]).expect("validated"));
    let mut adjusted = vec![0.0; m];
    let mut running_min = 1.0f64;
    for rank in (0..m).rev() {
        let i = order[rank];
        let adj = (p_values[i] * c * m as f64 / (rank + 1) as f64).min(1.0);
        running_min = running_min.min(adj);
        adjusted[i] = running_min;
    }
    Ok(adjusted)
}

/// Indices rejected at level `alpha` given adjusted p-values.
pub fn rejections(adjusted: &[f64], alpha: f64) -> Vec<usize> {
    adjusted
        .iter()
        .enumerate()
        .filter_map(|(i, &p)| (p <= alpha).then_some(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: [f64; 5] = [0.01, 0.04, 0.03, 0.005, 0.2];

    #[test]
    fn bonferroni_multiplies_and_caps() {
        let adj = bonferroni(&PS).unwrap();
        assert_eq!(adj[0], 0.05);
        assert_eq!(adj[3], 0.025);
        assert_eq!(adj[4], 1.0);
    }

    #[test]
    fn sidak_less_conservative_than_bonferroni() {
        let b = bonferroni(&PS).unwrap();
        let s = sidak(&PS).unwrap();
        for (bi, si) in b.iter().zip(&s) {
            assert!(si <= bi, "Šidák must not exceed Bonferroni");
        }
    }

    #[test]
    fn holm_matches_r() {
        // R: p.adjust(c(0.01,0.04,0.03,0.005,0.2), method="holm")
        //    = 0.04 0.09 0.09 0.025 0.2
        let adj = holm(&PS).unwrap();
        let expect = [0.04, 0.09, 0.09, 0.025, 0.2];
        for (a, e) in adj.iter().zip(&expect) {
            assert!((a - e).abs() < 1e-12, "{adj:?}");
        }
    }

    #[test]
    fn bh_matches_r() {
        // R: p.adjust(c(0.01,0.04,0.03,0.005,0.2), method="BH")
        //    = 0.025 0.05 0.05 0.025 0.2
        let adj = benjamini_hochberg(&PS).unwrap();
        let expect = [0.025, 0.05, 0.05, 0.025, 0.2];
        for (a, e) in adj.iter().zip(&expect) {
            assert!((a - e).abs() < 1e-12, "{adj:?}");
        }
    }

    #[test]
    fn by_is_more_conservative_than_bh() {
        let bh = benjamini_hochberg(&PS).unwrap();
        let by = benjamini_yekutieli(&PS).unwrap();
        for (b, y) in bh.iter().zip(&by) {
            assert!(y >= b);
        }
    }

    #[test]
    fn monotonicity_of_adjusted_values() {
        // adjusted p-values must preserve the order of raw p-values
        for f in [
            bonferroni,
            sidak,
            holm,
            benjamini_hochberg,
            benjamini_yekutieli,
        ] {
            let adj = f(&PS).unwrap();
            let mut pairs: Vec<(f64, f64)> = PS.iter().copied().zip(adj).collect();
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in pairs.windows(2) {
                assert!(w[0].1 <= w[1].1 + 1e-12);
            }
        }
    }

    #[test]
    fn single_hypothesis_unchanged() {
        for f in [bonferroni, sidak, holm, benjamini_hochberg] {
            let adj = f(&[0.03]).unwrap();
            assert!((adj[0] - 0.03).abs() < 1e-12);
        }
    }

    #[test]
    fn validation() {
        assert!(bonferroni(&[]).is_err());
        assert!(holm(&[0.5, 1.2]).is_err());
        assert!(benjamini_hochberg(&[-0.1]).is_err());
        assert!(sidak(&[f64::NAN]).is_err());
    }

    #[test]
    fn rejections_selects_at_alpha() {
        let adj = benjamini_hochberg(&PS).unwrap();
        let rej = rejections(&adj, 0.05);
        assert_eq!(rej, vec![0, 1, 2, 3]);
        assert_eq!(rejections(&adj, 0.01), Vec::<usize>::new());
    }

    #[test]
    fn null_uniform_ps_mostly_survive() {
        // uniform p-values (true nulls): FWER methods should reject ~none
        let ps: Vec<f64> = (1..=100).map(|i| i as f64 / 101.0).collect();
        let adj = holm(&ps).unwrap();
        assert!(rejections(&adj, 0.05).is_empty());
    }
}
