//! Special functions: the numerical kernels under every distribution.
//!
//! Implementations follow the classic series/continued-fraction forms
//! (Abramowitz & Stegun; Numerical Recipes §6), accurate to ~1e-10 over the
//! domains the toolkit uses. All functions are pure and allocation-free.

use fact_data::{FactError, Result};

/// Natural log of the gamma function (Lanczos approximation, g=5, n=6).
pub fn ln_gamma(x: f64) -> f64 {
    const COF: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// Error function, via its relation to the regularized incomplete gamma.
pub fn erf(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    if x < 0.0 || a <= 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    1.0 - gamma_p(a, x)
}

fn gamma_series(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-14 {
            break;
        }
    }
    sum * (-x + a * x.ln() - gln).exp()
}

fn gamma_cf(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-14 {
            break;
        }
    }
    (-x + a * x.ln() - gln).exp() * h
}

/// Regularized incomplete beta I_x(a, b).
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    if !(0.0..=1.0).contains(&x) {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b);
    let front = (ln_beta + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < tiny {
        d = tiny;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // even step
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        h *= d * c;
        // odd step
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-14 {
            break;
        }
    }
    h
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// refined with one Halley step; |error| < 1e-12).
pub fn norm_quantile(p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) || p == 0.0 || p == 1.0 {
        return Err(FactError::InvalidArgument(format!(
            "quantile requires p in (0, 1), got {p}"
        )));
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    let x = if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // one Halley refinement step against the true CDF
    let e = 0.5 * erfc(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10); // Γ(5)=24
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-12);
        assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-9);
        assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-9);
        assert!((erf(2.0) - 0.9953222650189527).abs() < 1e-9);
        assert!((erfc(1.0) - 0.15729920705028513).abs() < 1e-9);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^-x
        assert!((gamma_p(1.0, 2.0) - (1.0 - (-2.0f64).exp())).abs() < 1e-10);
        assert!(gamma_p(3.0, 0.0).abs() < 1e-12);
        assert!((gamma_p(0.5, 100.0) - 1.0).abs() < 1e-10);
        assert!((gamma_p(2.0, 2.0) - 0.5939941502901616).abs() < 1e-9);
    }

    #[test]
    fn beta_inc_known_values() {
        // I_x(1,1) = x
        assert!((beta_inc(1.0, 1.0, 0.3) - 0.3).abs() < 1e-10);
        // I_x(2,2) = x^2 (3-2x)
        let x: f64 = 0.4;
        assert!((beta_inc(2.0, 2.0, x) - x * x * (3.0 - 2.0 * x)).abs() < 1e-10);
        // symmetry: I_x(a,b) = 1 − I_{1−x}(b,a)
        assert!((beta_inc(2.5, 1.5, 0.3) - (1.0 - beta_inc(1.5, 2.5, 0.7))).abs() < 1e-10);
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn norm_quantile_round_trips_cdf() {
        for &p in &[0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999] {
            let z = norm_quantile(p).unwrap();
            let back = 0.5 * erfc(-z / std::f64::consts::SQRT_2);
            assert!((back - p).abs() < 1e-10, "p={p}: z={z}, back={back}");
        }
    }

    #[test]
    fn norm_quantile_known_values() {
        assert!(norm_quantile(0.5).unwrap().abs() < 1e-10);
        assert!((norm_quantile(0.975).unwrap() - 1.959963984540054).abs() < 1e-8);
        assert!((norm_quantile(0.95).unwrap() - 1.6448536269514722).abs() < 1e-8);
        assert!(norm_quantile(0.0).is_err());
        assert!(norm_quantile(1.0).is_err());
        assert!(norm_quantile(-0.5).is_err());
    }
}
