//! [`RemoteShard`]: the client side of a worker connection.
//!
//! One `RemoteShard` owns one connection — Unix-domain or TCP, see
//! [`Endpoint`] — to one `fact-shardd` worker. Sends happen on the
//! caller's thread under a short lock; a dedicated reader thread matches
//! response frames back to waiters through a correlation-id map, so many
//! requests can be in flight at once and replies may arrive in any order.
//!
//! When the worker dies the reader thread fails every pending waiter with
//! [`NetError::Disconnected`] and marks the connection dead; the *next*
//! send transparently reconnects (and counts it), which is exactly the
//! shape a kill-and-respawn experiment needs. The waiter map lives on the
//! connection, not the client, so a late drain from a dying reader can
//! never fail requests already riding the replacement connection. Both
//! behaviors are transport-independent (`PROTOCOL.md` §2).

use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::endpoint::{Endpoint, NetStream};
use crate::frame::{encode_frame, read_frame, Frame, FrameKind};
use crate::NetError;

type PendingMap = Arc<Mutex<HashMap<u64, Sender<Result<Frame, NetError>>>>>;

/// Live counters for one remote connection.
#[derive(Debug, Default)]
struct RemoteStats {
    requests: AtomicU64,
    reconnects: AtomicU64,
    errors: AtomicU64,
    rtt_micros_total: AtomicU64,
    rtt_count: AtomicU64,
}

/// Point-in-time view of a connection's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteStatsSnapshot {
    /// Frames sent (all kinds).
    pub requests: u64,
    /// Times the connection was re-established after the first connect.
    pub reconnects: u64,
    /// Sends or waits that surfaced an error (including timeouts).
    pub errors: u64,
    /// Completed request/response round trips measured.
    pub rtt_count: u64,
    /// Mean round-trip time over measured round trips.
    pub rtt_mean_micros: f64,
}

/// A reply that has been sent but not yet received.
///
/// Mirrors `fact-serve`'s `DecisionHandle`: the caller chooses when (and
/// whether) to block.
pub struct PendingReply {
    rx: Receiver<Result<Frame, NetError>>,
    sent_at: Instant,
    stats: Arc<RemoteStats>,
}

impl PendingReply {
    /// Block until the reply arrives or `timeout` passes.
    pub fn wait(self, timeout: Duration) -> Result<Frame, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(frame)) => {
                let rtt = self.sent_at.elapsed();
                self.stats
                    .rtt_micros_total
                    .fetch_add(rtt.as_micros() as u64, Ordering::Relaxed);
                self.stats.rtt_count.fetch_add(1, Ordering::Relaxed);
                Ok(frame)
            }
            Ok(Err(e)) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
            Err(RecvTimeoutError::Timeout) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                Err(NetError::Timeout)
            }
            Err(RecvTimeoutError::Disconnected) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                Err(NetError::Disconnected)
            }
        }
    }

    /// Non-blocking poll; `None` while the reply is still in flight. A
    /// reply already consumed (or failed) polls as `Some(Err(Disconnected))`
    /// afterwards, mirroring a one-shot channel.
    pub fn try_wait(&self) -> Option<Result<Frame, NetError>> {
        match self.rx.try_recv() {
            Ok(Ok(frame)) => {
                let rtt = self.sent_at.elapsed();
                self.stats
                    .rtt_micros_total
                    .fetch_add(rtt.as_micros() as u64, Ordering::Relaxed);
                self.stats.rtt_count.fetch_add(1, Ordering::Relaxed);
                Some(Ok(frame))
            }
            Ok(Err(e)) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                Some(Err(e))
            }
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(NetError::Disconnected)),
        }
    }
}

struct Conn {
    stream: NetStream,
    alive: Arc<AtomicBool>,
    pending: PendingMap,
}

/// A connection to one remote worker process.
pub struct RemoteShard {
    endpoint: Endpoint,
    conn: Mutex<Option<Conn>>,
    next_corr: AtomicU64,
    ever_connected: AtomicBool,
    stats: Arc<RemoteStats>,
}

impl RemoteShard {
    /// Connect to the worker listening on the Unix socket at `path`. Fails
    /// fast if the worker is not up yet; later disconnects are healed
    /// lazily by [`send`].
    ///
    /// [`send`]: RemoteShard::send
    pub fn connect(path: impl Into<PathBuf>) -> Result<RemoteShard, NetError> {
        Self::connect_endpoint(Endpoint::Unix(path.into()))
    }

    /// Connect to the worker at `endpoint` — either transport family.
    /// Failure, reconnect, and pipelining semantics are identical to
    /// [`connect`](RemoteShard::connect).
    pub fn connect_endpoint(endpoint: Endpoint) -> Result<RemoteShard, NetError> {
        let shard = RemoteShard {
            endpoint,
            conn: Mutex::new(None),
            next_corr: AtomicU64::new(1),
            ever_connected: AtomicBool::new(false),
            stats: Arc::new(RemoteStats::default()),
        };
        {
            let mut guard = shard.conn.lock().expect("conn lock");
            shard.ensure_connected(&mut guard)?;
        }
        Ok(shard)
    }

    /// The endpoint this shard dials.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    fn ensure_connected(&self, guard: &mut Option<Conn>) -> Result<(), NetError> {
        if let Some(conn) = guard.as_ref() {
            if conn.alive.load(Ordering::Acquire) {
                return Ok(());
            }
            *guard = None; // its reader fails that connection's waiters
        }
        let stream = self.endpoint.dial()?;
        let alive = Arc::new(AtomicBool::new(true));
        let pending: PendingMap = Arc::new(Mutex::new(HashMap::new()));
        let reader_stream = stream.try_clone()?;
        let reader_pending = Arc::clone(&pending);
        let reader_alive = Arc::clone(&alive);
        thread::Builder::new()
            .name("fact-net-reader".into())
            .spawn(move || reader_loop(reader_stream, reader_pending, reader_alive))
            .map_err(NetError::Io)?;
        if self.ever_connected.swap(true, Ordering::AcqRel) {
            self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        *guard = Some(Conn {
            stream,
            alive,
            pending,
        });
        Ok(())
    }

    /// Send one frame and return a handle for its reply. Reconnects first
    /// if the previous connection died.
    pub fn send(&self, kind: FrameKind, payload: Vec<u8>) -> Result<PendingReply, NetError> {
        let corr_id = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::new(kind, corr_id, payload);
        let bytes = encode_frame(&frame).map_err(|e| {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
            NetError::Frame(e)
        })?;

        let (tx, rx) = mpsc::channel();
        let mut guard = self.conn.lock().expect("conn lock");
        if let Err(e) = self.ensure_connected(&mut guard) {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let conn = guard.as_mut().expect("connected above");
        // register before writing: the reply can race back before we would
        // get another chance to insert
        conn.pending
            .lock()
            .expect("pending lock")
            .insert(corr_id, tx);
        let sent_at = Instant::now();
        if let Err(e) = conn.stream.write_all(&bytes) {
            conn.pending.lock().expect("pending lock").remove(&corr_id);
            conn.alive.store(false, Ordering::Release);
            *guard = None;
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
            return Err(NetError::Io(e));
        }
        drop(guard);
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        Ok(PendingReply {
            rx,
            sent_at,
            stats: Arc::clone(&self.stats),
        })
    }

    /// Convenience: send a control command and wait for its raw ack frame.
    pub fn control(&self, command: &str, timeout: Duration) -> Result<Frame, NetError> {
        let payload = crate::payload::encode(&crate::payload::ControlWire {
            command: command.to_string(),
        })?;
        self.send(FrameKind::Control, payload)?.wait(timeout)
    }

    /// Snapshot the connection counters.
    pub fn stats(&self) -> RemoteStatsSnapshot {
        let rtt_count = self.stats.rtt_count.load(Ordering::Relaxed);
        let rtt_total = self.stats.rtt_micros_total.load(Ordering::Relaxed);
        RemoteStatsSnapshot {
            requests: self.stats.requests.load(Ordering::Relaxed),
            reconnects: self.stats.reconnects.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            rtt_count,
            rtt_mean_micros: if rtt_count == 0 {
                0.0
            } else {
                rtt_total as f64 / rtt_count as f64
            },
        }
    }
}

impl std::fmt::Debug for RemoteShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteShard")
            .field("endpoint", &self.endpoint)
            .field("stats", &self.stats())
            .finish()
    }
}

fn reader_loop(mut stream: NetStream, pending: PendingMap, alive: Arc<AtomicBool>) {
    // a clean close (Ok(None)) or a torn stream (Err) both end the loop:
    // either way this connection is done
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        let waiter = pending.lock().expect("pending lock").remove(&frame.corr_id);
        if let Some(tx) = waiter {
            let _ = tx.send(Ok(frame)); // waiter may have timed out and gone
        }
    }
    alive.store(false, Ordering::Release);
    for (_, tx) in pending.lock().expect("pending lock").drain() {
        let _ = tx.send(Err(NetError::Disconnected));
    }
}
