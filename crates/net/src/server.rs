//! [`Server`]: the worker-side acceptor.
//!
//! Each accepted connection gets two threads, mirroring the single-writer
//! shape used by the serve-side audit sink:
//!
//! * a **reader** that decodes frames and immediately hands each one to the
//!   [`ShardHandler`], which returns a *completion thunk* — enqueue fast,
//!   never block the socket on shard work;
//! * a **writer** that drains thunks in FIFO order, blocking on each until
//!   its response payload is ready, and writes the reply frame.
//!
//! Because the thunks are drained in submission order by a single writer,
//! responses pipeline (many in flight) without interleaving partial frames,
//! and per-connection reply order matches request order even though the
//! correlation id would tolerate reordering.
//!
//! The server listens on either transport family — a Unix-domain socket or
//! a TCP address — via [`Server::bind_endpoint`]; [`Server::bind`] keeps
//! the original Unix-path signature. Framing, deadlines, and teardown are
//! identical across both (see `PROTOCOL.md` §2).

use std::io;
use std::net::Shutdown;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::endpoint::{Endpoint, NetStream};
use crate::frame::{read_frame_deadline, write_frame, DeadlineRead, Frame, FrameKind};

/// Default per-frame delivery deadline: once a frame's first byte arrives,
/// the rest must follow within this budget or the connection is torn down
/// (`PROTOCOL.md §5 — Deadlines`; idle connections are never torn down).
pub const DEFAULT_FRAME_DEADLINE: Duration = Duration::from_secs(30);

/// How often a blocked reader wakes to re-check its frame deadline.
const READ_POLL_INTERVAL: Duration = Duration::from_millis(100);

/// What a worker process plugs into the server: turn one request payload
/// into a thunk that, when called, blocks until the response payload is
/// ready.
///
/// `submit` runs on the connection's reader thread and must return
/// quickly (enqueue, don't compute); the thunk runs on the connection's
/// writer thread.
pub trait ShardHandler: Send + Sync + 'static {
    /// Accept one frame's payload and return its completion thunk.
    fn submit(&self, kind: FrameKind, payload: Vec<u8>) -> Box<dyn FnOnce() -> Vec<u8> + Send>;
}

/// A listening fact-net endpoint (Unix-domain socket or TCP address).
pub struct Server {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<NetStream>>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind the Unix socket at `path` and start accepting connections,
    /// dispatching frames to `handler`. A stale socket file at `path` is
    /// removed first. Peers get [`DEFAULT_FRAME_DEADLINE`] to deliver each
    /// started frame.
    pub fn bind(path: impl Into<PathBuf>, handler: Arc<dyn ShardHandler>) -> io::Result<Server> {
        Server::bind_with_deadline(path, handler, DEFAULT_FRAME_DEADLINE)
    }

    /// Like [`bind`], but with an explicit per-frame delivery deadline: a
    /// peer that dribbles a header byte-at-a-time or stalls mid-payload
    /// for longer than `frame_deadline` is disconnected (the torn frame
    /// surfaces as `FrameError::Truncated` on the reader) instead of
    /// wedging the connection's reader thread forever. Idle connections
    /// with no frame in progress are never torn down.
    ///
    /// [`bind`]: Server::bind
    pub fn bind_with_deadline(
        path: impl Into<PathBuf>,
        handler: Arc<dyn ShardHandler>,
        frame_deadline: Duration,
    ) -> io::Result<Server> {
        Server::bind_endpoint(Endpoint::Unix(path.into()), handler, frame_deadline)
    }

    /// Bind either transport family. `Endpoint::Tcp` with port 0 binds an
    /// ephemeral port; [`endpoint`](Server::endpoint) reports the resolved
    /// address. Deadline semantics match [`bind_with_deadline`] exactly —
    /// the transport changes nothing about the protocol.
    ///
    /// [`bind_with_deadline`]: Server::bind_with_deadline
    pub fn bind_endpoint(
        endpoint: Endpoint,
        handler: Arc<dyn ShardHandler>,
        frame_deadline: Duration,
    ) -> io::Result<Server> {
        let listener = endpoint.bind()?;
        let endpoint = listener.endpoint(); // ephemeral TCP ports resolved
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<NetStream>>> = Arc::new(Mutex::new(Vec::new()));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let accept_threads = Arc::clone(&conn_threads);
        let accept_thread = thread::Builder::new()
            .name("fact-net-accept".into())
            .spawn(move || loop {
                let stream = match listener.accept() {
                    Ok(s) => s,
                    Err(_) => {
                        if accept_stop.load(Ordering::Acquire) {
                            break;
                        }
                        continue;
                    }
                };
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                if let Ok(clone) = stream.try_clone() {
                    accept_conns.lock().expect("conns lock").push(clone);
                }
                let handler = Arc::clone(&handler);
                if let Ok(h) = thread::Builder::new()
                    .name("fact-net-conn".into())
                    .spawn(move || serve_conn(stream, handler, frame_deadline))
                {
                    accept_threads.lock().expect("threads lock").push(h);
                }
            })?;

        Ok(Server {
            endpoint,
            stop,
            accept_thread: Some(accept_thread),
            conns,
            conn_threads,
        })
    }

    /// The endpoint this server listens on (ephemeral TCP ports resolved).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The socket path this server listens on; panics for TCP servers
    /// (kept for Unix-only callers — prefer [`endpoint`](Server::endpoint)).
    pub fn local_path(&self) -> &Path {
        match &self.endpoint {
            Endpoint::Unix(path) => path,
            Endpoint::Tcp(addr) => panic!("local_path() on a TCP server ({addr})"),
        }
    }

    /// Stop accepting, sever live connections, and join all threads.
    /// Idempotent via drop; callable explicitly for deterministic teardown.
    pub fn shutdown(&mut self) {
        self.teardown(true);
    }

    /// Like [`shutdown`], but detaches connection threads instead of
    /// joining them — for kill paths where a connection thread may be
    /// wedged in shard work and the caller cannot afford to wait it out.
    ///
    /// [`shutdown`]: Server::shutdown
    pub fn sever(&mut self) {
        self.teardown(false);
    }

    fn teardown(&mut self, join_conns: bool) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // wake the blocking accept with a throwaway connection
        let _ = self.endpoint.dial();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        for conn in self.conns.lock().expect("conns lock").drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let threads: Vec<_> = self
            .conn_threads
            .lock()
            .expect("threads lock")
            .drain(..)
            .collect();
        if join_conns {
            for h in threads {
                let _ = h.join();
            }
        } // else: handles drop here, detaching the threads
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A request frame is answered with a `Response` frame; checkpoint and
/// control frames are acked with their own kind.
fn reply_kind(request: FrameKind) -> FrameKind {
    match request {
        FrameKind::Request => FrameKind::Response,
        other => other,
    }
}

fn serve_conn(stream: NetStream, handler: Arc<dyn ShardHandler>, frame_deadline: Duration) {
    type Job = (u64, FrameKind, Box<dyn FnOnce() -> Vec<u8> + Send>);
    let (job_tx, job_rx) = mpsc::channel::<Job>();

    // the read timeout is the *poll* interval, not the deadline: each
    // timeout wakes read_frame_deadline to re-check elapsed time against
    // the per-frame budget (and lets a torn-down socket error out)
    let _ = stream.set_read_timeout(Some(
        READ_POLL_INTERVAL.min(frame_deadline.max(Duration::from_millis(1))),
    ));

    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let writer_thread = thread::Builder::new()
        .name("fact-net-writer".into())
        .spawn(move || {
            for (corr_id, kind, thunk) in job_rx {
                let payload = thunk();
                let frame = Frame::new(reply_kind(kind), corr_id, payload);
                if write_frame(&mut writer, &frame).is_err() {
                    break; // client gone; drain remaining thunks unsent
                }
            }
        });
    let writer_thread = match writer_thread {
        Ok(h) => h,
        Err(_) => return,
    };

    let mut reader = stream;
    // a clean close (Closed), torn frame (incl. a slow-loris peer blowing
    // its delivery deadline), or malformed header all end the loop: the
    // codec already typed the error, and a protocol violation is not
    // recoverable mid-stream. Idle polls just loop.
    loop {
        match read_frame_deadline(&mut reader, frame_deadline) {
            Ok(DeadlineRead::Idle) => continue,
            Ok(DeadlineRead::Frame(frame)) => {
                let thunk = handler.submit(frame.kind, frame.payload);
                if job_tx.send((frame.corr_id, frame.kind, thunk)).is_err() {
                    break;
                }
            }
            Ok(DeadlineRead::Closed) | Err(_) => break,
        }
    }
    drop(job_tx); // writer drains queued work, then exits
    let _ = writer_thread.join();
    // actively sever the socket: the server's shutdown bookkeeping holds a
    // clone of this stream, so without an explicit shutdown a cut-off peer
    // (e.g. a slow-loris dribbler) would never observe the disconnect
    let _ = reader.shutdown(Shutdown::Both);
}
