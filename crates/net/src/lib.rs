//! # fact-net — cross-process shard serving
//!
//! The decision service in `fact-serve` runs all shards as threads in one
//! process. This crate is the wire layer that lets the same routing hash
//! dispatch to shards hosted in *other* processes — over Unix-domain
//! sockets on one host, or TCP across a fleet:
//!
//! * [`endpoint`] — the transport abstraction: an [`Endpoint`] names where
//!   a worker listens (`Unix(path)` or `Tcp(addr)`); both families carry
//!   the identical frame protocol with identical deadline and reconnect
//!   semantics.
//! * [`frame`] — a length-prefixed binary frame codec (request / response /
//!   checkpoint / control frames). Std-only, no async runtime: blocking
//!   I/O with one reader and one writer thread per connection, mirroring
//!   the single-writer shape of the serve-side audit sink.
//! * [`payload`] — the JSON wire payloads carried inside frames. All types
//!   are plain named-field structs with `Option` fields (the vendored
//!   serde derives support nothing fancier, which keeps the wire format
//!   boring on purpose).
//! * [`client`] — [`RemoteShard`], a connection to one worker process:
//!   correlation-id matched in-flight requests, reconnect-on-next-request
//!   after a worker dies, RTT / reconnect / error counters.
//! * [`server`] — [`Server`], the worker-side acceptor: each connection
//!   gets a reader thread that enqueues work fast and a writer thread
//!   that drains completion thunks in FIFO order, so responses pipeline
//!   without reordering. Each started frame must be delivered within a
//!   per-frame deadline ([`server::DEFAULT_FRAME_DEADLINE`], tunable via
//!   [`Server::bind_with_deadline`]) so a slow-loris peer cannot wedge a
//!   reader thread.
//!
//! The crate knows nothing about `fact-serve`'s `Decision` types: the
//! payload structs are the protocol, and both ends convert at the edge.
//!
//! ## Wire-format specification
//!
//! The normative specification of the wire format — frame header layout,
//! kind and correlation-id semantics, version negotiation, optional-field
//! interop rules, deadline behavior, and the reshard control commands —
//! lives in `PROTOCOL.md` at the repository root. Where this rustdoc and
//! that document disagree, `PROTOCOL.md` wins; this crate is one
//! implementation of it. Section references in this crate's docs
//! (`PROTOCOL.md §2 — Transports`, `§3 — Frame header`, `§5 — Deadlines`,
//! `§6 — Control commands`) name anchors in that document;
//! `scripts/ci.sh` checks they resolve.

#![warn(missing_docs)]

pub mod client;
pub mod endpoint;
pub mod frame;
pub mod payload;
pub mod server;

pub use client::{PendingReply, RemoteShard, RemoteStatsSnapshot};
pub use endpoint::{Endpoint, NetListener, NetStream};
pub use frame::{
    read_frame, read_frame_deadline, write_frame, DeadlineRead, Frame, FrameError, FrameKind,
    HEADER_LEN, MAX_PAYLOAD,
};
pub use payload::{
    decode, encode, CheckpointAckWire, ControlAckWire, ControlWire, DecisionWire, RequestWire,
    ResponseWire,
};
pub use server::{Server, ShardHandler, DEFAULT_FRAME_DEADLINE};

use std::fmt;
use std::io;

/// Errors surfaced by the client/payload layers.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level I/O failure (connect, write).
    Io(io::Error),
    /// The frame codec rejected bytes on the wire.
    Frame(FrameError),
    /// The connection dropped while a reply was still pending.
    Disconnected,
    /// No reply arrived within the caller's deadline.
    Timeout,
    /// A payload failed to parse as the expected wire type.
    Decode(String),
    /// The remote worker answered with an application-level error.
    Remote(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "net i/o error: {e}"),
            NetError::Frame(e) => write!(f, "frame error: {e}"),
            NetError::Disconnected => write!(f, "connection closed with reply pending"),
            NetError::Timeout => write!(f, "timed out waiting for reply"),
            NetError::Decode(msg) => write!(f, "payload decode error: {msg}"),
            NetError::Remote(msg) => write!(f, "remote error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}
