//! JSON wire payloads carried inside frames.
//!
//! The vendored serde derives support named-field structs and `Option`
//! fields only, so success/failure is expressed as paired `Option`s
//! (`ok` / `error`) rather than a tagged enum. Exactly one should be
//! `Some`; [`ResponseWire::into_result`] enforces that at the edge.

use serde::{Deserialize, Serialize};

use crate::NetError;

/// A decision request: client → worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestWire {
    /// Feature vector for the model hosted by the worker shard.
    pub features: Vec<f64>,
    /// Protected-group membership for the fairness guard.
    pub group_b: bool,
    /// Routing key; the worker uses it to pick its local shard.
    pub route_key: u64,
}

/// A served decision (mirrors `fact-serve`'s `Decision`, converted at the
/// edge so this crate stays serve-agnostic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionWire {
    /// Model score in `[0, 1]`.
    pub probability: f64,
    /// Whether the score cleared the favorable threshold.
    pub favorable: bool,
    /// Whether any guard flagged the decision.
    pub flagged: bool,
    /// Worker-local shard that served it.
    pub shard: usize,
}

/// A decision response: worker → client. Exactly one of `ok` / `error`
/// is `Some`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseWire {
    /// The decision, when the worker served it.
    pub ok: Option<DecisionWire>,
    /// The worker-side error, when it did not.
    pub error: Option<String>,
}

impl ResponseWire {
    /// Wrap a served decision.
    pub fn success(decision: DecisionWire) -> ResponseWire {
        ResponseWire {
            ok: Some(decision),
            error: None,
        }
    }

    /// Wrap a worker-side failure.
    pub fn failure(msg: impl Into<String>) -> ResponseWire {
        ResponseWire {
            ok: None,
            error: Some(msg.into()),
        }
    }

    /// Collapse the option pair back into a result, treating a malformed
    /// both-`None` response as a remote error.
    pub fn into_result(self) -> Result<DecisionWire, NetError> {
        match (self.ok, self.error) {
            (Some(d), _) => Ok(d),
            (None, Some(msg)) => Err(NetError::Remote(msg)),
            (None, None) => Err(NetError::Decode(
                "response carried neither ok nor error".into(),
            )),
        }
    }
}

/// An out-of-band control command ("ping", "shutdown", "checkpoint").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlWire {
    /// Command verb.
    pub command: String,
}

/// Acknowledgement for a control command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlAckWire {
    /// Whether the worker accepted the command.
    pub ok: bool,
    /// Human-readable detail (e.g. why a command was refused).
    pub info: String,
}

/// Acknowledgement for a checkpoint flush: what was durably written.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointAckWire {
    /// Shards whose guard state was checkpointed.
    pub shards: usize,
    /// Total decisions covered by the checkpoints.
    pub decisions: u64,
}

/// Encode a wire type as JSON payload bytes.
pub fn encode<T: Serialize>(value: &T) -> Result<Vec<u8>, NetError> {
    serde_json::to_string(value)
        .map(String::into_bytes)
        .map_err(|e| NetError::Decode(e.to_string()))
}

/// Decode JSON payload bytes into a wire type.
pub fn decode<T: Deserialize>(bytes: &[u8]) -> Result<T, NetError> {
    let s = std::str::from_utf8(bytes).map_err(|e| NetError::Decode(e.to_string()))?;
    serde_json::from_str(s).map_err(|e| NetError::Decode(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_response_roundtrip() {
        let req = RequestWire {
            features: vec![0.25, -1.5, 3.0],
            group_b: true,
            route_key: 42,
        };
        let back: RequestWire = decode(&encode(&req).unwrap()).unwrap();
        assert_eq!(back, req);

        let resp = ResponseWire::success(DecisionWire {
            probability: 0.875,
            favorable: true,
            flagged: false,
            shard: 3,
        });
        let back: ResponseWire = decode(&encode(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.into_result().unwrap().shard, 3);
    }

    #[test]
    fn failure_and_malformed_responses_surface_as_errors() {
        let resp = ResponseWire::failure("queue full");
        let back: ResponseWire = decode(&encode(&resp).unwrap()).unwrap();
        assert!(matches!(back.into_result(), Err(NetError::Remote(m)) if m == "queue full"));

        let neither = ResponseWire {
            ok: None,
            error: None,
        };
        assert!(matches!(neither.into_result(), Err(NetError::Decode(_))));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode::<RequestWire>(b"not json").is_err());
        assert!(decode::<RequestWire>(&[0xff, 0xfe]).is_err());
        assert!(decode::<RequestWire>(b"{\"features\": \"nope\"}").is_err());
    }
}
