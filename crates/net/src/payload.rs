//! JSON wire payloads carried inside frames.
//!
//! The vendored serde derives support named-field structs and `Option`
//! fields only, so success/failure is expressed as paired `Option`s
//! (`ok` / `error`) rather than a tagged enum. Exactly one should be
//! `Some`; [`ResponseWire::into_result`] enforces that at the edge.

use serde::{Deserialize, Serialize};

use crate::NetError;

/// A decision request: client → worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestWire {
    /// Feature vector for the model hosted by the worker shard.
    pub features: Vec<f64>,
    /// Protected-group membership for the fairness guard.
    pub group_b: bool,
    /// Routing key; the worker uses it to pick its local shard.
    pub route_key: u64,
    /// Tenant id for per-tenant admission quotas. `None` (a pre-tenant
    /// peer) decodes as tenant 0 at the serve edge, so old clients and
    /// workers interoperate with new ones.
    pub tenant: Option<u64>,
}

/// A served decision (mirrors `fact-serve`'s `Decision`, converted at the
/// edge so this crate stays serve-agnostic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionWire {
    /// Model score in `[0, 1]`.
    pub probability: f64,
    /// Whether the score cleared the favorable threshold.
    pub favorable: bool,
    /// Whether any guard flagged the decision.
    pub flagged: bool,
    /// Worker-local shard that served it.
    pub shard: usize,
}

/// A decision response: worker → client. Exactly one of `ok` / `error`
/// is `Some`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseWire {
    /// The decision, when the worker served it.
    pub ok: Option<DecisionWire>,
    /// The worker-side error, when it did not.
    pub error: Option<String>,
    /// Machine-readable error class (`"busy"`, `"throttled"`,
    /// `"rejected"`), so the client can rebuild a typed error instead of
    /// collapsing everything to an opaque remote failure. `None` on
    /// success and for untyped errors (including pre-tenant workers).
    pub code: Option<String>,
    /// The tenant an error was attributed to (set for `"throttled"`).
    pub tenant: Option<u64>,
}

impl ResponseWire {
    /// Wrap a served decision.
    pub fn success(decision: DecisionWire) -> ResponseWire {
        ResponseWire {
            ok: Some(decision),
            error: None,
            code: None,
            tenant: None,
        }
    }

    /// Wrap a worker-side failure.
    pub fn failure(msg: impl Into<String>) -> ResponseWire {
        ResponseWire {
            ok: None,
            error: Some(msg.into()),
            code: None,
            tenant: None,
        }
    }

    /// Wrap a worker-side failure with a machine-readable class and an
    /// optional tenant attribution.
    pub fn failure_coded(
        msg: impl Into<String>,
        code: impl Into<String>,
        tenant: Option<u64>,
    ) -> ResponseWire {
        ResponseWire {
            ok: None,
            error: Some(msg.into()),
            code: Some(code.into()),
            tenant,
        }
    }

    /// Collapse the option pair back into a result, treating a malformed
    /// both-`None` response as a remote error.
    pub fn into_result(self) -> Result<DecisionWire, NetError> {
        match (self.ok, self.error) {
            (Some(d), _) => Ok(d),
            (None, Some(msg)) => Err(NetError::Remote(msg)),
            (None, None) => Err(NetError::Decode(
                "response carried neither ok nor error".into(),
            )),
        }
    }
}

/// An out-of-band control command ("ping", "shutdown", "checkpoint").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlWire {
    /// Command verb.
    pub command: String,
}

/// Acknowledgement for a control command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlAckWire {
    /// Whether the worker accepted the command.
    pub ok: bool,
    /// Human-readable detail (e.g. why a command was refused).
    pub info: String,
}

/// Acknowledgement for a checkpoint flush: what was durably written.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointAckWire {
    /// Shards whose guard state was checkpointed.
    pub shards: usize,
    /// Total decisions covered by the checkpoints.
    pub decisions: u64,
}

/// Encode a wire type as JSON payload bytes.
pub fn encode<T: Serialize>(value: &T) -> Result<Vec<u8>, NetError> {
    serde_json::to_string(value)
        .map(String::into_bytes)
        .map_err(|e| NetError::Decode(e.to_string()))
}

/// Decode JSON payload bytes into a wire type.
pub fn decode<T: Deserialize>(bytes: &[u8]) -> Result<T, NetError> {
    let s = std::str::from_utf8(bytes).map_err(|e| NetError::Decode(e.to_string()))?;
    serde_json::from_str(s).map_err(|e| NetError::Decode(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_response_roundtrip() {
        let req = RequestWire {
            features: vec![0.25, -1.5, 3.0],
            group_b: true,
            route_key: 42,
            tenant: Some(7),
        };
        let back: RequestWire = decode(&encode(&req).unwrap()).unwrap();
        assert_eq!(back, req);

        let resp = ResponseWire::success(DecisionWire {
            probability: 0.875,
            favorable: true,
            flagged: false,
            shard: 3,
        });
        let back: ResponseWire = decode(&encode(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.into_result().unwrap().shard, 3);
    }

    #[test]
    fn failure_and_malformed_responses_surface_as_errors() {
        let resp = ResponseWire::failure("queue full");
        let back: ResponseWire = decode(&encode(&resp).unwrap()).unwrap();
        assert!(matches!(back.into_result(), Err(NetError::Remote(m)) if m == "queue full"));

        let neither = ResponseWire {
            ok: None,
            error: None,
            code: None,
            tenant: None,
        };
        assert!(matches!(neither.into_result(), Err(NetError::Decode(_))));
    }

    #[test]
    fn coded_failure_roundtrips_with_tenant() {
        let resp = ResponseWire::failure_coded("tenant 9 over quota", "throttled", Some(9));
        let back: ResponseWire = decode(&encode(&resp).unwrap()).unwrap();
        assert_eq!(back.code.as_deref(), Some("throttled"));
        assert_eq!(back.tenant, Some(9));
        assert!(matches!(back.into_result(), Err(NetError::Remote(_))));
    }

    #[test]
    fn pre_tenant_payloads_still_decode() {
        // frames from a peer built before the tenant/code fields existed
        let req: RequestWire =
            decode(br#"{"features":[1.0],"group_b":false,"route_key":5}"#).unwrap();
        assert_eq!(req.tenant, None);
        let resp: ResponseWire = decode(br#"{"ok":null,"error":"queue full"}"#).unwrap();
        assert_eq!(resp.code, None);
        assert!(matches!(resp.into_result(), Err(NetError::Remote(_))));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode::<RequestWire>(b"not json").is_err());
        assert!(decode::<RequestWire>(&[0xff, 0xfe]).is_err());
        assert!(decode::<RequestWire>(b"{\"features\": \"nope\"}").is_err());
    }
}
