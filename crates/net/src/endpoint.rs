//! Transport abstraction: one frame protocol, two stream families.
//!
//! fact-net began as a Unix-domain-socket protocol; multi-host fleets need
//! the same frames over TCP. An [`Endpoint`] names where a worker listens
//! (`Unix(path)` or `Tcp(addr)`), [`NetStream`] is the connected stream
//! either family produces, and [`NetListener`] is the accepting side. The
//! frame codec, per-frame delivery deadlines, and reconnect semantics are
//! byte-for-byte identical across both transports — the wire format is
//! specified normatively in `PROTOCOL.md` at the repository root, and §2
//! there pins exactly this "the transport is a byte pipe" contract.
//!
//! TCP streams set `TCP_NODELAY`: frames are small and latency-bound, and
//! the client pipelines by correlation id rather than by coalescing writes.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a fact-net worker listens: a Unix-domain socket path (same-host
/// fleets, the original transport) or a TCP `host:port` address
/// (multi-host fleets). Both carry the identical frame protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A Unix-domain socket at this filesystem path.
    Unix(PathBuf),
    /// A TCP socket at this `host:port` address.
    Tcp(String),
}

impl Endpoint {
    /// A Unix-domain endpoint at `path`.
    pub fn unix(path: impl Into<PathBuf>) -> Endpoint {
        Endpoint::Unix(path.into())
    }

    /// A TCP endpoint at `addr` (`host:port`; port 0 asks [`bind`] for an
    /// ephemeral port, resolvable afterwards via [`NetListener::endpoint`]).
    ///
    /// [`bind`]: Endpoint::bind
    pub fn tcp(addr: impl Into<String>) -> Endpoint {
        Endpoint::Tcp(addr.into())
    }

    /// Connect to this endpoint.
    pub fn dial(&self) -> io::Result<NetStream> {
        match self {
            Endpoint::Unix(path) => Ok(NetStream::Unix(UnixStream::connect(path)?)),
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str())?;
                let _ = stream.set_nodelay(true);
                Ok(NetStream::Tcp(stream))
            }
        }
    }

    /// Bind this endpoint for listening. For `Unix`, a stale socket file is
    /// removed first. For `Tcp`, port 0 binds an ephemeral port; the
    /// listener's [`endpoint`](NetListener::endpoint) reports the resolved
    /// address either way.
    pub fn bind(&self) -> io::Result<NetListener> {
        match self {
            Endpoint::Unix(path) => {
                match std::fs::remove_file(path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
                Ok(NetListener::Unix(UnixListener::bind(path)?, path.clone()))
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let resolved = listener.local_addr()?.to_string();
                Ok(NetListener::Tcp(listener, resolved))
            }
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A connected stream of either transport family. Implements [`Read`] and
/// [`Write`] so the frame codec is transport-blind.
#[derive(Debug)]
pub enum NetStream {
    /// A connected Unix-domain stream.
    Unix(UnixStream),
    /// A connected TCP stream.
    Tcp(TcpStream),
}

impl NetStream {
    /// Clone the underlying socket handle (both halves address the same
    /// connection, as with [`UnixStream::try_clone`]).
    pub fn try_clone(&self) -> io::Result<NetStream> {
        match self {
            NetStream::Unix(s) => Ok(NetStream::Unix(s.try_clone()?)),
            NetStream::Tcp(s) => Ok(NetStream::Tcp(s.try_clone()?)),
        }
    }

    /// Set the socket read timeout (used as the deadline-poll interval by
    /// the server's reader loop).
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            NetStream::Unix(s) => s.set_read_timeout(dur),
            NetStream::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    /// Shut down both halves of the connection.
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        match self {
            NetStream::Unix(s) => s.shutdown(how),
            NetStream::Tcp(s) => s.shutdown(how),
        }
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            NetStream::Unix(s) => s.read(buf),
            NetStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            NetStream::Unix(s) => s.write(buf),
            NetStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            NetStream::Unix(s) => s.flush(),
            NetStream::Tcp(s) => s.flush(),
        }
    }
}

/// A listening socket of either transport family.
pub enum NetListener {
    /// A Unix-domain listener and the path it is bound to.
    Unix(UnixListener, PathBuf),
    /// A TCP listener and its resolved `host:port` address.
    Tcp(TcpListener, String),
}

impl NetListener {
    /// Block until the next connection arrives. TCP connections get
    /// `TCP_NODELAY` set before they are handed out.
    pub fn accept(&self) -> io::Result<NetStream> {
        match self {
            NetListener::Unix(l, _) => Ok(NetStream::Unix(l.accept()?.0)),
            NetListener::Tcp(l, _) => {
                let (stream, _) = l.accept()?;
                let _ = stream.set_nodelay(true);
                Ok(NetStream::Tcp(stream))
            }
        }
    }

    /// The endpoint this listener is bound to, with ephemeral TCP ports
    /// resolved to their actual value.
    pub fn endpoint(&self) -> Endpoint {
        match self {
            NetListener::Unix(_, path) => Endpoint::Unix(path.clone()),
            NetListener::Tcp(_, addr) => Endpoint::Tcp(addr.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_tagged_and_unambiguous() {
        assert_eq!(
            Endpoint::unix("/tmp/w.sock").to_string(),
            "unix:/tmp/w.sock"
        );
        assert_eq!(
            Endpoint::tcp("127.0.0.1:9001").to_string(),
            "tcp:127.0.0.1:9001"
        );
    }

    #[test]
    fn tcp_ephemeral_port_resolves_and_round_trips() {
        let listener = Endpoint::tcp("127.0.0.1:0").bind().unwrap();
        let resolved = listener.endpoint();
        match &resolved {
            Endpoint::Tcp(addr) => assert!(!addr.ends_with(":0"), "port not resolved: {addr}"),
            other => panic!("expected tcp endpoint, got {other:?}"),
        }
        let accepted = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut buf = [0u8; 5];
            conn.read_exact(&mut buf).unwrap();
            buf
        });
        let mut client = resolved.dial().unwrap();
        client.write_all(b"hello").unwrap();
        assert_eq!(&accepted.join().unwrap(), b"hello");
    }

    #[test]
    fn unix_bind_replaces_stale_socket_file() {
        let path = std::env::temp_dir().join(format!("fact-net-ep-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // a stale file from a dead process must not block a fresh bind
        std::fs::write(&path, b"stale").unwrap();
        let listener = Endpoint::unix(&path).bind().unwrap();
        assert_eq!(listener.endpoint(), Endpoint::Unix(path.clone()));
        drop(listener);
        let _ = std::fs::remove_file(&path);
    }
}
