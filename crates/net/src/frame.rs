//! Length-prefixed binary frame codec.
//!
//! Every message on a fact-net socket is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "FNET"
//! 4       1     version (currently 1)
//! 5       1     kind    (1=request 2=response 3=checkpoint 4=control)
//! 6       8     corr_id (u64 LE) — matches a response to its request
//! 14      4     len     (u32 LE) — payload byte count, <= MAX_PAYLOAD
//! 18      len   payload
//! ```
//!
//! [`read_frame`] distinguishes a *clean* close (EOF exactly on a frame
//! boundary → `Ok(None)`) from a *torn* one (EOF mid-header or mid-payload
//! → [`FrameError::Truncated`]), and rejects oversized length prefixes
//! before allocating, so a corrupt or malicious peer cannot balloon memory.

use std::fmt;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"FNET";
/// Protocol version carried in byte 4.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 18;
/// Hard cap on payload size; larger length prefixes are rejected unread.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// What a frame carries; the discriminant is the on-wire kind byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// A decision request (client → worker).
    Request = 1,
    /// A decision response (worker → client).
    Response = 2,
    /// A checkpoint flush command or its acknowledgement.
    Checkpoint = 3,
    /// An out-of-band control command ("ping", "shutdown") or its ack.
    Control = 4,
}

impl FrameKind {
    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Request),
            2 => Some(FrameKind::Response),
            3 => Some(FrameKind::Checkpoint),
            4 => Some(FrameKind::Control),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind.
    pub kind: FrameKind,
    /// Correlation id: a response echoes its request's id.
    pub corr_id: u64,
    /// Opaque payload bytes (JSON at the [`crate::payload`] layer).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Build a frame.
    pub fn new(kind: FrameKind, corr_id: u64, payload: Vec<u8>) -> Frame {
        Frame {
            kind,
            corr_id,
            payload,
        }
    }
}

/// Ways the codec can reject bytes.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying read/write failed.
    Io(io::Error),
    /// The stream ended mid-frame: `got` of `needed` bytes arrived.
    Truncated {
        /// Bytes the frame section required.
        needed: usize,
        /// Bytes actually read before EOF.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Declared payload length.
        len: u32,
        /// The cap it violated.
        max: u32,
    },
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown kind byte.
    BadKind(u8),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Truncated { needed, got } => {
                write!(f, "stream truncated mid-frame: got {got} of {needed} bytes")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds cap {max}")
            }
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind byte {k}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Encode `frame` to its wire bytes.
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>, FrameError> {
    if frame.payload.len() > MAX_PAYLOAD as usize {
        return Err(FrameError::Oversized {
            len: frame.payload.len() as u32,
            max: MAX_PAYLOAD,
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + frame.payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(frame.kind as u8);
    out.extend_from_slice(&frame.corr_id.to_le_bytes());
    out.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame.payload);
    Ok(out)
}

/// Write one frame to `w` (single `write_all`, so concurrent writers on a
/// duplicated stream must still serialize at a higher level).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), FrameError> {
    let bytes = encode_frame(frame)?;
    w.write_all(&bytes)?;
    Ok(())
}

/// Read until `buf` is full or EOF; returns bytes read. Unlike
/// `read_exact`, a short read is reported with its count so the caller can
/// tell "clean close" from "torn frame".
fn read_fully<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(got)
}

/// Read one frame from `r`.
///
/// Returns `Ok(None)` when the stream closes cleanly on a frame boundary,
/// `Err(Truncated)` when it closes mid-frame, and the other [`FrameError`]
/// variants for malformed headers.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    let got = read_fully(r, &mut header)?;
    if got == 0 {
        return Ok(None); // clean EOF between frames
    }
    if got < HEADER_LEN {
        return Err(FrameError::Truncated {
            needed: HEADER_LEN,
            got,
        });
    }
    let (kind, corr_id, len) = parse_header(&header)?;
    let mut payload = vec![0u8; len as usize];
    let got = read_fully(r, &mut payload)?;
    if got < payload.len() {
        return Err(FrameError::Truncated {
            needed: len as usize,
            got,
        });
    }
    Ok(Some(Frame {
        kind,
        corr_id,
        payload,
    }))
}

/// Validate a raw header and extract `(kind, corr_id, len)`.
fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(FrameKind, u64, u32), FrameError> {
    if header[..4] != MAGIC {
        return Err(FrameError::BadMagic(
            header[..4].try_into().expect("4-byte slice"),
        ));
    }
    if header[4] != VERSION {
        return Err(FrameError::BadVersion(header[4]));
    }
    let kind = FrameKind::from_byte(header[5]).ok_or(FrameError::BadKind(header[5]))?;
    let corr_id = u64::from_le_bytes(header[6..14].try_into().expect("8-byte slice"));
    let len = u32::from_le_bytes(header[14..18].try_into().expect("4-byte slice"));
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    Ok((kind, corr_id, len))
}

/// Outcome of one [`read_frame_deadline`] attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum DeadlineRead {
    /// A complete frame arrived within the deadline.
    Frame(Frame),
    /// The peer closed cleanly on a frame boundary.
    Closed,
    /// The read timed out with *zero* bytes of the next frame buffered:
    /// the connection is idle, not torn. The caller may poll again (e.g.
    /// after checking a shutdown flag).
    Idle,
}

/// How one header/payload section of a frame ended.
enum SectionRead {
    /// The buffer was filled.
    Full,
    /// The stream closed after `got` bytes.
    Eof(usize),
    /// The frame deadline expired after `got` bytes (0 means the section
    /// never started).
    TimedOut(usize),
}

/// Read until `buf` is full, EOF, or the frame deadline expires.
///
/// `started` is the arrival time of the frame's first byte, shared across
/// the header and payload sections so a peer cannot reset the clock at a
/// section boundary. Timeout-flavoured io errors (`WouldBlock` /
/// `TimedOut`, produced by a socket `read_timeout`) are polls, not
/// failures: with no frame in progress they report an idle connection;
/// mid-frame they only fail once `deadline` has elapsed since the first
/// byte.
fn read_fully_deadline<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    started: &mut Option<Instant>,
    deadline: Duration,
) -> Result<SectionRead, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Ok(SectionRead::Eof(got)),
            Ok(n) => {
                got += n;
                started.get_or_insert_with(Instant::now);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                match started {
                    None => return Ok(SectionRead::TimedOut(0)),
                    Some(t) if t.elapsed() >= deadline => {
                        return Ok(SectionRead::TimedOut(got));
                    }
                    Some(_) => continue,
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(SectionRead::Full)
}

/// Read one frame from `r`, bounding how long a peer may take to deliver
/// it once its first byte has arrived.
///
/// `r` should have a socket `read_timeout` set (see
/// [`crate::Server::bind_with_deadline`]) so that reads return
/// `WouldBlock`/`TimedOut` periodically; each such poll re-checks the
/// per-frame `deadline`. A peer that dribbles header bytes or stalls
/// mid-payload past the deadline surfaces as [`FrameError::Truncated`] —
/// never as an unbounded blocking read. A timeout with *no* frame in
/// progress is [`DeadlineRead::Idle`], letting the caller poll without
/// tearing down healthy-but-quiet connections.
pub fn read_frame_deadline<R: Read>(
    r: &mut R,
    deadline: Duration,
) -> Result<DeadlineRead, FrameError> {
    let mut started: Option<Instant> = None;
    let mut header = [0u8; HEADER_LEN];
    match read_fully_deadline(r, &mut header, &mut started, deadline)? {
        SectionRead::Full => {}
        SectionRead::Eof(0) => return Ok(DeadlineRead::Closed),
        SectionRead::TimedOut(0) => return Ok(DeadlineRead::Idle),
        SectionRead::Eof(got) | SectionRead::TimedOut(got) => {
            return Err(FrameError::Truncated {
                needed: HEADER_LEN,
                got,
            });
        }
    }
    let (kind, corr_id, len) = parse_header(&header)?;
    let mut payload = vec![0u8; len as usize];
    match read_fully_deadline(r, &mut payload, &mut started, deadline)? {
        SectionRead::Full => {}
        // the header arrived, so even a 0-byte payload section is torn
        SectionRead::Eof(got) | SectionRead::TimedOut(got) => {
            return Err(FrameError::Truncated {
                needed: len as usize,
                got,
            });
        }
    }
    Ok(DeadlineRead::Frame(Frame {
        kind,
        corr_id,
        payload,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    fn roundtrip(frame: &Frame) -> Frame {
        let bytes = encode_frame(frame).unwrap();
        let mut cur = Cursor::new(bytes);
        let back = read_frame(&mut cur).unwrap().unwrap();
        // and the stream is now cleanly empty
        assert!(read_frame(&mut cur).unwrap().is_none());
        back
    }

    #[test]
    fn roundtrip_each_kind() {
        for kind in [
            FrameKind::Request,
            FrameKind::Response,
            FrameKind::Checkpoint,
            FrameKind::Control,
        ] {
            let f = Frame::new(kind, 0xdead_beef_0042, b"hello".to_vec());
            assert_eq!(roundtrip(&f), f);
        }
    }

    #[test]
    fn empty_payload_roundtrips() {
        let f = Frame::new(FrameKind::Control, 7, Vec::new());
        assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let a = Frame::new(FrameKind::Request, 1, b"one".to_vec());
        let b = Frame::new(FrameKind::Response, 2, b"two".to_vec());
        let mut bytes = encode_frame(&a).unwrap();
        bytes.extend(encode_frame(&b).unwrap());
        let mut cur = Cursor::new(bytes);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), a);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b);
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn truncated_header_and_payload_are_torn_not_clean() {
        let bytes = encode_frame(&Frame::new(FrameKind::Request, 9, b"payload".to_vec())).unwrap();
        // every strict prefix except the empty one is a torn frame
        for cut in 1..bytes.len() {
            let mut cur = Cursor::new(bytes[..cut].to_vec());
            match read_frame(&mut cur) {
                Err(FrameError::Truncated { needed, got }) => {
                    assert!(got < needed, "cut at {cut}: got {got} needed {needed}")
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
        // the empty prefix is a clean close
        let mut cur = Cursor::new(Vec::new());
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut bytes = encode_frame(&Frame::new(FrameKind::Request, 1, Vec::new())).unwrap();
        bytes[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cur = Cursor::new(bytes);
        match read_frame(&mut cur) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, MAX_PAYLOAD);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // encoding an oversized payload is refused symmetrically
        let big = Frame::new(FrameKind::Request, 1, vec![0u8; MAX_PAYLOAD as usize + 1]);
        assert!(matches!(
            encode_frame(&big),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn bad_magic_version_and_kind_are_typed_errors() {
        let good = encode_frame(&Frame::new(FrameKind::Request, 1, b"x".to_vec())).unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut Cursor::new(bad)),
            Err(FrameError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            read_frame(&mut Cursor::new(bad)),
            Err(FrameError::BadVersion(99))
        ));

        let mut bad = good;
        bad[5] = 0;
        assert!(matches!(
            read_frame(&mut Cursor::new(bad)),
            Err(FrameError::BadKind(0))
        ));
    }

    /// Scripted reader: each step yields some bytes or a timeout error,
    /// then the stream reports EOF. Drives `read_frame_deadline`
    /// deterministically — no sockets, no sleeps.
    struct Scripted {
        steps: std::collections::VecDeque<Result<Vec<u8>, io::ErrorKind>>,
    }

    impl Scripted {
        fn new(steps: Vec<Result<Vec<u8>, io::ErrorKind>>) -> Scripted {
            Scripted {
                steps: steps.into(),
            }
        }
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.steps.pop_front() {
                Some(Ok(bytes)) => {
                    assert!(bytes.len() <= buf.len(), "script step larger than request");
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(Err(kind)) => Err(io::Error::new(kind, "scripted timeout")),
                None => Ok(0),
            }
        }
    }

    #[test]
    fn deadline_read_completes_a_dribbled_frame_within_budget() {
        // one byte per read step, no timeouts: slow but inside the deadline
        let bytes = encode_frame(&Frame::new(FrameKind::Request, 3, b"ok".to_vec())).unwrap();
        let steps = bytes.iter().map(|b| Ok(vec![*b])).collect();
        let mut r = Scripted::new(steps);
        match read_frame_deadline(&mut r, Duration::from_secs(60)).unwrap() {
            DeadlineRead::Frame(f) => {
                assert_eq!(f.corr_id, 3);
                assert_eq!(f.payload, b"ok");
            }
            other => panic!("expected Frame, got {other:?}"),
        }
    }

    #[test]
    fn timeout_with_no_bytes_is_idle_not_an_error() {
        let mut r = Scripted::new(vec![Err(io::ErrorKind::WouldBlock)]);
        assert_eq!(
            read_frame_deadline(&mut r, Duration::ZERO).unwrap(),
            DeadlineRead::Idle
        );
        let mut r = Scripted::new(vec![Err(io::ErrorKind::TimedOut)]);
        assert_eq!(
            read_frame_deadline(&mut r, Duration::ZERO).unwrap(),
            DeadlineRead::Idle
        );
    }

    #[test]
    fn clean_eof_is_closed() {
        let mut r = Scripted::new(Vec::new());
        assert_eq!(
            read_frame_deadline(&mut r, Duration::from_secs(1)).unwrap(),
            DeadlineRead::Closed
        );
    }

    #[test]
    fn header_dribble_past_deadline_is_truncated_not_a_hang() {
        // slow-loris: one header byte arrives, then the peer stalls. With a
        // zero deadline the first post-byte timeout poll tears the frame.
        let bytes = encode_frame(&Frame::new(FrameKind::Request, 1, b"x".to_vec())).unwrap();
        let mut r = Scripted::new(vec![
            Ok(bytes[..1].to_vec()),
            Err(io::ErrorKind::WouldBlock),
        ]);
        match read_frame_deadline(&mut r, Duration::ZERO) {
            Err(FrameError::Truncated { needed, got }) => {
                assert_eq!(needed, HEADER_LEN);
                assert_eq!(got, 1);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn mid_payload_stall_past_deadline_is_truncated() {
        let bytes = encode_frame(&Frame::new(FrameKind::Request, 2, b"abcdef".to_vec())).unwrap();
        // full header + half the payload, then a stall
        let mut r = Scripted::new(vec![
            Ok(bytes[..HEADER_LEN].to_vec()),
            Ok(bytes[HEADER_LEN..HEADER_LEN + 3].to_vec()),
            Err(io::ErrorKind::TimedOut),
        ]);
        match read_frame_deadline(&mut r, Duration::ZERO) {
            Err(FrameError::Truncated { needed, got }) => {
                assert_eq!(needed, 6);
                assert_eq!(got, 3);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn eof_mid_frame_is_truncated_under_deadline_reader_too() {
        let bytes = encode_frame(&Frame::new(FrameKind::Request, 4, b"zz".to_vec())).unwrap();
        let mut r = Scripted::new(vec![Ok(bytes[..HEADER_LEN].to_vec())]);
        assert!(matches!(
            read_frame_deadline(&mut r, Duration::from_secs(1)),
            Err(FrameError::Truncated { needed: 2, got: 0 })
        ));
    }

    #[test]
    fn deadline_reader_rejects_malformed_headers_like_the_plain_reader() {
        let mut bytes = encode_frame(&Frame::new(FrameKind::Request, 1, Vec::new())).unwrap();
        bytes[0] = b'X';
        let mut r = Scripted::new(vec![Ok(bytes)]);
        assert!(matches!(
            read_frame_deadline(&mut r, Duration::from_secs(1)),
            Err(FrameError::BadMagic(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Any frame round-trips bit-exactly through encode + read.
        #[test]
        fn arbitrary_frames_roundtrip(
            kind_byte in 1u8..=4,
            corr_id in any::<u64>(),
            payload in prop::collection::vec(any::<u8>(), 0..512),
        ) {
            let kind = FrameKind::from_byte(kind_byte).unwrap();
            let f = Frame::new(kind, corr_id, payload);
            prop_assert_eq!(roundtrip(&f), f);
        }

        /// Any strict prefix of a frame reads as Truncated, never as a
        /// clean close, a panic, or a bogus frame.
        #[test]
        fn arbitrary_truncations_are_typed(
            corr_id in any::<u64>(),
            payload in prop::collection::vec(any::<u8>(), 1..256),
            cut_frac in 0.0f64..1.0,
        ) {
            let f = Frame::new(FrameKind::Request, corr_id, payload);
            let bytes = encode_frame(&f).unwrap();
            let cut = 1 + ((bytes.len() - 1) as f64 * cut_frac) as usize;
            prop_assume!(cut < bytes.len());
            let res = read_frame(&mut Cursor::new(bytes[..cut].to_vec()));
            prop_assert!(matches!(res, Err(FrameError::Truncated { .. })), "cut={} res={:?}", cut, res);
        }
    }
}
