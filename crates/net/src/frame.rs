//! Length-prefixed binary frame codec.
//!
//! Every message on a fact-net socket is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "FNET"
//! 4       1     version (currently 1)
//! 5       1     kind    (1=request 2=response 3=checkpoint 4=control)
//! 6       8     corr_id (u64 LE) — matches a response to its request
//! 14      4     len     (u32 LE) — payload byte count, <= MAX_PAYLOAD
//! 18      len   payload
//! ```
//!
//! [`read_frame`] distinguishes a *clean* close (EOF exactly on a frame
//! boundary → `Ok(None)`) from a *torn* one (EOF mid-header or mid-payload
//! → [`FrameError::Truncated`]), and rejects oversized length prefixes
//! before allocating, so a corrupt or malicious peer cannot balloon memory.

use std::fmt;
use std::io::{self, Read, Write};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"FNET";
/// Protocol version carried in byte 4.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 18;
/// Hard cap on payload size; larger length prefixes are rejected unread.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// What a frame carries; the discriminant is the on-wire kind byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// A decision request (client → worker).
    Request = 1,
    /// A decision response (worker → client).
    Response = 2,
    /// A checkpoint flush command or its acknowledgement.
    Checkpoint = 3,
    /// An out-of-band control command ("ping", "shutdown") or its ack.
    Control = 4,
}

impl FrameKind {
    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Request),
            2 => Some(FrameKind::Response),
            3 => Some(FrameKind::Checkpoint),
            4 => Some(FrameKind::Control),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind.
    pub kind: FrameKind,
    /// Correlation id: a response echoes its request's id.
    pub corr_id: u64,
    /// Opaque payload bytes (JSON at the [`crate::payload`] layer).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Build a frame.
    pub fn new(kind: FrameKind, corr_id: u64, payload: Vec<u8>) -> Frame {
        Frame {
            kind,
            corr_id,
            payload,
        }
    }
}

/// Ways the codec can reject bytes.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying read/write failed.
    Io(io::Error),
    /// The stream ended mid-frame: `got` of `needed` bytes arrived.
    Truncated {
        /// Bytes the frame section required.
        needed: usize,
        /// Bytes actually read before EOF.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Declared payload length.
        len: u32,
        /// The cap it violated.
        max: u32,
    },
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown kind byte.
    BadKind(u8),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Truncated { needed, got } => {
                write!(f, "stream truncated mid-frame: got {got} of {needed} bytes")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds cap {max}")
            }
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind byte {k}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Encode `frame` to its wire bytes.
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>, FrameError> {
    if frame.payload.len() > MAX_PAYLOAD as usize {
        return Err(FrameError::Oversized {
            len: frame.payload.len() as u32,
            max: MAX_PAYLOAD,
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + frame.payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(frame.kind as u8);
    out.extend_from_slice(&frame.corr_id.to_le_bytes());
    out.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame.payload);
    Ok(out)
}

/// Write one frame to `w` (single `write_all`, so concurrent writers on a
/// duplicated stream must still serialize at a higher level).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), FrameError> {
    let bytes = encode_frame(frame)?;
    w.write_all(&bytes)?;
    Ok(())
}

/// Read until `buf` is full or EOF; returns bytes read. Unlike
/// `read_exact`, a short read is reported with its count so the caller can
/// tell "clean close" from "torn frame".
fn read_fully<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(got)
}

/// Read one frame from `r`.
///
/// Returns `Ok(None)` when the stream closes cleanly on a frame boundary,
/// `Err(Truncated)` when it closes mid-frame, and the other [`FrameError`]
/// variants for malformed headers.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    let got = read_fully(r, &mut header)?;
    if got == 0 {
        return Ok(None); // clean EOF between frames
    }
    if got < HEADER_LEN {
        return Err(FrameError::Truncated {
            needed: HEADER_LEN,
            got,
        });
    }
    if header[..4] != MAGIC {
        return Err(FrameError::BadMagic(
            header[..4].try_into().expect("4-byte slice"),
        ));
    }
    if header[4] != VERSION {
        return Err(FrameError::BadVersion(header[4]));
    }
    let kind = FrameKind::from_byte(header[5]).ok_or(FrameError::BadKind(header[5]))?;
    let corr_id = u64::from_le_bytes(header[6..14].try_into().expect("8-byte slice"));
    let len = u32::from_le_bytes(header[14..18].try_into().expect("4-byte slice"));
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_fully(r, &mut payload)?;
    if got < payload.len() {
        return Err(FrameError::Truncated {
            needed: len as usize,
            got,
        });
    }
    Ok(Some(Frame {
        kind,
        corr_id,
        payload,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    fn roundtrip(frame: &Frame) -> Frame {
        let bytes = encode_frame(frame).unwrap();
        let mut cur = Cursor::new(bytes);
        let back = read_frame(&mut cur).unwrap().unwrap();
        // and the stream is now cleanly empty
        assert!(read_frame(&mut cur).unwrap().is_none());
        back
    }

    #[test]
    fn roundtrip_each_kind() {
        for kind in [
            FrameKind::Request,
            FrameKind::Response,
            FrameKind::Checkpoint,
            FrameKind::Control,
        ] {
            let f = Frame::new(kind, 0xdead_beef_0042, b"hello".to_vec());
            assert_eq!(roundtrip(&f), f);
        }
    }

    #[test]
    fn empty_payload_roundtrips() {
        let f = Frame::new(FrameKind::Control, 7, Vec::new());
        assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let a = Frame::new(FrameKind::Request, 1, b"one".to_vec());
        let b = Frame::new(FrameKind::Response, 2, b"two".to_vec());
        let mut bytes = encode_frame(&a).unwrap();
        bytes.extend(encode_frame(&b).unwrap());
        let mut cur = Cursor::new(bytes);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), a);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b);
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn truncated_header_and_payload_are_torn_not_clean() {
        let bytes = encode_frame(&Frame::new(FrameKind::Request, 9, b"payload".to_vec())).unwrap();
        // every strict prefix except the empty one is a torn frame
        for cut in 1..bytes.len() {
            let mut cur = Cursor::new(bytes[..cut].to_vec());
            match read_frame(&mut cur) {
                Err(FrameError::Truncated { needed, got }) => {
                    assert!(got < needed, "cut at {cut}: got {got} needed {needed}")
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
        // the empty prefix is a clean close
        let mut cur = Cursor::new(Vec::new());
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut bytes = encode_frame(&Frame::new(FrameKind::Request, 1, Vec::new())).unwrap();
        bytes[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cur = Cursor::new(bytes);
        match read_frame(&mut cur) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, MAX_PAYLOAD);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // encoding an oversized payload is refused symmetrically
        let big = Frame::new(FrameKind::Request, 1, vec![0u8; MAX_PAYLOAD as usize + 1]);
        assert!(matches!(
            encode_frame(&big),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn bad_magic_version_and_kind_are_typed_errors() {
        let good = encode_frame(&Frame::new(FrameKind::Request, 1, b"x".to_vec())).unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut Cursor::new(bad)),
            Err(FrameError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            read_frame(&mut Cursor::new(bad)),
            Err(FrameError::BadVersion(99))
        ));

        let mut bad = good;
        bad[5] = 0;
        assert!(matches!(
            read_frame(&mut Cursor::new(bad)),
            Err(FrameError::BadKind(0))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Any frame round-trips bit-exactly through encode + read.
        #[test]
        fn arbitrary_frames_roundtrip(
            kind_byte in 1u8..=4,
            corr_id in any::<u64>(),
            payload in prop::collection::vec(any::<u8>(), 0..512),
        ) {
            let kind = FrameKind::from_byte(kind_byte).unwrap();
            let f = Frame::new(kind, corr_id, payload);
            prop_assert_eq!(roundtrip(&f), f);
        }

        /// Any strict prefix of a frame reads as Truncated, never as a
        /// clean close, a panic, or a bogus frame.
        #[test]
        fn arbitrary_truncations_are_typed(
            corr_id in any::<u64>(),
            payload in prop::collection::vec(any::<u8>(), 1..256),
            cut_frac in 0.0f64..1.0,
        ) {
            let f = Frame::new(FrameKind::Request, corr_id, payload);
            let bytes = encode_frame(&f).unwrap();
            let cut = 1 + ((bytes.len() - 1) as f64 * cut_frac) as usize;
            prop_assume!(cut < bytes.len());
            let res = read_frame(&mut Cursor::new(bytes[..cut].to_vec()));
            prop_assert!(matches!(res, Err(FrameError::Truncated { .. })), "cut={} res={:?}", cut, res);
        }
    }
}
