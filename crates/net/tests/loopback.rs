//! End-to-end exercises of the client/server pair over real sockets:
//! pipelined round trips, mid-stream disconnects surfacing as typed errors
//! (never a panic or a hang), reconnect-after-restart, and a peer that
//! writes garbage.
//!
//! Every scenario runs twice — once over a Unix-domain socket and once
//! over TCP loopback — through the same assertions: the transport is a
//! byte pipe and must change nothing about the protocol (`PROTOCOL.md`
//! §2 — Transports).

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fact_net::{
    decode, encode, Endpoint, FrameKind, NetError, RemoteShard, RequestWire, ResponseWire, Server,
    ShardHandler, DEFAULT_FRAME_DEADLINE,
};

const WAIT: Duration = Duration::from_secs(5);

/// The two transport families every scenario must behave identically on.
#[derive(Clone, Copy)]
enum Transport {
    Unix,
    Tcp,
}

/// An unbound endpoint of the given family; TCP picks an ephemeral port.
fn fresh_endpoint(transport: Transport, tag: &str) -> Endpoint {
    match transport {
        Transport::Unix => Endpoint::unix(
            std::env::temp_dir().join(format!("fact-net-{tag}-{}.sock", std::process::id())),
        ),
        Transport::Tcp => Endpoint::tcp("127.0.0.1:0"),
    }
}

/// Echoes requests back as decisions whose probability is the first
/// feature; counts frames seen.
struct EchoHandler {
    seen: AtomicU64,
}

impl ShardHandler for EchoHandler {
    fn submit(&self, kind: FrameKind, payload: Vec<u8>) -> Box<dyn FnOnce() -> Vec<u8> + Send> {
        self.seen.fetch_add(1, Ordering::Relaxed);
        Box::new(move || match kind {
            FrameKind::Request => {
                let resp = match decode::<RequestWire>(&payload) {
                    Ok(req) => ResponseWire::success(fact_net::DecisionWire {
                        probability: req.features.first().copied().unwrap_or(0.0),
                        favorable: req.group_b,
                        flagged: false,
                        shard: (req.route_key % 4) as usize,
                    }),
                    Err(e) => ResponseWire::failure(e.to_string()),
                };
                encode(&resp).unwrap()
            }
            _ => payload,
        })
    }
}

/// Bind an echo server on the given transport; returns the *resolved*
/// endpoint (TCP's ephemeral port filled in).
fn start_echo(transport: Transport, tag: &str) -> (Server, Endpoint, Arc<EchoHandler>) {
    let handler = Arc::new(EchoHandler {
        seen: AtomicU64::new(0),
    });
    let server = Server::bind_endpoint(
        fresh_endpoint(transport, tag),
        Arc::clone(&handler) as Arc<dyn ShardHandler>,
        DEFAULT_FRAME_DEADLINE,
    )
    .unwrap();
    let endpoint = server.endpoint().clone();
    (server, endpoint, handler)
}

fn request(route_key: u64, p: f64) -> Vec<u8> {
    encode(&RequestWire {
        features: vec![p, 1.0],
        group_b: route_key % 2 == 0,
        route_key,
        tenant: None,
    })
    .unwrap()
}

fn pipelined_requests_all_answer(transport: Transport) {
    let (mut server, endpoint, handler) = start_echo(transport, "pipeline");
    let shard = RemoteShard::connect_endpoint(endpoint).unwrap();

    // fire 64 requests before waiting on any reply
    let pending: Vec<_> = (0..64u64)
        .map(|i| {
            shard
                .send(FrameKind::Request, request(i, i as f64 / 64.0))
                .unwrap()
        })
        .collect();
    for (i, reply) in pending.into_iter().enumerate() {
        let frame = reply.wait(WAIT).unwrap();
        assert_eq!(frame.kind, FrameKind::Response);
        let resp: ResponseWire = decode(&frame.payload).unwrap();
        let decision = resp.into_result().unwrap();
        assert!((decision.probability - i as f64 / 64.0).abs() < 1e-12);
        assert_eq!(decision.shard, (i % 4) as usize);
    }

    let stats = shard.stats();
    assert_eq!(stats.requests, 64);
    assert_eq!(stats.reconnects, 0);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.rtt_count, 64);
    assert!(stats.rtt_mean_micros > 0.0);
    assert_eq!(handler.seen.load(Ordering::Relaxed), 64);
    server.shutdown();
}

#[test]
fn pipelined_requests_all_answer_with_matching_ids() {
    pipelined_requests_all_answer(Transport::Unix);
}

#[test]
fn pipelined_requests_all_answer_with_matching_ids_tcp() {
    pipelined_requests_all_answer(Transport::Tcp);
}

fn control_frames_ack(transport: Transport) {
    let (mut server, endpoint, _) = start_echo(transport, "control");
    let shard = RemoteShard::connect_endpoint(endpoint).unwrap();
    let ack = shard.control("ping", WAIT).unwrap();
    assert_eq!(ack.kind, FrameKind::Control);
    let wire: fact_net::ControlWire = decode(&ack.payload).unwrap();
    assert_eq!(wire.command, "ping"); // echo handler reflects the payload
    server.shutdown();
}

#[test]
fn control_frames_ack_with_their_own_kind() {
    control_frames_ack(Transport::Unix);
}

#[test]
fn control_frames_ack_with_their_own_kind_tcp() {
    control_frames_ack(Transport::Tcp);
}

fn server_death_fails_pending_replies(transport: Transport) {
    /// Never answers: thunks block until the connection is severed.
    struct StallHandler;
    impl ShardHandler for StallHandler {
        fn submit(&self, _: FrameKind, _: Vec<u8>) -> Box<dyn FnOnce() -> Vec<u8> + Send> {
            Box::new(|| {
                std::thread::sleep(Duration::from_secs(30));
                Vec::new()
            })
        }
    }

    let mut server = Server::bind_endpoint(
        fresh_endpoint(transport, "death"),
        Arc::new(StallHandler),
        DEFAULT_FRAME_DEADLINE,
    )
    .unwrap();
    let shard = RemoteShard::connect_endpoint(server.endpoint().clone()).unwrap();
    let reply = shard.send(FrameKind::Request, request(1, 0.5)).unwrap();

    // sever (not shutdown): the writer thread is wedged in the 30 s thunk,
    // and the client must see Disconnected as soon as the socket drops
    let killer = std::thread::spawn(move || server.sever());
    match reply.wait(WAIT) {
        Err(NetError::Disconnected) => {}
        other => panic!("expected Disconnected, got {other:?}"),
    }
    assert_eq!(shard.stats().errors, 1);
    killer.join().unwrap();
}

#[test]
fn server_death_fails_pending_replies_with_typed_error() {
    server_death_fails_pending_replies(Transport::Unix);
}

#[test]
fn server_death_fails_pending_replies_with_typed_error_tcp() {
    server_death_fails_pending_replies(Transport::Tcp);
}

fn client_reconnects_after_restart(transport: Transport) {
    let (mut server, endpoint, _) = start_echo(transport, "restart");
    let shard = RemoteShard::connect_endpoint(endpoint.clone()).unwrap();
    shard
        .send(FrameKind::Request, request(1, 0.25))
        .unwrap()
        .wait(WAIT)
        .unwrap();
    server.shutdown();

    // in-flight-free death: the next send fails (worker gone)...
    let err = match shard.send(FrameKind::Request, request(2, 0.5)) {
        Ok(reply) => reply.wait(WAIT).unwrap_err(),
        Err(e) => e,
    };
    assert!(
        matches!(err, NetError::Io(_) | NetError::Disconnected),
        "{err:?}"
    );

    // ...and once a new worker binds the same endpoint, sends heal
    // transparently (for TCP that means the same resolved host:port)
    let handler = Arc::new(EchoHandler {
        seen: AtomicU64::new(0),
    });
    let mut server2 = Server::bind_endpoint(
        endpoint,
        Arc::clone(&handler) as Arc<dyn ShardHandler>,
        DEFAULT_FRAME_DEADLINE,
    )
    .unwrap();
    let mut healed = false;
    for _ in 0..50 {
        match shard.send(FrameKind::Request, request(3, 0.75)) {
            Ok(reply) => {
                if reply.wait(WAIT).is_ok() {
                    healed = true;
                    break;
                }
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(healed, "client never healed after restart");
    assert!(shard.stats().reconnects >= 1);
    server2.shutdown();
}

#[test]
fn client_reconnects_after_server_restart() {
    client_reconnects_after_restart(Transport::Unix);
}

#[test]
fn client_reconnects_after_server_restart_tcp() {
    client_reconnects_after_restart(Transport::Tcp);
}

fn garbage_peer_drops_connection(transport: Transport) {
    let (mut server, endpoint, handler) = start_echo(transport, "garbage");

    // a raw peer writes a torn header then vanishes
    let mut raw = endpoint.dial().unwrap();
    raw.write_all(b"FNE").unwrap();
    drop(raw);

    // another writes a bad magic
    let mut raw = endpoint.dial().unwrap();
    raw.write_all(&[0u8; 32]).unwrap();
    drop(raw);

    // the server keeps serving well-formed clients
    let shard = RemoteShard::connect_endpoint(endpoint).unwrap();
    let frame = shard
        .send(FrameKind::Request, request(9, 0.125))
        .unwrap()
        .wait(WAIT)
        .unwrap();
    let resp: ResponseWire = decode(&frame.payload).unwrap();
    assert!(resp.into_result().is_ok());
    assert_eq!(handler.seen.load(Ordering::Relaxed), 1); // garbage never reached the handler
    server.shutdown();
}

#[test]
fn garbage_peer_drops_connection_without_killing_server() {
    garbage_peer_drops_connection(Transport::Unix);
}

#[test]
fn garbage_peer_drops_connection_without_killing_server_tcp() {
    garbage_peer_drops_connection(Transport::Tcp);
}
