//! Slow-loris / partial-write defense over real sockets.
//!
//! A peer that dribbles a frame header byte-at-a-time, or stalls after
//! the header, must not wedge the server's reader thread: once the
//! per-frame delivery deadline passes, the connection is torn down (the
//! codec reports `FrameError::Truncated` internally) and the server keeps
//! serving other connections. An *idle* connection — no frame in
//! progress — is never torn down, however long it sits.
//!
//! The deterministic byte-level cases (timeout-with-no-bytes → `Idle`,
//! dribble-past-deadline → `Truncated`) live in `frame.rs` unit tests on
//! a scripted reader; these tests pin the socket-level behavior with a
//! short real deadline and generous upper bounds, asserting "tears down
//! promptly" and "never hangs", not exact timings. Every scenario runs
//! over both the Unix-domain and TCP transports — the deadline is a
//! protocol property, not a transport property (`PROTOCOL.md` §5).

use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fact_net::frame::{encode_frame, read_frame, Frame, HEADER_LEN};
use fact_net::{Endpoint, FrameKind, NetStream, Server, ShardHandler};

/// Deadline used by these tests: long enough that a healthy writer never
/// trips it, short enough that the tests stay fast.
const DEADLINE: Duration = Duration::from_millis(300);
/// The server must have cut a stalled peer off well within this bound
/// (deadline + poll interval + scheduling slack).
const CUTOFF: Duration = Duration::from_secs(5);

#[derive(Clone, Copy)]
enum Transport {
    Unix,
    Tcp,
}

fn fresh_endpoint(transport: Transport, tag: &str) -> Endpoint {
    match transport {
        Transport::Unix => Endpoint::unix(
            std::env::temp_dir().join(format!("fact-net-loris-{tag}-{}.sock", std::process::id())),
        ),
        Transport::Tcp => Endpoint::tcp("127.0.0.1:0"),
    }
}

/// Echoes every payload back unchanged; counts frames seen.
struct Echo {
    seen: AtomicU64,
}

impl ShardHandler for Echo {
    fn submit(&self, _kind: FrameKind, payload: Vec<u8>) -> Box<dyn FnOnce() -> Vec<u8> + Send> {
        self.seen.fetch_add(1, Ordering::Relaxed);
        Box::new(move || payload)
    }
}

fn start(transport: Transport, tag: &str) -> (Server, Endpoint, Arc<Echo>) {
    let handler = Arc::new(Echo {
        seen: AtomicU64::new(0),
    });
    let server = Server::bind_endpoint(
        fresh_endpoint(transport, tag),
        Arc::clone(&handler) as Arc<dyn ShardHandler>,
        DEADLINE,
    )
    .unwrap();
    let endpoint = server.endpoint().clone();
    (server, endpoint, handler)
}

/// Block until the server closes `stream` (read returns EOF) or `CUTOFF`
/// passes; returns how long it took.
fn wait_for_disconnect(stream: &mut NetStream) -> Duration {
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let started = Instant::now();
    let mut buf = [0u8; 64];
    while started.elapsed() < CUTOFF {
        match stream.read(&mut buf) {
            Ok(0) => return started.elapsed(), // server hung up
            Ok(_) => continue,                 // stray reply bytes
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return started.elapsed(), // reset also counts as cut off
        }
    }
    panic!("server never disconnected the stalled peer within {CUTOFF:?}");
}

/// Round-trip one echo frame on a fresh connection to prove the server is
/// still serving.
fn assert_still_serving(endpoint: &Endpoint) {
    let mut healthy = endpoint.dial().unwrap();
    healthy
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let frame = Frame::new(FrameKind::Control, 42, b"ping".to_vec());
    healthy.write_all(&encode_frame(&frame).unwrap()).unwrap();
    let reply = read_frame(&mut healthy).unwrap().expect("echo reply");
    assert_eq!(reply.corr_id, 42);
    assert_eq!(reply.payload, b"ping");
}

fn header_dribbler_is_cut_off(transport: Transport) {
    let (mut server, endpoint, handler) = start(transport, "dribble");

    // attacker: one header byte, then silence
    let mut loris = endpoint.dial().unwrap();
    let frame = encode_frame(&Frame::new(FrameKind::Request, 1, b"x".to_vec())).unwrap();
    loris.write_all(&frame[..1]).unwrap();
    loris.flush().unwrap();

    let took = wait_for_disconnect(&mut loris);
    assert!(took < CUTOFF, "disconnect took {took:?}");
    assert_eq!(
        handler.seen.load(Ordering::Relaxed),
        0,
        "a torn header must never reach the handler"
    );

    assert_still_serving(&endpoint);
    server.shutdown();
}

#[test]
fn header_dribbler_is_cut_off_and_server_keeps_serving() {
    header_dribbler_is_cut_off(Transport::Unix);
}

#[test]
fn header_dribbler_is_cut_off_and_server_keeps_serving_tcp() {
    header_dribbler_is_cut_off(Transport::Tcp);
}

fn mid_payload_staller_is_cut_off_on(transport: Transport) {
    let (mut server, endpoint, handler) = start(transport, "stall");

    // attacker: a complete, valid header promising 64 payload bytes, then
    // only 8 of them
    let frame = encode_frame(&Frame::new(FrameKind::Request, 7, vec![0xab; 64])).unwrap();
    let mut loris = endpoint.dial().unwrap();
    loris.write_all(&frame[..HEADER_LEN + 8]).unwrap();
    loris.flush().unwrap();

    let took = wait_for_disconnect(&mut loris);
    assert!(took < CUTOFF, "disconnect took {took:?}");
    assert_eq!(
        handler.seen.load(Ordering::Relaxed),
        0,
        "a torn payload must never reach the handler"
    );

    assert_still_serving(&endpoint);
    server.shutdown();
}

#[test]
fn mid_payload_staller_is_cut_off() {
    mid_payload_staller_is_cut_off_on(Transport::Unix);
}

#[test]
fn mid_payload_staller_is_cut_off_tcp() {
    mid_payload_staller_is_cut_off_on(Transport::Tcp);
}

fn idle_connection_is_not_torn_down_on(transport: Transport) {
    let (mut server, endpoint, _handler) = start(transport, "idle");

    // a connection that sits quiet for several deadlines, with no frame in
    // progress, must stay usable
    let mut conn = endpoint.dial().unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    std::thread::sleep(DEADLINE * 3);

    let frame = Frame::new(FrameKind::Control, 9, b"late".to_vec());
    conn.write_all(&encode_frame(&frame).unwrap()).unwrap();
    let reply = read_frame(&mut conn)
        .unwrap()
        .expect("idle conn still live");
    assert_eq!(reply.corr_id, 9);
    assert_eq!(reply.payload, b"late");
    server.shutdown();
}

#[test]
fn idle_connection_is_not_torn_down() {
    idle_connection_is_not_torn_down_on(Transport::Unix);
}

#[test]
fn idle_connection_is_not_torn_down_tcp() {
    idle_connection_is_not_torn_down_on(Transport::Tcp);
}

fn slow_but_live_writer_is_served(transport: Transport) {
    let (mut server, endpoint, _handler) = start(transport, "slow-ok");

    // a legitimately slow peer: the whole frame lands in small chunks but
    // comfortably inside the per-frame deadline
    let mut conn = endpoint.dial().unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let bytes = encode_frame(&Frame::new(FrameKind::Control, 3, b"chunks".to_vec())).unwrap();
    for chunk in bytes.chunks(5) {
        conn.write_all(chunk).unwrap();
        conn.flush().unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    let reply = read_frame(&mut conn)
        .unwrap()
        .expect("chunked frame served");
    assert_eq!(reply.corr_id, 3);
    assert_eq!(reply.payload, b"chunks");
    server.shutdown();
}

#[test]
fn slow_but_live_writer_inside_deadline_is_served() {
    slow_but_live_writer_is_served(Transport::Unix);
}

#[test]
fn slow_but_live_writer_inside_deadline_is_served_tcp() {
    slow_but_live_writer_is_served(Transport::Tcp);
}
