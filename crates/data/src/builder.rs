//! Fluent construction of [`Dataset`]s.

use crate::column::Column;
use crate::error::{FactError, Result};
use crate::frame::Dataset;
use crate::schema::{Field, Schema};

/// Builds a [`Dataset`] column by column, validating lengths and name
/// uniqueness at [`DatasetBuilder::build`] time.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    pairs: Vec<(String, Column, bool, bool)>, // name, column, sensitive, quasi
}

impl DatasetBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        DatasetBuilder { pairs: Vec::new() }
    }

    /// Add a float column.
    pub fn f64(self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.column(name, Column::from_f64(values))
    }

    /// Add a float column with possible nulls.
    pub fn f64_opt(self, name: impl Into<String>, values: Vec<Option<f64>>) -> Self {
        self.column(name, Column::from_f64_opt(values))
    }

    /// Add an integer column.
    pub fn i64(self, name: impl Into<String>, values: Vec<i64>) -> Self {
        self.column(name, Column::from_i64(values))
    }

    /// Add a boolean column.
    pub fn boolean(self, name: impl Into<String>, values: Vec<bool>) -> Self {
        self.column(name, Column::from_bool(values))
    }

    /// Add a categorical column from labels.
    pub fn cat<S: AsRef<str>>(self, name: impl Into<String>, labels: &[S]) -> Self {
        self.column(name, Column::from_labels(labels))
    }

    /// Add an arbitrary prebuilt column.
    pub fn column(mut self, name: impl Into<String>, col: Column) -> Self {
        self.pairs.push((name.into(), col, false, false));
        self
    }

    /// Mark the most recently added column as a sensitive/protected attribute.
    pub fn sensitive(mut self) -> Self {
        if let Some(last) = self.pairs.last_mut() {
            last.2 = true;
        }
        self
    }

    /// Mark the most recently added column as a quasi-identifier.
    pub fn quasi_identifier(mut self) -> Self {
        if let Some(last) = self.pairs.last_mut() {
            last.3 = true;
        }
        self
    }

    /// Validate and produce the dataset.
    ///
    /// Errors when no columns were added, when lengths differ, or when a
    /// column name repeats.
    pub fn build(self) -> Result<Dataset> {
        if self.pairs.is_empty() {
            return Err(FactError::EmptyData("dataset with no columns".into()));
        }
        let n_rows = self.pairs[0].1.len();
        let mut schema = Schema::new();
        let mut columns = Vec::with_capacity(self.pairs.len());
        for (name, col, sensitive, quasi) in self.pairs {
            if schema.index_of(&name).is_some() {
                return Err(FactError::InvalidArgument(format!(
                    "duplicate column name '{name}'"
                )));
            }
            if col.len() != n_rows {
                return Err(FactError::LengthMismatch {
                    expected: n_rows,
                    actual: col.len(),
                });
            }
            let mut field = Field::new(name, col.dtype());
            field.sensitive = sensitive;
            field.quasi_identifier = quasi;
            schema.push(field);
            columns.push(col);
        }
        Ok(Dataset::from_parts(schema, columns, n_rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    #[test]
    fn builds_typed_columns_with_annotations() {
        let ds = Dataset::builder()
            .f64("x", vec![1.0, 2.0])
            .cat("gender", &["m", "f"])
            .sensitive()
            .cat("zip", &["11", "22"])
            .quasi_identifier()
            .build()
            .unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert_eq!(ds.schema().sensitive_fields(), vec!["gender"]);
        assert_eq!(ds.schema().quasi_identifiers(), vec!["zip"]);
        assert_eq!(ds.schema().field("x").unwrap().dtype, DataType::Float);
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            Dataset::builder().build(),
            Err(FactError::EmptyData(_))
        ));
    }

    #[test]
    fn rejects_length_mismatch() {
        let res = Dataset::builder()
            .f64("a", vec![1.0])
            .f64("b", vec![1.0, 2.0])
            .build();
        assert!(matches!(res, Err(FactError::LengthMismatch { .. })));
    }

    #[test]
    fn rejects_duplicate_names() {
        let res = Dataset::builder()
            .f64("a", vec![1.0])
            .i64("a", vec![1])
            .build();
        assert!(matches!(res, Err(FactError::InvalidArgument(_))));
    }

    #[test]
    fn nullable_floats() {
        let ds = Dataset::builder()
            .f64_opt("a", vec![Some(1.0), None])
            .build()
            .unwrap();
        assert_eq!(ds.null_count(), 1);
    }
}
