//! Deterministic sampling utilities.
//!
//! Everything here takes an explicit seed, so experiment pipelines are
//! replayable bit-for-bit — a prerequisite for the paper's *accuracy* and
//! *transparency* pillars (a result you cannot regenerate is neither).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::error::{FactError, Result};
use crate::frame::Dataset;

/// A uniformly shuffled permutation of `0..n`.
pub fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    idx
}

/// Sample `k` distinct indices from `0..n` without replacement.
pub fn sample_without_replacement(n: usize, k: usize, seed: u64) -> Result<Vec<usize>> {
    if k > n {
        return Err(FactError::InvalidArgument(format!(
            "cannot sample {k} items from {n} without replacement"
        )));
    }
    let mut idx = permutation(n, seed);
    idx.truncate(k);
    Ok(idx)
}

/// Sample `k` indices from `0..n` with replacement (bootstrap resampling).
pub fn sample_with_replacement(n: usize, k: usize, seed: u64) -> Result<Vec<usize>> {
    if n == 0 {
        return Err(FactError::EmptyData("sampling from empty range".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    Ok((0..k).map(|_| rng.gen_range(0..n)).collect())
}

/// Weighted sampling with replacement: probability of index `i` is
/// `weights[i] / Σ weights`. Weights must be non-negative with positive sum.
pub fn weighted_sample(weights: &[f64], k: usize, seed: u64) -> Result<Vec<usize>> {
    if weights.is_empty() {
        return Err(FactError::EmptyData(
            "weighted sample with no weights".into(),
        ));
    }
    if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
        return Err(FactError::InvalidArgument(
            "weights must be finite and non-negative".into(),
        ));
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Err(FactError::InvalidArgument(
            "weights must have a positive sum".into(),
        ));
    }
    // cumulative distribution + binary search
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += w;
        cdf.push(acc);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let u: f64 = rng.gen_range(0.0..total);
        let pos = cdf.partition_point(|&c| c <= u);
        out.push(pos.min(weights.len() - 1));
    }
    Ok(out)
}

/// A bootstrap resample of the dataset (same row count, drawn with
/// replacement).
pub fn bootstrap(ds: &Dataset, seed: u64) -> Result<Dataset> {
    let idx = sample_with_replacement(ds.n_rows(), ds.n_rows(), seed)?;
    Ok(ds.take(&idx))
}

/// Subsample `frac` of the dataset's rows without replacement.
pub fn subsample(ds: &Dataset, frac: f64, seed: u64) -> Result<Dataset> {
    if !(0.0..=1.0).contains(&frac) {
        return Err(FactError::InvalidArgument(format!(
            "fraction must be in [0, 1], got {frac}"
        )));
    }
    let k = ((ds.n_rows() as f64) * frac).round() as usize;
    let idx = sample_without_replacement(ds.n_rows(), k, seed)?;
    Ok(ds.take(&idx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_permutation() {
        let p = permutation(100, 1);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(p, (0..100).collect::<Vec<_>>(), "shuffle should move rows");
    }

    #[test]
    fn permutation_is_seed_deterministic() {
        assert_eq!(permutation(50, 42), permutation(50, 42));
        assert_ne!(permutation(50, 42), permutation(50, 43));
    }

    #[test]
    fn without_replacement_distinct_and_bounded() {
        let s = sample_without_replacement(20, 10, 7).unwrap();
        assert_eq!(s.len(), 10);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10);
        assert!(s.iter().all(|&i| i < 20));
        assert!(sample_without_replacement(5, 6, 0).is_err());
    }

    #[test]
    fn with_replacement_bounds() {
        let s = sample_with_replacement(5, 100, 3).unwrap();
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|&i| i < 5));
        assert!(sample_with_replacement(0, 1, 0).is_err());
    }

    #[test]
    fn weighted_sample_respects_zero_weights() {
        let s = weighted_sample(&[0.0, 1.0, 0.0], 200, 11).unwrap();
        assert!(s.iter().all(|&i| i == 1));
    }

    #[test]
    fn weighted_sample_is_roughly_proportional() {
        let s = weighted_sample(&[1.0, 3.0], 10_000, 5).unwrap();
        let ones = s.iter().filter(|&&i| i == 1).count() as f64 / 10_000.0;
        assert!((ones - 0.75).abs() < 0.03, "got {ones}");
    }

    #[test]
    fn weighted_sample_rejects_bad_weights() {
        assert!(weighted_sample(&[], 1, 0).is_err());
        assert!(weighted_sample(&[-1.0, 2.0], 1, 0).is_err());
        assert!(weighted_sample(&[0.0, 0.0], 1, 0).is_err());
        assert!(weighted_sample(&[f64::NAN], 1, 0).is_err());
    }

    #[test]
    fn bootstrap_keeps_row_count() {
        let ds = Dataset::builder()
            .f64("x", (0..50).map(|i| i as f64).collect())
            .build()
            .unwrap();
        let b = bootstrap(&ds, 9).unwrap();
        assert_eq!(b.n_rows(), 50);
        // with replacement: expect at least one duplicate in 50 draws
        let mut vals = b.f64_column("x").unwrap();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        assert!(vals.len() < 50);
    }

    #[test]
    fn subsample_fraction() {
        let ds = Dataset::builder()
            .f64("x", (0..100).map(|i| i as f64).collect())
            .build()
            .unwrap();
        assert_eq!(subsample(&ds, 0.3, 1).unwrap().n_rows(), 30);
        assert!(subsample(&ds, 1.5, 1).is_err());
    }
}
