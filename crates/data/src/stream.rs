//! The "Internet Minute" event stream.
//!
//! §3 of the paper motivates scale with an Internet Minute (citing James
//! 2016): ≈1,000,000 Tinder swipes, 3,500,000 Google searches, 100,000 Siri
//! answers, 850,000 Dropbox uploads, 900,000 Facebook logins, 450,000 tweets,
//! and 7,000,000 Snaps — per minute. This module generates a synthetic stream
//! with exactly those service proportions so the `fact-core` runtime can
//! measure the throughput cost of responsible (guarded) processing at
//! realistic event mixes (experiment E9).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The services named in the paper's Internet-Minute list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Service {
    /// Tinder swipes (1.0M/min).
    TinderSwipe,
    /// Google searches (3.5M/min).
    GoogleSearch,
    /// Siri answers (0.1M/min).
    SiriAnswer,
    /// Dropbox uploads (0.85M/min).
    DropboxUpload,
    /// Facebook logins (0.9M/min).
    FacebookLogin,
    /// Tweets sent (0.45M/min).
    TweetSent,
    /// Snaps received (7.0M/min).
    SnapReceived,
}

impl Service {
    /// All services, in the order the paper lists them.
    pub const ALL: [Service; 7] = [
        Service::TinderSwipe,
        Service::GoogleSearch,
        Service::SiriAnswer,
        Service::DropboxUpload,
        Service::FacebookLogin,
        Service::TweetSent,
        Service::SnapReceived,
    ];

    /// Events per minute as cited in the paper (§3).
    pub fn per_minute(self) -> u64 {
        match self {
            Service::TinderSwipe => 1_000_000,
            Service::GoogleSearch => 3_500_000,
            Service::SiriAnswer => 100_000,
            Service::DropboxUpload => 850_000,
            Service::FacebookLogin => 900_000,
            Service::TweetSent => 450_000,
            Service::SnapReceived => 7_000_000,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Service::TinderSwipe => "tinder_swipe",
            Service::GoogleSearch => "google_search",
            Service::SiriAnswer => "siri_answer",
            Service::DropboxUpload => "dropbox_upload",
            Service::FacebookLogin => "facebook_login",
            Service::TweetSent => "tweet_sent",
            Service::SnapReceived => "snap_received",
        }
    }

    /// Total events per minute across all services (≈13.8M).
    pub fn total_per_minute() -> u64 {
        Service::ALL.iter().map(|s| s.per_minute()).sum()
    }
}

/// One event in the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since stream start; monotonically non-decreasing.
    pub timestamp_us: u64,
    /// Originating service.
    pub service: Service,
    /// Pseudonymous user identifier.
    pub user_id: u64,
    /// Demographic group of the user ("A" or "B"), for fairness monitoring.
    pub group_b: bool,
    /// A scalar payload (e.g. engagement score) for aggregate queries.
    pub value: f64,
    /// Whether an automated decision on this event was favorable — the
    /// quantity fairness monitors track.
    pub decision_favorable: bool,
}

/// Deterministic generator of Internet-Minute-mix events.
///
/// Implements `Iterator` and never ends; take as many events as needed:
///
/// ```
/// use fact_data::stream::InternetMinute;
/// let events: Vec<_> = InternetMinute::new(42).take(1000).collect();
/// assert_eq!(events.len(), 1000);
/// ```
#[derive(Debug)]
pub struct InternetMinute {
    rng: StdRng,
    cdf: Vec<(u64, Service)>,
    total: u64,
    clock_us: u64,
    us_per_event: f64,
    /// Probability that a decision on a group-B event is favorable; group A
    /// uses `favorable_a`. Defaults are equal (no disparity).
    favorable_a: f64,
    favorable_b: f64,
}

impl InternetMinute {
    /// A stream with the paper's service mix, no decision disparity, and the
    /// given seed.
    pub fn new(seed: u64) -> Self {
        let mut acc = 0u64;
        let cdf = Service::ALL
            .iter()
            .map(|&s| {
                acc += s.per_minute();
                (acc, s)
            })
            .collect();
        let total = Service::total_per_minute();
        InternetMinute {
            rng: StdRng::seed_from_u64(seed),
            cdf,
            total,
            clock_us: 0,
            us_per_event: 60_000_000.0 / total as f64,
            favorable_a: 0.8,
            favorable_b: 0.8,
        }
    }

    /// Introduce a decision disparity: group A favorable at `pa`, group B at
    /// `pb`. Used to verify the streaming fairness monitor fires.
    pub fn with_disparity(mut self, pa: f64, pb: f64) -> Self {
        self.favorable_a = pa.clamp(0.0, 1.0);
        self.favorable_b = pb.clamp(0.0, 1.0);
        self
    }
}

impl Iterator for InternetMinute {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        let draw = self.rng.gen_range(0..self.total);
        let service = self
            .cdf
            .iter()
            .find(|(cum, _)| draw < *cum)
            .map(|(_, s)| *s)
            .expect("draw < total by construction");
        let group_b = self.rng.gen_bool(0.3);
        let p = if group_b {
            self.favorable_b
        } else {
            self.favorable_a
        };
        let ev = Event {
            timestamp_us: self.clock_us,
            service,
            user_id: self.rng.gen::<u64>() >> 16,
            group_b,
            value: self.rng.gen::<f64>() * 100.0,
            decision_favorable: self.rng.gen_bool(p),
        };
        // advance a jittered clock so inter-arrival times look bursty
        let jitter: f64 = self.rng.gen::<f64>() * 2.0;
        self.clock_us += (self.us_per_event * jitter).ceil() as u64;
        Some(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn paper_rates_are_cited_exactly() {
        assert_eq!(Service::TinderSwipe.per_minute(), 1_000_000);
        assert_eq!(Service::GoogleSearch.per_minute(), 3_500_000);
        assert_eq!(Service::SiriAnswer.per_minute(), 100_000);
        assert_eq!(Service::DropboxUpload.per_minute(), 850_000);
        assert_eq!(Service::FacebookLogin.per_minute(), 900_000);
        assert_eq!(Service::TweetSent.per_minute(), 450_000);
        assert_eq!(Service::SnapReceived.per_minute(), 7_000_000);
        assert_eq!(Service::total_per_minute(), 13_800_000);
    }

    #[test]
    fn mix_matches_paper_proportions() {
        let n = 100_000;
        let mut counts: HashMap<Service, usize> = HashMap::new();
        for ev in InternetMinute::new(1).take(n) {
            *counts.entry(ev.service).or_insert(0) += 1;
        }
        let total = Service::total_per_minute() as f64;
        for s in Service::ALL {
            let expect = s.per_minute() as f64 / total;
            let got = *counts.get(&s).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "{}: expected {expect:.3}, got {got:.3}",
                s.name()
            );
        }
    }

    #[test]
    fn timestamps_are_monotone() {
        let evs: Vec<Event> = InternetMinute::new(2).take(1000).collect();
        for w in evs.windows(2) {
            assert!(w[0].timestamp_us <= w[1].timestamp_us);
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<Event> = InternetMinute::new(9).take(100).collect();
        let b: Vec<Event> = InternetMinute::new(9).take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn disparity_shows_up_in_decisions() {
        let evs: Vec<Event> = InternetMinute::new(3)
            .with_disparity(0.9, 0.5)
            .take(50_000)
            .collect();
        let rate = |want_b: bool| {
            let g: Vec<&Event> = evs.iter().filter(|e| e.group_b == want_b).collect();
            g.iter().filter(|e| e.decision_favorable).count() as f64 / g.len() as f64
        };
        assert!((rate(false) - 0.9).abs() < 0.02);
        assert!((rate(true) - 0.5).abs() < 0.02);
    }

    #[test]
    fn service_names_are_stable() {
        assert_eq!(Service::SnapReceived.name(), "snap_received");
        assert_eq!(Service::ALL.len(), 7);
    }
}
