//! Dataset schemas: named, typed fields with FACT-relevant annotations.
//!
//! Beyond name and type, a [`Field`] can be flagged as **sensitive** (a
//! protected attribute for fairness analysis, e.g. gender or ethnicity) or as
//! a **quasi-identifier** (an attribute that contributes to re-identification
//! risk, e.g. zip code or birth date). These flags are how "FACT elements are
//! embedded in requirements" (paper §4): downstream guards read them instead
//! of relying on out-of-band convention.

use crate::value::DataType;

/// A named, typed column descriptor with FACT annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Logical type.
    pub dtype: DataType,
    /// Protected attribute for fairness purposes (paper §2, Q1).
    pub sensitive: bool,
    /// Contributes to re-identification risk (paper §2, Q3).
    pub quasi_identifier: bool,
}

impl Field {
    /// A plain field with no FACT annotations.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
            sensitive: false,
            quasi_identifier: false,
        }
    }

    /// Mark the field as a protected/sensitive attribute.
    pub fn sensitive(mut self) -> Self {
        self.sensitive = true;
        self
    }

    /// Mark the field as a quasi-identifier.
    pub fn quasi_identifier(mut self) -> Self {
        self.quasi_identifier = true;
        self
    }
}

/// An ordered collection of [`Field`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema { fields: Vec::new() }
    }

    /// Build from fields.
    pub fn from_fields(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Append a field.
    pub fn push(&mut self, field: Field) {
        self.fields.push(field);
    }

    /// All fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when there are no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Mutable lookup by name.
    pub fn field_mut(&mut self, name: &str) -> Option<&mut Field> {
        self.fields.iter_mut().find(|f| f.name == name)
    }

    /// Positional index of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Names of all fields flagged sensitive.
    pub fn sensitive_fields(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.sensitive)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Names of all fields flagged as quasi-identifiers.
    pub fn quasi_identifiers(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.quasi_identifier)
            .map(|f| f.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_builder_flags() {
        let f = Field::new("gender", DataType::Cat).sensitive();
        assert!(f.sensitive);
        assert!(!f.quasi_identifier);
        let q = Field::new("zip", DataType::Cat).quasi_identifier();
        assert!(q.quasi_identifier);
    }

    #[test]
    fn schema_lookup_and_annotation_queries() {
        let schema = Schema::from_fields(vec![
            Field::new("income", DataType::Float),
            Field::new("gender", DataType::Cat).sensitive(),
            Field::new("zip", DataType::Cat).quasi_identifier(),
            Field::new("age", DataType::Int).quasi_identifier(),
        ]);
        assert_eq!(schema.len(), 4);
        assert_eq!(schema.index_of("zip"), Some(2));
        assert_eq!(schema.field("gender").unwrap().dtype, DataType::Cat);
        assert_eq!(schema.sensitive_fields(), vec!["gender"]);
        assert_eq!(schema.quasi_identifiers(), vec!["zip", "age"]);
        assert!(schema.field("missing").is_none());
    }

    #[test]
    fn field_mut_allows_retroactive_annotation() {
        let mut schema = Schema::from_fields(vec![Field::new("eth", DataType::Cat)]);
        schema.field_mut("eth").unwrap().sensitive = true;
        assert_eq!(schema.sensitive_fields(), vec!["eth"]);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new();
        assert!(s.is_empty());
        assert_eq!(s.fields().len(), 0);
    }
}
