//! CSV ingestion and export with type inference.
//!
//! The reader handles RFC-4180-style quoting (quoted fields, embedded commas,
//! doubled quotes) and infers each column's type from its values:
//! `int → float → bool → categorical`, with empty fields treated as nulls.
//! Only int and float columns may contain nulls after inference; a bool or
//! categorical column with empties falls back to categorical with an explicit
//! `""` label — this keeps inference total.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::column::Column;
use crate::error::{FactError, Result};
use crate::frame::Dataset;
use crate::value::Value;

/// Options controlling CSV reading.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first record is a header (default `true`).
    pub has_header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: true,
        }
    }
}

/// Read a dataset from a CSV file on disk with default options.
pub fn read_csv_path(path: impl AsRef<Path>) -> Result<Dataset> {
    let f = std::fs::File::open(path)?;
    read_csv(f, &CsvOptions::default())
}

/// Read a dataset from any reader.
pub fn read_csv<R: Read>(reader: R, opts: &CsvOptions) -> Result<Dataset> {
    let lines = BufReader::new(reader).lines();
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut header: Option<Vec<String>> = None;
    let mut lineno = 0usize;
    for line in lines {
        lineno += 1;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = parse_record(&line, opts.delimiter, lineno)?;
        if opts.has_header && header.is_none() {
            header = Some(fields);
        } else {
            records.push(fields);
        }
    }
    let n_cols = match (&header, records.first()) {
        (Some(h), _) => h.len(),
        (None, Some(r)) => r.len(),
        _ => return Err(FactError::EmptyData("CSV with no records".into())),
    };
    if records.is_empty() {
        return Err(FactError::EmptyData("CSV with a header but no rows".into()));
    }
    for (i, r) in records.iter().enumerate() {
        if r.len() != n_cols {
            return Err(FactError::Parse {
                line: i + 1 + usize::from(opts.has_header),
                message: format!("expected {n_cols} fields, found {}", r.len()),
            });
        }
    }
    let names: Vec<String> = match header {
        Some(h) => h,
        None => (0..n_cols).map(|i| format!("col{i}")).collect(),
    };
    let mut pairs = Vec::with_capacity(n_cols);
    for (j, name) in names.into_iter().enumerate() {
        let raw: Vec<&str> = records.iter().map(|r| r[j].as_str()).collect();
        pairs.push((name, infer_column(&raw)));
    }
    Dataset::from_columns(pairs)
}

/// Write a dataset as CSV to any writer (header included).
pub fn write_csv<W: Write>(ds: &Dataset, mut writer: W) -> Result<()> {
    let names = ds.names();
    writeln!(
        writer,
        "{}",
        names
            .iter()
            .map(|n| quote_field(n))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for i in 0..ds.n_rows() {
        let fields: Vec<String> = ds
            .row(i)
            .into_iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Cat(s) => quote_field(&s),
                other => other.to_string(),
            })
            .collect();
        writeln!(writer, "{}", fields.join(","))?;
    }
    Ok(())
}

/// Write a dataset as CSV to a file path.
pub fn write_csv_path(ds: &Dataset, path: impl AsRef<Path>) -> Result<()> {
    let f = std::fs::File::create(path)?;
    write_csv(ds, f)
}

fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn parse_record(line: &str, delim: char, lineno: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' {
            if cur.is_empty() {
                in_quotes = true;
            } else {
                return Err(FactError::Parse {
                    line: lineno,
                    message: "unexpected quote inside unquoted field".into(),
                });
            }
        } else if c == delim {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if in_quotes {
        return Err(FactError::Parse {
            line: lineno,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(cur);
    Ok(fields)
}

fn infer_column(raw: &[&str]) -> Column {
    let non_empty: Vec<&str> = raw.iter().copied().filter(|s| !s.is_empty()).collect();
    let has_nulls = non_empty.len() != raw.len();

    if !non_empty.is_empty() && non_empty.iter().all(|s| s.parse::<i64>().is_ok()) {
        if has_nulls {
            // represent nullable ints as nullable floats to keep one mask type
            return Column::from_f64_opt(
                raw.iter()
                    .map(|s| {
                        if s.is_empty() {
                            None
                        } else {
                            Some(s.parse::<i64>().expect("checked") as f64)
                        }
                    })
                    .collect(),
            );
        }
        return Column::from_i64(
            raw.iter()
                .map(|s| s.parse::<i64>().expect("checked"))
                .collect(),
        );
    }
    if !non_empty.is_empty() && non_empty.iter().all(|s| s.parse::<f64>().is_ok()) {
        if has_nulls {
            return Column::from_f64_opt(
                raw.iter()
                    .map(|s| {
                        if s.is_empty() {
                            None
                        } else {
                            Some(s.parse::<f64>().expect("checked"))
                        }
                    })
                    .collect(),
            );
        }
        return Column::from_f64(
            raw.iter()
                .map(|s| s.parse::<f64>().expect("checked"))
                .collect(),
        );
    }
    if !has_nulls
        && !non_empty.is_empty()
        && non_empty.iter().all(|s| *s == "true" || *s == "false")
    {
        return Column::from_bool(raw.iter().map(|s| *s == "true").collect());
    }
    Column::from_labels(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn parse(text: &str) -> Dataset {
        read_csv(text.as_bytes(), &CsvOptions::default()).unwrap()
    }

    #[test]
    fn infers_types() {
        let ds = parse("a,b,c,d\n1,1.5,true,x\n2,2.5,false,y\n");
        assert_eq!(ds.column("a").unwrap().dtype(), DataType::Int);
        assert_eq!(ds.column("b").unwrap().dtype(), DataType::Float);
        assert_eq!(ds.column("c").unwrap().dtype(), DataType::Bool);
        assert_eq!(ds.column("d").unwrap().dtype(), DataType::Cat);
    }

    #[test]
    fn empty_fields_become_nulls_for_numeric() {
        let ds = parse("a,b\n1,2.0\n,\n3,4.0\n");
        assert_eq!(ds.column("a").unwrap().null_count(), 1);
        assert_eq!(ds.column("b").unwrap().null_count(), 1);
        // nullable int widened to float
        assert_eq!(ds.column("a").unwrap().dtype(), DataType::Float);
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let ds = parse("name,v\n\"Doe, Jane\",1\n\"say \"\"hi\"\"\",2\n");
        let labels = ds.labels("name").unwrap();
        assert_eq!(labels[0], "Doe, Jane");
        assert_eq!(labels[1], "say \"hi\"");
    }

    #[test]
    fn headerless_mode_names_columns() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let ds = read_csv("1,2\n3,4\n".as_bytes(), &opts).unwrap();
        assert_eq!(ds.names(), vec!["col0", "col1"]);
        assert_eq!(ds.n_rows(), 2);
    }

    #[test]
    fn ragged_record_is_an_error() {
        let res = read_csv("a,b\n1,2\n3\n".as_bytes(), &CsvOptions::default());
        assert!(matches!(res, Err(FactError::Parse { .. })));
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let res = read_csv("a\n\"oops\n".as_bytes(), &CsvOptions::default());
        assert!(matches!(res, Err(FactError::Parse { .. })));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(read_csv("".as_bytes(), &CsvOptions::default()).is_err());
        assert!(read_csv("a,b\n".as_bytes(), &CsvOptions::default()).is_err());
    }

    #[test]
    fn round_trip_preserves_values() {
        let ds = Dataset::builder()
            .f64("x", vec![1.5, 2.5])
            .i64("n", vec![10, 20])
            .boolean("flag", vec![true, false])
            .cat("label", &["a,b", "plain"])
            .build()
            .unwrap();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(buf.as_slice(), &CsvOptions::default()).unwrap();
        assert_eq!(back.f64_column("x").unwrap(), vec![1.5, 2.5]);
        assert_eq!(back.column("n").unwrap().as_i64_slice().unwrap(), &[10, 20]);
        assert_eq!(back.bool_column("flag").unwrap(), &[true, false]);
        assert_eq!(back.labels("label").unwrap(), vec!["a,b", "plain"]);
    }

    #[test]
    fn round_trip_preserves_nulls() {
        let ds = Dataset::builder()
            .f64_opt("x", vec![Some(1.0), None])
            .cat("g", &["u", "v"])
            .build()
            .unwrap();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(buf.as_slice(), &CsvOptions::default()).unwrap();
        assert_eq!(back.column("x").unwrap().null_count(), 1);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fact_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.csv");
        let ds = Dataset::builder().f64("x", vec![1.0, 2.0]).build().unwrap();
        write_csv_path(&ds, &path).unwrap();
        let back = read_csv_path(&path).unwrap();
        assert_eq!(back.f64_column("x").unwrap(), vec![1.0, 2.0]);
        std::fs::remove_file(path).ok();
    }
}
