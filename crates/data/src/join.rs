//! Hash joins between datasets.
//!
//! The paper's pipelines span "multiple steps and actors" — in practice that
//! means combining tables (applications with credit-bureau data, events with
//! user profiles). Inner and left hash joins on a categorical/int/bool key
//! column; right-hand columns are suffixed on name collisions.

use std::collections::HashMap;

use crate::column::Column;
use crate::error::{FactError, Result};
use crate::frame::Dataset;
use crate::value::{DataType, Value};

/// Join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep only rows whose key appears on both sides.
    Inner,
    /// Keep every left row; unmatched right columns become nulls (numeric
    /// right columns) or a `""` label (categorical).
    Left,
}

fn key_strings(ds: &Dataset, key: &str) -> Result<Vec<String>> {
    let col = ds.column(key)?;
    match col.dtype() {
        DataType::Cat | DataType::Int | DataType::Bool => {
            Ok((0..ds.n_rows()).map(|i| col.get(i).to_string()).collect())
        }
        other => Err(FactError::TypeMismatch {
            column: key.to_string(),
            expected: DataType::Cat,
            actual: other,
        }),
    }
}

/// Join `left` with `right` on equality of `key` (same column name on both
/// sides). Right-side duplicates produce one output row per match. Columns
/// of `right` (other than the key) that collide with a left column name get
/// a `_right` suffix.
pub fn join(left: &Dataset, right: &Dataset, key: &str, kind: JoinKind) -> Result<Dataset> {
    let lk = key_strings(left, key)?;
    let rk = key_strings(right, key)?;
    // index right rows by key
    let mut index: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, k) in rk.iter().enumerate() {
        index.entry(k.as_str()).or_default().push(i);
    }
    // build row pairs
    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<Option<usize>> = Vec::new();
    for (li, k) in lk.iter().enumerate() {
        match index.get(k.as_str()) {
            Some(matches) => {
                for &ri in matches {
                    left_rows.push(li);
                    right_rows.push(Some(ri));
                }
            }
            None => {
                if kind == JoinKind::Left {
                    left_rows.push(li);
                    right_rows.push(None);
                }
            }
        }
    }

    let mut out = left.take(&left_rows);
    let left_names: Vec<String> = left.names().iter().map(|s| s.to_string()).collect();
    for field in right.schema().fields() {
        if field.name == key {
            continue;
        }
        let name = if left_names.contains(&field.name) {
            format!("{}_right", field.name)
        } else {
            field.name.clone()
        };
        let col = right.column(&field.name)?;
        let gathered = gather_with_nulls(col, &right_rows);
        out.add_column(name.clone(), gathered)?;
        // carry FACT annotations across the join
        if let Some(f) = out.schema_mut().field_mut(&name) {
            f.sensitive = field.sensitive;
            f.quasi_identifier = field.quasi_identifier;
        }
    }
    Ok(out)
}

fn gather_with_nulls(col: &Column, rows: &[Option<usize>]) -> Column {
    match col.dtype() {
        DataType::Cat => {
            let labels: Vec<String> = rows
                .iter()
                .map(|r| match r {
                    Some(i) => match col.get(*i) {
                        Value::Cat(s) => s,
                        other => other.to_string(),
                    },
                    None => String::new(),
                })
                .collect();
            Column::from_labels(&labels)
        }
        _ => {
            let vals: Vec<Option<f64>> = rows
                .iter()
                .map(|r| r.and_then(|i| col.get(i).as_f64()))
                .collect();
            Column::from_f64_opt(vals)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Dataset {
        Dataset::builder()
            .cat("user", &["u1", "u2", "u3", "u4"])
            .f64("score", vec![1.0, 2.0, 3.0, 4.0])
            .build()
            .unwrap()
    }

    fn profiles() -> Dataset {
        Dataset::builder()
            .cat("user", &["u1", "u3", "u3", "u9"])
            .cat("region", &["north", "south", "west", "east"])
            .f64("age", vec![30.0, 40.0, 41.0, 50.0])
            .build()
            .unwrap()
    }

    #[test]
    fn inner_join_matches_keys() {
        let j = join(&people(), &profiles(), "user", JoinKind::Inner).unwrap();
        // u1 matches once, u3 matches twice, u2/u4 drop
        assert_eq!(j.n_rows(), 3);
        assert_eq!(j.labels("user").unwrap(), vec!["u1", "u3", "u3"]);
        assert_eq!(j.f64_column("score").unwrap(), vec![1.0, 3.0, 3.0]);
        assert_eq!(j.labels("region").unwrap(), vec!["north", "south", "west"]);
    }

    #[test]
    fn left_join_keeps_unmatched_with_nulls() {
        let j = join(&people(), &profiles(), "user", JoinKind::Left).unwrap();
        assert_eq!(j.n_rows(), 5); // u1, u2(null), u3×2, u4(null)
        let age = j.column("age").unwrap();
        assert_eq!(age.null_count(), 2);
        let users = j.labels("user").unwrap();
        assert_eq!(users, vec!["u1", "u2", "u3", "u3", "u4"]);
        let region = j.labels("region").unwrap();
        assert_eq!(region[1], "");
    }

    #[test]
    fn name_collisions_get_suffixed() {
        let right = Dataset::builder()
            .cat("user", &["u1"])
            .f64("score", vec![99.0])
            .build()
            .unwrap();
        let j = join(&people(), &right, "user", JoinKind::Inner).unwrap();
        assert!(j.column("score").is_ok());
        assert_eq!(j.f64_column("score_right").unwrap(), vec![99.0]);
    }

    #[test]
    fn annotations_travel_across_joins() {
        let right = Dataset::builder()
            .cat("user", &["u1", "u2"])
            .cat("ethnicity", &["a", "b"])
            .sensitive()
            .build()
            .unwrap();
        let j = join(&people(), &right, "user", JoinKind::Inner).unwrap();
        assert!(j.schema().field("ethnicity").unwrap().sensitive);
    }

    #[test]
    fn float_keys_rejected() {
        assert!(join(&people(), &profiles(), "score", JoinKind::Inner).is_err());
        assert!(join(&people(), &profiles(), "ghost", JoinKind::Inner).is_err());
    }

    #[test]
    fn int_keys_work() {
        let a = Dataset::builder()
            .i64("id", vec![1, 2, 3])
            .f64("x", vec![0.1, 0.2, 0.3])
            .build()
            .unwrap();
        let b = Dataset::builder()
            .i64("id", vec![2, 3])
            .f64("y", vec![20.0, 30.0])
            .build()
            .unwrap();
        let j = join(&a, &b, "id", JoinKind::Inner).unwrap();
        assert_eq!(j.n_rows(), 2);
        assert_eq!(j.f64_column("y").unwrap(), vec![20.0, 30.0]);
    }
}
