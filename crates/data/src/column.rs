//! Typed, dictionary-encoded columns with null tracking.
//!
//! Storage follows the columnar layout recommended for analytic engines:
//! contiguous `Vec`s per column, dictionary encoding for categoricals, and an
//! optional validity mask (`true` = value present). Operations pre-allocate
//! their outputs.

use crate::error::{FactError, Result};
use crate::value::{DataType, Value};

/// Dictionary-encoded categorical storage: `codes[i]` indexes into `dict`.
#[derive(Debug, Clone, PartialEq)]
pub struct CatData {
    /// Per-row dictionary codes.
    pub codes: Vec<u32>,
    /// Distinct labels; `dict[code]` is the label for `code`.
    pub dict: Vec<String>,
}

impl CatData {
    /// Build categorical storage from string labels, constructing the
    /// dictionary in first-appearance order.
    pub fn from_labels<S: AsRef<str>>(labels: &[S]) -> Self {
        let mut dict: Vec<String> = Vec::new();
        let mut codes = Vec::with_capacity(labels.len());
        for l in labels {
            let l = l.as_ref();
            let code = match dict.iter().position(|d| d == l) {
                Some(i) => i as u32,
                None => {
                    dict.push(l.to_string());
                    (dict.len() - 1) as u32
                }
            };
            codes.push(code);
        }
        CatData { codes, dict }
    }

    /// The label for row `i`.
    pub fn label(&self, i: usize) -> &str {
        &self.dict[self.codes[i] as usize]
    }

    /// The dictionary code for `label`, if present.
    pub fn code_of(&self, label: &str) -> Option<u32> {
        self.dict.iter().position(|d| d == label).map(|i| i as u32)
    }

    /// Number of distinct labels.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }
}

/// The physical storage of a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Contiguous `f64` storage.
    Float(Vec<f64>),
    /// Contiguous `i64` storage.
    Int(Vec<i64>),
    /// Contiguous `bool` storage.
    Bool(Vec<bool>),
    /// Dictionary-encoded categorical storage.
    Cat(CatData),
}

/// A typed column: physical storage plus an optional validity mask.
///
/// When `validity` is `None` every value is present. When it is `Some(mask)`,
/// `mask[i] == false` marks row `i` as null; the physical slot then holds an
/// arbitrary placeholder and must not be interpreted.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    validity: Option<Vec<bool>>,
}

impl Column {
    /// A fully-valid float column.
    pub fn from_f64(values: Vec<f64>) -> Self {
        Column {
            data: ColumnData::Float(values),
            validity: None,
        }
    }

    /// A fully-valid integer column.
    pub fn from_i64(values: Vec<i64>) -> Self {
        Column {
            data: ColumnData::Int(values),
            validity: None,
        }
    }

    /// A fully-valid boolean column.
    pub fn from_bool(values: Vec<bool>) -> Self {
        Column {
            data: ColumnData::Bool(values),
            validity: None,
        }
    }

    /// A fully-valid categorical column built from string labels.
    pub fn from_labels<S: AsRef<str>>(labels: &[S]) -> Self {
        Column {
            data: ColumnData::Cat(CatData::from_labels(labels)),
            validity: None,
        }
    }

    /// A categorical column from pre-built dictionary storage (codes must
    /// index into the dictionary — used by the segment reader, which
    /// validates codes against the manifest dictionary before calling).
    pub fn from_cat(cat: CatData) -> Self {
        Column {
            data: ColumnData::Cat(cat),
            validity: None,
        }
    }

    /// A float column with nulls: `None` entries become null slots.
    pub fn from_f64_opt(values: Vec<Option<f64>>) -> Self {
        let mut data = Vec::with_capacity(values.len());
        let mut mask = Vec::with_capacity(values.len());
        let mut any_null = false;
        for v in values {
            match v {
                Some(x) => {
                    data.push(x);
                    mask.push(true);
                }
                None => {
                    data.push(f64::NAN);
                    mask.push(false);
                    any_null = true;
                }
            }
        }
        Column {
            data: ColumnData::Float(data),
            validity: if any_null { Some(mask) } else { None },
        }
    }

    /// Attach an explicit validity mask (length must match).
    pub fn with_validity(mut self, validity: Vec<bool>) -> Result<Self> {
        if validity.len() != self.len() {
            return Err(FactError::LengthMismatch {
                expected: self.len(),
                actual: validity.len(),
            });
        }
        self.validity = if validity.iter().all(|&v| v) {
            None
        } else {
            Some(validity)
        };
        Ok(self)
    }

    /// Borrow the physical storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Float(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Cat(c) => c.codes.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The logical type.
    pub fn dtype(&self) -> DataType {
        match &self.data {
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Cat(_) => DataType::Cat,
        }
    }

    /// Whether row `i` is null.
    pub fn is_null(&self, i: usize) -> bool {
        self.validity.as_ref().map(|m| !m[i]).unwrap_or(false)
    }

    /// Count of null rows.
    pub fn null_count(&self) -> usize {
        self.validity
            .as_ref()
            .map(|m| m.iter().filter(|&&v| !v).count())
            .unwrap_or(0)
    }

    /// The value at row `i` (bounds-checked by the underlying `Vec`).
    pub fn get(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Cat(c) => Value::Cat(c.label(i).to_string()),
        }
    }

    /// Borrow float storage; errors on other types.
    pub fn as_f64_slice(&self) -> Result<&[f64]> {
        match &self.data {
            ColumnData::Float(v) => Ok(v),
            _ => Err(FactError::TypeMismatch {
                column: String::new(),
                expected: DataType::Float,
                actual: self.dtype(),
            }),
        }
    }

    /// Borrow bool storage; errors on other types.
    pub fn as_bool_slice(&self) -> Result<&[bool]> {
        match &self.data {
            ColumnData::Bool(v) => Ok(v),
            _ => Err(FactError::TypeMismatch {
                column: String::new(),
                expected: DataType::Bool,
                actual: self.dtype(),
            }),
        }
    }

    /// Borrow int storage; errors on other types.
    pub fn as_i64_slice(&self) -> Result<&[i64]> {
        match &self.data {
            ColumnData::Int(v) => Ok(v),
            _ => Err(FactError::TypeMismatch {
                column: String::new(),
                expected: DataType::Int,
                actual: self.dtype(),
            }),
        }
    }

    /// Borrow categorical storage; errors on other types.
    pub fn as_cat(&self) -> Result<&CatData> {
        match &self.data {
            ColumnData::Cat(c) => Ok(c),
            _ => Err(FactError::TypeMismatch {
                column: String::new(),
                expected: DataType::Cat,
                actual: self.dtype(),
            }),
        }
    }

    /// Materialize the column as `f64` values (ints widened, bools 0/1).
    /// Nulls and categorical columns are rejected.
    pub fn to_f64_vec(&self) -> Result<Vec<f64>> {
        let nulls = self.null_count();
        if nulls > 0 {
            return Err(FactError::NullNotAllowed {
                column: String::new(),
                count: nulls,
            });
        }
        match &self.data {
            ColumnData::Float(v) => Ok(v.clone()),
            ColumnData::Int(v) => Ok(v.iter().map(|&x| x as f64).collect()),
            ColumnData::Bool(v) => Ok(v.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect()),
            ColumnData::Cat(_) => Err(FactError::TypeMismatch {
                column: String::new(),
                expected: DataType::Float,
                actual: DataType::Cat,
            }),
        }
    }

    /// Materialize labels for a categorical column.
    pub fn to_labels(&self) -> Result<Vec<String>> {
        let c = self.as_cat()?;
        Ok((0..self.len()).map(|i| c.label(i).to_string()).collect())
    }

    /// Gather rows by index, preserving nulls. Indices must be in bounds.
    pub fn take(&self, indices: &[usize]) -> Column {
        let data = match &self.data {
            ColumnData::Float(v) => ColumnData::Float(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Cat(c) => ColumnData::Cat(CatData {
                codes: indices.iter().map(|&i| c.codes[i]).collect(),
                dict: c.dict.clone(),
            }),
        };
        let validity = self
            .validity
            .as_ref()
            .map(|m| indices.iter().map(|&i| m[i]).collect::<Vec<bool>>())
            .filter(|m| m.iter().any(|&v| !v));
        Column { data, validity }
    }

    /// Keep rows where `mask[i]` is true. `mask` must match the column length.
    pub fn filter(&self, mask: &[bool]) -> Result<Column> {
        if mask.len() != self.len() {
            return Err(FactError::LengthMismatch {
                expected: self.len(),
                actual: mask.len(),
            });
        }
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        Ok(self.take(&indices))
    }

    /// Mean of the non-null values of a numeric/bool column.
    pub fn mean(&self) -> Result<f64> {
        let (sum, n) = self.fold_valid_f64()?;
        if n == 0 {
            return Err(FactError::EmptyData("mean of empty column".into()));
        }
        Ok(sum / n as f64)
    }

    /// Minimum of the non-null values of a numeric/bool column.
    pub fn min(&self) -> Result<f64> {
        self.reduce_valid_f64(f64::INFINITY, f64::min)
    }

    /// Maximum of the non-null values of a numeric/bool column.
    pub fn max(&self) -> Result<f64> {
        self.reduce_valid_f64(f64::NEG_INFINITY, f64::max)
    }

    /// Sample standard deviation (n-1 denominator) of non-null values.
    pub fn std(&self) -> Result<f64> {
        let mean = self.mean()?;
        let mut ss = 0.0;
        let mut n = 0usize;
        self.for_each_valid_f64(|x| {
            ss += (x - mean) * (x - mean);
            n += 1;
        })?;
        if n < 2 {
            return Err(FactError::EmptyData(
                "std requires at least 2 non-null values".into(),
            ));
        }
        Ok((ss / (n - 1) as f64).sqrt())
    }

    /// Counts per distinct value, as `(label, count)` pairs.
    ///
    /// For categorical columns, labels come from the dictionary; for bools,
    /// `"true"`/`"false"`; for numeric columns, the formatted value. Nulls are
    /// reported under `"null"`. Pairs are sorted by descending count, then
    /// label, for deterministic output.
    pub fn value_counts(&self) -> Vec<(String, usize)> {
        use std::collections::HashMap;
        let mut counts: HashMap<String, usize> = HashMap::new();
        for i in 0..self.len() {
            let key = self.get(i).to_string();
            *counts.entry(key).or_insert(0) += 1;
        }
        let mut pairs: Vec<(String, usize)> = counts.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        pairs
    }

    fn fold_valid_f64(&self) -> Result<(f64, usize)> {
        let mut sum = 0.0;
        let mut n = 0usize;
        self.for_each_valid_f64(|x| {
            sum += x;
            n += 1;
        })?;
        Ok((sum, n))
    }

    fn reduce_valid_f64(&self, init: f64, f: fn(f64, f64) -> f64) -> Result<f64> {
        let mut acc = init;
        let mut n = 0usize;
        self.for_each_valid_f64(|x| {
            acc = f(acc, x);
            n += 1;
        })?;
        if n == 0 {
            return Err(FactError::EmptyData("reduction over empty column".into()));
        }
        Ok(acc)
    }

    /// Apply `f` to every non-null value, viewed as `f64`.
    /// Errors for categorical columns.
    pub fn for_each_valid_f64<F: FnMut(f64)>(&self, mut f: F) -> Result<()> {
        match &self.data {
            ColumnData::Float(v) => {
                for (i, &x) in v.iter().enumerate() {
                    if !self.is_null(i) {
                        f(x);
                    }
                }
            }
            ColumnData::Int(v) => {
                for (i, &x) in v.iter().enumerate() {
                    if !self.is_null(i) {
                        f(x as f64);
                    }
                }
            }
            ColumnData::Bool(v) => {
                for (i, &b) in v.iter().enumerate() {
                    if !self.is_null(i) {
                        f(if b { 1.0 } else { 0.0 });
                    }
                }
            }
            ColumnData::Cat(_) => {
                return Err(FactError::TypeMismatch {
                    column: String::new(),
                    expected: DataType::Float,
                    actual: DataType::Cat,
                })
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cat_dictionary_built_in_first_appearance_order() {
        let c = CatData::from_labels(&["b", "a", "b", "c", "a"]);
        assert_eq!(c.dict, vec!["b", "a", "c"]);
        assert_eq!(c.codes, vec![0, 1, 0, 2, 1]);
        assert_eq!(c.cardinality(), 3);
        assert_eq!(c.code_of("c"), Some(2));
        assert_eq!(c.code_of("z"), None);
        assert_eq!(c.label(3), "c");
    }

    #[test]
    fn column_basic_accessors() {
        let col = Column::from_f64(vec![1.0, 2.0, 3.0]);
        assert_eq!(col.len(), 3);
        assert!(!col.is_empty());
        assert_eq!(col.dtype(), DataType::Float);
        assert_eq!(col.get(1), Value::Float(2.0));
        assert_eq!(col.null_count(), 0);
    }

    #[test]
    fn null_mask_round_trip() {
        let col = Column::from_f64_opt(vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(col.null_count(), 1);
        assert!(col.is_null(1));
        assert_eq!(col.get(1), Value::Null);
        assert_eq!(col.get(2), Value::Float(3.0));
        assert!(col.to_f64_vec().is_err());
    }

    #[test]
    fn all_true_validity_normalizes_to_none() {
        let col = Column::from_i64(vec![1, 2])
            .with_validity(vec![true, true])
            .unwrap();
        assert_eq!(col.null_count(), 0);
    }

    #[test]
    fn with_validity_rejects_wrong_length() {
        let res = Column::from_i64(vec![1, 2]).with_validity(vec![true]);
        assert!(matches!(res, Err(FactError::LengthMismatch { .. })));
    }

    #[test]
    fn take_gathers_and_preserves_nulls() {
        let col = Column::from_f64_opt(vec![Some(0.0), None, Some(2.0), Some(3.0)]);
        let taken = col.take(&[3, 1, 1, 0]);
        assert_eq!(taken.len(), 4);
        assert_eq!(taken.get(0), Value::Float(3.0));
        assert!(taken.is_null(1));
        assert!(taken.is_null(2));
        assert_eq!(taken.get(3), Value::Float(0.0));
    }

    #[test]
    fn take_drops_validity_when_no_nulls_selected() {
        let col = Column::from_f64_opt(vec![Some(0.0), None, Some(2.0)]);
        let taken = col.take(&[0, 2]);
        assert_eq!(taken.null_count(), 0);
    }

    #[test]
    fn filter_by_mask() {
        let col = Column::from_labels(&["x", "y", "z"]);
        let kept = col.filter(&[true, false, true]).unwrap();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept.get(1), Value::Cat("z".into()));
        assert!(col.filter(&[true]).is_err());
    }

    #[test]
    fn numeric_reductions() {
        let col = Column::from_f64(vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(col.mean().unwrap(), 5.0);
        assert_eq!(col.min().unwrap(), 2.0);
        assert_eq!(col.max().unwrap(), 8.0);
        let std = col.std().unwrap();
        assert!((std - (20.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn reductions_skip_nulls() {
        let col = Column::from_f64_opt(vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(col.mean().unwrap(), 2.0);
        assert_eq!(col.min().unwrap(), 1.0);
        assert_eq!(col.max().unwrap(), 3.0);
    }

    #[test]
    fn reductions_on_empty_error() {
        let col = Column::from_f64(vec![]);
        assert!(col.mean().is_err());
        assert!(col.min().is_err());
    }

    #[test]
    fn bool_column_numeric_view() {
        let col = Column::from_bool(vec![true, false, true, true]);
        assert_eq!(col.mean().unwrap(), 0.75);
        assert_eq!(col.to_f64_vec().unwrap(), vec![1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn cat_columns_reject_numeric_ops() {
        let col = Column::from_labels(&["a", "b"]);
        assert!(col.mean().is_err());
        assert!(col.to_f64_vec().is_err());
        assert!(col.as_f64_slice().is_err());
    }

    #[test]
    fn value_counts_sorted_desc_then_label() {
        let col = Column::from_labels(&["a", "b", "b", "c", "c"]);
        let counts = col.value_counts();
        assert_eq!(
            counts,
            vec![
                ("b".to_string(), 2),
                ("c".to_string(), 2),
                ("a".to_string(), 1)
            ]
        );
    }

    #[test]
    fn value_counts_reports_nulls() {
        let col = Column::from_f64_opt(vec![Some(1.0), None, None]);
        let counts = col.value_counts();
        assert!(counts.contains(&("null".to_string(), 2)));
    }

    #[test]
    fn int_widening() {
        let col = Column::from_i64(vec![1, 2, 3]);
        assert_eq!(col.to_f64_vec().unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(col.as_i64_slice().unwrap(), &[1, 2, 3]);
    }
}
