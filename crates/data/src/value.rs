//! Scalar values and data types for dataset columns.

use std::fmt;

/// The logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit floating point.
    Float,
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// Dictionary-encoded categorical (string labels, `u32` codes).
    Cat,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Float => "float",
            DataType::Int => "int",
            DataType::Bool => "bool",
            DataType::Cat => "categorical",
        };
        f.write_str(s)
    }
}

/// A single scalar value drawn from a column.
///
/// `Cat` carries the *label* (resolved through the column dictionary) so that
/// values are self-describing when they cross API boundaries.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Floating-point value.
    Float(f64),
    /// Integer value.
    Int(i64),
    /// Boolean value.
    Bool(bool),
    /// Categorical label.
    Cat(String),
    /// Missing value.
    Null,
}

impl Value {
    /// The [`DataType`] this value belongs to, or `None` for `Null`.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Float(_) => Some(DataType::Float),
            Value::Int(_) => Some(DataType::Int),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Cat(_) => Some(DataType::Cat),
            Value::Null => None,
        }
    }

    /// True when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Best-effort numeric view: floats as-is, ints widened, bools as 0/1.
    /// Categorical and null values return `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Cat(_) | Value::Null => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Float(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Cat(s) => f.write_str(s),
            Value::Null => f.write_str("null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_of_values() {
        assert_eq!(Value::Float(1.0).dtype(), Some(DataType::Float));
        assert_eq!(Value::Int(1).dtype(), Some(DataType::Int));
        assert_eq!(Value::Bool(true).dtype(), Some(DataType::Bool));
        assert_eq!(Value::Cat("a".into()).dtype(), Some(DataType::Cat));
        assert_eq!(Value::Null.dtype(), None);
    }

    #[test]
    fn as_f64_widens_numerics_and_bools() {
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Int(-3).as_f64(), Some(-3.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Bool(false).as_f64(), Some(0.0));
        assert_eq!(Value::Cat("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn display_round_trips_labels() {
        assert_eq!(Value::Cat("group B".into()).to_string(), "group B");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(DataType::Cat.to_string(), "categorical");
    }
}
