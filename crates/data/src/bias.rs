//! Controlled bias injectors.
//!
//! The paper's fairness pillar (§2, Q1) warns that "the training data may be
//! biased or minorities may be underrepresented or individually
//! discriminated". These functions *create* those conditions on demand, with
//! a known ground truth, so detection and mitigation can be validated
//! quantitatively:
//!
//! * [`flip_labels_against_group`] — historical *label bias*: flip favorable
//!   outcomes to unfavorable for members of a protected group.
//! * [`undersample_group`] — *representation bias*: drop members of a group.
//! * [`inject_proxy`] — *redundant encoding*: add a feature correlated with
//!   the protected attribute, so group membership leaks even after the
//!   sensitive column is removed (the paper's "even if sensitive attributes
//!   are omitted" failure mode).
//!
//! The matching [`group_rates`] / [`group_rates_segments`] probes measure
//! the damage: per-group positive rates of a boolean outcome, computed
//! in-memory over borrowed column storage or on-disk through the
//! column-pruned segment scan.
//!
//! All injectors compare group membership by **dictionary code**, not by
//! materialized label strings, so no per-row `String` allocation happens on
//! the hot path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::column::{CatData, Column};
use crate::error::{FactError, Result};
use crate::frame::Dataset;
use crate::segment::{DecodedValues, Predicate, ScanStats, SegmentSet};
use crate::value::DataType;

/// Borrow a named categorical column's storage, naming the column in errors.
fn cat_of<'a>(ds: &'a Dataset, name: &str) -> Result<&'a CatData> {
    ds.column(name)?.as_cat().map_err(|e| match e {
        FactError::TypeMismatch {
            expected, actual, ..
        } => FactError::TypeMismatch {
            column: name.to_string(),
            expected,
            actual,
        },
        other => other,
    })
}

/// Flip `rate` of the `true` labels to `false` for rows whose `group_col`
/// equals `group`. Models historical discrimination in recorded outcomes.
///
/// Returns the biased dataset and the number of labels flipped.
pub fn flip_labels_against_group(
    ds: &Dataset,
    label_col: &str,
    group_col: &str,
    group: &str,
    rate: f64,
    seed: u64,
) -> Result<(Dataset, usize)> {
    if !(0.0..=1.0).contains(&rate) {
        return Err(FactError::InvalidArgument(format!(
            "flip rate must be in [0, 1], got {rate}"
        )));
    }
    let labels = ds.bool_column(label_col)?;
    let cat = cat_of(ds, group_col)?;
    let target = cat.code_of(group);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flipped = 0usize;
    let new_labels: Vec<bool> = labels
        .iter()
        .zip(&cat.codes)
        .map(|(&y, &c)| {
            if y && target == Some(c) && rng.gen::<f64>() < rate {
                flipped += 1;
                false
            } else {
                y
            }
        })
        .collect();
    let mut out = ds.clone();
    out.replace_column(label_col, Column::from_bool(new_labels))?;
    Ok((out, flipped))
}

/// Keep only `keep_frac` of the rows belonging to `group` (all other rows are
/// retained). Models under-representation of a minority in collected data.
pub fn undersample_group(
    ds: &Dataset,
    group_col: &str,
    group: &str,
    keep_frac: f64,
    seed: u64,
) -> Result<Dataset> {
    if !(0.0..=1.0).contains(&keep_frac) {
        return Err(FactError::InvalidArgument(format!(
            "keep_frac must be in [0, 1], got {keep_frac}"
        )));
    }
    let cat = cat_of(ds, group_col)?;
    let target = cat.code_of(group);
    let mut rng = StdRng::seed_from_u64(seed);
    let mask: Vec<bool> = cat
        .codes
        .iter()
        .map(|&c| target != Some(c) || rng.gen::<f64>() < keep_frac)
        .collect();
    ds.filter(&mask)
}

/// Add a numeric column `proxy_name` that encodes group membership with
/// strength `strength ∈ [0, 1]`: the proxy is
/// `strength · 1[group] + (1 − strength) · noise`, so at `strength = 1` it is
/// a perfect surrogate for the protected attribute and at `strength = 0` it
/// is pure noise.
pub fn inject_proxy(
    ds: &Dataset,
    group_col: &str,
    group: &str,
    proxy_name: &str,
    strength: f64,
    seed: u64,
) -> Result<Dataset> {
    if !(0.0..=1.0).contains(&strength) {
        return Err(FactError::InvalidArgument(format!(
            "proxy strength must be in [0, 1], got {strength}"
        )));
    }
    let cat = cat_of(ds, group_col)?;
    let target = cat.code_of(group);
    let mut rng = StdRng::seed_from_u64(seed);
    let proxy: Vec<f64> = cat
        .codes
        .iter()
        .map(|&c| {
            let indicator = if target == Some(c) { 1.0 } else { 0.0 };
            let noise: f64 = rng.gen::<f64>();
            strength * indicator + (1.0 - strength) * noise
        })
        .collect();
    let mut out = ds.clone();
    out.add_column(proxy_name, Column::from_f64(proxy))?;
    Ok(out)
}

/// Positive rate of a boolean outcome within one group — the unit the bias
/// probes report.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRate {
    /// Group label (dictionary entry).
    pub group: String,
    /// Rows in the group (group and label both non-null).
    pub n: usize,
    /// Rows whose label is `true`.
    pub positives: usize,
    /// `positives / n`.
    pub rate: f64,
}

/// Per-group positive rate of boolean `label_col` split by categorical
/// `group_col` — the probe that verifies an injector's damage (or detects
/// it on real data). Groups are reported in dictionary-code order; rows
/// where either column is null are skipped; dictionary entries with no
/// remaining rows are omitted.
pub fn group_rates(ds: &Dataset, label_col: &str, group_col: &str) -> Result<Vec<GroupRate>> {
    let labels = ds.bool_column(label_col)?;
    let lcol = ds.column(label_col)?;
    let cat = cat_of(ds, group_col)?;
    let gcol = ds.column(group_col)?;
    let mut n = vec![0usize; cat.dict.len()];
    let mut pos = vec![0usize; cat.dict.len()];
    for (i, (&y, &c)) in labels.iter().zip(&cat.codes).enumerate() {
        if gcol.is_null(i) || lcol.is_null(i) {
            continue;
        }
        n[c as usize] += 1;
        if y {
            pos[c as usize] += 1;
        }
    }
    Ok(finish_rates(&cat.dict, &n, &pos))
}

/// [`group_rates`] over an on-disk [`SegmentSet`], restricted to rows
/// matching `pred`. Routed through the column-pruned scan: only the two
/// named columns are read, and segments excluded by `pred`'s zone maps are
/// skipped entirely. Per-code tallies merge additively, so the result is
/// identical at any `fact_par` worker count.
pub fn group_rates_segments(
    set: &SegmentSet,
    label_col: &str,
    group_col: &str,
    pred: &Predicate,
) -> Result<(Vec<GroupRate>, ScanStats)> {
    let ldt = set.dtype(label_col)?;
    if ldt != DataType::Bool {
        return Err(FactError::TypeMismatch {
            column: label_col.to_string(),
            expected: DataType::Bool,
            actual: ldt,
        });
    }
    let dict: Vec<String> = set.dict(group_col)?.to_vec();
    let k = dict.len();
    let (tallies, stats) = set.scan_fold(
        &[label_col, group_col],
        pred,
        |batch| {
            let lc = batch.column(label_col)?;
            let gc = batch.column(group_col)?;
            let labels = match &lc.values {
                DecodedValues::Bool(v) => v,
                _ => unreachable!("label dtype validated above"),
            };
            let codes = match &gc.values {
                DecodedValues::Codes(v) => v,
                _ => unreachable!("group dtype validated by dict lookup"),
            };
            let mut n = vec![0usize; k];
            let mut pos = vec![0usize; k];
            for i in batch.rows() {
                if gc.is_null(i) || lc.is_null(i) {
                    continue;
                }
                n[codes[i] as usize] += 1;
                if labels[i] {
                    pos[codes[i] as usize] += 1;
                }
            }
            Ok((n, pos))
        },
        |(mut an, mut ap): (Vec<usize>, Vec<usize>), (bn, bp)| {
            for (x, y) in an.iter_mut().zip(bn) {
                *x += y;
            }
            for (x, y) in ap.iter_mut().zip(bp) {
                *x += y;
            }
            (an, ap)
        },
    )?;
    let (n, pos) = tallies.unwrap_or((vec![0; k], vec![0; k]));
    Ok((finish_rates(&dict, &n, &pos), stats))
}

fn finish_rates(dict: &[String], n: &[usize], pos: &[usize]) -> Vec<GroupRate> {
    dict.iter()
        .zip(n.iter().zip(pos))
        .filter(|(_, (&n, _))| n > 0)
        .map(|(label, (&n, &positives))| GroupRate {
            group: label.clone(),
            n,
            positives,
            rate: positives as f64 / n as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(n: usize) -> Dataset {
        let groups: Vec<String> = (0..n)
            .map(|i| if i % 2 == 0 { "A" } else { "B" }.to_string())
            .collect();
        Dataset::builder()
            .boolean("y", vec![true; n])
            .cat("g", &groups)
            .build()
            .unwrap()
    }

    #[test]
    fn flip_only_targets_group_and_true_labels() {
        let ds = base(1000);
        let (biased, flipped) = flip_labels_against_group(&ds, "y", "g", "B", 0.5, 1).unwrap();
        let y = biased.bool_column("y").unwrap();
        let g = biased.labels("g").unwrap();
        // group A untouched
        assert!(y
            .iter()
            .zip(&g)
            .filter(|(_, gg)| *gg == "A")
            .all(|(&v, _)| v));
        let b_false = y.iter().zip(&g).filter(|(&v, gg)| *gg == "B" && !v).count();
        assert_eq!(b_false, flipped);
        assert!((150..350).contains(&flipped), "≈50% of 500, got {flipped}");
    }

    #[test]
    fn flip_rate_zero_and_one() {
        let ds = base(100);
        let (same, f0) = flip_labels_against_group(&ds, "y", "g", "B", 0.0, 1).unwrap();
        assert_eq!(f0, 0);
        assert_eq!(same.bool_column("y").unwrap(), ds.bool_column("y").unwrap());
        let (all, f1) = flip_labels_against_group(&ds, "y", "g", "B", 1.0, 1).unwrap();
        assert_eq!(f1, 50);
        assert!(all
            .bool_column("y")
            .unwrap()
            .iter()
            .zip(all.labels("g").unwrap())
            .filter(|(_, g)| g == "B")
            .all(|(&v, _)| !v));
    }

    #[test]
    fn flip_validates_rate() {
        let ds = base(10);
        assert!(flip_labels_against_group(&ds, "y", "g", "B", 1.5, 0).is_err());
    }

    #[test]
    fn undersample_shrinks_only_target_group() {
        let ds = base(2000);
        let out = undersample_group(&ds, "g", "B", 0.2, 3).unwrap();
        let g = out.labels("g").unwrap();
        let a = g.iter().filter(|s| *s == "A").count();
        let b = g.iter().filter(|s| *s == "B").count();
        assert_eq!(a, 1000);
        assert!((120..300).contains(&b), "≈20% of 1000, got {b}");
    }

    #[test]
    fn proxy_strength_extremes() {
        let ds = base(500);
        let perfect = inject_proxy(&ds, "g", "B", "zip_risk", 1.0, 1).unwrap();
        let p = perfect.f64_column("zip_risk").unwrap();
        let g = perfect.labels("g").unwrap();
        for (v, gg) in p.iter().zip(&g) {
            assert_eq!(*v, if gg == "B" { 1.0 } else { 0.0 });
        }
        let noise = inject_proxy(&ds, "g", "B", "zip_risk", 0.0, 1).unwrap();
        let p = noise.f64_column("zip_risk").unwrap();
        // pure noise: group means close
        let mean = |f: &dyn Fn(&str) -> bool| {
            let vals: Vec<f64> = p
                .iter()
                .zip(&g)
                .filter(|(_, gg)| f(gg))
                .map(|(&v, _)| v)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let diff = (mean(&|s: &str| s == "A") - mean(&|s: &str| s == "B")).abs();
        assert!(
            diff < 0.1,
            "pure-noise proxy should not separate groups: {diff}"
        );
    }
}
