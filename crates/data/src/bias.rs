//! Controlled bias injectors.
//!
//! The paper's fairness pillar (§2, Q1) warns that "the training data may be
//! biased or minorities may be underrepresented or individually
//! discriminated". These functions *create* those conditions on demand, with
//! a known ground truth, so detection and mitigation can be validated
//! quantitatively:
//!
//! * [`flip_labels_against_group`] — historical *label bias*: flip favorable
//!   outcomes to unfavorable for members of a protected group.
//! * [`undersample_group`] — *representation bias*: drop members of a group.
//! * [`inject_proxy`] — *redundant encoding*: add a feature correlated with
//!   the protected attribute, so group membership leaks even after the
//!   sensitive column is removed (the paper's "even if sensitive attributes
//!   are omitted" failure mode).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::column::Column;
use crate::error::{FactError, Result};
use crate::frame::Dataset;

/// Flip `rate` of the `true` labels to `false` for rows whose `group_col`
/// equals `group`. Models historical discrimination in recorded outcomes.
///
/// Returns the biased dataset and the number of labels flipped.
pub fn flip_labels_against_group(
    ds: &Dataset,
    label_col: &str,
    group_col: &str,
    group: &str,
    rate: f64,
    seed: u64,
) -> Result<(Dataset, usize)> {
    if !(0.0..=1.0).contains(&rate) {
        return Err(FactError::InvalidArgument(format!(
            "flip rate must be in [0, 1], got {rate}"
        )));
    }
    let labels = ds.bool_column(label_col)?.to_vec();
    let groups = ds.labels(group_col)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flipped = 0usize;
    let new_labels: Vec<bool> = labels
        .iter()
        .zip(&groups)
        .map(|(&y, g)| {
            if y && g == group && rng.gen::<f64>() < rate {
                flipped += 1;
                false
            } else {
                y
            }
        })
        .collect();
    let mut out = ds.clone();
    out.replace_column(label_col, Column::from_bool(new_labels))?;
    Ok((out, flipped))
}

/// Keep only `keep_frac` of the rows belonging to `group` (all other rows are
/// retained). Models under-representation of a minority in collected data.
pub fn undersample_group(
    ds: &Dataset,
    group_col: &str,
    group: &str,
    keep_frac: f64,
    seed: u64,
) -> Result<Dataset> {
    if !(0.0..=1.0).contains(&keep_frac) {
        return Err(FactError::InvalidArgument(format!(
            "keep_frac must be in [0, 1], got {keep_frac}"
        )));
    }
    let groups = ds.labels(group_col)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mask: Vec<bool> = groups
        .iter()
        .map(|g| g != group || rng.gen::<f64>() < keep_frac)
        .collect();
    ds.filter(&mask)
}

/// Add a numeric column `proxy_name` that encodes group membership with
/// strength `strength ∈ [0, 1]`: the proxy is
/// `strength · 1[group] + (1 − strength) · noise`, so at `strength = 1` it is
/// a perfect surrogate for the protected attribute and at `strength = 0` it
/// is pure noise.
pub fn inject_proxy(
    ds: &Dataset,
    group_col: &str,
    group: &str,
    proxy_name: &str,
    strength: f64,
    seed: u64,
) -> Result<Dataset> {
    if !(0.0..=1.0).contains(&strength) {
        return Err(FactError::InvalidArgument(format!(
            "proxy strength must be in [0, 1], got {strength}"
        )));
    }
    let groups = ds.labels(group_col)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let proxy: Vec<f64> = groups
        .iter()
        .map(|g| {
            let indicator = if g == group { 1.0 } else { 0.0 };
            let noise: f64 = rng.gen::<f64>();
            strength * indicator + (1.0 - strength) * noise
        })
        .collect();
    let mut out = ds.clone();
    out.add_column(proxy_name, Column::from_f64(proxy))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(n: usize) -> Dataset {
        let groups: Vec<String> = (0..n)
            .map(|i| if i % 2 == 0 { "A" } else { "B" }.to_string())
            .collect();
        Dataset::builder()
            .boolean("y", vec![true; n])
            .cat("g", &groups)
            .build()
            .unwrap()
    }

    #[test]
    fn flip_only_targets_group_and_true_labels() {
        let ds = base(1000);
        let (biased, flipped) = flip_labels_against_group(&ds, "y", "g", "B", 0.5, 1).unwrap();
        let y = biased.bool_column("y").unwrap();
        let g = biased.labels("g").unwrap();
        // group A untouched
        assert!(y
            .iter()
            .zip(&g)
            .filter(|(_, gg)| *gg == "A")
            .all(|(&v, _)| v));
        let b_false = y.iter().zip(&g).filter(|(&v, gg)| *gg == "B" && !v).count();
        assert_eq!(b_false, flipped);
        assert!((150..350).contains(&flipped), "≈50% of 500, got {flipped}");
    }

    #[test]
    fn flip_rate_zero_and_one() {
        let ds = base(100);
        let (same, f0) = flip_labels_against_group(&ds, "y", "g", "B", 0.0, 1).unwrap();
        assert_eq!(f0, 0);
        assert_eq!(same.bool_column("y").unwrap(), ds.bool_column("y").unwrap());
        let (all, f1) = flip_labels_against_group(&ds, "y", "g", "B", 1.0, 1).unwrap();
        assert_eq!(f1, 50);
        assert!(all
            .bool_column("y")
            .unwrap()
            .iter()
            .zip(all.labels("g").unwrap())
            .filter(|(_, g)| g == "B")
            .all(|(&v, _)| !v));
    }

    #[test]
    fn flip_validates_rate() {
        let ds = base(10);
        assert!(flip_labels_against_group(&ds, "y", "g", "B", 1.5, 0).is_err());
    }

    #[test]
    fn undersample_shrinks_only_target_group() {
        let ds = base(2000);
        let out = undersample_group(&ds, "g", "B", 0.2, 3).unwrap();
        let g = out.labels("g").unwrap();
        let a = g.iter().filter(|s| *s == "A").count();
        let b = g.iter().filter(|s| *s == "B").count();
        assert_eq!(a, 1000);
        assert!((120..300).contains(&b), "≈20% of 1000, got {b}");
    }

    #[test]
    fn proxy_strength_extremes() {
        let ds = base(500);
        let perfect = inject_proxy(&ds, "g", "B", "zip_risk", 1.0, 1).unwrap();
        let p = perfect.f64_column("zip_risk").unwrap();
        let g = perfect.labels("g").unwrap();
        for (v, gg) in p.iter().zip(&g) {
            assert_eq!(*v, if gg == "B" { 1.0 } else { 0.0 });
        }
        let noise = inject_proxy(&ds, "g", "B", "zip_risk", 0.0, 1).unwrap();
        let p = noise.f64_column("zip_risk").unwrap();
        // pure noise: group means close
        let mean = |f: &dyn Fn(&str) -> bool| {
            let vals: Vec<f64> = p
                .iter()
                .zip(&g)
                .filter(|(_, gg)| f(gg))
                .map(|(&v, _)| v)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let diff = (mean(&|s: &str| s == "A") - mean(&|s: &str| s == "B")).abs();
        assert!(
            diff < 0.1,
            "pure-noise proxy should not separate groups: {diff}"
        );
    }
}
