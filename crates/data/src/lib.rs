//! # fact-data — the dataset substrate of the FACT toolkit
//!
//! This crate provides the data layer that every other FACT crate builds on:
//!
//! * a **columnar in-memory dataset engine** ([`Dataset`], [`Column`],
//!   [`Schema`]) with typed columns, null tracking, selection, filtering,
//!   grouping, and summaries;
//! * a small dense **matrix/linear-algebra kernel** ([`Matrix`]) used by the
//!   ML and causal-inference crates;
//! * **CSV** reading and writing with type inference;
//! * deterministic **sampling and splitting** utilities;
//! * **synthetic data generators** with *parametric, injectable bias* — the
//!   workloads for every experiment in the reproduction (loans, hiring,
//!   Berkeley-style admissions, clinical trials, census microdata);
//! * **bias injectors** that corrupt clean data in controlled ways;
//! * a **binary columnar segment store** ([`segment`]) — per-column buffers
//!   with null bitmaps and zone maps, column-pruned predicate-pushdown scans
//!   ([`SegmentSet::scan_columns`](segment::SegmentSet::scan_columns)), and
//!   segment-backed group-by ([`agg::aggregate_segments`]) that are
//!   bit-identical at any `fact_par` worker count; and
//! * an **event-stream generator** reproducing the "Internet Minute" rates
//!   cited in the paper (van der Aalst et al., BISE 59(5), 2017, §3).
//!
//! All randomized components take explicit seeds so experiments are exactly
//! reproducible.
//!
//! ## Quick example
//!
//! ```
//! use fact_data::synth::loans::{LoanConfig, generate_loans};
//!
//! let ds = generate_loans(&LoanConfig { n: 1_000, seed: 7, ..LoanConfig::default() });
//! assert_eq!(ds.n_rows(), 1_000);
//! assert!(ds.column("income").is_ok());
//! ```

#![warn(missing_docs)]

pub mod agg;
pub mod bias;
pub mod builder;
pub mod column;
pub mod csv;
pub mod error;
pub mod expr;
pub mod frame;
pub mod join;
pub mod matrix;
pub mod sample;
pub mod schema;
pub mod segment;
pub mod split;
pub mod stream;
pub mod synth;
pub mod value;

pub use builder::DatasetBuilder;
pub use column::{CatData, Column, ColumnData};
pub use error::{FactError, Result};
pub use frame::{Dataset, GroupBy, SummaryRow};
pub use matrix::Matrix;
pub use schema::{Field, Schema};
pub use segment::{Predicate, ScanStats, SegmentSet, SegmentWriteConfig};
pub use value::{DataType, Value};
