//! A small predicate-expression layer for row filtering.
//!
//! `col("income").gt(50.0).and(col("group").eq_label("B"))` evaluates to a
//! boolean mask over a dataset — the declarative filter interface audits use
//! to describe *which rows* a check applied to (the predicate's `Display`
//! form goes into audit logs, keeping filters self-documenting).

use std::fmt;

use crate::error::{FactError, Result};
use crate::frame::Dataset;
use crate::value::DataType;

/// A column reference, entry point of the expression builder.
pub fn col(name: &str) -> ColRef {
    ColRef {
        name: name.to_string(),
    }
}

/// A named column to compare against.
#[derive(Debug, Clone)]
pub struct ColRef {
    name: String,
}

impl ColRef {
    /// `column > value`.
    pub fn gt(self, v: f64) -> Predicate {
        Predicate::Cmp(self.name, CmpOp::Gt, v)
    }

    /// `column >= value`.
    pub fn ge(self, v: f64) -> Predicate {
        Predicate::Cmp(self.name, CmpOp::Ge, v)
    }

    /// `column < value`.
    pub fn lt(self, v: f64) -> Predicate {
        Predicate::Cmp(self.name, CmpOp::Lt, v)
    }

    /// `column <= value`.
    pub fn le(self, v: f64) -> Predicate {
        Predicate::Cmp(self.name, CmpOp::Le, v)
    }

    /// `column == value` (numeric).
    pub fn eq_num(self, v: f64) -> Predicate {
        Predicate::Cmp(self.name, CmpOp::Eq, v)
    }

    /// `column == label` (categorical).
    pub fn eq_label(self, label: &str) -> Predicate {
        Predicate::Label(self.name, label.to_string())
    }

    /// `column == true` (boolean column).
    pub fn is_true(self) -> Predicate {
        Predicate::IsTrue(self.name)
    }

    /// `column IS NULL`.
    pub fn is_null(self) -> Predicate {
        Predicate::IsNull(self.name)
    }
}

/// Numeric comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
    /// Exactly equal.
    Eq,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "==",
        })
    }
}

/// A boolean predicate over dataset rows.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Numeric comparison.
    Cmp(String, CmpOp, f64),
    /// Categorical equality.
    Label(String, String),
    /// Boolean column is true.
    IsTrue(String),
    /// Column is null at the row.
    IsNull(String),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluate to a row mask.
    pub fn eval(&self, ds: &Dataset) -> Result<Vec<bool>> {
        match self {
            Predicate::Cmp(name, op, v) => {
                let c = ds.column(name)?;
                if c.dtype() == DataType::Cat {
                    return Err(FactError::TypeMismatch {
                        column: name.clone(),
                        expected: DataType::Float,
                        actual: DataType::Cat,
                    });
                }
                let mut mask = Vec::with_capacity(ds.n_rows());
                for i in 0..ds.n_rows() {
                    let val = c.get(i).as_f64();
                    mask.push(match val {
                        None => false, // null never matches a comparison
                        Some(x) => match op {
                            CmpOp::Gt => x > *v,
                            CmpOp::Ge => x >= *v,
                            CmpOp::Lt => x < *v,
                            CmpOp::Le => x <= *v,
                            CmpOp::Eq => x == *v,
                        },
                    });
                }
                Ok(mask)
            }
            Predicate::Label(name, label) => {
                let labels = ds.labels(name)?;
                Ok(labels.iter().map(|l| l == label).collect())
            }
            Predicate::IsTrue(name) => Ok(ds.bool_column(name)?.to_vec()),
            Predicate::IsNull(name) => {
                let c = ds.column(name)?;
                Ok((0..ds.n_rows()).map(|i| c.is_null(i)).collect())
            }
            Predicate::And(a, b) => {
                let ma = a.eval(ds)?;
                let mb = b.eval(ds)?;
                Ok(ma.into_iter().zip(mb).map(|(x, y)| x && y).collect())
            }
            Predicate::Or(a, b) => {
                let ma = a.eval(ds)?;
                let mb = b.eval(ds)?;
                Ok(ma.into_iter().zip(mb).map(|(x, y)| x || y).collect())
            }
            Predicate::Not(a) => Ok(a.eval(ds)?.into_iter().map(|x| !x).collect()),
        }
    }

    /// Filter a dataset by this predicate.
    pub fn filter(&self, ds: &Dataset) -> Result<Dataset> {
        ds.filter(&self.eval(ds)?)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp(name, op, v) => write!(f, "{name} {op} {v}"),
            Predicate::Label(name, l) => write!(f, "{name} == '{l}'"),
            Predicate::IsTrue(name) => write!(f, "{name}"),
            Predicate::IsNull(name) => write!(f, "{name} IS NULL"),
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(a) => write!(f, "NOT ({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        Dataset::builder()
            .f64_opt("income", vec![Some(30.0), Some(60.0), None, Some(90.0)])
            .cat("group", &["A", "B", "B", "A"])
            .boolean("approved", vec![false, true, false, true])
            .build()
            .unwrap()
    }

    #[test]
    fn numeric_comparisons() {
        let ds = data();
        assert_eq!(
            col("income").gt(50.0).eval(&ds).unwrap(),
            vec![false, true, false, true]
        );
        assert_eq!(
            col("income").le(60.0).eval(&ds).unwrap(),
            vec![true, true, false, false]
        );
        assert_eq!(
            col("income").eq_num(90.0).eval(&ds).unwrap(),
            vec![false, false, false, true]
        );
    }

    #[test]
    fn nulls_never_match_comparisons_but_match_is_null() {
        let ds = data();
        assert!(!col("income").gt(-1e9).eval(&ds).unwrap()[2]);
        assert_eq!(
            col("income").is_null().eval(&ds).unwrap(),
            vec![false, false, true, false]
        );
    }

    #[test]
    fn label_and_bool_predicates() {
        let ds = data();
        assert_eq!(
            col("group").eq_label("B").eval(&ds).unwrap(),
            vec![false, true, true, false]
        );
        assert_eq!(
            col("approved").is_true().eval(&ds).unwrap(),
            vec![false, true, false, true]
        );
    }

    #[test]
    fn boolean_combinators() {
        let ds = data();
        let p = col("income")
            .gt(50.0)
            .and(col("group").eq_label("A"))
            .or(col("approved").is_true().not());
        let mask = p.eval(&ds).unwrap();
        // row0: !approved → true; row1: neither → false;
        // row2: !approved → true; row3: >50 & A → true
        assert_eq!(mask, vec![true, false, true, true]);
        let filtered = p.filter(&ds).unwrap();
        assert_eq!(filtered.n_rows(), 3);
    }

    #[test]
    fn display_is_audit_readable() {
        let p = col("income").ge(50.0).and(col("group").eq_label("B").not());
        assert_eq!(p.to_string(), "(income >= 50 AND NOT (group == 'B'))");
    }

    #[test]
    fn type_errors() {
        let ds = data();
        assert!(col("group").gt(1.0).eval(&ds).is_err());
        assert!(col("income").eq_label("x").eval(&ds).is_err());
        assert!(col("ghost").gt(1.0).eval(&ds).is_err());
    }
}
