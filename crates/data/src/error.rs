//! The shared error type for the whole FACT workspace.
//!
//! Every FACT crate returns [`FactError`] from fallible operations so that
//! errors compose across the pipeline without conversion boilerplate. The
//! variants cover the four FACT pillars: data-shape errors (all pillars),
//! privacy-budget exhaustion (confidentiality), and policy violations
//! (governance in `fact-core`).

use std::fmt;

use crate::value::DataType;

/// Result alias used throughout the FACT workspace.
pub type Result<T> = std::result::Result<T, FactError>;

/// Unified error type for the FACT toolkit.
#[derive(Debug)]
pub enum FactError {
    /// A referenced column does not exist in the dataset.
    ColumnNotFound(String),
    /// A column exists but has the wrong type for the requested operation.
    TypeMismatch {
        /// Column whose type was wrong.
        column: String,
        /// Type the operation required.
        expected: DataType,
        /// Type actually found.
        actual: DataType,
    },
    /// Two collections that must be equal-length are not.
    LengthMismatch {
        /// Expected length (e.g. the dataset row count).
        expected: usize,
        /// Actual length supplied.
        actual: usize,
    },
    /// An operation that needs rows was given an empty dataset.
    EmptyData(String),
    /// A parameter was outside its valid domain.
    InvalidArgument(String),
    /// Null values were encountered by an operation that cannot handle them.
    NullNotAllowed {
        /// Column containing the nulls.
        column: String,
        /// Number of null entries found.
        count: usize,
    },
    /// Underlying I/O failure (CSV read/write, artifact export).
    Io(std::io::Error),
    /// A binary artifact (segment file, manifest) failed structural
    /// validation: bad magic, unsupported version, truncated header, or a
    /// torn/oversized buffer. Corrupt inputs are rejected, never guessed at.
    Corrupt(String),
    /// A value could not be parsed (CSV ingestion).
    Parse {
        /// 1-based line number of the offending record, if known.
        line: usize,
        /// Description of what failed to parse.
        message: String,
    },
    /// A differential-privacy budget request exceeded the remaining budget.
    BudgetExhausted {
        /// Epsilon requested by the query.
        requested: f64,
        /// Epsilon still available in the accountant.
        remaining: f64,
    },
    /// A FACT governance policy was violated (raised by `fact-core` guards).
    PolicyViolation(String),
    /// A numeric routine failed to converge or produced a singular system.
    Numeric(String),
    /// A model was used before being fitted.
    NotFitted(String),
}

impl fmt::Display for FactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactError::ColumnNotFound(name) => write!(f, "column not found: '{name}'"),
            FactError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch on column '{column}': expected {expected}, found {actual}"
            ),
            FactError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            FactError::EmptyData(what) => write!(f, "empty data: {what}"),
            FactError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            FactError::NullNotAllowed { column, count } => {
                write!(f, "column '{column}' contains {count} null(s), which this operation does not accept; call Dataset::drop_nulls first")
            }
            FactError::Io(e) => write!(f, "I/O error: {e}"),
            FactError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
            FactError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            FactError::BudgetExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested ε={requested}, remaining ε={remaining}"
            ),
            FactError::PolicyViolation(msg) => write!(f, "FACT policy violation: {msg}"),
            FactError::Numeric(msg) => write!(f, "numeric error: {msg}"),
            FactError::NotFitted(what) => write!(f, "model not fitted: {what}"),
        }
    }
}

impl std::error::Error for FactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FactError {
    fn from(e: std::io::Error) -> Self {
        FactError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_column_not_found() {
        let e = FactError::ColumnNotFound("income".into());
        assert_eq!(e.to_string(), "column not found: 'income'");
    }

    #[test]
    fn display_type_mismatch_names_both_types() {
        let e = FactError::TypeMismatch {
            column: "age".into(),
            expected: DataType::Float,
            actual: DataType::Cat,
        };
        let s = e.to_string();
        assert!(s.contains("age"));
        assert!(s.contains("float"));
        assert!(s.contains("categorical"));
    }

    #[test]
    fn display_budget_exhausted_carries_numbers() {
        let e = FactError::BudgetExhausted {
            requested: 0.5,
            remaining: 0.25,
        };
        let s = e.to_string();
        assert!(s.contains("0.5"));
        assert!(s.contains("0.25"));
    }

    #[test]
    fn io_error_converts_and_exposes_source() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: FactError = io.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn non_io_errors_have_no_source() {
        use std::error::Error;
        let e = FactError::EmptyData("dataset".into());
        assert!(e.source().is_none());
    }
}
