//! The [`Dataset`]: an ordered collection of equal-length named columns.
//!
//! `Dataset` is immutable-by-convention: transforming operations (`select`,
//! `filter`, `take`, `drop_nulls`, …) return new datasets and never mutate in
//! place, which keeps provenance tracking in `fact-transparency` honest — a
//! recorded step always maps one input dataset to one output dataset.

use std::collections::HashMap;

use crate::builder::DatasetBuilder;
use crate::column::Column;
use crate::error::{FactError, Result};
use crate::matrix::Matrix;
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};

/// Fill in the column name on a type error raised by nameless column APIs.
fn rename_column(e: FactError, name: &str) -> FactError {
    match e {
        FactError::TypeMismatch {
            expected, actual, ..
        } => FactError::TypeMismatch {
            column: name.to_string(),
            expected,
            actual,
        },
        other => other,
    }
}

/// An in-memory columnar dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

/// One row of [`Dataset::summary`]: descriptive statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Column name.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
    /// Total rows.
    pub count: usize,
    /// Null rows.
    pub nulls: usize,
    /// Mean of non-null values (numeric columns only).
    pub mean: Option<f64>,
    /// Sample standard deviation (numeric columns with ≥ 2 values).
    pub std: Option<f64>,
    /// Minimum (numeric columns only).
    pub min: Option<f64>,
    /// Maximum (numeric columns only).
    pub max: Option<f64>,
    /// Number of distinct values.
    pub distinct: usize,
}

impl Dataset {
    /// Start building a dataset column by column.
    pub fn builder() -> DatasetBuilder {
        DatasetBuilder::new()
    }

    /// Construct from `(name, column)` pairs. All columns must have equal
    /// length and names must be unique.
    pub fn from_columns(pairs: Vec<(String, Column)>) -> Result<Self> {
        let mut b = DatasetBuilder::new();
        for (name, col) in pairs {
            b = b.column(name, col);
        }
        b.build()
    }

    /// Internal constructor used by the builder (invariants already checked).
    pub(crate) fn from_parts(schema: Schema, columns: Vec<Column>, n_rows: usize) -> Self {
        Dataset {
            schema,
            columns,
            n_rows,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// The schema (names, types, FACT annotations).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable schema access, e.g. to flag a column sensitive after loading.
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.schema
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| FactError::ColumnNotFound(name.to_string()))?;
        Ok(&self.columns[idx])
    }

    /// Borrow a column by position.
    pub fn column_at(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Convenience: materialize a named column as `f64`s, with the column
    /// name filled into any error.
    pub fn f64_column(&self, name: &str) -> Result<Vec<f64>> {
        self.column(name)?.to_f64_vec().map_err(|e| match e {
            FactError::NullNotAllowed { count, .. } => FactError::NullNotAllowed {
                column: name.to_string(),
                count,
            },
            FactError::TypeMismatch {
                expected, actual, ..
            } => FactError::TypeMismatch {
                column: name.to_string(),
                expected,
                actual,
            },
            other => other,
        })
    }

    /// Convenience: borrow a named float column's storage without cloning.
    ///
    /// Unlike [`Dataset::f64_column`] this never allocates, but it only
    /// accepts true float columns (no int/bool widening). Columns with
    /// nulls are rejected: the raw buffer holds unspecified placeholder
    /// bits under null slots that must not leak into arithmetic.
    pub fn f64_slice(&self, name: &str) -> Result<&[f64]> {
        let col = self.column(name)?;
        let nulls = col.null_count();
        if nulls > 0 {
            return Err(FactError::NullNotAllowed {
                column: name.to_string(),
                count: nulls,
            });
        }
        col.as_f64_slice().map_err(|e| rename_column(e, name))
    }

    /// Convenience: borrow a named int column's storage without cloning.
    /// Columns with nulls are rejected, as with [`Dataset::f64_slice`].
    pub fn i64_slice(&self, name: &str) -> Result<&[i64]> {
        let col = self.column(name)?;
        let nulls = col.null_count();
        if nulls > 0 {
            return Err(FactError::NullNotAllowed {
                column: name.to_string(),
                count: nulls,
            });
        }
        col.as_i64_slice().map_err(|e| rename_column(e, name))
    }

    /// Convenience: borrow a named bool column's storage.
    pub fn bool_column(&self, name: &str) -> Result<&[bool]> {
        self.column(name)?.as_bool_slice().map_err(|e| match e {
            FactError::TypeMismatch {
                expected, actual, ..
            } => FactError::TypeMismatch {
                column: name.to_string(),
                expected,
                actual,
            },
            other => other,
        })
    }

    /// Convenience: materialize a named categorical column's labels.
    pub fn labels(&self, name: &str) -> Result<Vec<String>> {
        self.column(name)?.to_labels().map_err(|e| match e {
            FactError::TypeMismatch {
                expected, actual, ..
            } => FactError::TypeMismatch {
                column: name.to_string(),
                expected,
                actual,
            },
            other => other,
        })
    }

    /// Add a column; its length must match the dataset row count (any length
    /// is accepted when the dataset has no columns yet).
    pub fn add_column(&mut self, name: impl Into<String>, col: Column) -> Result<()> {
        let name = name.into();
        if self.schema.index_of(&name).is_some() {
            return Err(FactError::InvalidArgument(format!(
                "duplicate column name '{name}'"
            )));
        }
        if !self.columns.is_empty() && col.len() != self.n_rows {
            return Err(FactError::LengthMismatch {
                expected: self.n_rows,
                actual: col.len(),
            });
        }
        if self.columns.is_empty() {
            self.n_rows = col.len();
        }
        self.schema.push(Field::new(name, col.dtype()));
        self.columns.push(col);
        Ok(())
    }

    /// Replace an existing column, keeping its FACT annotations.
    pub fn replace_column(&mut self, name: &str, col: Column) -> Result<()> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| FactError::ColumnNotFound(name.to_string()))?;
        if col.len() != self.n_rows {
            return Err(FactError::LengthMismatch {
                expected: self.n_rows,
                actual: col.len(),
            });
        }
        self.schema.field_mut(name).expect("index checked").dtype = col.dtype();
        self.columns[idx] = col;
        Ok(())
    }

    /// Return a new dataset without the named column.
    pub fn drop_column(&self, name: &str) -> Result<Dataset> {
        if self.schema.index_of(name).is_none() {
            return Err(FactError::ColumnNotFound(name.to_string()));
        }
        let keep: Vec<&str> = self.names().into_iter().filter(|&n| n != name).collect();
        self.select(&keep)
    }

    /// Project onto the named columns (in the given order), preserving
    /// annotations.
    pub fn select(&self, names: &[&str]) -> Result<Dataset> {
        let mut fields = Vec::with_capacity(names.len());
        let mut cols = Vec::with_capacity(names.len());
        for &name in names {
            let idx = self
                .schema
                .index_of(name)
                .ok_or_else(|| FactError::ColumnNotFound(name.to_string()))?;
            fields.push(self.schema.fields()[idx].clone());
            cols.push(self.columns[idx].clone());
        }
        Ok(Dataset::from_parts(
            Schema::from_fields(fields),
            cols,
            self.n_rows,
        ))
    }

    /// Keep rows where `mask[i]` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Dataset> {
        if mask.len() != self.n_rows {
            return Err(FactError::LengthMismatch {
                expected: self.n_rows,
                actual: mask.len(),
            });
        }
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        Ok(self.take(&indices))
    }

    /// Gather rows by index (duplicates and reordering allowed). Indices must
    /// be in bounds.
    pub fn take(&self, indices: &[usize]) -> Dataset {
        let cols: Vec<Column> = self.columns.iter().map(|c| c.take(indices)).collect();
        Dataset::from_parts(self.schema.clone(), cols, indices.len())
    }

    /// The first `n` rows (or all rows if fewer).
    pub fn head(&self, n: usize) -> Dataset {
        let n = n.min(self.n_rows);
        let idx: Vec<usize> = (0..n).collect();
        self.take(&idx)
    }

    /// Drop every row that has a null in any column.
    pub fn drop_nulls(&self) -> Dataset {
        let mut mask = vec![true; self.n_rows];
        for col in &self.columns {
            for (i, keep) in mask.iter_mut().enumerate() {
                if col.is_null(i) {
                    *keep = false;
                }
            }
        }
        self.filter(&mask)
            .expect("mask length matches by construction")
    }

    /// Total null count across all columns.
    pub fn null_count(&self) -> usize {
        self.columns.iter().map(|c| c.null_count()).sum()
    }

    /// Row `i` as a vector of values, in column order.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Vertically stack another dataset with an identical schema.
    pub fn vstack(&self, other: &Dataset) -> Result<Dataset> {
        if self.names() != other.names() {
            return Err(FactError::InvalidArgument(
                "vstack requires identical column names and order".into(),
            ));
        }
        let n = self.n_rows + other.n_rows;
        let mut cols = Vec::with_capacity(self.columns.len());
        for (idx, name) in self.names().iter().enumerate() {
            let a = &self.columns[idx];
            let b = other.column(name)?;
            if a.dtype() != b.dtype() {
                return Err(FactError::TypeMismatch {
                    column: name.to_string(),
                    expected: a.dtype(),
                    actual: b.dtype(),
                });
            }
            cols.push(concat_columns(a, b));
        }
        Ok(Dataset::from_parts(self.schema.clone(), cols, n))
    }

    /// Indices that sort the dataset ascending by a numeric column
    /// (stable; nulls sort last).
    pub fn argsort_by(&self, name: &str) -> Result<Vec<usize>> {
        let col = self.column(name)?;
        let mut keyed: Vec<(usize, Option<f64>)> = Vec::with_capacity(self.n_rows);
        for i in 0..self.n_rows {
            keyed.push((i, col.get(i).as_f64()));
        }
        keyed.sort_by(|a, b| match (a.1, b.1) {
            (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        });
        Ok(keyed.into_iter().map(|(i, _)| i).collect())
    }

    /// Sort rows ascending by a numeric column (stable; nulls last).
    pub fn sort_by(&self, name: &str) -> Result<Dataset> {
        Ok(self.take(&self.argsort_by(name)?))
    }

    /// Group rows by the distinct values of a column (categorical, bool, or
    /// int). Group keys are the stringified values, ordered by first
    /// appearance.
    pub fn group_by(&self, name: &str) -> Result<GroupBy<'_>> {
        let col = self.column(name)?;
        match col.dtype() {
            DataType::Cat | DataType::Bool | DataType::Int => {}
            other => {
                return Err(FactError::TypeMismatch {
                    column: name.to_string(),
                    expected: DataType::Cat,
                    actual: other,
                })
            }
        }
        let mut order: Vec<String> = Vec::new();
        let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
        for i in 0..self.n_rows {
            let key = col.get(i).to_string();
            if !groups.contains_key(&key) {
                order.push(key.clone());
            }
            groups.entry(key).or_default().push(i);
        }
        let groups = order
            .into_iter()
            .map(|k| {
                let idx = groups.remove(&k).expect("key inserted above");
                (k, idx)
            })
            .collect();
        Ok(GroupBy { ds: self, groups })
    }

    /// Descriptive statistics for every column.
    pub fn summary(&self) -> Vec<SummaryRow> {
        self.schema
            .fields()
            .iter()
            .zip(&self.columns)
            .map(|(f, c)| {
                let numeric = !matches!(f.dtype, DataType::Cat);
                SummaryRow {
                    name: f.name.clone(),
                    dtype: f.dtype,
                    count: c.len(),
                    nulls: c.null_count(),
                    mean: if numeric { c.mean().ok() } else { None },
                    std: if numeric { c.std().ok() } else { None },
                    min: if numeric { c.min().ok() } else { None },
                    max: if numeric { c.max().ok() } else { None },
                    distinct: c.value_counts().len(),
                }
            })
            .collect()
    }

    /// Build a dense row-major feature matrix from numeric/bool columns.
    /// Categorical columns are rejected — use [`Dataset::to_matrix_onehot`].
    pub fn to_matrix(&self, feature_names: &[&str]) -> Result<Matrix> {
        let mut cols = Vec::with_capacity(feature_names.len());
        for &name in feature_names {
            cols.push(self.f64_column(name)?);
        }
        Matrix::from_columns(&cols, self.n_rows)
    }

    /// Build a feature matrix where categorical columns are one-hot encoded
    /// (dropping the first category as reference level to avoid collinearity).
    /// Returns the matrix and the generated feature names.
    pub fn to_matrix_onehot(&self, feature_names: &[&str]) -> Result<(Matrix, Vec<String>)> {
        let mut cols: Vec<Vec<f64>> = Vec::new();
        let mut out_names: Vec<String> = Vec::new();
        for &name in feature_names {
            let col = self.column(name)?;
            match col.dtype() {
                DataType::Cat => {
                    let cat = col.as_cat().expect("dtype checked");
                    for (code, label) in cat.dict.iter().enumerate().skip(1) {
                        let mut dummy = vec![0.0; self.n_rows];
                        for (i, &c) in cat.codes.iter().enumerate() {
                            if c as usize == code {
                                dummy[i] = 1.0;
                            }
                        }
                        cols.push(dummy);
                        out_names.push(format!("{name}={label}"));
                    }
                }
                _ => {
                    cols.push(self.f64_column(name)?);
                    out_names.push(name.to_string());
                }
            }
        }
        let m = Matrix::from_columns(&cols, self.n_rows)?;
        Ok((m, out_names))
    }
}

fn concat_columns(a: &Column, b: &Column) -> Column {
    // Gather through take() on a stitched index space by materializing values.
    // Cheap and type-safe: rebuild via indices on each side.
    let idx_a: Vec<usize> = (0..a.len()).collect();
    let idx_b: Vec<usize> = (0..b.len()).collect();
    let left = a.take(&idx_a);
    let right = b.take(&idx_b);
    stitch(left, right)
}

fn stitch(left: Column, right: Column) -> Column {
    use crate::column::{CatData, ColumnData};
    let ln = left.len();
    let rn = right.len();
    let total = ln + rn;
    let mut validity: Option<Vec<bool>> = None;
    if left.null_count() > 0 || right.null_count() > 0 {
        let mut mask = Vec::with_capacity(total);
        for i in 0..ln {
            mask.push(!left.is_null(i));
        }
        for i in 0..rn {
            mask.push(!right.is_null(i));
        }
        validity = Some(mask);
    }
    let data = match (left.data().clone(), right.data().clone()) {
        (ColumnData::Float(mut x), ColumnData::Float(y)) => {
            x.extend(y);
            ColumnData::Float(x)
        }
        (ColumnData::Int(mut x), ColumnData::Int(y)) => {
            x.extend(y);
            ColumnData::Int(x)
        }
        (ColumnData::Bool(mut x), ColumnData::Bool(y)) => {
            x.extend(y);
            ColumnData::Bool(x)
        }
        (ColumnData::Cat(x), ColumnData::Cat(y)) => {
            // Re-map right-hand codes through a merged dictionary.
            let mut dict = x.dict.clone();
            let mut codes = x.codes.clone();
            codes.reserve(y.codes.len());
            let mut remap = Vec::with_capacity(y.dict.len());
            for label in &y.dict {
                let code = match dict.iter().position(|d| d == label) {
                    Some(i) => i as u32,
                    None => {
                        dict.push(label.clone());
                        (dict.len() - 1) as u32
                    }
                };
                remap.push(code);
            }
            for &c in &y.codes {
                codes.push(remap[c as usize]);
            }
            ColumnData::Cat(CatData { codes, dict })
        }
        _ => unreachable!("vstack checks dtype equality before stitching"),
    };
    let col = match data {
        ColumnData::Float(v) => Column::from_f64(v),
        ColumnData::Int(v) => Column::from_i64(v),
        ColumnData::Bool(v) => Column::from_bool(v),
        ColumnData::Cat(c) => {
            let labels: Vec<String> = c
                .codes
                .iter()
                .map(|&i| c.dict[i as usize].clone())
                .collect();
            Column::from_labels(&labels)
        }
    };
    match validity {
        Some(mask) => col.with_validity(mask).expect("mask built to length"),
        None => col,
    }
}

/// The result of [`Dataset::group_by`]: per-key row indices with aggregate
/// helpers.
#[derive(Debug)]
pub struct GroupBy<'a> {
    ds: &'a Dataset,
    groups: Vec<(String, Vec<usize>)>,
}

impl<'a> GroupBy<'a> {
    /// Group keys in first-appearance order.
    pub fn keys(&self) -> Vec<&str> {
        self.groups.iter().map(|(k, _)| k.as_str()).collect()
    }

    /// Row indices for a key.
    pub fn indices(&self, key: &str) -> Option<&[usize]> {
        self.groups
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_slice())
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no groups exist (empty input).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// `(key, row count)` per group.
    pub fn counts(&self) -> Vec<(String, usize)> {
        self.groups
            .iter()
            .map(|(k, v)| (k.clone(), v.len()))
            .collect()
    }

    /// `(key, mean of column)` per group; the column must be numeric/bool.
    pub fn mean(&self, column: &str) -> Result<Vec<(String, f64)>> {
        let col = self.ds.column(column)?;
        let mut out = Vec::with_capacity(self.groups.len());
        for (k, idx) in &self.groups {
            let sub = col.take(idx);
            out.push((k.clone(), sub.mean()?));
        }
        Ok(out)
    }

    /// Materialize one group as a standalone dataset.
    pub fn dataset(&self, key: &str) -> Result<Dataset> {
        let idx = self
            .indices(key)
            .ok_or_else(|| FactError::InvalidArgument(format!("no group '{key}'")))?;
        Ok(self.ds.take(idx))
    }

    /// Iterate `(key, sub-dataset)` pairs.
    pub fn iter_datasets(&self) -> impl Iterator<Item = (String, Dataset)> + '_ {
        self.groups
            .iter()
            .map(|(k, idx)| (k.clone(), self.ds.take(idx)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::builder()
            .f64("income", vec![50.0, 60.0, 40.0, 80.0])
            .i64("age", vec![30, 40, 25, 55])
            .boolean("approved", vec![true, true, false, true])
            .cat("group", &["A", "B", "B", "A"])
            .build()
            .unwrap()
    }

    #[test]
    fn shape_and_names() {
        let ds = sample();
        assert_eq!(ds.n_rows(), 4);
        assert_eq!(ds.n_cols(), 4);
        assert_eq!(ds.names(), vec!["income", "age", "approved", "group"]);
    }

    #[test]
    fn column_lookup_and_errors() {
        let ds = sample();
        assert!(ds.column("income").is_ok());
        assert!(matches!(
            ds.column("salary"),
            Err(FactError::ColumnNotFound(_))
        ));
        let err = ds.f64_column("group").unwrap_err();
        assert!(err.to_string().contains("group"));
    }

    #[test]
    fn select_projects_in_order() {
        let ds = sample();
        let sub = ds.select(&["group", "income"]).unwrap();
        assert_eq!(sub.names(), vec!["group", "income"]);
        assert_eq!(sub.n_rows(), 4);
    }

    #[test]
    fn filter_and_take() {
        let ds = sample();
        let approved = ds.bool_column("approved").unwrap().to_vec();
        let sub = ds.filter(&approved).unwrap();
        assert_eq!(sub.n_rows(), 3);
        let reordered = ds.take(&[3, 0]);
        assert_eq!(reordered.f64_column("income").unwrap(), vec![80.0, 50.0]);
    }

    #[test]
    fn head_caps_at_len() {
        let ds = sample();
        assert_eq!(ds.head(2).n_rows(), 2);
        assert_eq!(ds.head(99).n_rows(), 4);
    }

    #[test]
    fn add_replace_drop_column() {
        let mut ds = sample();
        ds.add_column("debt", Column::from_f64(vec![1.0, 2.0, 3.0, 4.0]))
            .unwrap();
        assert_eq!(ds.n_cols(), 5);
        assert!(ds
            .add_column("debt", Column::from_f64(vec![0.0; 4]))
            .is_err());
        assert!(ds
            .add_column("short", Column::from_f64(vec![0.0; 2]))
            .is_err());
        ds.replace_column("debt", Column::from_f64(vec![9.0; 4]))
            .unwrap();
        assert_eq!(ds.f64_column("debt").unwrap(), vec![9.0; 4]);
        let dropped = ds.drop_column("debt").unwrap();
        assert_eq!(dropped.n_cols(), 4);
        assert!(dropped.column("debt").is_err());
    }

    #[test]
    fn group_by_means_and_counts() {
        let ds = sample();
        let g = ds.group_by("group").unwrap();
        assert_eq!(g.keys(), vec!["A", "B"]);
        assert_eq!(g.counts(), vec![("A".into(), 2), ("B".into(), 2)]);
        let means = g.mean("income").unwrap();
        assert_eq!(means[0], ("A".to_string(), 65.0));
        assert_eq!(means[1], ("B".to_string(), 50.0));
        let sub = g.dataset("B").unwrap();
        assert_eq!(sub.n_rows(), 2);
    }

    #[test]
    fn group_by_rejects_float_keys() {
        let ds = sample();
        assert!(ds.group_by("income").is_err());
    }

    #[test]
    fn sort_by_numeric() {
        let ds = sample();
        let sorted = ds.sort_by("income").unwrap();
        assert_eq!(
            sorted.f64_column("income").unwrap(),
            vec![40.0, 50.0, 60.0, 80.0]
        );
        // labels follow their rows
        assert_eq!(sorted.labels("group").unwrap()[0], "B");
    }

    #[test]
    fn drop_nulls_removes_rows_with_any_null() {
        let mut ds = sample();
        ds.replace_column(
            "income",
            Column::from_f64_opt(vec![Some(1.0), None, Some(3.0), Some(4.0)]),
        )
        .unwrap();
        assert_eq!(ds.null_count(), 1);
        let clean = ds.drop_nulls();
        assert_eq!(clean.n_rows(), 3);
        assert_eq!(clean.null_count(), 0);
    }

    #[test]
    fn vstack_merges_dictionaries() {
        let a = Dataset::builder()
            .cat("g", &["x", "y"])
            .f64("v", vec![1.0, 2.0])
            .build()
            .unwrap();
        let b = Dataset::builder()
            .cat("g", &["z", "x"])
            .f64("v", vec![3.0, 4.0])
            .build()
            .unwrap();
        let stacked = a.vstack(&b).unwrap();
        assert_eq!(stacked.n_rows(), 4);
        assert_eq!(stacked.labels("g").unwrap(), vec!["x", "y", "z", "x"]);
    }

    #[test]
    fn vstack_rejects_schema_mismatch() {
        let a = sample();
        let b = a.select(&["income", "age", "approved"]).unwrap();
        assert!(a.vstack(&b).is_err());
    }

    #[test]
    fn summary_numeric_and_cat() {
        let ds = sample();
        let rows = ds.summary();
        let income = &rows[0];
        assert_eq!(income.name, "income");
        assert_eq!(income.mean, Some(57.5));
        assert_eq!(income.nulls, 0);
        let group = &rows[3];
        assert_eq!(group.distinct, 2);
        assert!(group.mean.is_none());
    }

    #[test]
    fn to_matrix_numeric_only() {
        let ds = sample();
        let m = ds.to_matrix(&["income", "age"]).unwrap();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 1), 40.0);
        assert!(ds.to_matrix(&["group"]).is_err());
    }

    #[test]
    fn onehot_drops_reference_level() {
        let ds = sample();
        let (m, names) = ds.to_matrix_onehot(&["income", "group"]).unwrap();
        assert_eq!(names, vec!["income".to_string(), "group=B".to_string()]);
        assert_eq!(m.cols(), 2);
        // rows 1,2 are group B
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 1), 1.0);
        assert_eq!(m.get(2, 1), 1.0);
    }

    #[test]
    fn row_view() {
        let ds = sample();
        let r = ds.row(0);
        assert_eq!(r[0], Value::Float(50.0));
        assert_eq!(r[3], Value::Cat("A".into()));
    }
}
