//! A small dense row-major matrix kernel.
//!
//! This is deliberately minimal: just what the ML (`fact-ml`) and causal
//! (`fact-causal`) crates need — construction, views, products, normal
//! equations, and a partial-pivot Gaussian solver. Row-major storage keeps
//! per-row feature access (the hot path in SGD and tree building) contiguous.
//!
//! The products ([`Matrix::matmul`], [`Matrix::matvec`], [`Matrix::xtx`])
//! run on the `fact-par` pool above a size threshold. Partitioning is by
//! output rows (matmul/matvec) or fixed input-row chunks (xtx), so results
//! are bit-identical at any `FACT_THREADS` value — see each method's note.

use crate::error::{FactError, Result};

/// k-dimension tile for the blocked matmul: `MATMUL_TILE` rows of the
/// right-hand matrix stay hot in cache while a whole row block consumes
/// them.
const MATMUL_TILE: usize = 64;

/// Flop budget per parallel chunk: chunks are sized so each holds roughly
/// this much multiply-add work, keeping scheduling overhead ~0.1% of
/// compute. Fixed constants (never worker-count-dependent) so chunk
/// boundaries — and therefore float accumulation order — are reproducible.
const PAR_FLOPS_PER_CHUNK: usize = 1 << 15;

/// Rows per parallel chunk for a kernel doing `flops_per_row` work per row.
fn row_grain(flops_per_row: usize) -> usize {
    (PAR_FLOPS_PER_CHUNK / flops_per_row.max(1)).max(1)
}

/// Dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a flat row-major buffer.
    pub fn from_flat(data: Vec<f64>, rows: usize, cols: usize) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(FactError::LengthMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Build from row slices (all must be equal length).
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(FactError::EmptyData("matrix with no rows".into()));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(FactError::LengthMismatch {
                    expected: cols,
                    actual: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            data,
            rows: rows.len(),
            cols,
        })
    }

    /// Build from column vectors (all must be length `n_rows`).
    #[allow(clippy::needless_range_loop)] // parallel-array indexing is clearer here
    pub fn from_columns(cols: &[Vec<f64>], n_rows: usize) -> Result<Self> {
        let n_cols = cols.len();
        for c in cols {
            if c.len() != n_rows {
                return Err(FactError::LengthMismatch {
                    expected: n_rows,
                    actual: c.len(),
                });
            }
        }
        let mut data = vec![0.0; n_rows * n_cols];
        for (j, c) in cols.iter().enumerate() {
            for (i, &v) in c.iter().enumerate() {
                data[i * n_cols + j] = v;
            }
        }
        Ok(Matrix {
            data,
            rows: n_rows,
            cols: n_cols,
        })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Set element at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Borrow row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Materialize column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Flat row-major view.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// `self · v` (length must equal `cols`).
    ///
    /// Parallel over output rows; each entry is one independent dot
    /// product, so the result is bit-identical at any worker count.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(FactError::LengthMismatch {
                expected: self.cols,
                actual: v.len(),
            });
        }
        Ok(fact_par::par_map(self.rows, row_grain(self.cols), |i| {
            let mut acc = 0.0;
            for (a, b) in self.row(i).iter().zip(v) {
                acc += a * b;
            }
            acc
        }))
    }

    /// `selfᵀ · v` (length must equal `rows`).
    #[allow(clippy::needless_range_loop)]
    pub fn t_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.rows {
            return Err(FactError::LengthMismatch {
                expected: self.rows,
                actual: v.len(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let row = self.row(i);
            let w = v[i];
            for (j, &x) in row.iter().enumerate() {
                out[j] += w * x;
            }
        }
        Ok(out)
    }

    /// `self · other` — cache-blocked over the shared dimension and
    /// parallel over row blocks of the output.
    ///
    /// Per output entry the additions still happen in strictly ascending
    /// `k` order (tiling reorders only across `(i, j)`, never within one),
    /// so the result is bit-identical to [`Matrix::matmul_naive`] and to
    /// itself at any worker count.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(FactError::LengthMismatch {
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        let out_cols = other.cols;
        // chunk = whole output rows: grain in elements must be a multiple
        // of the row length so every chunk holds complete rows
        let grain_rows = row_grain(self.cols * out_cols.max(1));
        fact_par::par_for_each_mut(&mut out.data, grain_rows * out_cols.max(1), |off, chunk| {
            let row0 = off / out_cols.max(1);
            let rows_here = chunk.len() / out_cols.max(1);
            for kb in (0..self.cols).step_by(MATMUL_TILE) {
                let kend = (kb + MATMUL_TILE).min(self.cols);
                for i in 0..rows_here {
                    let arow = self.row(row0 + i);
                    let orow = &mut chunk[i * out_cols..(i + 1) * out_cols];
                    for (k, &a) in arow.iter().enumerate().take(kend).skip(kb) {
                        if a == 0.0 {
                            continue;
                        }
                        for (o, &b) in orow.iter_mut().zip(other.row(k)) {
                            *o += a * b;
                        }
                    }
                }
            }
        });
        Ok(out)
    }

    /// The reference un-blocked, single-threaded `self · other`, kept as
    /// the baseline the tiled kernel is benchmarked (and property-tested)
    /// against.
    pub fn matmul_naive(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(FactError::LengthMismatch {
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + a * other.get(k, j));
                }
            }
        }
        Ok(out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// `Xᵀ X` — the Gram matrix used by normal equations, optionally with
    /// per-row weights (`XᵀWX`).
    ///
    /// Assembled in parallel: fixed row chunks accumulate partial Gram
    /// matrices that are summed in chunk order, so the result depends on
    /// the (size-derived) chunk grain but never on the worker count.
    pub fn xtx(&self, weights: Option<&[f64]>) -> Result<Matrix> {
        if let Some(w) = weights {
            if w.len() != self.rows {
                return Err(FactError::LengthMismatch {
                    expected: self.rows,
                    actual: w.len(),
                });
            }
        }
        let d = self.cols;
        let grain = row_grain(d * d);
        let upper = fact_par::par_reduce(
            self.rows,
            grain,
            |range| {
                let mut acc = vec![0.0; d * d];
                for i in range {
                    let row = self.row(i);
                    let w = weights.map(|w| w[i]).unwrap_or(1.0);
                    for (a, &va) in row.iter().enumerate() {
                        let ra = va * w;
                        if ra == 0.0 {
                            continue;
                        }
                        for (b, &vb) in row.iter().enumerate().skip(a) {
                            acc[a * d + b] += ra * vb;
                        }
                    }
                }
                acc
            },
            |mut left, right| {
                for (l, r) in left.iter_mut().zip(&right) {
                    *l += r;
                }
                left
            },
        )
        .unwrap_or_else(|| vec![0.0; d * d]);
        let mut out = Matrix::from_flat(upper, d, d)?;
        // mirror upper triangle
        for a in 0..d {
            for b in (a + 1)..d {
                let v = out.get(a, b);
                out.set(b, a, v);
            }
        }
        Ok(out)
    }

    /// `Xᵀ y`, optionally weighted (`XᵀWy`).
    pub fn xty(&self, y: &[f64], weights: Option<&[f64]>) -> Result<Vec<f64>> {
        if y.len() != self.rows {
            return Err(FactError::LengthMismatch {
                expected: self.rows,
                actual: y.len(),
            });
        }
        match weights {
            None => self.t_matvec(y),
            Some(w) => {
                if w.len() != self.rows {
                    return Err(FactError::LengthMismatch {
                        expected: self.rows,
                        actual: w.len(),
                    });
                }
                let wy: Vec<f64> = y.iter().zip(w).map(|(a, b)| a * b).collect();
                self.t_matvec(&wy)
            }
        }
    }

    /// Solve the square system `A x = b` by Gaussian elimination with partial
    /// pivoting. Errors on singular (or near-singular) systems.
    #[allow(clippy::needless_range_loop)] // pivoting indexes several rows at once
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if self.rows != self.cols {
            return Err(FactError::InvalidArgument(format!(
                "solve requires a square matrix, got {}x{}",
                self.rows, self.cols
            )));
        }
        if b.len() != self.rows {
            return Err(FactError::LengthMismatch {
                expected: self.rows,
                actual: b.len(),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // pivot
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return Err(FactError::Numeric("singular matrix in linear solve".into()));
            }
            if pivot != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot * n + j);
                }
                x.swap(col, pivot);
            }
            // eliminate
            let diag = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
                x[r] -= factor * x[col];
            }
        }
        // back-substitute
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in (col + 1)..n {
                acc -= a[col * n + j] * x[j];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }

    /// New matrix with a leading column of ones (intercept term).
    pub fn with_intercept(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            out.set(i, 0, 1.0);
            for j in 0..self.cols {
                out.set(i, j + 1, self.get(i, j));
            }
        }
        out
    }

    /// Z-score each column in place; returns per-column `(mean, std)`.
    /// Columns with zero variance are left centered but unscaled.
    pub fn standardize(&mut self) -> Vec<(f64, f64)> {
        let mut stats = Vec::with_capacity(self.cols);
        for j in 0..self.cols {
            let mut mean = 0.0;
            for i in 0..self.rows {
                mean += self.get(i, j);
            }
            mean /= self.rows.max(1) as f64;
            let mut var = 0.0;
            for i in 0..self.rows {
                let d = self.get(i, j) - mean;
                var += d * d;
            }
            let std = if self.rows > 1 {
                (var / (self.rows - 1) as f64).sqrt()
            } else {
                0.0
            };
            let scale = if std > 1e-12 { std } else { 1.0 };
            for i in 0..self.rows {
                let v = (self.get(i, j) - mean) / scale;
                self.set(i, j, v);
            }
            stats.push((mean, std));
        }
        stats
    }

    /// Apply previously computed `(mean, std)` stats (e.g. from a training
    /// split) to this matrix.
    #[allow(clippy::needless_range_loop)]
    pub fn apply_standardization(&mut self, stats: &[(f64, f64)]) -> Result<()> {
        if stats.len() != self.cols {
            return Err(FactError::LengthMismatch {
                expected: self.cols,
                actual: stats.len(),
            });
        }
        for j in 0..self.cols {
            let (mean, std) = stats[j];
            let scale = if std > 1e-12 { std } else { 1.0 };
            for i in 0..self.rows {
                let v = (self.get(i, j) - mean) / scale;
                self.set(i, j, v);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn from_columns_matches_from_rows() {
        let a = Matrix::from_columns(&[vec![1.0, 3.0], vec![2.0, 4.0]], 2).unwrap();
        let b = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_flat(vec![1.0; 5], 2, 3).is_err());
    }

    #[test]
    fn matvec_and_transpose() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(m.t_matvec(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert_eq!(m.transpose().row(0), &[1.0, 3.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
    }

    /// A deterministic pseudo-random matrix (no RNG dependency in this crate's tests).
    fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
            })
            .collect();
        Matrix::from_flat(data, rows, cols).unwrap()
    }

    #[test]
    fn tiled_matmul_is_bit_identical_to_naive() {
        // sizes straddling the tile and the parallel grain
        for &(m, k, n) in &[(3usize, 5usize, 4usize), (65, 64, 63), (130, 200, 70)] {
            let a = lcg_matrix(m, k, 1);
            let b = lcg_matrix(k, n, 2);
            let tiled = a.matmul(&b).unwrap();
            let naive = a.matmul_naive(&b).unwrap();
            assert_eq!(tiled, naive, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn products_are_worker_count_invariant() {
        let a = lcg_matrix(90, 70, 3);
        let b = lcg_matrix(70, 40, 4);
        let v: Vec<f64> = (0..70).map(|i| (i as f64).cos()).collect();
        fact_par::set_workers(1);
        let mm1 = a.matmul(&b).unwrap();
        let mv1 = a.matvec(&v).unwrap();
        let g1 = a.xtx(None).unwrap();
        fact_par::set_workers(7);
        assert_eq!(a.matmul(&b).unwrap(), mm1);
        assert_eq!(a.matvec(&v).unwrap(), mv1);
        assert_eq!(a.xtx(None).unwrap(), g1);
        fact_par::set_workers(0);
    }

    #[test]
    fn gram_matrix_weighted() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let g = m.xtx(None).unwrap();
        assert_eq!(g.get(0, 0), 10.0); // 1+9
        assert_eq!(g.get(0, 1), 14.0); // 2+12
        assert_eq!(g.get(1, 0), 14.0);
        assert_eq!(g.get(1, 1), 20.0); // 4+16
        let gw = m.xtx(Some(&[2.0, 0.0])).unwrap();
        assert_eq!(gw.get(0, 0), 2.0);
        assert_eq!(gw.get(1, 1), 8.0);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x_true = [1.5, -2.0];
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        assert!((x[0] - x_true[0]).abs() < 1e-10);
        assert!((x[1] - x_true[1]).abs() < 1e-10);
    }

    #[test]
    fn solve_rejects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(a.solve(&[1.0, 2.0]), Err(FactError::Numeric(_))));
    }

    #[test]
    fn solve_with_pivoting() {
        // zero on the diagonal forces a row swap
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn intercept_column() {
        let m = Matrix::from_rows(&[vec![2.0], vec![3.0]]).unwrap();
        let mi = m.with_intercept();
        assert_eq!(mi.cols(), 2);
        assert_eq!(mi.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn standardize_and_apply() {
        let mut m = Matrix::from_columns(&[vec![1.0, 2.0, 3.0]], 3).unwrap();
        let stats = m.standardize();
        assert!((stats[0].0 - 2.0).abs() < 1e-12);
        assert!((m.col(0).iter().sum::<f64>()).abs() < 1e-12);
        let mut test = Matrix::from_columns(&[vec![2.0]], 1).unwrap();
        test.apply_standardization(&stats).unwrap();
        assert!((test.get(0, 0)).abs() < 1e-12);
    }

    #[test]
    fn standardize_zero_variance_column_is_centered() {
        let mut m = Matrix::from_columns(&[vec![5.0, 5.0, 5.0]], 3).unwrap();
        m.standardize();
        assert_eq!(m.col(0), vec![0.0, 0.0, 0.0]);
    }
}
