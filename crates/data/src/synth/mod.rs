//! Synthetic workload generators.
//!
//! The paper's claims concern *mechanisms* (bias propagates into models,
//! aggregation reverses trends, observational estimates mislead). Real
//! production data from CRM/ERP/HIS systems is both unavailable and
//! uncontrolled; these generators substitute **parametric worlds with known
//! ground truth**, so every experiment can verify detection and mitigation
//! against the truth rather than eyeballing plausibility. See DESIGN.md,
//! "Substitutions".
//!
//! | Module | World | Used by experiments |
//! |---|---|---|
//! | [`loans`] | consumer credit decisions with injectable label bias and a zip-code proxy | E1, E2, E10 |
//! | [`hiring`] | nonlinear hiring decisions (black-box territory) | E7 |
//! | [`admissions`] | Berkeley-style admissions exhibiting Simpson's paradox | E4 |
//! | [`clinical`] | potential-outcomes treatment world with known ATE | E8 |
//! | [`census`] | census microdata with quasi-identifiers | E5, E6 |

pub mod admissions;
pub mod census;
pub mod clinical;
pub mod hiring;
pub mod loans;

use rand::rngs::StdRng;
use rand::Rng;

/// Sample a standard normal via Box–Muller (avoids a rand_distr dependency in
/// hot generator loops and keeps the sequence stable across rand_distr
/// versions).
pub(crate) fn normal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std * z
}

/// Logistic sigmoid.
pub(crate) fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..50_000).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }
}
