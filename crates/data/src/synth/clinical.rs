//! Potential-outcomes clinical world with known causal ground truth.
//!
//! The paper (§2) warns that "often enough correlation is confused with
//! causality" and that even selection-bias corrections (propensity-score
//! matching, inverse-probability weighting) "might still be far away from the
//! results one would obtain with a randomized controlled trial", citing
//! Gordon et al. (2016). Testing that claim requires a world where the true
//! average treatment effect (ATE) is *known*: this generator materializes
//! both potential outcomes `y0`/`y1` for every patient, assigns treatment
//! with controllable confounding on observed covariates (and optionally an
//! unobserved one), and reports the exact sample ATE.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::frame::Dataset;
use crate::synth::{normal, sigmoid};

/// Parameters of the clinical world.
#[derive(Debug, Clone)]
pub struct ClinicalConfig {
    /// Number of patients.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Strength of confounding of treatment assignment on *observed*
    /// covariates (severity, age). 0 = randomized controlled trial.
    pub confounding: f64,
    /// Strength of confounding via an *unobserved* frailty variable that
    /// also affects the outcome. Breaks PSM/IPW, reproducing the Gordon
    /// et al. finding.
    pub unobserved_confounding: f64,
    /// Treatment effect on the outcome logit (positive = beneficial).
    pub effect: f64,
}

impl Default for ClinicalConfig {
    fn default() -> Self {
        ClinicalConfig {
            n: 10_000,
            seed: 0,
            confounding: 1.0,
            unobserved_confounding: 0.0,
            effect: 0.8,
        }
    }
}

/// A generated world: observed data plus the (normally unobservable) truth.
#[derive(Debug, Clone)]
pub struct ClinicalWorld {
    /// Observed dataset. Columns: `age` (f64, standardized-ish), `severity`
    /// (f64), `comorbidity` (bool), `treated` (bool), `recovered` (bool).
    pub data: Dataset,
    /// Potential outcome under control, per patient.
    pub y0: Vec<bool>,
    /// Potential outcome under treatment, per patient.
    pub y1: Vec<bool>,
    /// True sample ATE: `mean(y1) − mean(y0)`.
    pub true_ate: f64,
    /// True propensity scores used for assignment.
    pub propensity: Vec<f64>,
}

/// Generate the clinical world.
pub fn generate_clinical(cfg: &ClinicalConfig) -> ClinicalWorld {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n;
    let mut age = Vec::with_capacity(n);
    let mut severity = Vec::with_capacity(n);
    let mut comorb = Vec::with_capacity(n);
    let mut treated = Vec::with_capacity(n);
    let mut recovered = Vec::with_capacity(n);
    let mut y0v = Vec::with_capacity(n);
    let mut y1v = Vec::with_capacity(n);
    let mut prop = Vec::with_capacity(n);

    for _ in 0..n {
        let a = normal(&mut rng, 0.0, 1.0);
        let s = normal(&mut rng, 0.0, 1.0);
        let c = rng.gen::<f64>() < 0.3;
        let u = normal(&mut rng, 0.0, 1.0); // unobserved frailty

        // sicker and older patients are more likely to receive treatment
        let p_treat =
            sigmoid(cfg.confounding * (0.9 * s + 0.4 * a) + cfg.unobserved_confounding * u);
        let t = rng.gen::<f64>() < p_treat;

        // outcome model: recovery less likely when severe/old/frail,
        // improved by treatment by `effect` on the logit
        let base = 0.6
            - 1.0 * s
            - 0.35 * a
            - if c { 0.4 } else { 0.0 }
            - cfg.unobserved_confounding * 0.9 * u;
        let p0 = sigmoid(base);
        let p1 = sigmoid(base + cfg.effect);
        let draw: f64 = rng.gen();
        // common random number for both potential outcomes: monotone coupling
        let o0 = draw < p0;
        let o1 = draw < p1;

        age.push(a);
        severity.push(s);
        comorb.push(c);
        treated.push(t);
        recovered.push(if t { o1 } else { o0 });
        y0v.push(o0);
        y1v.push(o1);
        prop.push(p_treat);
    }

    let true_ate = y1v.iter().filter(|&&v| v).count() as f64 / n as f64
        - y0v.iter().filter(|&&v| v).count() as f64 / n as f64;

    let data = Dataset::builder()
        .f64("age", age)
        .f64("severity", severity)
        .boolean("comorbidity", comorb)
        .boolean("treated", treated)
        .boolean("recovered", recovered)
        .build()
        .expect("equal-length columns");

    ClinicalWorld {
        data,
        y0: y0v,
        y1: y1v,
        true_ate,
        propensity: prop,
    }
}

/// Observed covariate columns usable by causal estimators.
pub const CLINICAL_COVARIATES: [&str; 3] = ["age", "severity", "comorbidity"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_shapes_agree() {
        let w = generate_clinical(&ClinicalConfig {
            n: 1000,
            ..ClinicalConfig::default()
        });
        assert_eq!(w.data.n_rows(), 1000);
        assert_eq!(w.y0.len(), 1000);
        assert_eq!(w.y1.len(), 1000);
        assert_eq!(w.propensity.len(), 1000);
    }

    #[test]
    fn positive_effect_gives_positive_ate() {
        let w = generate_clinical(&ClinicalConfig {
            n: 30_000,
            seed: 1,
            ..ClinicalConfig::default()
        });
        assert!(w.true_ate > 0.05, "ATE should be positive: {}", w.true_ate);
    }

    #[test]
    fn monotone_coupling_y1_dominates_y0() {
        let w = generate_clinical(&ClinicalConfig {
            n: 5_000,
            seed: 2,
            ..ClinicalConfig::default()
        });
        for (a, b) in w.y0.iter().zip(&w.y1) {
            assert!(!a | b, "y0 ⇒ y1 with a positive effect");
        }
    }

    #[test]
    fn confounding_biases_naive_comparison() {
        let w = generate_clinical(&ClinicalConfig {
            n: 50_000,
            seed: 3,
            confounding: 1.5,
            ..ClinicalConfig::default()
        });
        let t = w.data.bool_column("treated").unwrap();
        let y = w.data.bool_column("recovered").unwrap();
        let rate = |want: bool| {
            let rows: Vec<bool> = t
                .iter()
                .zip(y)
                .filter(|(&tt, _)| tt == want)
                .map(|(_, &r)| r)
                .collect();
            rows.iter().filter(|&&r| r).count() as f64 / rows.len() as f64
        };
        let naive = rate(true) - rate(false);
        // treated are sicker → naive estimate far below the true ATE
        assert!(
            naive < w.true_ate - 0.05,
            "naive {naive} should underestimate true {}",
            w.true_ate
        );
    }

    #[test]
    fn rct_mode_makes_naive_unbiased() {
        let w = generate_clinical(&ClinicalConfig {
            n: 80_000,
            seed: 4,
            confounding: 0.0,
            ..ClinicalConfig::default()
        });
        let t = w.data.bool_column("treated").unwrap();
        let y = w.data.bool_column("recovered").unwrap();
        let rate = |want: bool| {
            let rows: Vec<bool> = t
                .iter()
                .zip(y)
                .filter(|(&tt, _)| tt == want)
                .map(|(_, &r)| r)
                .collect();
            rows.iter().filter(|&&r| r).count() as f64 / rows.len() as f64
        };
        let naive = rate(true) - rate(false);
        assert!(
            (naive - w.true_ate).abs() < 0.02,
            "RCT naive {naive} ≈ true {}",
            w.true_ate
        );
    }

    #[test]
    fn deterministic() {
        let c = ClinicalConfig {
            n: 200,
            seed: 11,
            ..ClinicalConfig::default()
        };
        let a = generate_clinical(&c);
        let b = generate_clinical(&c);
        assert_eq!(a.data, b.data);
        assert_eq!(a.true_ate, b.true_ate);
    }
}
