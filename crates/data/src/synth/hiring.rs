//! Hiring world with a deliberately nonlinear decision surface.
//!
//! Used by the transparency experiments (E7): the hiring rule involves an
//! interaction term and a threshold-gated bonus, so a linear model is
//! mediocre, a small MLP is accurate-but-opaque — exactly the paper's deep-
//! learning dilemma ("a black box that apparently makes good decisions, but
//! cannot rationalize them", §2) — and a shallow surrogate tree must trade
//! fidelity for readability.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::frame::Dataset;
use crate::synth::{normal, sigmoid};

/// Education levels in increasing order.
pub const EDUCATION_LEVELS: [&str; 4] = ["highschool", "bachelor", "master", "phd"];

/// Configuration for the hiring world.
#[derive(Debug, Clone)]
pub struct HiringConfig {
    /// Number of candidates.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of label flips applied against the "female" group
    /// (for combined fairness+transparency scenarios; 0 = fair).
    pub bias_strength: f64,
}

impl Default for HiringConfig {
    fn default() -> Self {
        HiringConfig {
            n: 8_000,
            seed: 0,
            bias_strength: 0.0,
        }
    }
}

/// Generate the hiring dataset.
///
/// Columns: `experience` (f64 years), `education` (cat), `skills_test`
/// (f64, 0–100), `referral` (bool), `gender` (cat "male"/"female",
/// sensitive), `hired` (bool).
pub fn generate_hiring(cfg: &HiringConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n;
    let mut experience = Vec::with_capacity(n);
    let mut education = Vec::with_capacity(n);
    let mut skills = Vec::with_capacity(n);
    let mut referral = Vec::with_capacity(n);
    let mut gender = Vec::with_capacity(n);
    let mut hired = Vec::with_capacity(n);

    for _ in 0..n {
        let exp = normal(&mut rng, 7.0, 4.0).clamp(0.0, 35.0);
        let edu_idx = rng.gen_range(0..4usize);
        let test = normal(&mut rng, 60.0, 15.0).clamp(0.0, 100.0);
        let has_ref = rng.gen::<f64>() < 0.25;
        let female = rng.gen::<f64>() < 0.45;

        // nonlinear ground truth:
        //  - skills×experience interaction,
        //  - a step bonus for test >= 75,
        //  - referral helps only below 5 years of experience.
        let interaction = (test / 100.0) * (exp / 10.0);
        let step = if test >= 75.0 { 1.2 } else { 0.0 };
        let ref_bonus = if has_ref && exp < 5.0 { 1.0 } else { 0.0 };
        let z = 2.8 * interaction + step + ref_bonus + 0.25 * edu_idx as f64 - 2.4
            + normal(&mut rng, 0.0, 0.35);
        let mut label = rng.gen::<f64>() < sigmoid(2.0 * z);

        if label && female && rng.gen::<f64>() < cfg.bias_strength {
            label = false;
        }

        experience.push(exp);
        education.push(EDUCATION_LEVELS[edu_idx]);
        skills.push(test);
        referral.push(has_ref);
        gender.push(if female { "female" } else { "male" });
        hired.push(label);
    }

    Dataset::builder()
        .f64("experience", experience)
        .cat("education", &education)
        .f64("skills_test", skills)
        .boolean("referral", referral)
        .cat("gender", &gender)
        .sensitive()
        .boolean("hired", hired)
        .build()
        .expect("equal-length columns")
}

/// Feature columns for model training (excludes the sensitive attribute).
pub const HIRING_FEATURES: [&str; 4] = ["experience", "education", "skills_test", "referral"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_shape() {
        let ds = generate_hiring(&HiringConfig {
            n: 500,
            ..HiringConfig::default()
        });
        assert_eq!(ds.n_rows(), 500);
        assert_eq!(ds.schema().sensitive_fields(), vec!["gender"]);
        assert_eq!(ds.names().len(), 6);
    }

    #[test]
    fn base_rate_is_reasonable() {
        let ds = generate_hiring(&HiringConfig {
            n: 20_000,
            seed: 5,
            ..HiringConfig::default()
        });
        let y = ds.bool_column("hired").unwrap();
        let rate = y.iter().filter(|&&v| v).count() as f64 / y.len() as f64;
        assert!(
            (0.2..0.8).contains(&rate),
            "hire rate should be balanced-ish, got {rate}"
        );
    }

    #[test]
    fn step_feature_matters() {
        let ds = generate_hiring(&HiringConfig {
            n: 30_000,
            seed: 6,
            ..HiringConfig::default()
        });
        let test = ds.f64_column("skills_test").unwrap();
        let y = ds.bool_column("hired").unwrap();
        // hire rate just above the 75 threshold should jump vs just below
        let rate_in = |lo: f64, hi: f64| {
            let rows: Vec<bool> = test
                .iter()
                .zip(y)
                .filter(|(&t, _)| t >= lo && t < hi)
                .map(|(_, &h)| h)
                .collect();
            rows.iter().filter(|&&h| h).count() as f64 / rows.len().max(1) as f64
        };
        assert!(rate_in(75.0, 85.0) > rate_in(65.0, 75.0) + 0.1);
    }

    #[test]
    fn fair_by_default() {
        let ds = generate_hiring(&HiringConfig {
            n: 30_000,
            seed: 7,
            ..HiringConfig::default()
        });
        let g = ds.labels("gender").unwrap();
        let y = ds.bool_column("hired").unwrap();
        let rate = |want: &str| {
            let rows: Vec<bool> = g
                .iter()
                .zip(y)
                .filter(|(gg, _)| gg.as_str() == want)
                .map(|(_, &h)| h)
                .collect();
            rows.iter().filter(|&&h| h).count() as f64 / rows.len() as f64
        };
        assert!((rate("male") - rate("female")).abs() < 0.02);
    }

    #[test]
    fn bias_knob_works() {
        let ds = generate_hiring(&HiringConfig {
            n: 30_000,
            seed: 7,
            bias_strength: 0.5,
        });
        let g = ds.labels("gender").unwrap();
        let y = ds.bool_column("hired").unwrap();
        let rate = |want: &str| {
            let rows: Vec<bool> = g
                .iter()
                .zip(y)
                .filter(|(gg, _)| gg.as_str() == want)
                .map(|(_, &h)| h)
                .collect();
            rows.iter().filter(|&&h| h).count() as f64 / rows.len() as f64
        };
        assert!(rate("male") - rate("female") > 0.1);
    }

    #[test]
    fn deterministic() {
        let c = HiringConfig {
            n: 300,
            seed: 42,
            ..HiringConfig::default()
        };
        assert_eq!(generate_hiring(&c), generate_hiring(&c));
    }
}
