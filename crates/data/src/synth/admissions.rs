//! Berkeley-style admissions data exhibiting Simpson's paradox.
//!
//! The paper (§2) calls Simpson's paradox "another nice example to show how
//! easy it is to give false advice even in the presence of 'big' data: a
//! trend appears in different groups of data but disappears or reverses when
//! these groups are combined."
//!
//! This generator reproduces the canonical UC Berkeley 1973 admissions
//! structure (Bickel, Hammel & O'Connell 1975): in aggregate, men are
//! admitted at a visibly higher rate than women, yet in (almost) every
//! department women's admission rate matches or exceeds men's. The reversal
//! is driven entirely by *which departments* each gender applies to.
//!
//! Counts are allocated **deterministically** from the historical proportions
//! (rounded expected counts), so the paradox is guaranteed at any `n ≥ ~500`;
//! the seed only shuffles row order.

use crate::frame::Dataset;
use crate::sample::permutation;

/// Department labels, most to least selective for men.
pub const DEPARTMENTS: [&str; 6] = ["A", "B", "C", "D", "E", "F"];

/// Historical per-department admission rates for men (Bickel et al. 1975).
pub const MALE_RATES: [f64; 6] = [0.62, 0.63, 0.37, 0.33, 0.28, 0.06];
/// Historical per-department admission rates for women.
pub const FEMALE_RATES: [f64; 6] = [0.82, 0.68, 0.34, 0.35, 0.24, 0.07];
/// Historical application shares for men across departments.
pub const MALE_APP_SHARE: [f64; 6] = [0.3066, 0.2081, 0.1208, 0.1550, 0.0710, 0.1386];
/// Historical application shares for women across departments.
pub const FEMALE_APP_SHARE: [f64; 6] = [0.0589, 0.0136, 0.3232, 0.2044, 0.2142, 0.1858];

/// Configuration for the admissions world.
#[derive(Debug, Clone)]
pub struct AdmissionsConfig {
    /// Total applicants (split ≈59.5% men / 40.5% women as in 1973).
    pub n: usize,
    /// Seed controlling only the row shuffle.
    pub seed: u64,
}

impl Default for AdmissionsConfig {
    fn default() -> Self {
        AdmissionsConfig { n: 12_000, seed: 0 }
    }
}

/// Generate the admissions dataset.
///
/// Columns: `gender` (cat "male"/"female", sensitive), `department`
/// (cat A–F), `admitted` (bool).
pub fn generate_admissions(cfg: &AdmissionsConfig) -> Dataset {
    let n_male = (cfg.n as f64 * 0.595).round() as usize;
    let n_female = cfg.n - n_male;

    let mut gender: Vec<&str> = Vec::with_capacity(cfg.n);
    let mut dept: Vec<&str> = Vec::with_capacity(cfg.n);
    let mut admitted: Vec<bool> = Vec::with_capacity(cfg.n);

    let mut fill = |n_total: usize, shares: &[f64; 6], rates: &[f64; 6], g: &'static str| {
        let mut assigned = 0usize;
        for d in 0..6 {
            let cell = if d == 5 {
                n_total - assigned
            } else {
                (n_total as f64 * shares[d]).round() as usize
            };
            assigned += cell;
            let admits = (cell as f64 * rates[d]).round() as usize;
            for i in 0..cell {
                gender.push(g);
                dept.push(DEPARTMENTS[d]);
                admitted.push(i < admits);
            }
        }
    };
    fill(n_male, &MALE_APP_SHARE, &MALE_RATES, "male");
    fill(n_female, &FEMALE_APP_SHARE, &FEMALE_RATES, "female");

    // shuffle rows so the data does not arrive grouped
    let perm = permutation(cfg.n, cfg.seed);
    let gender: Vec<&str> = perm.iter().map(|&i| gender[i]).collect();
    let dept: Vec<&str> = perm.iter().map(|&i| dept[i]).collect();
    let admitted: Vec<bool> = perm.iter().map(|&i| admitted[i]).collect();

    Dataset::builder()
        .cat("gender", &gender)
        .sensitive()
        .cat("department", &dept)
        .boolean("admitted", admitted)
        .build()
        .expect("equal-length columns")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(ds: &Dataset) -> (f64, f64) {
        let g = ds.labels("gender").unwrap();
        let y = ds.bool_column("admitted").unwrap();
        let rate = |want: &str| {
            let rows: Vec<bool> = g
                .iter()
                .zip(y)
                .filter(|(gg, _)| gg.as_str() == want)
                .map(|(_, &a)| a)
                .collect();
            rows.iter().filter(|&&a| a).count() as f64 / rows.len() as f64
        };
        (rate("male"), rate("female"))
    }

    #[test]
    fn aggregate_trend_favors_men() {
        let ds = generate_admissions(&AdmissionsConfig::default());
        let (m, f) = rates(&ds);
        assert!(
            m - f > 0.08,
            "aggregate male rate should exceed female by a wide margin: {m:.3} vs {f:.3}"
        );
    }

    #[test]
    fn per_department_trend_does_not_favor_men_overall() {
        let ds = generate_admissions(&AdmissionsConfig::default());
        let by_dept = ds.group_by("department").unwrap();
        let mut female_wins = 0;
        let mut male_wins = 0;
        for (_key, sub) in by_dept.iter_datasets() {
            let (m, f) = rates(&sub);
            if f > m + 0.005 {
                female_wins += 1;
            } else if m > f + 0.005 {
                male_wins += 1;
            }
        }
        assert!(
            female_wins >= 3,
            "women should lead in most departments (got {female_wins} vs {male_wins})"
        );
        assert!(male_wins <= 3);
    }

    #[test]
    fn department_rates_match_history() {
        let ds = generate_admissions(&AdmissionsConfig { n: 24_000, seed: 1 });
        let by_dept = ds.group_by("department").unwrap();
        // department F is brutally selective for everyone
        let f_ds = by_dept.dataset("F").unwrap();
        let (m, f) = rates(&f_ds);
        assert!(m < 0.10 && f < 0.10);
    }

    #[test]
    fn deterministic_content_regardless_of_seed() {
        // seed shuffles order only: admitted counts must match
        let a = generate_admissions(&AdmissionsConfig { n: 5000, seed: 1 });
        let b = generate_admissions(&AdmissionsConfig { n: 5000, seed: 2 });
        let count = |ds: &Dataset| {
            ds.bool_column("admitted")
                .unwrap()
                .iter()
                .filter(|&&x| x)
                .count()
        };
        assert_eq!(count(&a), count(&b));
    }

    #[test]
    fn row_count_exact() {
        let ds = generate_admissions(&AdmissionsConfig { n: 1234, seed: 0 });
        assert_eq!(ds.n_rows(), 1234);
    }
}
