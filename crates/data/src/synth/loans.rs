//! Consumer-credit world with controllable discrimination.
//!
//! Ground truth: an applicant's *creditworthiness* is a noisy linear function
//! of four legitimate features (income, credit score, debt ratio, employment
//! years). The recorded `approved` label starts from that merit signal, then:
//!
//! * **label bias** (`bias_strength`) flips approvals to rejections for group
//!   B, modeling historically discriminatory decisions in the training data;
//! * a **proxy** column `zip_risk` encodes group membership with strength
//!   `proxy_strength`, so removing the `group` column does *not* remove the
//!   information ("even if sensitive attributes are omitted, members of
//!   certain groups may still be systematically rejected" — paper §2);
//! * an optional **feature gap** shifts group B's income distribution,
//!   modeling structural disadvantage that is *not* label bias.
//!
//! With all three knobs at zero the world is exactly fair by construction,
//! which is what lets experiments attribute measured unfairness to a cause.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::frame::Dataset;
use crate::synth::{normal, sigmoid};

/// Parameters of the loan world.
#[derive(Debug, Clone)]
pub struct LoanConfig {
    /// Number of applicants.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of group-B *approvals* flipped to rejections (label bias).
    pub bias_strength: f64,
    /// Correlation strength of the `zip_risk` proxy with group B (0 = none,
    /// 1 = perfect surrogate).
    pub proxy_strength: f64,
    /// Fraction of applicants in protected group B.
    pub group_b_frac: f64,
    /// Income shift (in $1000s, subtracted for group B) modeling structural
    /// disadvantage.
    pub feature_gap: f64,
}

impl Default for LoanConfig {
    fn default() -> Self {
        LoanConfig {
            n: 10_000,
            seed: 0,
            bias_strength: 0.0,
            proxy_strength: 0.0,
            group_b_frac: 0.3,
            feature_gap: 0.0,
        }
    }
}

/// Generate the loan dataset.
///
/// Columns: `income` (f64, $1000s), `credit_score` (f64, 300–850),
/// `debt_ratio` (f64, 0–1), `years_employed` (f64), `zip_risk` (f64 proxy),
/// `group` (cat "A"/"B", flagged sensitive), `approved` (bool label).
pub fn generate_loans(cfg: &LoanConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n;
    let mut income = Vec::with_capacity(n);
    let mut credit = Vec::with_capacity(n);
    let mut debt = Vec::with_capacity(n);
    let mut years = Vec::with_capacity(n);
    let mut zip = Vec::with_capacity(n);
    let mut group = Vec::with_capacity(n);
    let mut approved = Vec::with_capacity(n);

    for _ in 0..n {
        let is_b = rng.gen::<f64>() < cfg.group_b_frac;
        let base_income = normal(&mut rng, 60.0, 18.0).max(8.0);
        let inc = if is_b {
            (base_income - cfg.feature_gap).max(8.0)
        } else {
            base_income
        };
        let cs = normal(&mut rng, 650.0, 80.0).clamp(300.0, 850.0);
        let dr = rng.gen::<f64>().powf(1.5); // right-skewed in [0,1]
        let yr = (normal(&mut rng, 8.0, 5.0)).clamp(0.0, 45.0);

        // merit: standardized linear score through a sigmoid
        let z = 0.03 * (inc - 60.0) + 0.012 * (cs - 650.0) - 2.2 * (dr - 0.45)
            + 0.06 * (yr - 8.0)
            + normal(&mut rng, 0.0, 0.6);
        let merit_approved = rng.gen::<f64>() < sigmoid(z);

        // historical label bias against group B
        let label = if merit_approved && is_b && rng.gen::<f64>() < cfg.bias_strength {
            false
        } else {
            merit_approved
        };

        // proxy: zip-level "risk" score leaking group membership
        let indicator = if is_b { 1.0 } else { 0.0 };
        let noise: f64 = rng.gen();
        let zr = cfg.proxy_strength * indicator + (1.0 - cfg.proxy_strength) * noise;

        income.push(inc);
        credit.push(cs);
        debt.push(dr);
        years.push(yr);
        zip.push(zr);
        group.push(if is_b { "B" } else { "A" }.to_string());
        approved.push(label);
    }

    Dataset::builder()
        .f64("income", income)
        .f64("credit_score", credit)
        .f64("debt_ratio", debt)
        .f64("years_employed", years)
        .f64("zip_risk", zip)
        .cat("group", &group)
        .sensitive()
        .boolean("approved", approved)
        .build()
        .expect("columns constructed with equal length")
}

/// Names of the legitimate (non-proxy, non-sensitive) feature columns.
pub const LEGIT_FEATURES: [&str; 4] = ["income", "credit_score", "debt_ratio", "years_employed"];

#[cfg(test)]
mod tests {
    use super::*;

    fn approval_rate(ds: &Dataset, grp: &str) -> f64 {
        let y = ds.bool_column("approved").unwrap();
        let g = ds.labels("group").unwrap();
        let rows: Vec<bool> = y
            .iter()
            .zip(&g)
            .filter(|(_, gg)| gg.as_str() == grp)
            .map(|(&v, _)| v)
            .collect();
        rows.iter().filter(|&&v| v).count() as f64 / rows.len() as f64
    }

    #[test]
    fn schema_and_annotations() {
        let ds = generate_loans(&LoanConfig {
            n: 100,
            ..LoanConfig::default()
        });
        assert_eq!(ds.n_rows(), 100);
        assert_eq!(ds.schema().sensitive_fields(), vec!["group"]);
        for f in LEGIT_FEATURES {
            assert!(ds.column(f).is_ok());
        }
    }

    #[test]
    fn unbiased_world_has_equal_rates() {
        let ds = generate_loans(&LoanConfig {
            n: 40_000,
            seed: 3,
            ..LoanConfig::default()
        });
        let gap = (approval_rate(&ds, "A") - approval_rate(&ds, "B")).abs();
        assert!(gap < 0.02, "fair world gap should be ≈0, got {gap}");
    }

    #[test]
    fn label_bias_depresses_group_b() {
        let ds = generate_loans(&LoanConfig {
            n: 40_000,
            seed: 3,
            bias_strength: 0.4,
            ..LoanConfig::default()
        });
        let gap = approval_rate(&ds, "A") - approval_rate(&ds, "B");
        assert!(gap > 0.12, "bias 0.4 should open a large gap, got {gap}");
    }

    #[test]
    fn group_fraction_respected() {
        let ds = generate_loans(&LoanConfig {
            n: 20_000,
            seed: 1,
            group_b_frac: 0.5,
            ..LoanConfig::default()
        });
        let g = ds.labels("group").unwrap();
        let b = g.iter().filter(|s| *s == "B").count() as f64 / g.len() as f64;
        assert!((b - 0.5).abs() < 0.02);
    }

    #[test]
    fn proxy_correlates_with_group() {
        let ds = generate_loans(&LoanConfig {
            n: 10_000,
            seed: 2,
            proxy_strength: 0.8,
            ..LoanConfig::default()
        });
        let z = ds.f64_column("zip_risk").unwrap();
        let g = ds.labels("group").unwrap();
        let mean = |grp: &str| {
            let v: Vec<f64> = z
                .iter()
                .zip(&g)
                .filter(|(_, gg)| gg.as_str() == grp)
                .map(|(&x, _)| x)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean("B") - mean("A") > 0.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let c = LoanConfig {
            n: 500,
            seed: 77,
            ..LoanConfig::default()
        };
        assert_eq!(generate_loans(&c), generate_loans(&c));
    }

    #[test]
    fn merit_signal_is_learnable() {
        // higher income should associate with approval
        let ds = generate_loans(&LoanConfig {
            n: 20_000,
            seed: 4,
            ..LoanConfig::default()
        });
        let inc = ds.f64_column("income").unwrap();
        let y = ds.bool_column("approved").unwrap();
        let m_app: f64 = inc
            .iter()
            .zip(y)
            .filter(|(_, &a)| a)
            .map(|(&v, _)| v)
            .sum::<f64>()
            / y.iter().filter(|&&a| a).count() as f64;
        let m_rej: f64 = inc
            .iter()
            .zip(y)
            .filter(|(_, &a)| !a)
            .map(|(&v, _)| v)
            .sum::<f64>()
            / y.iter().filter(|&&a| !a).count() as f64;
        assert!(m_app > m_rej + 3.0);
    }
}
