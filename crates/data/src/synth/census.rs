//! Census-style microdata with quasi-identifiers and a sensitive attribute.
//!
//! The confidentiality experiments (E5, E6) need person-level records whose
//! combination of innocuous attributes (age, sex, zip code) can re-identify
//! individuals — the classic linkage-attack setting that k-anonymity and
//! differential privacy defend against. The `diagnosis` column plays the
//! sensitive value for l-diversity checks; `salary` is the numeric target of
//! DP aggregate queries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::frame::Dataset;
use crate::synth::normal;

/// Occupations (correlated with salary).
pub const OCCUPATIONS: [&str; 6] = [
    "service",
    "clerical",
    "technical",
    "professional",
    "managerial",
    "executive",
];

/// Diagnoses (the sensitive attribute for l-diversity).
pub const DIAGNOSES: [&str; 5] = ["none", "flu", "diabetes", "cardiac", "oncology"];

/// Configuration for the census world.
#[derive(Debug, Clone)]
pub struct CensusConfig {
    /// Number of persons.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of distinct zip codes (smaller ⇒ higher re-identification risk).
    pub n_zipcodes: usize,
}

impl Default for CensusConfig {
    fn default() -> Self {
        CensusConfig {
            n: 10_000,
            seed: 0,
            n_zipcodes: 40,
        }
    }
}

/// Generate census microdata.
///
/// Columns: `age` (int, quasi-identifier), `sex` (cat, quasi-identifier),
/// `zipcode` (cat, quasi-identifier), `education_years` (int), `occupation`
/// (cat), `hours_per_week` (f64), `salary` (f64, $1000s), `diagnosis`
/// (cat, sensitive).
pub fn generate_census(cfg: &CensusConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n;
    let mut age = Vec::with_capacity(n);
    let mut sex = Vec::with_capacity(n);
    let mut zip = Vec::with_capacity(n);
    let mut edu = Vec::with_capacity(n);
    let mut occ = Vec::with_capacity(n);
    let mut hours = Vec::with_capacity(n);
    let mut salary = Vec::with_capacity(n);
    let mut diag = Vec::with_capacity(n);

    for _ in 0..n {
        let a = rng.gen_range(18..=90i64);
        let female = rng.gen_bool(0.51);
        let z = rng.gen_range(0..cfg.n_zipcodes);
        let e = rng.gen_range(8..=20i64);
        // occupation index rises with education
        let occ_idx = ((e - 8) as f64 / 12.0 * 5.0 + normal(&mut rng, 0.0, 1.0))
            .round()
            .clamp(0.0, 5.0) as usize;
        let h = normal(&mut rng, 40.0, 8.0).clamp(5.0, 80.0);
        let s = (20.0
            + 6.0 * occ_idx as f64
            + 1.1 * (e - 8) as f64
            + 0.25 * (a as f64 - 18.0).min(30.0)
            + normal(&mut rng, 0.0, 8.0))
        .max(8.0);
        // diagnosis risk rises with age
        let age_factor = (a as f64 - 18.0) / 72.0;
        let r: f64 = rng.gen();
        let d = if r < 0.55 - 0.2 * age_factor {
            0
        } else if r < 0.75 - 0.1 * age_factor {
            1
        } else if r < 0.87 {
            2
        } else if r < 0.95 {
            3
        } else {
            4
        };

        age.push(a);
        sex.push(if female { "female" } else { "male" });
        zip.push(format!("Z{z:03}"));
        edu.push(e);
        occ.push(OCCUPATIONS[occ_idx]);
        hours.push(h);
        salary.push(s);
        diag.push(DIAGNOSES[d]);
    }

    Dataset::builder()
        .i64("age", age)
        .quasi_identifier()
        .cat("sex", &sex)
        .quasi_identifier()
        .cat("zipcode", &zip)
        .quasi_identifier()
        .i64("education_years", edu)
        .cat("occupation", &occ)
        .f64("hours_per_week", hours)
        .f64("salary", salary)
        .cat("diagnosis", &diag)
        .sensitive()
        .build()
        .expect("equal-length columns")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_annotations() {
        let ds = generate_census(&CensusConfig {
            n: 100,
            ..CensusConfig::default()
        });
        assert_eq!(
            ds.schema().quasi_identifiers(),
            vec!["age", "sex", "zipcode"]
        );
        assert_eq!(ds.schema().sensitive_fields(), vec!["diagnosis"]);
    }

    #[test]
    fn value_ranges() {
        let ds = generate_census(&CensusConfig {
            n: 5_000,
            seed: 1,
            ..CensusConfig::default()
        });
        let age = ds.column("age").unwrap();
        assert!(age.min().unwrap() >= 18.0);
        assert!(age.max().unwrap() <= 90.0);
        let sal = ds.column("salary").unwrap();
        assert!(sal.min().unwrap() >= 8.0);
    }

    #[test]
    fn zipcode_cardinality_bounded() {
        let ds = generate_census(&CensusConfig {
            n: 5_000,
            seed: 2,
            n_zipcodes: 12,
        });
        let z = ds.column("zipcode").unwrap().as_cat().unwrap();
        assert!(z.cardinality() <= 12);
        assert!(z.cardinality() >= 10);
    }

    #[test]
    fn salary_tracks_occupation() {
        let ds = generate_census(&CensusConfig {
            n: 20_000,
            seed: 3,
            ..CensusConfig::default()
        });
        let g = ds.group_by("occupation").unwrap();
        let means = g.mean("salary").unwrap();
        let get = |name: &str| means.iter().find(|(k, _)| k == name).map(|(_, v)| *v);
        if let (Some(exec), Some(service)) = (get("executive"), get("service")) {
            assert!(exec > service + 10.0);
        }
    }

    #[test]
    fn deterministic() {
        let c = CensusConfig {
            n: 300,
            seed: 9,
            ..CensusConfig::default()
        };
        assert_eq!(generate_census(&c), generate_census(&c));
    }
}
