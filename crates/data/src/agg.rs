//! Multi-column group-by aggregation.
//!
//! A thin analytic layer over [`Dataset::group_by`]: one pass produces a new
//! dataset with one row per group and one column per requested aggregate —
//! the workhorse shape of every audit table in the FACT reports.
//!
//! Two engines share the same aggregate semantics:
//!
//! * [`aggregate`] runs over an in-memory [`Dataset`], accumulating through
//!   borrowed column storage (no per-group materialization);
//! * [`aggregate_segments`] runs over an on-disk [`SegmentSet`] through the
//!   column-pruned, zone-map-accelerated scan — only the key and aggregate
//!   columns are read, segments the predicate's zone maps exclude are
//!   skipped, and per-segment partials are merged in segment order so the
//!   result is bit-identical at any `fact_par` worker count.

use std::collections::HashMap;

use crate::column::{Column, ColumnData};
use crate::error::{FactError, Result};
use crate::frame::Dataset;
use crate::segment::{BatchColumn, DecodedValues, Predicate, ScanStats, SegmentBatch, SegmentSet};
use crate::value::DataType;

/// An aggregate function over a numeric/bool column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Row count of the group (column still required for naming symmetry).
    Count,
    /// Sum of values.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AggFn {
    fn name(self) -> &'static str {
        match self {
            AggFn::Count => "count",
            AggFn::Sum => "sum",
            AggFn::Mean => "mean",
            AggFn::Min => "min",
            AggFn::Max => "max",
        }
    }
}

/// One aggregation request: `(column, function)`.
pub type AggSpec<'a> = (&'a str, AggFn);

/// Group `ds` by `key` and compute each aggregate. Output columns are named
/// `{column}_{fn}` plus the leading key column; groups appear in
/// first-appearance order.
pub fn aggregate(ds: &Dataset, key: &str, specs: &[AggSpec<'_>]) -> Result<Dataset> {
    if specs.is_empty() {
        return Err(FactError::InvalidArgument(
            "at least one aggregate is required".into(),
        ));
    }
    let groups = ds.group_by(key)?;
    let keys: Vec<String> = groups.keys().iter().map(|k| k.to_string()).collect();
    let mut out = Dataset::builder().cat(key, &keys).build()?;

    for &(col_name, f) in specs {
        let col = ds.column(col_name)?;
        let mut vals = Vec::with_capacity(keys.len());
        if f == AggFn::Count {
            for k in &keys {
                let idx = groups.indices(k).expect("key from groups");
                vals.push(idx.len() as f64);
            }
        } else {
            // borrow the column storage once; accumulate per group without
            // materializing per-group sub-columns
            let view = NumView::of(col, col_name)?;
            for k in &keys {
                let idx = groups.indices(k).expect("key from groups");
                let mut acc = Acc::new();
                for &i in idx {
                    if !col.is_null(i) {
                        acc.push(view.get(i));
                    }
                }
                vals.push(acc.finish(f)?);
            }
        }
        out.add_column(format!("{col_name}_{}", f.name()), Column::from_f64(vals))?;
    }
    Ok(out)
}

/// Borrowed numeric view over a column's storage (ints widened, bools 0/1).
enum NumView<'a> {
    F(&'a [f64]),
    I(&'a [i64]),
    B(&'a [bool]),
}

impl<'a> NumView<'a> {
    fn of(col: &'a Column, name: &str) -> Result<NumView<'a>> {
        match col.data() {
            ColumnData::Float(v) => Ok(NumView::F(v)),
            ColumnData::Int(v) => Ok(NumView::I(v)),
            ColumnData::Bool(v) => Ok(NumView::B(v)),
            ColumnData::Cat(_) => Err(FactError::TypeMismatch {
                column: name.to_string(),
                expected: DataType::Float,
                actual: DataType::Cat,
            }),
        }
    }

    fn get(&self, i: usize) -> f64 {
        match self {
            NumView::F(v) => v[i],
            NumView::I(v) => v[i] as f64,
            NumView::B(v) => {
                if v[i] {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Running aggregate state over the valid values of one group.
#[derive(Clone, Copy)]
struct Acc {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Acc {
    fn new() -> Self {
        Acc {
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn push(&mut self, v: f64) {
        self.n += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another accumulator in (segment-order merge).
    fn merge(&mut self, other: &Acc) {
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn finish(&self, f: AggFn) -> Result<f64> {
        match f {
            AggFn::Count => unreachable!("Count never builds an Acc"),
            AggFn::Sum => Ok(self.sum),
            AggFn::Mean => {
                if self.n == 0 {
                    Err(FactError::EmptyData("mean of empty column".into()))
                } else {
                    Ok(self.sum / self.n as f64)
                }
            }
            AggFn::Min | AggFn::Max => {
                if self.n == 0 {
                    Err(FactError::EmptyData("reduction over empty column".into()))
                } else {
                    Ok(if f == AggFn::Min { self.min } else { self.max })
                }
            }
        }
    }
}

/// A group key as seen inside a segment scan. Kept typed (not stringified)
/// until finalization so dictionary codes compare as integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum GKey {
    Code(u32),
    Int(i64),
    Bool(bool),
    Null,
}

/// Per-segment aggregation partial: groups in first-appearance order plus
/// their accumulators (parallel to the spec list; `rows` feeds `Count`).
struct Partial {
    order: Vec<GKey>,
    cells: HashMap<GKey, (u64, Vec<Acc>)>,
}

/// Group an on-disk segment set by `key` and compute each aggregate over
/// the rows matching `pred`, reading **only** the key and aggregate columns
/// and skipping segments whose zone maps exclude the predicate.
///
/// Semantics match [`aggregate`] on the equivalent filtered dataset: same
/// output columns (`{column}_{fn}` after the key), groups in
/// first-appearance (row) order, `Count` counting nulls, the other
/// functions over valid values only. Sums associate per segment rather than
/// globally, so `Sum`/`Mean` can differ from the in-memory engine in the
/// last ulps; the result is still bit-identical at any worker count because
/// partials merge in segment order.
///
/// Errors mirror [`aggregate`] (empty spec list, non-groupable key type,
/// categorical aggregate column, `Mean`/`Min`/`Max` over a group with no
/// valid values) plus scan errors from the segment layer.
pub fn aggregate_segments(
    set: &SegmentSet,
    key: &str,
    specs: &[AggSpec<'_>],
    pred: &Predicate,
) -> Result<(Dataset, ScanStats)> {
    if specs.is_empty() {
        return Err(FactError::InvalidArgument(
            "at least one aggregate is required".into(),
        ));
    }
    let key_dt = set.dtype(key)?;
    if !matches!(key_dt, DataType::Cat | DataType::Bool | DataType::Int) {
        return Err(FactError::TypeMismatch {
            column: key.to_string(),
            expected: DataType::Cat,
            actual: key_dt,
        });
    }
    for &(col, f) in specs {
        let dt = set.dtype(col)?;
        if f != AggFn::Count && dt == DataType::Cat {
            return Err(FactError::TypeMismatch {
                column: col.to_string(),
                expected: DataType::Float,
                actual: dt,
            });
        }
    }
    let mut columns: Vec<&str> = vec![key];
    for &(col, _) in specs {
        if !columns.contains(&col) {
            columns.push(col);
        }
    }
    let (partial, stats) = set.scan_fold(
        &columns,
        pred,
        |batch| partial_of(batch, key, specs),
        |mut a: Partial, b: Partial| {
            for k in b.order {
                let (rows, accs) = b.cells.get(&k).expect("key from order");
                match a.cells.get_mut(&k) {
                    Some((a_rows, a_accs)) => {
                        *a_rows += rows;
                        for (x, y) in a_accs.iter_mut().zip(accs) {
                            x.merge(y);
                        }
                    }
                    None => {
                        a.order.push(k);
                        a.cells.insert(k, (*rows, accs.clone()));
                    }
                }
            }
            a
        },
    )?;
    let partial = partial.unwrap_or(Partial {
        order: Vec::new(),
        cells: HashMap::new(),
    });
    let dict = if key_dt == DataType::Cat {
        Some(set.dict(key)?)
    } else {
        None
    };
    let keys: Vec<String> = partial
        .order
        .iter()
        .map(|k| match k {
            GKey::Code(c) => dict.expect("cat key has a dictionary")[*c as usize].clone(),
            GKey::Int(v) => v.to_string(),
            GKey::Bool(b) => b.to_string(),
            GKey::Null => "null".to_string(),
        })
        .collect();
    let mut out = Dataset::builder().cat(key, &keys).build()?;
    for (j, &(col_name, f)) in specs.iter().enumerate() {
        let mut vals = Vec::with_capacity(keys.len());
        for k in &partial.order {
            let (rows, accs) = &partial.cells[k];
            vals.push(match f {
                AggFn::Count => *rows as f64,
                _ => accs[j].finish(f)?,
            });
        }
        out.add_column(format!("{col_name}_{}", f.name()), Column::from_f64(vals))?;
    }
    Ok((out, stats))
}

/// Aggregate the matching rows of one segment batch.
fn partial_of(batch: &SegmentBatch, key: &str, specs: &[AggSpec<'_>]) -> Result<Partial> {
    let key_col = batch.column(key)?;
    if let DecodedValues::Codes(codes) = &key_col.values {
        return partial_of_coded(batch, key_col, codes, specs);
    }
    let spec_cols = specs
        .iter()
        .map(|&(c, _)| batch.column(c))
        .collect::<Result<Vec<_>>>()?;
    let mut partial = Partial {
        order: Vec::new(),
        cells: HashMap::new(),
    };
    for i in batch.rows() {
        let gk = if key_col.is_null(i) {
            GKey::Null
        } else {
            match &key_col.values {
                DecodedValues::Codes(v) => GKey::Code(v[i]),
                DecodedValues::Int(v) => GKey::Int(v[i]),
                DecodedValues::Bool(v) => GKey::Bool(v[i]),
                DecodedValues::Float(_) => unreachable!("key type validated before the scan"),
            }
        };
        let (rows, accs) = partial.cells.entry(gk).or_insert_with(|| {
            partial.order.push(gk);
            (0, vec![Acc::new(); specs.len()])
        });
        *rows += 1;
        for (j, (bc, &(_, f))) in spec_cols.iter().zip(specs).enumerate() {
            if f != AggFn::Count {
                if let Some(v) = bc.f64_at(i) {
                    accs[j].push(v);
                }
            }
        }
    }
    Ok(partial)
}

/// Dense fast path for dictionary-coded group keys: codes index straight
/// into accumulator vectors (slot 0 = null, slot `c + 1` = code `c`), so the
/// hot loop does no hashing, and each aggregate column is accumulated
/// column-at-a-time with the type dispatch hoisted out of the row loop.
/// Produces the identical [`Partial`] (same first-appearance order, same
/// per-segment float association) as the generic path.
fn partial_of_coded(
    batch: &SegmentBatch,
    key_col: &BatchColumn,
    codes: &[u32],
    specs: &[AggSpec<'_>],
) -> Result<Partial> {
    // Pass 1: one slot per matching row, counting rows and recording
    // first-appearance order.
    let mut slots: Vec<u32> = Vec::with_capacity(batch.n_matching());
    let mut rows_by: Vec<u64> = Vec::new();
    let mut order_slots: Vec<usize> = Vec::new();
    {
        let mut assign = |i: usize| {
            let slot = if key_col.is_null(i) {
                0
            } else {
                codes[i] as usize + 1
            };
            if slot >= rows_by.len() {
                rows_by.resize(slot + 1, 0);
            }
            if rows_by[slot] == 0 {
                order_slots.push(slot);
            }
            rows_by[slot] += 1;
            slots.push(slot as u32);
        };
        match &batch.keep {
            None => (0..batch.n_rows).for_each(&mut assign),
            Some(k) => k.iter().for_each(|&i| assign(i)),
        }
    }
    let n_slots = rows_by.len();

    // Pass 2: one dense accumulator vector per distinct aggregate column.
    let mut dense: Vec<(&str, Vec<Acc>)> = Vec::new();
    for &(name, f) in specs {
        if f == AggFn::Count || dense.iter().any(|(n, _)| *n == name) {
            continue;
        }
        let bc = batch.column(name)?;
        let mut accs = vec![Acc::new(); n_slots];
        let keep = batch.keep.as_deref();
        let validity = bc.validity.as_deref();
        match &bc.values {
            DecodedValues::Float(v) => {
                dense_pass(batch.n_rows, keep, validity, &slots, &mut accs, |i| v[i])
            }
            DecodedValues::Int(v) => {
                dense_pass(batch.n_rows, keep, validity, &slots, &mut accs, |i| {
                    v[i] as f64
                })
            }
            DecodedValues::Bool(v) => {
                dense_pass(batch.n_rows, keep, validity, &slots, &mut accs, |i| {
                    if v[i] {
                        1.0
                    } else {
                        0.0
                    }
                })
            }
            DecodedValues::Codes(_) => {
                unreachable!("non-Count aggregate columns are validated as non-categorical")
            }
        }
        dense.push((name, accs));
    }

    // Assemble the same Partial shape the generic path builds.
    let mut partial = Partial {
        order: Vec::with_capacity(order_slots.len()),
        cells: HashMap::with_capacity(order_slots.len()),
    };
    for &slot in &order_slots {
        let gk = if slot == 0 {
            GKey::Null
        } else {
            GKey::Code(slot as u32 - 1)
        };
        let accs: Vec<Acc> = specs
            .iter()
            .map(|&(name, f)| {
                if f == AggFn::Count {
                    Acc::new()
                } else {
                    dense
                        .iter()
                        .find(|(n, _)| *n == name)
                        .expect("dense accumulator built above")
                        .1[slot]
                }
            })
            .collect();
        partial.order.push(gk);
        partial.cells.insert(gk, (rows_by[slot], accs));
    }
    Ok(partial)
}

/// The accumulation loop of the dense path, monomorphized per value type
/// and specialized over the keep-list/validity-mask combinations so the
/// innermost loop is branch-light.
fn dense_pass(
    n_rows: usize,
    keep: Option<&[usize]>,
    validity: Option<&[bool]>,
    slots: &[u32],
    accs: &mut [Acc],
    value: impl Fn(usize) -> f64,
) {
    match (keep, validity) {
        (None, None) => {
            for (i, &slot) in slots.iter().enumerate().take(n_rows) {
                accs[slot as usize].push(value(i));
            }
        }
        (None, Some(m)) => {
            for (i, &slot) in slots.iter().enumerate().take(n_rows) {
                if m[i] {
                    accs[slot as usize].push(value(i));
                }
            }
        }
        (Some(k), None) => {
            for (j, &i) in k.iter().enumerate() {
                accs[slots[j] as usize].push(value(i));
            }
        }
        (Some(k), Some(m)) => {
            for (j, &i) in k.iter().enumerate() {
                if m[i] {
                    accs[slots[j] as usize].push(value(i));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales() -> Dataset {
        Dataset::builder()
            .cat("region", &["n", "s", "n", "s", "n"])
            .f64("amount", vec![10.0, 20.0, 30.0, 40.0, 50.0])
            .boolean("won", vec![true, false, true, true, false])
            .build()
            .unwrap()
    }

    #[test]
    fn basic_aggregates() {
        let out = aggregate(
            &sales(),
            "region",
            &[
                ("amount", AggFn::Sum),
                ("amount", AggFn::Mean),
                ("amount", AggFn::Min),
                ("amount", AggFn::Max),
                ("amount", AggFn::Count),
            ],
        )
        .unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.labels("region").unwrap(), vec!["n", "s"]);
        assert_eq!(out.f64_column("amount_sum").unwrap(), vec![90.0, 60.0]);
        assert_eq!(out.f64_column("amount_mean").unwrap(), vec![30.0, 30.0]);
        assert_eq!(out.f64_column("amount_min").unwrap(), vec![10.0, 20.0]);
        assert_eq!(out.f64_column("amount_max").unwrap(), vec![50.0, 40.0]);
        assert_eq!(out.f64_column("amount_count").unwrap(), vec![3.0, 2.0]);
    }

    #[test]
    fn bool_columns_aggregate_as_rates() {
        let out = aggregate(&sales(), "region", &[("won", AggFn::Mean)]).unwrap();
        let rates = out.f64_column("won_mean").unwrap();
        assert!((rates[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((rates[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(aggregate(&sales(), "region", &[]).is_err());
        assert!(aggregate(&sales(), "amount", &[("amount", AggFn::Sum)]).is_err());
        assert!(aggregate(&sales(), "region", &[("ghost", AggFn::Sum)]).is_err());
        // categorical column cannot be summed
        assert!(aggregate(&sales(), "region", &[("region", AggFn::Sum)]).is_err());
    }
}
