//! Multi-column group-by aggregation.
//!
//! A thin analytic layer over [`Dataset::group_by`]: one pass produces a new
//! dataset with one row per group and one column per requested aggregate —
//! the workhorse shape of every audit table in the FACT reports.

use crate::column::Column;
use crate::error::{FactError, Result};
use crate::frame::Dataset;

/// An aggregate function over a numeric/bool column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Row count of the group (column still required for naming symmetry).
    Count,
    /// Sum of values.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AggFn {
    fn name(self) -> &'static str {
        match self {
            AggFn::Count => "count",
            AggFn::Sum => "sum",
            AggFn::Mean => "mean",
            AggFn::Min => "min",
            AggFn::Max => "max",
        }
    }
}

/// One aggregation request: `(column, function)`.
pub type AggSpec<'a> = (&'a str, AggFn);

/// Group `ds` by `key` and compute each aggregate. Output columns are named
/// `{column}_{fn}` plus the leading key column; groups appear in
/// first-appearance order.
pub fn aggregate(ds: &Dataset, key: &str, specs: &[AggSpec<'_>]) -> Result<Dataset> {
    if specs.is_empty() {
        return Err(FactError::InvalidArgument(
            "at least one aggregate is required".into(),
        ));
    }
    let groups = ds.group_by(key)?;
    let keys: Vec<String> = groups.keys().iter().map(|k| k.to_string()).collect();
    let mut out = Dataset::builder().cat(key, &keys).build()?;

    for &(col_name, f) in specs {
        let col = ds.column(col_name)?;
        let mut vals = Vec::with_capacity(keys.len());
        for k in &keys {
            let idx = groups.indices(k).expect("key from groups");
            let sub = col.take(idx);
            let v = match f {
                AggFn::Count => idx.len() as f64,
                AggFn::Sum => {
                    let mut s = 0.0;
                    sub.for_each_valid_f64(|x| s += x)?;
                    s
                }
                AggFn::Mean => sub.mean()?,
                AggFn::Min => sub.min()?,
                AggFn::Max => sub.max()?,
            };
            vals.push(v);
        }
        out.add_column(format!("{col_name}_{}", f.name()), Column::from_f64(vals))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales() -> Dataset {
        Dataset::builder()
            .cat("region", &["n", "s", "n", "s", "n"])
            .f64("amount", vec![10.0, 20.0, 30.0, 40.0, 50.0])
            .boolean("won", vec![true, false, true, true, false])
            .build()
            .unwrap()
    }

    #[test]
    fn basic_aggregates() {
        let out = aggregate(
            &sales(),
            "region",
            &[
                ("amount", AggFn::Sum),
                ("amount", AggFn::Mean),
                ("amount", AggFn::Min),
                ("amount", AggFn::Max),
                ("amount", AggFn::Count),
            ],
        )
        .unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.labels("region").unwrap(), vec!["n", "s"]);
        assert_eq!(out.f64_column("amount_sum").unwrap(), vec![90.0, 60.0]);
        assert_eq!(out.f64_column("amount_mean").unwrap(), vec![30.0, 30.0]);
        assert_eq!(out.f64_column("amount_min").unwrap(), vec![10.0, 20.0]);
        assert_eq!(out.f64_column("amount_max").unwrap(), vec![50.0, 40.0]);
        assert_eq!(out.f64_column("amount_count").unwrap(), vec![3.0, 2.0]);
    }

    #[test]
    fn bool_columns_aggregate_as_rates() {
        let out = aggregate(&sales(), "region", &[("won", AggFn::Mean)]).unwrap();
        let rates = out.f64_column("won_mean").unwrap();
        assert!((rates[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((rates[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(aggregate(&sales(), "region", &[]).is_err());
        assert!(aggregate(&sales(), "amount", &[("amount", AggFn::Sum)]).is_err());
        assert!(aggregate(&sales(), "region", &[("ghost", AggFn::Sum)]).is_err());
        // categorical column cannot be summed
        assert!(aggregate(&sales(), "region", &[("region", AggFn::Sum)]).is_err());
    }
}
