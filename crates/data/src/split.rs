//! Train/test splitting and cross-validation folds.

use crate::error::{FactError, Result};
use crate::frame::Dataset;
use crate::sample::permutation;

/// Split a dataset into `(train, test)` with `test_frac` of rows in the test
/// set, after a seeded shuffle.
pub fn train_test_split(ds: &Dataset, test_frac: f64, seed: u64) -> Result<(Dataset, Dataset)> {
    if !(0.0..1.0).contains(&test_frac) {
        return Err(FactError::InvalidArgument(format!(
            "test_frac must be in [0, 1), got {test_frac}"
        )));
    }
    let n = ds.n_rows();
    if n < 2 {
        return Err(FactError::EmptyData(
            "train_test_split needs at least 2 rows".into(),
        ));
    }
    let perm = permutation(n, seed);
    let n_test = ((n as f64) * test_frac).round() as usize;
    let n_test = n_test.clamp(usize::from(test_frac > 0.0), n - 1);
    let (test_idx, train_idx) = perm.split_at(n_test);
    Ok((ds.take(train_idx), ds.take(test_idx)))
}

/// Stratified train/test split: preserves the proportion of each class of
/// `strat_col` (categorical or bool) in both halves.
pub fn stratified_split(
    ds: &Dataset,
    strat_col: &str,
    test_frac: f64,
    seed: u64,
) -> Result<(Dataset, Dataset)> {
    if !(0.0..1.0).contains(&test_frac) {
        return Err(FactError::InvalidArgument(format!(
            "test_frac must be in [0, 1), got {test_frac}"
        )));
    }
    let groups = ds.group_by(strat_col)?;
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for (g, (_key, _)) in groups.counts().iter().enumerate() {
        let key = groups.keys()[g].to_string();
        let idx = groups.indices(&key).expect("key from keys()").to_vec();
        let perm = permutation(idx.len(), seed.wrapping_add(g as u64));
        let n_test = ((idx.len() as f64) * test_frac).round() as usize;
        for (pos, &p) in perm.iter().enumerate() {
            if pos < n_test {
                test_idx.push(idx[p]);
            } else {
                train_idx.push(idx[p]);
            }
        }
    }
    if train_idx.is_empty() || test_idx.is_empty() {
        return Err(FactError::InvalidArgument(
            "stratified split produced an empty half; adjust test_frac".into(),
        ));
    }
    train_idx.sort_unstable();
    test_idx.sort_unstable();
    Ok((ds.take(&train_idx), ds.take(&test_idx)))
}

/// K-fold cross-validation index sets: returns `k` pairs of
/// `(train_indices, validation_indices)` covering all rows.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Result<Vec<(Vec<usize>, Vec<usize>)>> {
    if k < 2 {
        return Err(FactError::InvalidArgument(format!(
            "k-fold requires k >= 2, got {k}"
        )));
    }
    if n < k {
        return Err(FactError::InvalidArgument(format!(
            "k-fold requires at least k rows (n={n}, k={k})"
        )));
    }
    let perm = permutation(n, seed);
    let mut folds: Vec<Vec<usize>> = vec![Vec::with_capacity(n / k + 1); k];
    for (pos, &i) in perm.iter().enumerate() {
        folds[pos % k].push(i);
    }
    let mut out = Vec::with_capacity(k);
    for f in 0..k {
        let valid = folds[f].clone();
        let mut train = Vec::with_capacity(n - valid.len());
        for (g, fold) in folds.iter().enumerate() {
            if g != f {
                train.extend_from_slice(fold);
            }
        }
        out.push((train, valid));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Dataset {
        let labels: Vec<String> = (0..n)
            .map(|i| if i % 4 == 0 { "B" } else { "A" }.to_string())
            .collect();
        Dataset::builder()
            .f64("x", (0..n).map(|i| i as f64).collect())
            .cat("g", &labels)
            .build()
            .unwrap()
    }

    #[test]
    fn split_partitions_rows() {
        let ds = data(100);
        let (train, test) = train_test_split(&ds, 0.25, 3).unwrap();
        assert_eq!(train.n_rows(), 75);
        assert_eq!(test.n_rows(), 25);
        let mut all: Vec<f64> = train
            .f64_column("x")
            .unwrap()
            .into_iter()
            .chain(test.f64_column("x").unwrap())
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let ds = data(50);
        let (a1, _) = train_test_split(&ds, 0.2, 7).unwrap();
        let (a2, _) = train_test_split(&ds, 0.2, 7).unwrap();
        assert_eq!(a1.f64_column("x").unwrap(), a2.f64_column("x").unwrap());
    }

    #[test]
    fn split_validates_inputs() {
        let ds = data(10);
        assert!(train_test_split(&ds, 1.0, 0).is_err());
        assert!(train_test_split(&ds, -0.1, 0).is_err());
        let tiny = data(4).head(1);
        assert!(train_test_split(&tiny, 0.5, 0).is_err());
    }

    #[test]
    fn zero_test_frac_yields_empty_test() {
        let ds = data(10);
        let (train, test) = train_test_split(&ds, 0.0, 0).unwrap();
        assert_eq!(train.n_rows(), 10);
        assert_eq!(test.n_rows(), 0);
    }

    #[test]
    fn stratified_preserves_class_ratio() {
        let ds = data(200); // 25% B
        let (train, test) = stratified_split(&ds, "g", 0.2, 5).unwrap();
        let frac_b = |d: &Dataset| {
            let l = d.labels("g").unwrap();
            l.iter().filter(|s| *s == "B").count() as f64 / l.len() as f64
        };
        assert!((frac_b(&train) - 0.25).abs() < 0.02);
        assert!((frac_b(&test) - 0.25).abs() < 0.02);
        assert_eq!(train.n_rows() + test.n_rows(), 200);
    }

    #[test]
    fn kfold_covers_all_rows_disjointly() {
        let folds = kfold_indices(103, 5, 9).unwrap();
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; 103];
        for (train, valid) in &folds {
            assert_eq!(train.len() + valid.len(), 103);
            for &i in valid {
                seen[i] += 1;
            }
            // no overlap inside a fold
            for &i in valid {
                assert!(!train.contains(&i));
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each row validates exactly once"
        );
    }

    #[test]
    fn kfold_validates_inputs() {
        assert!(kfold_indices(10, 1, 0).is_err());
        assert!(kfold_indices(3, 5, 0).is_err());
    }
}
