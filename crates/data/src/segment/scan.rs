//! Column-pruned, zone-map-accelerated scans over a segment set.
//!
//! [`SegmentSet::scan_fold`] is the primitive every consumer routes
//! through: it opens each segment, consults the predicate column's zone map
//! to **prune** segments that provably hold no matching row, decodes only
//! the **requested columns** of the survivors, and folds per-segment
//! results in segment order. Segments are processed in parallel on
//! [`fact_par::par_map`], and because the fold merges results in segment
//! index order — never completion order — every scan is **bit-identical at
//! any worker count**.
//!
//! [`SegmentSet::scan_columns`] materializes matching rows back into a
//! [`Dataset`]; group-by aggregation ([`crate::agg::aggregate_segments`])
//! and the fairness group scans build directly on `scan_fold`.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::column::Column;
use crate::error::{FactError, Result};
use crate::frame::Dataset;
use crate::schema::{Field, Schema};
use crate::value::DataType;

use super::codec::DecodedValues;
use super::file::{self, Manifest, SegmentHeader, SegmentReader};

/// A filter a scan pushes down to the segment level.
///
/// Zone maps answer "can any row of this segment match?" conservatively;
/// rows of surviving segments are then tested exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Every row matches (pure column-pruned scan).
    All,
    /// Numeric/bool column value in `[min, max]` (inclusive). Null and NaN
    /// rows never match.
    Range {
        /// Column the bound applies to.
        column: String,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// Categorical column equals `label`. Null rows never match.
    CatIs {
        /// Categorical column to test.
        column: String,
        /// Label a matching row must carry.
        label: String,
    },
}

impl Predicate {
    /// The column the predicate reads, if any.
    pub fn column(&self) -> Option<&str> {
        match self {
            Predicate::All => None,
            Predicate::Range { column, .. } | Predicate::CatIs { column, .. } => Some(column),
        }
    }
}

/// What a scan touched and what it skipped — the observability half of the
/// zone-map contract ("provably skipped" is a number, not a hope).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Segments in the set.
    pub segments_total: usize,
    /// Segments whose data buffers were decoded.
    pub segments_scanned: usize,
    /// Segments the zone maps pruned without touching their data.
    pub segments_pruned: usize,
    /// Bytes actually read: headers everywhere, data buffers only for
    /// scanned segments' requested columns.
    pub bytes_read: u64,
    /// Total size of all segment files (what a full row-store scan pays).
    pub bytes_total: u64,
    /// Rows in scanned segments.
    pub rows_scanned: u64,
    /// Rows that matched the predicate.
    pub rows_matched: u64,
}

/// One decoded column of one segment, as handed to a `scan_fold` closure.
#[derive(Debug)]
pub struct BatchColumn {
    /// Column name.
    pub name: String,
    /// Decoded values (categoricals as raw dictionary codes).
    pub values: DecodedValues,
    /// Validity mask; `None` = fully valid.
    pub validity: Option<Vec<bool>>,
}

impl BatchColumn {
    /// Whether row `i` is null.
    pub fn is_null(&self, i: usize) -> bool {
        self.validity.as_ref().map(|m| !m[i]).unwrap_or(false)
    }

    /// Numeric view of row `i`; `None` for nulls and categorical codes.
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        if self.is_null(i) {
            None
        } else {
            self.values.as_f64(i)
        }
    }
}

/// The decoded slice of one surviving segment: the requested columns plus
/// the rows the predicate kept.
#[derive(Debug)]
pub struct SegmentBatch {
    /// Index of the segment within the set.
    pub seg_index: usize,
    /// Rows in the segment (before filtering).
    pub n_rows: usize,
    /// Row indices that matched the predicate; `None` when all rows match.
    pub keep: Option<Vec<usize>>,
    columns: Vec<BatchColumn>,
}

impl SegmentBatch {
    /// The decoded column `name` (among the requested columns).
    pub fn column(&self, name: &str) -> Result<&BatchColumn> {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| FactError::ColumnNotFound(name.to_string()))
    }

    /// Number of rows that matched the predicate.
    pub fn n_matching(&self) -> usize {
        self.keep.as_ref().map_or(self.n_rows, |k| k.len())
    }

    /// Iterate the matching row indices in row order.
    pub fn rows(&self) -> Box<dyn Iterator<Item = usize> + '_> {
        match &self.keep {
            Some(k) => Box::new(k.iter().copied()),
            None => Box::new(0..self.n_rows),
        }
    }
}

/// A directory of column-major segment files plus their manifest — the
/// on-disk form of a [`Dataset`].
///
/// Segment headers are parsed once per set and cached (clones share the
/// cache), so repeated scans pay for column data, not per-file JSON.
#[derive(Debug, Clone)]
pub struct SegmentSet {
    dir: PathBuf,
    manifest: Manifest,
    headers: Arc<Mutex<HashMap<usize, Arc<SegmentHeader>>>>,
}

enum CompiledPred {
    All,
    Range {
        col: String,
        min: f64,
        max: f64,
    },
    /// Global dictionary code to match; `None` when the label is absent
    /// from the dictionary (no row anywhere can match).
    Code {
        col: String,
        code: Option<u32>,
    },
}

impl SegmentSet {
    pub(super) fn from_parts(dir: PathBuf, manifest: Manifest) -> Self {
        SegmentSet {
            dir,
            manifest,
            headers: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Open an existing segment set, validating its manifest.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = file::read_manifest(&dir)?;
        Ok(SegmentSet::from_parts(dir, manifest))
    }

    /// Open segment `i`, reusing its cached parsed header when available
    /// (the preamble and length checks still run against the live file).
    fn open_segment(&self, i: usize) -> Result<SegmentReader> {
        let cached = self
            .headers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&i)
            .cloned();
        let hit = cached.is_some();
        let reader = SegmentReader::open_with(&self.segment_path(i), cached)?;
        if !hit {
            self.headers
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(i, reader.shared_header());
        }
        Ok(reader)
    }

    /// The directory the set lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The validated manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Total rows across all segments.
    pub fn n_rows(&self) -> usize {
        self.manifest.n_rows as usize
    }

    /// Number of segments.
    pub fn n_segments(&self) -> usize {
        self.manifest.segments.len()
    }

    /// Column names in schema order.
    pub fn names(&self) -> Vec<&str> {
        self.manifest
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect()
    }

    /// The logical type of a column.
    pub fn dtype(&self, name: &str) -> Result<DataType> {
        file::parse_dtype(&self.field(name)?.dtype)
    }

    /// The global dictionary of a categorical column.
    pub fn dict(&self, name: &str) -> Result<&[String]> {
        let field = self.field(name)?;
        match field.dict.as_deref() {
            Some(d) => Ok(d),
            None => Err(FactError::TypeMismatch {
                column: name.to_string(),
                expected: DataType::Cat,
                actual: file::parse_dtype(&field.dtype)?,
            }),
        }
    }

    /// Reconstruct the schema (names, types, FACT annotations).
    pub fn schema(&self) -> Result<Schema> {
        let mut fields = Vec::with_capacity(self.manifest.fields.len());
        for f in &self.manifest.fields {
            let mut field = Field::new(f.name.clone(), file::parse_dtype(&f.dtype)?);
            field.sensitive = f.sensitive;
            field.quasi_identifier = f.quasi_identifier;
            fields.push(field);
        }
        Ok(Schema::from_fields(fields))
    }

    fn field(&self, name: &str) -> Result<&file::ManifestField> {
        self.manifest
            .fields
            .iter()
            .find(|f| f.name == name)
            .ok_or_else(|| FactError::ColumnNotFound(name.to_string()))
    }

    /// Path of segment `i`.
    pub fn segment_path(&self, i: usize) -> PathBuf {
        self.dir.join(&self.manifest.segments[i].file)
    }

    fn compile(&self, pred: &Predicate) -> Result<CompiledPred> {
        Ok(match pred {
            Predicate::All => CompiledPred::All,
            Predicate::Range { column, min, max } => {
                let dt = self.dtype(column)?;
                if dt == DataType::Cat {
                    return Err(FactError::TypeMismatch {
                        column: column.clone(),
                        expected: DataType::Float,
                        actual: dt,
                    });
                }
                CompiledPred::Range {
                    col: column.clone(),
                    min: *min,
                    max: *max,
                }
            }
            Predicate::CatIs { column, label } => {
                let dt = self.dtype(column)?;
                if dt != DataType::Cat {
                    return Err(FactError::TypeMismatch {
                        column: column.clone(),
                        expected: DataType::Cat,
                        actual: dt,
                    });
                }
                let code = self
                    .dict(column)?
                    .iter()
                    .position(|l| l == label)
                    .map(|i| i as u32);
                CompiledPred::Code {
                    col: column.clone(),
                    code,
                }
            }
        })
    }

    /// The scan primitive: prune segments via zone maps, decode only
    /// `columns` (plus the predicate column) of the survivors, apply `map`
    /// to each surviving segment's batch, and fold the results **in segment
    /// order** with `merge`. Returns `Ok((None, stats))` when every segment
    /// was pruned (or the set is empty).
    ///
    /// Segments run in parallel on [`fact_par::par_map`]; the ordered fold
    /// makes the result bit-identical at any worker count.
    pub fn scan_fold<T, M, R>(
        &self,
        columns: &[&str],
        pred: &Predicate,
        map: M,
        merge: R,
    ) -> Result<(Option<T>, ScanStats)>
    where
        T: Send,
        M: Fn(&SegmentBatch) -> Result<T> + Sync,
        R: Fn(T, T) -> T,
    {
        for &c in columns {
            self.field(c)?;
        }
        let compiled = self.compile(pred)?;
        // decode the predicate column alongside the requested ones
        let mut decode: Vec<&str> = columns.to_vec();
        if let Some(pc) = pred.column() {
            if !decode.contains(&pc) {
                decode.push(pc);
            }
        }
        let n_seg = self.n_segments();
        let per_seg: Vec<Result<(Option<T>, SegScan)>> =
            fact_par::par_map(n_seg, 1, |i| self.scan_one(i, &decode, &compiled, &map));
        let mut stats = ScanStats {
            segments_total: n_seg,
            bytes_total: self.manifest.segments.iter().map(|s| s.bytes).sum(),
            ..ScanStats::default()
        };
        let mut acc: Option<T> = None;
        for r in per_seg {
            let (t, s) = r?;
            stats.bytes_read += s.bytes_read;
            if s.pruned {
                stats.segments_pruned += 1;
            } else {
                stats.segments_scanned += 1;
                stats.rows_scanned += s.rows_scanned;
                stats.rows_matched += s.rows_matched;
            }
            acc = match (acc, t) {
                (Some(a), Some(b)) => Some(merge(a, b)),
                (None, Some(b)) => Some(b),
                (a, None) => a,
            };
        }
        Ok((acc, stats))
    }

    fn scan_one<T, M>(
        &self,
        i: usize,
        decode: &[&str],
        pred: &CompiledPred,
        map: &M,
    ) -> Result<(Option<T>, SegScan)>
    where
        M: Fn(&SegmentBatch) -> Result<T>,
    {
        let mut reader = self.open_segment(i)?;
        let mut scan = SegScan {
            bytes_read: reader.overhead_bytes(),
            ..SegScan::default()
        };
        // zone-map pruning: can any row of this segment match?
        let prunable = match pred {
            CompiledPred::All => false,
            CompiledPred::Range { col, min, max } => {
                !reader.column_meta(col)?.zone.may_overlap_range(*min, *max)
            }
            CompiledPred::Code { col, code } => match code {
                None => true, // label absent from the dictionary entirely
                Some(c) => !reader.column_meta(col)?.zone.may_contain_code(*c),
            },
        };
        if prunable {
            scan.pruned = true;
            return Ok((None, scan));
        }
        let n_rows = reader.header().n_rows as usize;
        let mut cols = Vec::with_capacity(decode.len());
        for &name in decode {
            let (values, validity, bytes) = reader.read_column(name)?;
            scan.bytes_read += bytes;
            cols.push(BatchColumn {
                name: name.to_string(),
                values,
                validity,
            });
        }
        let keep = match pred {
            CompiledPred::All => None,
            CompiledPred::Range { col, min, max } => {
                let c = cols.iter().find(|b| b.name == *col).expect("decoded above");
                Some(
                    (0..n_rows)
                        .filter(|&r| c.f64_at(r).is_some_and(|v| v >= *min && v <= *max))
                        .collect::<Vec<usize>>(),
                )
            }
            CompiledPred::Code { col, code } => {
                let c = cols.iter().find(|b| b.name == *col).expect("decoded above");
                let code = code.expect("absent labels prune every segment");
                let codes = match &c.values {
                    DecodedValues::Codes(v) => v,
                    _ => unreachable!("CatIs validated as categorical"),
                };
                Some(
                    (0..n_rows)
                        .filter(|&r| !c.is_null(r) && codes[r] == code)
                        .collect::<Vec<usize>>(),
                )
            }
        };
        scan.rows_scanned = n_rows as u64;
        scan.rows_matched = keep.as_ref().map_or(n_rows, |k| k.len()) as u64;
        let batch = SegmentBatch {
            seg_index: i,
            n_rows,
            keep,
            columns: cols,
        };
        Ok((Some(map(&batch)?), scan))
    }

    /// Materialize the matching rows of the requested columns as a new
    /// [`Dataset`] (columns in the requested order, rows in segment order).
    /// Dictionary columns keep the set's global dictionary, exactly as
    /// [`Dataset::filter`] keeps a filtered column's dictionary.
    pub fn scan_columns(&self, columns: &[&str], pred: &Predicate) -> Result<(Dataset, ScanStats)> {
        let (parts, stats) = self.scan_fold(
            columns,
            pred,
            |batch| {
                let mut out: Vec<(DecodedValues, Option<Vec<bool>>)> =
                    Vec::with_capacity(columns.len());
                for &name in columns {
                    let c = batch.column(name)?;
                    out.push(gather(c, batch));
                }
                Ok(out)
            },
            |mut a: Vec<(DecodedValues, Option<Vec<bool>>)>, b| {
                for (dst, src) in a.iter_mut().zip(b) {
                    concat_part(dst, src);
                }
                a
            },
        )?;
        let mut cols: Vec<Column> = Vec::with_capacity(columns.len());
        let mut fields = Vec::with_capacity(columns.len());
        for (idx, &name) in columns.iter().enumerate() {
            let f = self.field(name)?;
            let dtype = file::parse_dtype(&f.dtype)?;
            let mut field = Field::new(f.name.clone(), dtype);
            field.sensitive = f.sensitive;
            field.quasi_identifier = f.quasi_identifier;
            fields.push(field);
            let (values, validity) = match &parts {
                Some(p) => p[idx].clone(),
                None => (empty_values(dtype), None),
            };
            cols.push(super::codec::rebuild_column(
                values,
                validity,
                f.dict.as_deref(),
            )?);
        }
        let n = cols.first().map_or(0, |c| c.len());
        Ok((
            Dataset::from_parts(Schema::from_fields(fields), cols, n),
            stats,
        ))
    }
}

/// Per-segment scan accounting, merged into [`ScanStats`].
#[derive(Debug, Default)]
struct SegScan {
    bytes_read: u64,
    rows_scanned: u64,
    rows_matched: u64,
    pruned: bool,
}

fn empty_values(dtype: DataType) -> DecodedValues {
    match dtype {
        DataType::Float => DecodedValues::Float(Vec::new()),
        DataType::Int => DecodedValues::Int(Vec::new()),
        DataType::Bool => DecodedValues::Bool(Vec::new()),
        DataType::Cat => DecodedValues::Codes(Vec::new()),
    }
}

/// Gather a batch column's matching rows into an owned part.
fn gather(c: &BatchColumn, batch: &SegmentBatch) -> (DecodedValues, Option<Vec<bool>>) {
    let values = match (&c.values, &batch.keep) {
        (v, None) => v.clone(),
        (DecodedValues::Float(v), Some(k)) => {
            DecodedValues::Float(k.iter().map(|&i| v[i]).collect())
        }
        (DecodedValues::Int(v), Some(k)) => DecodedValues::Int(k.iter().map(|&i| v[i]).collect()),
        (DecodedValues::Bool(v), Some(k)) => DecodedValues::Bool(k.iter().map(|&i| v[i]).collect()),
        (DecodedValues::Codes(v), Some(k)) => {
            DecodedValues::Codes(k.iter().map(|&i| v[i]).collect())
        }
    };
    let validity = match (&c.validity, &batch.keep) {
        (None, _) => None,
        (Some(m), None) => Some(m.clone()),
        (Some(m), Some(k)) => Some(k.iter().map(|&i| m[i]).collect::<Vec<bool>>()),
    }
    // drop masks that became all-true after filtering, matching Column::take
    .filter(|m| m.iter().any(|&v| !v));
    (values, validity)
}

/// Append part `b` onto part `a` (same column, consecutive segments).
fn concat_part(a: &mut (DecodedValues, Option<Vec<bool>>), b: (DecodedValues, Option<Vec<bool>>)) {
    let a_len = a.0.len();
    let b_len = b.0.len();
    match (&mut a.0, b.0) {
        (DecodedValues::Float(x), DecodedValues::Float(y)) => x.extend(y),
        (DecodedValues::Int(x), DecodedValues::Int(y)) => x.extend(y),
        (DecodedValues::Bool(x), DecodedValues::Bool(y)) => x.extend(y),
        (DecodedValues::Codes(x), DecodedValues::Codes(y)) => x.extend(y),
        _ => unreachable!("segments of one column share a dtype"),
    }
    a.1 = match (a.1.take(), b.1) {
        (None, None) => None,
        (av, bv) => {
            let mut mask = av.unwrap_or_else(|| vec![true; a_len]);
            match bv {
                Some(m) => mask.extend(m),
                None => mask.extend(std::iter::repeat_n(true, b_len)),
            }
            Some(mask)
        }
    };
}
