//! Byte-level column codecs for the segment format.
//!
//! Every codec here is **bit-exact**: decoding the bytes produced by an
//! encoder reconstructs the input storage exactly, including `f64` NaN
//! payloads and the arbitrary placeholder values sitting under null slots.
//! That is what makes the segment roundtrip testable with `to_bits`
//! equality rather than tolerances.
//!
//! Layouts (all integers little-endian):
//!
//! * **plain float/int** — 8 bytes per row (`f64::to_bits` / `i64` LE);
//! * **plain cat** — 4 bytes per row (`u32` dictionary code);
//! * **plain bool** — bit-packed, LSB-first, `ceil(n/8)` bytes;
//! * **RLE float/int/cat** — `u32` run count, then per run the value at its
//!   plain width followed by a `u32` length. Runs over floats compare bit
//!   patterns, so `NaN` placeholders form runs like any other value;
//! * **validity bitmap** — bit-packed like bools, `1` = value present.

use crate::column::{CatData, Column, ColumnData};
use crate::error::{FactError, Result};

/// How the writer decides between plain and run-length encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RlePolicy {
    /// RLE when the run count is at or below [`RLE_RUN_FRACTION`] of the
    /// row count (and the column type supports it).
    #[default]
    Auto,
    /// Always store plain buffers.
    Never,
    /// RLE whenever the column type supports it (tests, worst-case probes).
    Always,
}

/// `Auto` chooses RLE when `runs <= rows * RLE_RUN_FRACTION`.
pub const RLE_RUN_FRACTION: f64 = 0.5;

/// Minimum rows before `Auto` considers RLE at all.
pub const RLE_MIN_ROWS: usize = 16;

fn corrupt(what: impl Into<String>) -> FactError {
    FactError::Corrupt(what.into())
}

// ---------------------------------------------------------------------------
// bitmaps
// ---------------------------------------------------------------------------

/// Pack bools LSB-first into bytes.
pub fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Unpack `n` bools from an LSB-first bit-packed buffer.
pub fn unpack_bits(bytes: &[u8], n: usize) -> Result<Vec<bool>> {
    if bytes.len() != n.div_ceil(8) {
        return Err(corrupt(format!(
            "bitmap length {} does not hold {n} rows",
            bytes.len()
        )));
    }
    Ok((0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect())
}

// ---------------------------------------------------------------------------
// run-length encoding over fixed-width lanes
// ---------------------------------------------------------------------------

/// Count the runs of equal adjacent values (bit-pattern equality).
fn run_count(lanes: &[u64]) -> usize {
    let mut runs = 0usize;
    let mut prev = None;
    for &v in lanes {
        if prev != Some(v) {
            runs += 1;
            prev = Some(v);
        }
    }
    runs
}

/// Whether `policy` picks RLE for a lane buffer with this shape.
pub fn rle_chosen(policy: RlePolicy, rows: usize, runs: usize) -> bool {
    match policy {
        RlePolicy::Never => false,
        RlePolicy::Always => rows > 0,
        RlePolicy::Auto => {
            rows >= RLE_MIN_ROWS && (runs as f64) <= (rows as f64) * RLE_RUN_FRACTION
        }
    }
}

fn encode_rle(lanes: &[u64], width: usize, out: &mut Vec<u8>) {
    let mut runs: Vec<(u64, u32)> = Vec::new();
    for &v in lanes {
        match runs.last_mut() {
            Some((rv, n)) if *rv == v && *n < u32::MAX => *n += 1,
            _ => runs.push((v, 1)),
        }
    }
    out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
    for (v, n) in runs {
        out.extend_from_slice(&v.to_le_bytes()[..width]);
        out.extend_from_slice(&n.to_le_bytes());
    }
}

fn decode_rle(bytes: &[u8], width: usize, rows: usize) -> Result<Vec<u64>> {
    if bytes.len() < 4 {
        return Err(corrupt("RLE buffer shorter than its run count"));
    }
    let n_runs = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    let body = &bytes[4..];
    if body.len() != n_runs * (width + 4) {
        return Err(corrupt(format!(
            "RLE buffer holds {} bytes for {n_runs} runs of {} bytes",
            body.len(),
            width + 4
        )));
    }
    let mut out = Vec::with_capacity(rows);
    for run in body.chunks_exact(width + 4) {
        let mut lane = [0u8; 8];
        lane[..width].copy_from_slice(&run[..width]);
        let v = u64::from_le_bytes(lane);
        let n = u32::from_le_bytes(run[width..].try_into().expect("4 bytes")) as usize;
        if out.len() + n > rows {
            return Err(corrupt("RLE runs exceed the declared row count"));
        }
        out.extend(std::iter::repeat_n(v, n));
    }
    if out.len() != rows {
        return Err(corrupt(format!(
            "RLE runs cover {} of {rows} declared rows",
            out.len()
        )));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// column value buffers
// ---------------------------------------------------------------------------

/// The fixed-width lane view of one column's physical storage.
fn lanes(data: &ColumnData) -> (Vec<u64>, usize) {
    match data {
        ColumnData::Float(v) => (v.iter().map(|x| x.to_bits()).collect(), 8),
        ColumnData::Int(v) => (v.iter().map(|&x| x as u64).collect(), 8),
        ColumnData::Cat(c) => (c.codes.iter().map(|&x| x as u64).collect(), 4),
        ColumnData::Bool(_) => unreachable!("bools are bit-packed, not lane-encoded"),
    }
}

/// Encode a column's value buffer; returns the bytes and whether RLE was
/// used. Bools are always bit-packed (RLE never applies).
pub fn encode_values(data: &ColumnData, policy: RlePolicy) -> (Vec<u8>, bool) {
    if let ColumnData::Bool(v) = data {
        return (pack_bits(v), false);
    }
    let (lanes, width) = lanes(data);
    let rle = rle_chosen(policy, lanes.len(), run_count(&lanes));
    let mut out = Vec::new();
    if rle {
        encode_rle(&lanes, width, &mut out);
    } else {
        for &v in &lanes {
            out.extend_from_slice(&v.to_le_bytes()[..width]);
        }
    }
    (out, rle)
}

/// Decoded value storage for one segment's slice of a column. Categorical
/// columns decode to raw dictionary codes — the dictionary itself lives in
/// the segment-set manifest.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodedValues {
    /// `f64` lanes, bit-exact.
    Float(Vec<f64>),
    /// `i64` lanes.
    Int(Vec<i64>),
    /// Unpacked bools.
    Bool(Vec<bool>),
    /// Dictionary codes (resolved through the manifest dictionary).
    Codes(Vec<u32>),
}

impl DecodedValues {
    /// Number of decoded rows.
    pub fn len(&self) -> usize {
        match self {
            DecodedValues::Float(v) => v.len(),
            DecodedValues::Int(v) => v.len(),
            DecodedValues::Bool(v) => v.len(),
            DecodedValues::Codes(v) => v.len(),
        }
    }

    /// True when no rows were decoded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Numeric view of row `i` (floats as-is, ints widened, bools 0/1);
    /// `None` for categorical codes.
    pub fn as_f64(&self, i: usize) -> Option<f64> {
        match self {
            DecodedValues::Float(v) => Some(v[i]),
            DecodedValues::Int(v) => Some(v[i] as f64),
            DecodedValues::Bool(v) => Some(if v[i] { 1.0 } else { 0.0 }),
            DecodedValues::Codes(_) => None,
        }
    }
}

/// Decode a value buffer written by [`encode_values`].
pub fn decode_values(
    bytes: &[u8],
    dtype: crate::value::DataType,
    rle: bool,
    rows: usize,
) -> Result<DecodedValues> {
    use crate::value::DataType;
    if dtype == DataType::Bool {
        if rle {
            return Err(corrupt("bool columns are never RLE-encoded"));
        }
        return Ok(DecodedValues::Bool(unpack_bits(bytes, rows)?));
    }
    let width = if dtype == DataType::Cat { 4 } else { 8 };
    if rle {
        let lanes = decode_rle(bytes, width, rows)?;
        return Ok(match dtype {
            DataType::Float => {
                DecodedValues::Float(lanes.iter().map(|&v| f64::from_bits(v)).collect())
            }
            DataType::Int => DecodedValues::Int(lanes.iter().map(|&v| v as i64).collect()),
            DataType::Cat => DecodedValues::Codes(lanes.iter().map(|&v| v as u32).collect()),
            DataType::Bool => unreachable!("handled above"),
        });
    }
    if bytes.len() != rows * width {
        return Err(corrupt(format!(
            "plain buffer holds {} bytes for {rows} rows of {width}",
            bytes.len()
        )));
    }
    // Plain buffers decode in one fused pass, straight from the wire bytes
    // into the typed vector.
    Ok(match dtype {
        DataType::Float => DecodedValues::Float(
            bytes
                .chunks_exact(8)
                .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
                .collect(),
        ),
        DataType::Int => DecodedValues::Int(
            bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")) as i64)
                .collect(),
        ),
        DataType::Cat => DecodedValues::Codes(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect(),
        ),
        DataType::Bool => unreachable!("handled above"),
    })
}

/// Rebuild a [`Column`] from decoded values, a validity mask, and (for
/// categorical columns) the manifest dictionary — the exact inverse of
/// encoding a segment's slice.
pub fn rebuild_column(
    values: DecodedValues,
    validity: Option<Vec<bool>>,
    dict: Option<&[String]>,
) -> Result<Column> {
    let col = match values {
        DecodedValues::Float(v) => Column::from_f64(v),
        DecodedValues::Int(v) => Column::from_i64(v),
        DecodedValues::Bool(v) => Column::from_bool(v),
        DecodedValues::Codes(codes) => {
            let dict = dict.ok_or_else(|| corrupt("categorical column without a dictionary"))?;
            if let Some(&bad) = codes.iter().find(|&&c| c as usize >= dict.len()) {
                return Err(corrupt(format!(
                    "dictionary code {bad} out of range for {} labels",
                    dict.len()
                )));
            }
            Column::from_cat(CatData {
                codes,
                dict: dict.to_vec(),
            })
        }
    };
    match validity {
        Some(mask) => col.with_validity(mask),
        None => Ok(col),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    #[test]
    fn bitmap_round_trip_all_lengths() {
        for n in 0usize..20 {
            let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let packed = pack_bits(&bits);
            assert_eq!(packed.len(), n.div_ceil(8));
            assert_eq!(unpack_bits(&packed, n).unwrap(), bits);
        }
        assert!(unpack_bits(&[0u8; 3], 8).is_err());
    }

    #[test]
    fn plain_float_round_trip_preserves_nan_bits() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let data = ColumnData::Float(vec![1.5, f64::NAN, weird, -0.0]);
        let (bytes, rle) = encode_values(&data, RlePolicy::Never);
        assert!(!rle);
        let out = decode_values(&bytes, DataType::Float, false, 4).unwrap();
        match (out, &data) {
            (DecodedValues::Float(got), ColumnData::Float(want)) => {
                let gb: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, wb);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn rle_round_trip_and_threshold() {
        let v: Vec<i64> = std::iter::repeat(7)
            .take(50)
            .chain(std::iter::repeat(-3).take(50))
            .collect();
        let data = ColumnData::Int(v.clone());
        let (bytes, rle) = encode_values(&data, RlePolicy::Auto);
        assert!(rle, "2 runs over 100 rows is far below the run fraction");
        assert!(bytes.len() < 100 * 8);
        match decode_values(&bytes, DataType::Int, true, 100).unwrap() {
            DecodedValues::Int(got) => assert_eq!(got, v),
            _ => unreachable!(),
        }
        // high-entropy ints stay plain under Auto
        let noisy = ColumnData::Int((0..100).collect());
        let (_, rle) = encode_values(&noisy, RlePolicy::Auto);
        assert!(!rle);
    }

    #[test]
    fn rle_rejects_inconsistent_buffers() {
        assert!(decode_rle(&[1, 0], 8, 4).is_err()); // shorter than the count
        let mut bytes = Vec::new();
        encode_rle(&[5, 5, 5], 8, &mut bytes);
        assert!(decode_rle(&bytes, 8, 2).is_err()); // runs exceed rows
        assert!(decode_rle(&bytes, 8, 9).is_err()); // runs under-cover rows
    }

    #[test]
    fn cat_codes_round_trip_at_width_4() {
        let c = CatData::from_labels(&["a", "b", "a", "c"]);
        let data = ColumnData::Cat(c.clone());
        let (bytes, rle) = encode_values(&data, RlePolicy::Never);
        assert_eq!(bytes.len(), 16);
        match decode_values(&bytes, DataType::Cat, rle, 4).unwrap() {
            DecodedValues::Codes(got) => assert_eq!(got, c.codes),
            _ => unreachable!(),
        }
    }

    #[test]
    fn rebuild_rejects_out_of_range_codes() {
        let vals = DecodedValues::Codes(vec![0, 5]);
        let dict = vec!["only".to_string()];
        assert!(matches!(
            rebuild_column(vals, None, Some(&dict)),
            Err(FactError::Corrupt(_))
        ));
    }
}
