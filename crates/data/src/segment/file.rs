//! On-disk layout of segment files and the segment-set manifest.
//!
//! A segment file is one horizontal slice of a dataset, laid out
//! column-major so a scan can read exactly the columns it needs:
//!
//! ```text
//! bytes 0..4    magic  b"FSEG"
//! bytes 4..6    format version (u16 LE)
//! bytes 6..10   header length H (u32 LE)
//! bytes 10..10+H  header JSON  — schema slice, per-column buffer offsets
//!                 and encodings, zone maps
//! bytes 10+H..  data section — per-column value buffers and validity
//!               bitmaps at the offsets the header records
//! ```
//!
//! The header records the exact data-section length, and the reader checks
//! `file size == preamble + header + data` before trusting any offset, so a
//! torn tail or truncated header is rejected up front ([`FactError::Corrupt`])
//! rather than misread — the same stance the `fact-net` frame codec takes
//! on torn frames.
//!
//! Writes are crash-safe the way the checkpoint sidecars are: tmp file,
//! `fsync`, rename, then a directory fsync.

use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::column::{Column, ColumnData};
use crate::error::{FactError, Result};
use crate::value::DataType;

use super::codec::{self, DecodedValues, RlePolicy};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"FSEG";

/// Current segment format version.
pub const SEGMENT_VERSION: u16 = 1;

/// Preamble size: magic + version + header length.
pub const PREAMBLE_LEN: usize = 10;

/// Name of the manifest file inside a segment-set directory.
pub const MANIFEST_FILE: &str = "manifest.json";

fn corrupt(what: impl Into<String>) -> FactError {
    FactError::Corrupt(what.into())
}

// ---------------------------------------------------------------------------
// header / manifest schema
// ---------------------------------------------------------------------------

/// Per-column zone map: the segment-level statistics a scan consults to
/// prune whole segments without touching their data buffers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneMap {
    /// Minimum of the valid, non-NaN values viewed as `f64` (ints widened,
    /// bools 0/1). `None` for categorical columns or when no such value
    /// exists in the segment.
    pub min: Option<f64>,
    /// Maximum, same view and caveats as `min`.
    pub max: Option<f64>,
    /// Null rows in this segment's slice.
    pub null_count: u64,
    /// Distinct dictionary codes present (categorical columns only).
    pub distinct: Option<u64>,
    /// The distinct codes themselves, sorted, when at most
    /// [`ZONE_MAP_MAX_CODES`] are present — lets equality predicates prune
    /// segments that never mention a label.
    pub codes: Option<Vec<u32>>,
}

/// Cap on the per-segment code list stored in a categorical zone map.
pub const ZONE_MAP_MAX_CODES: usize = 64;

impl ZoneMap {
    /// Whether a `[min, max]` range predicate can possibly match a row of
    /// this segment. Conservative: `true` unless the zone map proves the
    /// whole segment falls outside the range. NaN values never satisfy a
    /// range predicate, so excluding them from `min`/`max` keeps this exact.
    pub fn may_overlap_range(&self, min: f64, max: f64) -> bool {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) => hi >= min && lo <= max,
            // no valid numeric value in the segment: nothing can match
            _ => false,
        }
    }

    /// Whether a dictionary-code equality predicate can match. `true`
    /// unless the zone map carries a code list that excludes `code`.
    pub fn may_contain_code(&self, code: u32) -> bool {
        match &self.codes {
            Some(codes) => codes.binary_search(&code).is_ok(),
            None => true,
        }
    }
}

/// Build the zone map for one column slice.
pub fn build_zone_map(col: &Column) -> ZoneMap {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut saw = false;
    match col.data() {
        ColumnData::Cat(c) => {
            let mut codes: Vec<u32> = (0..col.len())
                .filter(|&i| !col.is_null(i))
                .map(|i| c.codes[i])
                .collect();
            codes.sort_unstable();
            codes.dedup();
            let distinct = codes.len() as u64;
            return ZoneMap {
                min: None,
                max: None,
                null_count: col.null_count() as u64,
                distinct: Some(distinct),
                codes: (codes.len() <= ZONE_MAP_MAX_CODES).then_some(codes),
            };
        }
        _ => {
            // for_each_valid_f64 cannot fail on non-categorical columns
            col.for_each_valid_f64(|x| {
                if !x.is_nan() {
                    min = min.min(x);
                    max = max.max(x);
                    saw = true;
                }
            })
            .expect("numeric/bool column");
        }
    }
    ZoneMap {
        min: saw.then_some(min),
        max: saw.then_some(max),
        null_count: col.null_count() as u64,
        distinct: None,
        codes: None,
    }
}

/// One column's entry in a segment header: where its buffers live in the
/// data section and how they are encoded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Column name (must match the manifest schema order).
    pub name: String,
    /// Logical type, as the `DataType` display string.
    pub dtype: String,
    /// `true` when the value buffer is run-length encoded.
    pub rle: bool,
    /// Value-buffer offset, relative to the data section.
    pub offset: u64,
    /// Value-buffer length in bytes.
    pub len: u64,
    /// Validity-bitmap offset (0 when the slice has no nulls).
    pub validity_offset: u64,
    /// Validity-bitmap length in bytes (0 when the slice has no nulls).
    pub validity_len: u64,
    /// Scan-pruning statistics for this slice.
    pub zone: ZoneMap,
}

/// The JSON header of one segment file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentHeader {
    /// Rows in this segment.
    pub n_rows: u64,
    /// Total data-section length in bytes (used to reject torn tails).
    pub data_len: u64,
    /// Per-column layout, in manifest schema order.
    pub columns: Vec<ColumnMeta>,
}

/// One field of the segment-set schema as stored in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestField {
    /// Column name.
    pub name: String,
    /// Logical type, as the `DataType` display string.
    pub dtype: String,
    /// FACT annotation: protected/sensitive attribute.
    pub sensitive: bool,
    /// FACT annotation: quasi-identifier.
    pub quasi_identifier: bool,
    /// Global dictionary for categorical columns — segment files store raw
    /// codes into this shared dictionary, so codes are comparable across
    /// segments without remapping.
    pub dict: Option<Vec<String>>,
}

/// One segment's entry in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestSegment {
    /// File name within the segment-set directory.
    pub file: String,
    /// Rows in the segment.
    pub rows: u64,
    /// Total file size in bytes (preamble + header + data).
    pub bytes: u64,
}

/// The segment-set manifest: schema plus the ordered list of segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Segment format version the set was written at.
    pub version: u16,
    /// Total rows across all segments.
    pub n_rows: u64,
    /// Schema fields in column order.
    pub fields: Vec<ManifestField>,
    /// Segments in row order.
    pub segments: Vec<ManifestSegment>,
}

pub(super) fn dtype_name(dt: DataType) -> &'static str {
    match dt {
        DataType::Float => "float",
        DataType::Int => "int",
        DataType::Bool => "bool",
        DataType::Cat => "categorical",
    }
}

pub(super) fn parse_dtype(s: &str) -> Result<DataType> {
    match s {
        "float" => Ok(DataType::Float),
        "int" => Ok(DataType::Int),
        "bool" => Ok(DataType::Bool),
        "categorical" => Ok(DataType::Cat),
        other => Err(corrupt(format!("unknown dtype '{other}'"))),
    }
}

// ---------------------------------------------------------------------------
// writing
// ---------------------------------------------------------------------------

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Serialize one segment (a row slice of equal-length columns) to bytes.
/// Returns the file image and the header that describes it.
pub fn encode_segment(
    names: &[&str],
    columns: &[Column],
    rle: RlePolicy,
) -> Result<(Vec<u8>, SegmentHeader)> {
    let n_rows = columns.first().map_or(0, |c| c.len());
    let mut data: Vec<u8> = Vec::new();
    let mut metas = Vec::with_capacity(columns.len());
    for (name, col) in names.iter().zip(columns) {
        debug_assert_eq!(col.len(), n_rows, "segment columns are equal-length");
        let (values, used_rle) = codec::encode_values(col.data(), rle);
        let offset = data.len() as u64;
        data.extend_from_slice(&values);
        let (validity_offset, validity_len) = if col.null_count() > 0 {
            let mask: Vec<bool> = (0..col.len()).map(|i| !col.is_null(i)).collect();
            let packed = codec::pack_bits(&mask);
            let off = data.len() as u64;
            data.extend_from_slice(&packed);
            (off, packed.len() as u64)
        } else {
            (0, 0)
        };
        metas.push(ColumnMeta {
            name: name.to_string(),
            dtype: dtype_name(col.dtype()).to_string(),
            rle: used_rle,
            offset,
            len: values.len() as u64,
            validity_offset,
            validity_len,
            zone: build_zone_map(col),
        });
    }
    let header = SegmentHeader {
        n_rows: n_rows as u64,
        data_len: data.len() as u64,
        columns: metas,
    };
    let header_json = serde_json::to_string(&header)
        .map_err(|e| FactError::InvalidArgument(format!("header serialization: {e}")))?;
    let mut out = Vec::with_capacity(PREAMBLE_LEN + header_json.len() + data.len());
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    out.extend_from_slice(&(header_json.len() as u32).to_le_bytes());
    out.extend_from_slice(header_json.as_bytes());
    out.extend_from_slice(&data);
    Ok((out, header))
}

/// Durably write one encoded segment file (tmp + fsync + rename).
pub fn write_segment_file(path: &Path, image: &[u8]) -> Result<()> {
    write_atomic(path, image)
}

/// Durably write the manifest into `dir`.
pub fn write_manifest(dir: &Path, manifest: &Manifest) -> Result<()> {
    let json = serde_json::to_string_pretty(manifest)
        .map_err(|e| FactError::InvalidArgument(format!("manifest serialization: {e}")))?;
    write_atomic(&dir.join(MANIFEST_FILE), json.as_bytes())
}

/// Read and validate the manifest of a segment-set directory.
pub fn read_manifest(dir: &Path) -> Result<Manifest> {
    let path = dir.join(MANIFEST_FILE);
    let json = fs::read_to_string(&path)?;
    let manifest: Manifest = serde_json::from_str(&json)
        .map_err(|e| corrupt(format!("manifest {}: {e}", path.display())))?;
    if manifest.version != SEGMENT_VERSION {
        return Err(corrupt(format!(
            "manifest version {} unsupported (reader speaks {SEGMENT_VERSION})",
            manifest.version
        )));
    }
    let seg_rows: u64 = manifest.segments.iter().map(|s| s.rows).sum();
    if seg_rows != manifest.n_rows {
        return Err(corrupt(format!(
            "manifest rows {} disagree with segment total {seg_rows}",
            manifest.n_rows
        )));
    }
    for f in &manifest.fields {
        parse_dtype(&f.dtype)?;
        if f.dict.is_some() != (f.dtype == "categorical") {
            return Err(corrupt(format!(
                "field '{}': dictionary presence does not match dtype",
                f.name
            )));
        }
    }
    Ok(manifest)
}

// ---------------------------------------------------------------------------
// reading
// ---------------------------------------------------------------------------

/// An open segment file with a validated preamble and header. Column
/// buffers are read on demand ([`SegmentReader::read_column`]), so a scan
/// pays only for the columns it asks for.
#[derive(Debug)]
pub struct SegmentReader {
    file: fs::File,
    header: std::sync::Arc<SegmentHeader>,
    /// Bytes consumed validating the preamble and header.
    overhead_bytes: u64,
    data_start: u64,
}

impl SegmentReader {
    /// Open `path`, validating magic, version, header, and total length.
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_with(path, None)
    }

    /// [`SegmentReader::open`] with an optional previously-validated header
    /// for this file. On a cache hit the preamble and file length are still
    /// checked against the cached header, but the JSON header is neither
    /// re-read nor re-parsed — the dominant fixed cost of a repeated scan.
    /// `overhead_bytes` stays the full preamble + header size either way,
    /// so scan statistics are identical for cold and warm opens.
    pub(super) fn open_with(
        path: &Path,
        cached: Option<std::sync::Arc<SegmentHeader>>,
    ) -> Result<Self> {
        let mut file = fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < PREAMBLE_LEN as u64 {
            return Err(corrupt(format!(
                "{}: {file_len} bytes is shorter than the {PREAMBLE_LEN}-byte preamble",
                path.display()
            )));
        }
        let mut preamble = [0u8; PREAMBLE_LEN];
        file.read_exact(&mut preamble)?;
        if preamble[..4] != SEGMENT_MAGIC {
            return Err(corrupt(format!("{}: bad magic", path.display())));
        }
        let version = u16::from_le_bytes(preamble[4..6].try_into().expect("2 bytes"));
        if version != SEGMENT_VERSION {
            return Err(corrupt(format!(
                "{}: version {version} unsupported (reader speaks {SEGMENT_VERSION})",
                path.display()
            )));
        }
        let header_len = u32::from_le_bytes(preamble[6..10].try_into().expect("4 bytes")) as u64;
        if PREAMBLE_LEN as u64 + header_len > file_len {
            return Err(corrupt(format!(
                "{}: truncated header ({header_len} declared, {} available)",
                path.display(),
                file_len - PREAMBLE_LEN as u64
            )));
        }
        let header: std::sync::Arc<SegmentHeader> = match cached {
            Some(h) => {
                file.seek(SeekFrom::Current(header_len as i64))?;
                h
            }
            None => {
                let mut header_bytes = vec![0u8; header_len as usize];
                file.read_exact(&mut header_bytes)?;
                let header_json = std::str::from_utf8(&header_bytes)
                    .map_err(|_| corrupt(format!("{}: header is not UTF-8", path.display())))?;
                std::sync::Arc::new(
                    serde_json::from_str(header_json)
                        .map_err(|e| corrupt(format!("{}: header: {e}", path.display())))?,
                )
            }
        };
        let data_start = PREAMBLE_LEN as u64 + header_len;
        if data_start + header.data_len != file_len {
            return Err(corrupt(format!(
                "{}: data section is {} bytes, header declares {} (torn tail?)",
                path.display(),
                file_len - data_start,
                header.data_len
            )));
        }
        for c in &header.columns {
            let end = c.offset.checked_add(c.len);
            let vend = c.validity_offset.checked_add(c.validity_len);
            match (end, vend) {
                (Some(e), Some(v)) if e <= header.data_len && v <= header.data_len => {}
                _ => {
                    return Err(corrupt(format!(
                        "{}: column '{}' buffers fall outside the data section",
                        path.display(),
                        c.name
                    )))
                }
            }
        }
        Ok(SegmentReader {
            file,
            header,
            overhead_bytes: data_start,
            data_start,
        })
    }

    /// The validated header.
    pub fn header(&self) -> &SegmentHeader {
        &self.header
    }

    /// A shareable handle to the validated header, for caching across
    /// repeated opens of the same file.
    pub(super) fn shared_header(&self) -> std::sync::Arc<SegmentHeader> {
        std::sync::Arc::clone(&self.header)
    }

    /// Bytes read for the preamble + header (charged once per opened file).
    pub fn overhead_bytes(&self) -> u64 {
        self.overhead_bytes
    }

    /// Locate a column's metadata by name.
    pub fn column_meta(&self, name: &str) -> Result<&ColumnMeta> {
        self.header
            .columns
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| FactError::ColumnNotFound(name.to_string()))
    }

    fn read_range(&mut self, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(self.data_start + offset))?;
        let mut buf = vec![0u8; len as usize];
        self.file.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Read and decode one column's slice. Returns the decoded values, the
    /// validity mask (`None` = fully valid), and the data bytes read.
    pub fn read_column(&mut self, name: &str) -> Result<(DecodedValues, Option<Vec<bool>>, u64)> {
        let meta = self.column_meta(name)?.clone();
        let rows = self.header.n_rows as usize;
        let dtype = parse_dtype(&meta.dtype)?;
        let values_bytes = self.read_range(meta.offset, meta.len)?;
        let values = codec::decode_values(&values_bytes, dtype, meta.rle, rows)?;
        let mut bytes_read = meta.len;
        let validity = if meta.validity_len > 0 {
            let mask_bytes = self.read_range(meta.validity_offset, meta.validity_len)?;
            bytes_read += meta.validity_len;
            Some(codec::unpack_bits(&mask_bytes, rows)?)
        } else {
            None
        };
        Ok((values, validity, bytes_read))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg_image() -> Vec<u8> {
        let cols = vec![
            Column::from_f64(vec![1.0, 2.0, 3.0]),
            Column::from_labels(&["a", "b", "a"]),
        ];
        let (image, _) = encode_segment(&["x", "g"], &cols, RlePolicy::Auto).unwrap();
        image
    }

    #[test]
    fn open_validates_and_reads_single_columns() {
        let dir = std::env::temp_dir().join(format!("fseg-file-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-000000.fseg");
        write_segment_file(&path, &seg_image()).unwrap();
        let mut r = SegmentReader::open(&path).unwrap();
        assert_eq!(r.header().n_rows, 3);
        let (vals, validity, bytes) = r.read_column("x").unwrap();
        assert_eq!(bytes, 24);
        assert!(validity.is_none());
        assert_eq!(vals, DecodedValues::Float(vec![1.0, 2.0, 3.0]));
        let (codes, _, _) = r.read_column("g").unwrap();
        assert_eq!(codes, DecodedValues::Codes(vec![0, 1, 0]));
        assert!(matches!(
            r.read_column("ghost"),
            Err(FactError::ColumnNotFound(_))
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_rejected_not_misread() {
        let dir = std::env::temp_dir().join(format!("fseg-corrupt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let image = seg_image();
        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("empty", vec![]),
            ("short-preamble", image[..6].to_vec()),
            ("bad-magic", {
                let mut b = image.clone();
                b[0] = b'X';
                b
            }),
            ("bad-version", {
                let mut b = image.clone();
                b[4] = 99;
                b
            }),
            ("torn-tail", image[..image.len() - 5].to_vec()),
            ("truncated-header", image[..PREAMBLE_LEN + 3].to_vec()),
            ("trailing-garbage", {
                let mut b = image.clone();
                b.extend_from_slice(b"junk");
                b
            }),
        ];
        for (name, bytes) in cases {
            let path = dir.join(format!("{name}.fseg"));
            fs::write(&path, &bytes).unwrap();
            match SegmentReader::open(&path) {
                Err(FactError::Corrupt(_)) => {}
                other => panic!("{name}: expected Corrupt, got {other:?}"),
            }
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zone_maps_cover_numeric_and_cat() {
        let z = build_zone_map(&Column::from_f64(vec![3.0, f64::NAN, -1.0]));
        assert_eq!((z.min, z.max), (Some(-1.0), Some(3.0)));
        assert!(z.may_overlap_range(0.0, 10.0));
        assert!(!z.may_overlap_range(4.0, 9.0));
        let z = build_zone_map(&Column::from_labels(&["a", "b", "a"]));
        assert_eq!(z.distinct, Some(2));
        assert!(z.may_contain_code(1));
        assert!(!z.may_contain_code(2));
        // all-null slice can never match a range
        let z = build_zone_map(&Column::from_f64_opt(vec![None, None]));
        assert!(!z.may_overlap_range(f64::NEG_INFINITY, f64::INFINITY));
    }
}
