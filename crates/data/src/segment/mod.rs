//! # Binary columnar segment storage
//!
//! A [`Dataset`] can be spilled to disk as a **segment set**: a directory of
//! fixed-width, column-major binary files plus a JSON manifest. The format
//! is built for the access pattern every FACT audit shares — *scan a few
//! columns of many rows under a selective predicate* — and optimizes three
//! things the in-memory engine cannot:
//!
//! * **Column pruning.** Each column lives in its own contiguous buffer
//!   inside the segment, with byte offsets in the header. A scan that needs
//!   2 of 30 columns reads 2 of 30 buffers; the rest are never touched.
//! * **Zone-map segment pruning.** Every column of every segment carries a
//!   zone map (min/max over valid values, null count, and — for
//!   low-cardinality dictionary columns — the exact set of codes present).
//!   A selective predicate skips whole segments whose zones prove no row
//!   can match, before any data byte is read.
//! * **Parallel, deterministic scans.** Segments are independent units of
//!   work, fanned out on [`fact_par`] and merged **in segment order**, so
//!   every scan result is bit-identical at any worker count.
//!
//! ## On-disk layout
//!
//! ```text
//! dir/
//!   manifest.json        schema + FACT annotations + global cat dictionaries
//!                        + the segment list (commit point: written last)
//!   seg-000000.fseg      magic "FSEG" | version u16 LE | header_len u32 LE
//!   seg-000001.fseg        | header JSON (per-column offsets + zone maps)
//!   ...                    | column value buffers [+ null bitmaps]
//! ```
//!
//! Values are little-endian fixed width: f64/i64 as 8-byte lanes (floats
//! via [`f64::to_bits`], so NaN payloads and null placeholders survive
//! bit-exactly), dictionary codes as 4-byte `u32` lanes, bools bit-packed.
//! Dictionaries are **global** — stored once in the manifest — so codes
//! compare across segments without remapping. Low-cardinality columns may
//! be run-length encoded when runs cover enough of the segment
//! ([`RlePolicy`]). Null bitmaps are LSB-first and stored only for columns
//! that actually contain nulls.
//!
//! Files are written with the same tmp + fsync + rename discipline as the
//! serving checkpoints, and readers validate *exact* file length against
//! the header's declared sizes — truncated headers, torn tails, and
//! trailing garbage are all rejected as [`FactError::Corrupt`].
//!
//! ## Example
//!
//! ```
//! use fact_data::segment::{Predicate, SegmentWriteConfig};
//! use fact_data::synth::loans::{LoanConfig, generate_loans};
//!
//! let ds = generate_loans(&LoanConfig { n: 500, seed: 7, ..LoanConfig::default() });
//! let dir = std::env::temp_dir().join(format!("fseg-doc-{}", std::process::id()));
//! let set = ds.to_segments(&dir, &SegmentWriteConfig { rows_per_segment: 128, ..Default::default() })?;
//!
//! // column-pruned scan: reads only the two named buffers per segment
//! let (sub, stats) = set.scan_columns(
//!     &["income", "approved"],
//!     &Predicate::Range { column: "income".into(), min: 0.0, max: f64::MAX },
//! )?;
//! assert_eq!(sub.n_cols(), 2);
//! assert!(stats.bytes_read < stats.bytes_total);
//! std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), fact_data::FactError>(())
//! ```

mod codec;
mod file;
mod scan;

pub use codec::{DecodedValues, RlePolicy, RLE_MIN_ROWS, RLE_RUN_FRACTION};
pub use file::{
    build_zone_map, ColumnMeta, Manifest, ManifestField, ManifestSegment, SegmentHeader,
    SegmentReader, ZoneMap, MANIFEST_FILE, SEGMENT_MAGIC, SEGMENT_VERSION, ZONE_MAP_MAX_CODES,
};
pub use scan::{BatchColumn, Predicate, ScanStats, SegmentBatch, SegmentSet};

use std::path::Path;

use crate::error::{FactError, Result};
use crate::frame::Dataset;

/// How a [`Dataset`] is sliced and encoded when spilled to segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentWriteConfig {
    /// Rows per segment file (the pruning granule). Smaller segments prune
    /// more precisely but pay more per-file header overhead.
    pub rows_per_segment: usize,
    /// Run-length encoding policy for 8/4-byte lanes.
    pub rle: RlePolicy,
}

impl Default for SegmentWriteConfig {
    fn default() -> Self {
        SegmentWriteConfig {
            rows_per_segment: 65_536,
            rle: RlePolicy::Auto,
        }
    }
}

impl Dataset {
    /// Spill this dataset to a segment set under `dir` (created if absent).
    ///
    /// Segment files are written first, each atomically; the manifest is
    /// written last as the commit point, so a directory with a readable
    /// manifest is always a complete set. Existing files in `dir` from a
    /// previous spill are overwritten.
    pub fn to_segments(
        &self,
        dir: impl AsRef<Path>,
        config: &SegmentWriteConfig,
    ) -> Result<SegmentSet> {
        if config.rows_per_segment == 0 {
            return Err(FactError::InvalidArgument(
                "rows_per_segment must be at least 1".into(),
            ));
        }
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let names = self.names();
        let fields = self
            .schema()
            .fields()
            .iter()
            .map(|f| {
                let dict = match self.column(&f.name)?.data() {
                    crate::column::ColumnData::Cat(cat) => Some(cat.dict.clone()),
                    _ => None,
                };
                Ok(file::ManifestField {
                    name: f.name.clone(),
                    dtype: file::dtype_name(f.dtype).to_string(),
                    sensitive: f.sensitive,
                    quasi_identifier: f.quasi_identifier,
                    dict,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let n = self.n_rows();
        let mut segments = Vec::new();
        let mut start = 0usize;
        while start < n {
            let end = (start + config.rows_per_segment).min(n);
            let idx: Vec<usize> = (start..end).collect();
            let cols: Vec<crate::column::Column> = names
                .iter()
                .map(|name| self.column(name).expect("name from schema").take(&idx))
                .collect();
            let (image, _header) = file::encode_segment(&names, &cols, config.rle)?;
            let fname = format!("seg-{:06}.fseg", segments.len());
            file::write_segment_file(&dir.join(&fname), &image)?;
            segments.push(file::ManifestSegment {
                file: fname,
                rows: (end - start) as u64,
                bytes: image.len() as u64,
            });
            start = end;
        }
        let manifest = file::Manifest {
            version: file::SEGMENT_VERSION,
            n_rows: n as u64,
            fields,
            segments,
        };
        file::write_manifest(dir, &manifest)?;
        Ok(SegmentSet::from_parts(dir.to_path_buf(), manifest))
    }

    /// Load a full dataset back from a segment set directory.
    ///
    /// The roundtrip is bit-exact: float payloads (including NaN bits under
    /// null slots), dictionary order, validity masks, and FACT schema
    /// annotations all survive `to_segments` → `from_segments`.
    pub fn from_segments(dir: impl AsRef<Path>) -> Result<Dataset> {
        SegmentSet::open(dir)?.to_dataset()
    }
}

impl SegmentSet {
    /// Materialize every column of every segment back into a [`Dataset`].
    pub fn to_dataset(&self) -> Result<Dataset> {
        let names = self.names();
        let (ds, _stats) = self.scan_columns(&names, &Predicate::All)?;
        Ok(ds)
    }
}
